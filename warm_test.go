package eant

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// warmCase is one sweep shape run two ways: cold (a fresh world per spec,
// via Run) and warm (one Runner, reset in place between specs). The cases
// mirror the experiment families behind the cmd/eantsim goldens — the
// fig8 scheduler sweep, the fig11 convergence/workload sweeps, the fig12
// parameter sweeps, and the failures experiment — plus consolidation and
// a horizon cut, so every driver subsystem the goldens exercise is also
// proven bit-identical under reuse.
type warmCase struct {
	name  string
	specs []RunSpec
	// probed attaches a fully-enabled probe (JSONL stream included) to
	// every run of the case; streams and reports must match byte-for-byte
	// between cold and warm.
	probed bool
}

func warmCases(cl *Cluster) []warmCase {
	base := func(s Scheduler, jobs int, seed int64) RunSpec {
		return RunSpec{Cluster: cl, Scheduler: s, Jobs: MSDWorkload(jobs, seed), Seed: seed}
	}
	var schedSweep []RunSpec
	for _, s := range Schedulers() {
		schedSweep = append(schedSweep, base(s, 10, 1))
	}
	var jobsSweep []RunSpec
	for _, jobs := range []int{5, 15, 30} {
		jobsSweep = append(jobsSweep, base(SchedulerEAnt, jobs, 2))
	}
	var betaSweep []RunSpec
	for _, beta := range []float64{0.05, 0.1, 0.3} {
		p := DefaultEAntParams()
		p.Beta = beta
		spec := base(SchedulerEAnt, 10, 3)
		spec.EAntParams = &p
		betaSweep = append(betaSweep, spec)
	}
	var intervalSweep []RunSpec
	for _, iv := range []time.Duration{15 * time.Second, 30 * time.Second, 60 * time.Second} {
		spec := base(SchedulerEAnt, 10, 4)
		spec.ControlInterval = iv
		intervalSweep = append(intervalSweep, spec)
	}
	faulty := base(SchedulerEAnt, 12, 5)
	faulty.Faults = &FaultConfig{
		MachineMTBF: 2 * time.Hour, MachineMTTR: 5 * time.Minute, TaskFailProb: 0.02,
	}
	faultyFair := faulty
	faultyFair.Scheduler = SchedulerFair
	consolidated := base(SchedulerEAnt, 10, 6)
	consolidated.Consolidation = &Consolidation{}
	cut := base(SchedulerEAnt, 20, 7)
	cut.Horizon = 8 * time.Minute
	records := base(SchedulerEAnt, 10, 8)
	records.KeepTaskRecords = true

	return []warmCase{
		{name: "scheduler_sweep", specs: schedSweep, probed: true},
		{name: "convergence", specs: []RunSpec{base(SchedulerEAnt, 30, 2)}},
		{name: "jobs_sweep", specs: jobsSweep},
		{name: "beta_sweep", specs: betaSweep},
		{name: "interval_sweep", specs: intervalSweep},
		{name: "failures", specs: []RunSpec{faulty, faultyFair}, probed: true},
		{name: "consolidation", specs: []RunSpec{consolidated}},
		{name: "horizon_cut", specs: []RunSpec{cut}},
		{name: "task_records", specs: []RunSpec{records}},
	}
}

// TestWarmEqualsCold is the warm-run contract: every run on a reused
// Runner produces a Stats record deeply equal to a cold Run of the same
// spec, and — with a fully-enabled probe attached — a byte-identical
// JSONL event stream and an equal histogram report. The cold reference
// for each spec executes on its own cluster clone; the warm runs share
// one Runner per case, cycling schedulers, parameters, fault and
// consolidation configs through the same world. Finally the first spec
// of each case is re-run warm after the whole sweep, proving resets
// compose (warm-after-warm, not just warm-after-cold).
func TestWarmEqualsCold(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-spec sweeps; skipped in -short mode")
	}
	cl := PaperTestbed()
	for _, c := range warmCases(cl) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			type output struct {
				res    *Result
				stream []byte
				report ProbeReport
			}
			runSpec := func(spec RunSpec, warm *Runner) output {
				t.Helper()
				var out output
				var buf *bytes.Buffer
				if c.probed {
					spec.Probe, buf = newSweepProbe(t)
				}
				var err error
				if warm != nil {
					out.res, err = warm.Run(spec)
				} else {
					spec.Cluster = cl.Clone()
					out.res, err = Run(spec)
				}
				if err != nil {
					t.Fatal(err)
				}
				if c.probed {
					if err := spec.Probe.Err(); err != nil {
						t.Fatalf("probe stream: %v", err)
					}
					out.stream = buf.Bytes()
					out.report = spec.Probe.Report()
				}
				return out
			}
			compare := func(i int, cold, warm output) {
				t.Helper()
				if !reflect.DeepEqual(cold.res.Stats, warm.res.Stats) {
					t.Errorf("spec %d: warm Stats diverged from cold: joules %v vs %v, makespan %v vs %v",
						i, warm.res.Stats.TotalJoules, cold.res.Stats.TotalJoules,
						warm.res.Stats.Horizon, cold.res.Stats.Horizon)
				}
				if !bytes.Equal(cold.stream, warm.stream) {
					t.Errorf("spec %d: warm probe JSONL stream differs from cold", i)
				}
				if !reflect.DeepEqual(cold.report, warm.report) {
					t.Errorf("spec %d: warm probe report differs from cold", i)
				}
			}

			colds := make([]output, len(c.specs))
			for i, spec := range c.specs {
				colds[i] = runSpec(spec, nil)
			}
			runner, err := NewRunner(cl)
			if err != nil {
				t.Fatal(err)
			}
			for i, spec := range c.specs {
				compare(i, colds[i], runSpec(spec, runner))
			}
			// Warm-after-warm: resetting back to the first spec after the
			// whole sweep must land on the same bytes again.
			compare(0, colds[0], runSpec(c.specs[0], runner))
		})
	}
}

// TestRunnerReuseParallel drives the RunMany warm path: a grid of specs
// over one shared cluster fans out across four workers, each reusing its
// own Runner, and every cell must match a cold sequential Run. Under
// `go test -race` this is the data-race check for per-worker world reuse.
func TestRunnerReuseParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep; skipped in -short mode")
	}
	shared := PaperTestbed()
	var specs []RunSpec
	for _, jobs := range []int{5, 12, 20} {
		for _, s := range []Scheduler{SchedulerEAnt, SchedulerFair, SchedulerTarazu} {
			specs = append(specs, RunSpec{
				Cluster:   shared,
				Scheduler: s,
				Jobs:      MSDWorkload(jobs, 11),
				Seed:      11,
			})
		}
	}
	par, err := RunMany(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		spec.Cluster = shared.Clone()
		seq, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par[i].Stats, seq.Stats) {
			t.Errorf("cell %d (%s, %d jobs): warm parallel run diverged from cold sequential",
				i, spec.Scheduler, len(spec.Jobs))
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(nil); err == nil {
		t.Error("nil cluster accepted")
	}
	r, err := NewRunner(PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	jobs := MSDWorkload(2, 1)
	if _, err := r.Run(RunSpec{Cluster: PaperTestbed(), Scheduler: SchedulerFair, Jobs: jobs}); err == nil {
		t.Error("foreign cluster accepted")
	}
	if _, err := r.Run(RunSpec{Scheduler: SchedulerFair}); err == nil {
		t.Error("empty jobs accepted")
	}
	if _, err := r.Run(RunSpec{Scheduler: "Mystery", Jobs: jobs}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	// A nil spec.Cluster means "the Runner's own world".
	if _, err := r.Run(RunSpec{Scheduler: SchedulerFair, Jobs: jobs}); err != nil {
		t.Errorf("nil-cluster spec rejected: %v", err)
	}
}
