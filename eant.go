// Package eant is a simulation library for studying energy-aware task
// assignment in heterogeneous Hadoop clusters. It reproduces E-Ant, the
// ant-colony-optimization scheduler of Cheng et al., "Towards Energy
// Efficiency in Heterogeneous Hadoop Clusters by Adaptive Task
// Assignment" (IEEE ICDCS 2015), together with the substrate the paper
// runs on: a discrete-event Hadoop 1.x cluster simulator with
// heterogeneous machine power envelopes, HDFS block placement, PUMA
// workload profiles, and the Fair, Tarazu, LATE, Capacity and FIFO
// baseline schedulers. Server consolidation (the paper's stated future
// work) is available through RunSpec.Consolidation.
//
// # Quick start
//
//	cluster := eant.PaperTestbed()
//	jobs := eant.MSDWorkload(87, 1)
//	result, err := eant.Run(eant.RunSpec{
//		Cluster:   cluster,
//		Scheduler: eant.SchedulerEAnt,
//		Jobs:      jobs,
//	})
//	fmt.Printf("total energy: %.1f MJ over %v\n",
//		result.TotalJoules/1e6, result.Makespan)
//
// The library is deterministic: identical RunSpecs (including Seed)
// produce identical results. All simulated quantities — task durations,
// CPU utilization, energy — derive from the calibrated machine catalog
// in internal/cluster and the workload profiles in internal/workload;
// DESIGN.md documents the calibration against the paper's published
// behaviour, and EXPERIMENTS.md records the reproduction of every table
// and figure.
package eant

import (
	"fmt"
	"io"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/fault"
	"eant/internal/mapreduce"
	"eant/internal/noise"
	"eant/internal/parallel"
	"eant/internal/probe"
	"eant/internal/sched"
	"eant/internal/sim"
	"eant/internal/workload"
)

// Scheduler selects the task-assignment policy of a run.
type Scheduler string

// Available schedulers.
const (
	// SchedulerEAnt is the paper's contribution: ACO-based adaptive,
	// energy-aware task assignment.
	SchedulerEAnt Scheduler = "E-Ant"
	// SchedulerFair is the Hadoop Fair Scheduler (heterogeneity-
	// oblivious baseline).
	SchedulerFair Scheduler = "Fair"
	// SchedulerTarazu is the communication-aware load balancer of Ahmad
	// et al. (performance-aware, energy-oblivious baseline).
	SchedulerTarazu Scheduler = "Tarazu"
	// SchedulerFIFO is default Hadoop (job-arrival order).
	SchedulerFIFO Scheduler = "FIFO"
	// SchedulerLATE adds speculative re-execution of stragglers to Fair
	// assignment (Zaharia et al., OSDI'08).
	SchedulerLATE Scheduler = "LATE"
	// SchedulerCapacity is the Hadoop Capacity Scheduler with a single
	// default queue (FIFO within the queue).
	SchedulerCapacity Scheduler = "Capacity"
)

// Schedulers lists every available policy.
func Schedulers() []Scheduler {
	return []Scheduler{SchedulerEAnt, SchedulerFair, SchedulerTarazu, SchedulerLATE, SchedulerCapacity, SchedulerFIFO}
}

// App identifies a PUMA benchmark application.
type App = workload.App

// The PUMA applications of the paper's evaluation.
const (
	Wordcount = workload.Wordcount
	Grep      = workload.Grep
	Terasort  = workload.Terasort
)

// Job describes one MapReduce job to submit.
type Job = workload.JobSpec

// NewJob builds a job: app over inputMB of data (one map task per 64 MB
// block), numReduces reduce tasks, submitted at the given virtual time.
func NewJob(id int, app App, inputMB float64, numReduces int, submit time.Duration) Job {
	return workload.NewJobSpec(id, app, inputMB, numReduces, submit)
}

// MSDWorkload generates the paper's §V-C Microsoft-derived synthetic
// workload: jobs drawn from Table III's size classes (scaled 1/64 so runs
// finish in seconds), applications rotating over Wordcount, Grep and
// Terasort, Poisson arrivals. Deterministic per seed.
func MSDWorkload(jobs int, seed int64) []Job {
	specs, err := workload.GenerateMSD(workload.MSDConfig{
		Jobs:             jobs,
		Scale:            64,
		MeanInterarrival: 45 * time.Second,
	}, sim.NewRNG(seed))
	if err != nil {
		panic(err) // only reachable with non-positive jobs
	}
	return specs
}

// Cluster is a heterogeneous machine fleet.
type Cluster = cluster.Cluster

// MachineSpec describes one hardware type.
type MachineSpec = cluster.TypeSpec

// PaperTestbed returns the paper's 16-node §V-B fleet: 8 Dell desktops,
// 3 T110, 2 T420, 1 T320, 1 T620, 1 Atom.
func PaperTestbed() *Cluster { return cluster.Testbed() }

// NewCluster builds a fleet from (spec, count) groups.
func NewCluster(groups ...ClusterGroup) (*Cluster, error) {
	gs := make([]cluster.Group, len(groups))
	for i, g := range groups {
		gs[i] = cluster.Group{Spec: g.Spec, Count: g.Count}
	}
	return cluster.New(gs...)
}

// ClusterGroup pairs a machine spec with a replica count.
type ClusterGroup struct {
	Spec  *MachineSpec
	Count int
}

// MachineSpecs returns the calibrated catalog of the paper's machine
// types (Desktop, XeonE5, T420, T110, T320, T620, Atom).
func MachineSpecs() []*MachineSpec { return cluster.AllSpecs() }

// EAntParams are E-Ant's tuning knobs; see DefaultEAntParams.
type EAntParams = core.Params

// DefaultEAntParams returns the paper's configuration (ρ = 0.5, β = 0.1,
// both exchange strategies on).
func DefaultEAntParams() EAntParams { return core.DefaultParams() }

// NoiseConfig controls system-noise injection (stragglers, duration
// jitter, CPU-measurement fluctuation).
type NoiseConfig = noise.Config

// DefaultNoise returns the evaluation noise calibration; NoNoise disables
// all noise.
func DefaultNoise() NoiseConfig { return noise.Default() }

// NoNoise returns the noise-free configuration.
func NoNoise() NoiseConfig { return noise.Off() }

// FaultConfig configures machine-crash and task-attempt-failure
// injection (MTBF/MTTR phases, scripted scenarios, retry budgets,
// blacklisting). The zero value disables every failure source.
type FaultConfig = fault.Config

// FaultEvent is one scripted crash or recovery in FaultConfig.Scenario.
type FaultEvent = fault.Event

// Scripted fault event kinds.
const (
	FaultCrash   = fault.Crash
	FaultRecover = fault.Recover
)

// Probe is a live observability recorder attached to a run: structured
// decision events (offer → draw → assignment), pheromone snapshots,
// machine time series, and fixed-boundary histograms, all on the
// simulated clock. Probes are pure observers — an instrumented run
// produces bit-identical Stats to an uninstrumented one.
type Probe = probe.Probe

// ProbeConfig parameterizes a Probe; see NewProbe.
type ProbeConfig = probe.Config

// ProbeEvent is one recorded observation.
type ProbeEvent = probe.Event

// ProbeReport aggregates a probe's histograms; reports from a sweep merge
// with MergeProbeReports.
type ProbeReport = probe.Report

// ProbeHistogram is a fixed-boundary histogram with deterministic
// quantiles.
type ProbeHistogram = probe.Histogram

// NewProbe builds an observability probe. Attach it via RunSpec.Probe; a
// probe serves exactly one run (build a fresh one per RunSpec in sweeps).
func NewProbe(cfg ProbeConfig) (*Probe, error) { return probe.New(cfg) }

// MergeProbeReports folds per-run probe reports into one aggregate, in
// argument (submission) order — the order RunMany returns results — so
// sweep aggregation is reproducible regardless of worker interleaving.
func MergeProbeReports(reports ...ProbeReport) (ProbeReport, error) {
	return probe.MergeReports(reports...)
}

// WriteTimeline renders probe events as a Chrome trace-event JSON document
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteTimeline(w io.Writer, events []ProbeEvent) error {
	return probe.WriteTimeline(w, events)
}

// RunSpec configures one simulated campaign.
type RunSpec struct {
	// Cluster to run on; required.
	Cluster *Cluster
	// Scheduler; required.
	Scheduler Scheduler
	// EAntParams tunes E-Ant; zero value means DefaultEAntParams.
	// Ignored by the baselines.
	EAntParams *EAntParams
	// Jobs to run; required.
	Jobs []Job
	// Seed drives every random stream (default 0 — still deterministic).
	Seed int64
	// Noise injects system noise; nil means DefaultNoise.
	Noise *NoiseConfig
	// ControlInterval is E-Ant's policy-refresh period. Zero means 30 s,
	// matching the 1/64-scaled workloads (the paper's unscaled interval
	// is 5 min).
	ControlInterval time.Duration
	// Horizon optionally caps the virtual duration; zero means run to
	// completion (capped at 48 h as a runaway guard).
	Horizon time.Duration
	// KeepTaskRecords retains a per-task record in the result.
	KeepTaskRecords bool
	// Consolidation, when non-nil, enables server power management: idle
	// machines outside a covering subset sleep and wake on demand (the
	// paper's §VIII future work). Zero-value fields take defaults.
	Consolidation *Consolidation
	// Faults, when non-nil, injects machine crashes and task-attempt
	// failures; the driver retries, re-executes lost map outputs, and
	// blacklists per FaultConfig. Nil (or the zero value) is a strict
	// no-op.
	Faults *FaultConfig
	// Probe, when non-nil, records live observability events for this
	// run. The probe must be freshly built (NewProbe) and not shared
	// across runs. Nil disables instrumentation at zero cost.
	Probe *Probe
}

// Consolidation configures server power management; see
// mapreduce.PowerMgmt for field semantics.
type Consolidation = mapreduce.PowerMgmt

// Result is the outcome of a Run. Stats exposes the full per-run
// statistics (task tallies, timelines, per-machine energy).
type Result struct {
	// TotalJoules is fleet-wide metered energy over the campaign.
	TotalJoules float64
	// Makespan is the virtual time from first submission to last task.
	Makespan time.Duration
	// JobsCompleted counts finished jobs.
	JobsCompleted int
	// TypeJoules and TypeUtilization group energy and mean CPU
	// utilization by machine type.
	TypeJoules      map[string]float64
	TypeUtilization map[string]float64
	// Stats is the full statistics record.
	Stats *mapreduce.Stats
}

// eantParams resolves the E-Ant parameters of a spec.
func eantParams(spec RunSpec) EAntParams {
	if spec.EAntParams != nil {
		return *spec.EAntParams
	}
	return core.DefaultParams()
}

// newScheduler constructs a fresh scheduler instance for the spec.
func newScheduler(spec RunSpec) (mapreduce.Scheduler, error) {
	switch spec.Scheduler {
	case SchedulerEAnt:
		e, err := core.NewEAnt(eantParams(spec))
		if err != nil {
			return nil, fmt.Errorf("eant: %w", err)
		}
		return e, nil
	case SchedulerFair:
		return sched.NewFair(), nil
	case SchedulerTarazu:
		return sched.NewTarazu(), nil
	case SchedulerFIFO:
		return sched.NewFIFO(), nil
	case SchedulerLATE:
		return sched.NewLATE(), nil
	case SchedulerCapacity:
		s, err := sched.NewCapacity(nil, nil)
		if err != nil {
			return nil, fmt.Errorf("eant: %w", err)
		}
		return s, nil
	default:
		return nil, fmt.Errorf("eant: unknown scheduler %q", spec.Scheduler)
	}
}

// resetScheduler returns a cached scheduler instance to its pre-run state
// for the given spec, adopting the spec's parameters where the policy has
// any (E-Ant sweeps vary them between runs of one warm world).
func resetScheduler(s mapreduce.Scheduler, spec RunSpec) error {
	switch sc := s.(type) {
	case *core.EAnt:
		if err := sc.ResetForRun(eantParams(spec)); err != nil {
			return fmt.Errorf("eant: %w", err)
		}
	case *sched.Fair:
		sc.ResetForRun()
	case *sched.Tarazu:
		sc.ResetForRun()
	case *sched.LATE:
		sc.ResetForRun()
	case *sched.FIFO:
		sc.ResetForRun()
	case *sched.Capacity:
		sc.ResetForRun()
	default:
		return fmt.Errorf("eant: cannot reset scheduler %q for reuse", s.Name())
	}
	return nil
}

// specConfig translates a RunSpec into the driver configuration.
func specConfig(spec RunSpec) mapreduce.Config {
	cfg := mapreduce.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.KeepTaskRecords = spec.KeepTaskRecords
	if spec.Consolidation != nil {
		cfg.Power = *spec.Consolidation
		cfg.Power.Enabled = true
	}
	if spec.ControlInterval > 0 {
		cfg.ControlInterval = spec.ControlInterval
	} else {
		cfg.ControlInterval = 30 * time.Second
	}
	if spec.Noise != nil {
		cfg.Noise = *spec.Noise
	} else {
		cfg.Noise = noise.Default()
	}
	if spec.Faults != nil {
		cfg.Fault = *spec.Faults
	}
	cfg.Probe = spec.Probe
	return cfg
}

// specHorizon resolves the spec's virtual-duration cap.
func specHorizon(spec RunSpec) time.Duration {
	if spec.Horizon > 0 {
		return spec.Horizon
	}
	return 48 * time.Hour
}

// resultFromStats wraps a run's statistics as the public Result.
func resultFromStats(stats *mapreduce.Stats) *Result {
	return &Result{
		TotalJoules:     stats.TotalJoules,
		Makespan:        stats.Horizon,
		JobsCompleted:   len(stats.Jobs),
		TypeJoules:      stats.TypeJoules,
		TypeUtilization: stats.TypeAvgUtil,
		Stats:           stats,
	}
}

// Run executes the campaign described by spec.
func Run(spec RunSpec) (*Result, error) {
	if spec.Cluster == nil {
		return nil, fmt.Errorf("eant: RunSpec.Cluster is required")
	}
	if len(spec.Jobs) == 0 {
		return nil, fmt.Errorf("eant: RunSpec.Jobs is empty")
	}
	s, err := newScheduler(spec)
	if err != nil {
		return nil, err
	}
	driver, err := mapreduce.NewDriver(spec.Cluster, s, specConfig(spec))
	if err != nil {
		return nil, fmt.Errorf("eant: %w", err)
	}
	stats, err := driver.Run(spec.Jobs, specHorizon(spec))
	if err != nil {
		return nil, fmt.Errorf("eant: %w", err)
	}
	return resultFromStats(stats), nil
}

// Runner is a reusable simulation world: it owns a private clone of one
// cluster plus the driver built over it, and runs campaign after campaign
// by resetting that world in place instead of rebuilding it. For sweeps
// of many runs over one fleet this removes the per-run construction of
// the cluster, HDFS namespace, event queue, job/task structures and
// scheduler state — the dominant allocation cost of short runs.
//
// Every warm run is bit-identical to a cold Run of the same spec
// (golden-enforced): each reset rewinds the RNG streams to the seeds a
// fresh driver would fork and returns every piece of retained state to
// its freshly-constructed value. A Runner is not safe for concurrent use;
// RunMany keeps one per worker.
type Runner struct {
	source  *Cluster // the caller's cluster, identity-checked in Run
	cluster *Cluster // private clone the runs execute on
	driver  *mapreduce.Driver
	// scheds caches one scheduler instance per policy, reset between runs
	// (an E-Ant kept warm retains its pooled colonies and scratch buffers).
	scheds map[Scheduler]mapreduce.Scheduler
}

// NewRunner builds a reusable world over c. The cluster is cloned once;
// later mutations of c are not observed.
func NewRunner(c *Cluster) (*Runner, error) {
	if c == nil {
		return nil, fmt.Errorf("eant: NewRunner with nil cluster")
	}
	return &Runner{
		source:  c,
		cluster: c.Clone(),
		scheds:  make(map[Scheduler]mapreduce.Scheduler),
	}, nil
}

// Run executes one campaign on the warm world. spec.Cluster must be nil
// or the cluster the Runner was built from; everything else in the spec
// may change freely between runs (scheduler, jobs, seed, noise, faults,
// consolidation, probe).
func (r *Runner) Run(spec RunSpec) (*Result, error) {
	if spec.Cluster != nil && spec.Cluster != r.source {
		return nil, fmt.Errorf("eant: Runner.Run with a different cluster than NewRunner")
	}
	if len(spec.Jobs) == 0 {
		return nil, fmt.Errorf("eant: RunSpec.Jobs is empty")
	}
	s, err := r.schedulerFor(spec)
	if err != nil {
		return nil, err
	}
	cfg := specConfig(spec)
	if r.driver == nil {
		d, err := mapreduce.NewDriver(r.cluster, s, cfg)
		if err != nil {
			return nil, fmt.Errorf("eant: %w", err)
		}
		r.driver = d
	} else if err := r.driver.Reset(s, cfg); err != nil {
		return nil, fmt.Errorf("eant: %w", err)
	}
	stats, err := r.driver.Run(spec.Jobs, specHorizon(spec))
	if err != nil {
		return nil, fmt.Errorf("eant: %w", err)
	}
	return resultFromStats(stats), nil
}

// schedulerFor returns the cached, freshly-reset scheduler for the spec's
// policy, constructing and caching it on first use.
func (r *Runner) schedulerFor(spec RunSpec) (mapreduce.Scheduler, error) {
	if s, ok := r.scheds[spec.Scheduler]; ok {
		if err := resetScheduler(s, spec); err != nil {
			return nil, err
		}
		return s, nil
	}
	s, err := newScheduler(spec)
	if err != nil {
		return nil, err
	}
	r.scheds[spec.Scheduler] = s
	return s, nil
}

// RunMany executes independent campaigns concurrently on a bounded worker
// pool and returns their results in spec order. workers <= 0 uses the
// process default (GOMAXPROCS, or the eantsim -parallel setting);
// workers == 1 runs sequentially. Each result is bit-identical to what a
// sequential Run of the same spec produces: every run owns its engine,
// RNG streams and scheduler, and result ordering never depends on
// completion timing. On error, RunMany reports the error of the
// lowest-index failing spec.
//
// Each worker keeps one warm Runner and resets it between the specs it
// claims, so consecutive runs over the same cluster rebuild nothing —
// sweeps pay the world-construction cost at most once per worker. A spec
// naming a different cluster than the worker's current Runner rebuilds
// that worker's world; interleaved-cluster sweeps therefore still work,
// just without reuse across the switches. Clusters are always cloned into
// the Runners, so concurrent runs never share machine state and the
// caller's clusters are never mutated.
func RunMany(specs []RunSpec, workers int) ([]*Result, error) {
	type slot struct {
		source *Cluster
		runner *Runner
	}
	slots := make([]slot, parallel.Workers(len(specs), workers))
	return parallel.MapWorkers(len(specs), workers, func(worker, i int) (*Result, error) {
		spec := specs[i]
		if spec.Cluster == nil {
			return nil, fmt.Errorf("eant: RunSpec.Cluster is required")
		}
		sl := &slots[worker]
		if sl.runner == nil || sl.source != spec.Cluster {
			r, err := NewRunner(spec.Cluster)
			if err != nil {
				return nil, err
			}
			sl.source, sl.runner = spec.Cluster, r
		}
		return sl.runner.Run(spec)
	})
}

// Compare runs the same jobs under several schedulers (concurrently, on
// the RunMany worker pool, so cluster and world construction is shared
// across the schedulers each worker runs) and returns the results keyed
// by scheduler, plus E-Ant's saving in percent over each baseline
// (positive = E-Ant used less energy).
func Compare(spec RunSpec, schedulers ...Scheduler) (map[Scheduler]*Result, map[Scheduler]float64, error) {
	if len(schedulers) == 0 {
		schedulers = Schedulers()
	}
	specs := make([]RunSpec, len(schedulers))
	for i, s := range schedulers {
		specs[i] = spec
		specs[i].Scheduler = s
	}
	runs, err := RunMany(specs, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("eant: %w", err)
	}
	results := make(map[Scheduler]*Result, len(schedulers))
	for i, s := range schedulers {
		results[s] = runs[i]
	}
	savings := make(map[Scheduler]float64)
	if eantRes, ok := results[SchedulerEAnt]; ok {
		for s, r := range results {
			if s == SchedulerEAnt || r.TotalJoules <= 0 {
				continue
			}
			savings[s] = 100 * (r.TotalJoules - eantRes.TotalJoules) / r.TotalJoules
		}
	}
	return results, savings, nil
}
