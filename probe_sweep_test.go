package eant

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// newSweepProbe builds a fresh fully-enabled probe writing its JSONL
// stream into the returned buffer.
func newSweepProbe(t testing.TB) (*Probe, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	p, err := NewProbe(ProbeConfig{SampleEvery: 1, Trails: true, Stream: &buf})
	if err != nil {
		t.Fatal(err)
	}
	return p, &buf
}

// TestProbeDoesNotPerturbStats is the API-level statement of the
// observability contract: attaching a fully-enabled probe to a run leaves
// the entire Stats record — every counter, timeline and per-machine energy
// figure — deeply equal to the probe-free run's.
func TestProbeDoesNotPerturbStats(t *testing.T) {
	jobs := MSDWorkload(12, 9)
	base := RunSpec{
		Cluster:         scaledTestbed(t, 1),
		Scheduler:       SchedulerEAnt,
		Jobs:            jobs,
		Seed:            9,
		KeepTaskRecords: true,
	}
	bare, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	probed := base
	probed.Cluster = base.Cluster.Clone()
	p, _ := newSweepProbe(t)
	probed.Probe = p
	withProbe, err := Run(probed)
	if err != nil {
		t.Fatal(err)
	}
	if p.Recorded() == 0 {
		t.Fatal("probe recorded nothing; the hooks are not wired")
	}
	if !reflect.DeepEqual(bare.Stats, withProbe.Stats) {
		t.Errorf("probe perturbed Stats: joules %v vs %v, makespan %v vs %v",
			bare.Stats.TotalJoules, withProbe.Stats.TotalJoules,
			bare.Stats.Horizon, withProbe.Stats.Horizon)
	}

	// Fault-injected runs must be equally unperturbed: the recovery paths
	// (crash, recover, blacklist, job failure) carry their own hooks.
	faulty := base
	faulty.Cluster = base.Cluster.Clone()
	faulty.Faults = &FaultConfig{
		MachineMTBF: 2 * time.Hour, MachineMTTR: 5 * time.Minute, TaskFailProb: 0.02,
	}
	bareF, err := Run(faulty)
	if err != nil {
		t.Fatal(err)
	}
	faultyProbed := faulty
	faultyProbed.Cluster = base.Cluster.Clone()
	pf, _ := newSweepProbe(t)
	faultyProbed.Probe = pf
	withProbeF, err := Run(faultyProbed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bareF.Stats, withProbeF.Stats) {
		t.Error("probe perturbed Stats of a fault-injected run")
	}
}

// TestProbeSweepParallel runs a TestScaleSweepParallel-style grid with a
// fully-enabled probe (JSONL stream included) attached to every cell, via
// the parallel worker pool. Under `go test -race` it is the data-race
// check for the observability layer; in any mode it checks that each
// cell's probe output — raw event stream and histogram report — is
// byte-identical to a sequential rerun's, and that merging reports in
// submission order is reproducible.
func TestProbeSweepParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep; skipped in -short mode")
	}
	type cell struct {
		spec   RunSpec
		stream *bytes.Buffer
	}
	var cells []cell
	for _, jobs := range []int{5, 20} {
		for _, sched := range []Scheduler{SchedulerEAnt, SchedulerFair} {
			p, buf := newSweepProbe(t)
			cells = append(cells, cell{
				spec: RunSpec{
					Cluster:   scaledTestbed(t, 1),
					Scheduler: sched,
					Jobs:      MSDWorkload(jobs, 3),
					Seed:      3,
					Probe:     p,
				},
				stream: buf,
			})
		}
	}
	specs := make([]RunSpec, len(cells))
	for i, c := range cells {
		specs[i] = c.spec
	}
	par, err := RunMany(specs, 4)
	if err != nil {
		t.Fatal(err)
	}

	parReports := make([]ProbeReport, len(cells))
	for i, c := range cells {
		if err := c.spec.Probe.Err(); err != nil {
			t.Fatalf("cell %d stream error: %v", i, err)
		}
		parReports[i] = c.spec.Probe.Report()
	}

	// Sequential rerun of every cell with its own fresh probe: simulation
	// results, raw event streams and reports must all be byte-identical.
	seqReports := make([]ProbeReport, len(cells))
	for i, c := range cells {
		spec := c.spec
		spec.Cluster = spec.Cluster.Clone()
		p, buf := newSweepProbe(t)
		spec.Probe = p
		seq, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if par[i].TotalJoules != seq.TotalJoules || par[i].Makespan != seq.Makespan {
			t.Errorf("cell %d: parallel run diverged from sequential", i)
		}
		if !bytes.Equal(c.stream.Bytes(), buf.Bytes()) {
			t.Errorf("cell %d: probe JSONL stream differs between parallel and sequential runs", i)
		}
		if !reflect.DeepEqual(c.spec.Probe.Report(), p.Report()) {
			t.Errorf("cell %d: probe report differs between parallel and sequential runs", i)
		}
		seqReports[i] = p.Report()
	}

	// Submission-order aggregation is reproducible: the merged report from
	// the parallel sweep equals the merge of the sequential reruns.
	parMerged, err := MergeProbeReports(parReports...)
	if err != nil {
		t.Fatal(err)
	}
	seqMerged, err := MergeProbeReports(seqReports...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parMerged, seqMerged) {
		t.Error("merged sweep reports differ between parallel and sequential aggregation")
	}
	if parMerged.TaskEnergyJ == nil || parMerged.TaskEnergyJ.Count == 0 {
		t.Error("merged report is empty; probes recorded nothing")
	}
}
