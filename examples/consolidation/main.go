// Consolidation: pair each scheduler with covering-subset server power
// management — the integration the paper names as future work (§VIII).
// Idle machines outside the covering subset sleep at standby power and
// wake (with a resume penalty) when the scheduler assigns to them; E-Ant,
// which already concentrates work on the machines it favors, keeps more
// of the fleet asleep than Fair does.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"os"
	"time"

	"eant"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "consolidation:", err)
		os.Exit(1)
	}
}

func run() error {
	// Light load: 40 jobs with 90 s mean spacing leaves lulls where
	// machines can actually sleep.
	jobs := eant.MSDWorkload(40, 3)
	for i := range jobs {
		jobs[i].Submit = jobs[i].Submit * 2
	}

	fmt.Println("scheduler   consolidation   total KJ   makespan    sleeps/wakes")
	for _, s := range []eant.Scheduler{eant.SchedulerFair, eant.SchedulerEAnt} {
		for _, consolidated := range []bool{false, true} {
			spec := eant.RunSpec{
				Cluster:   eant.PaperTestbed(),
				Scheduler: s,
				Jobs:      jobs,
				Seed:      3,
			}
			mode := "off"
			if consolidated {
				spec.Consolidation = &eant.Consolidation{} // defaults
				mode = "on"
			}
			r, err := eant.Run(spec)
			if err != nil {
				return err
			}
			fmt.Printf("%-11s %-15s %-10.0f %-11v %d/%d\n",
				s, mode, r.TotalJoules/1000, r.Makespan.Round(time.Second),
				r.Stats.Sleeps, r.Stats.Wakes)
		}
	}
	fmt.Println("\nWith consolidation on, compare the two schedulers' totals: E-Ant's")
	fmt.Println("steering keeps more machines asleep, compounding the power-down win.")
	return nil
}
