// Heterogeneity study: reproduce the paper's §II motivation experiments
// (Fig. 1) — how energy efficiency varies with hardware platform,
// workload type, and task arrival rate.
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"
	"os"

	"eant/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "heterogeneity:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Reproducing the §II motivation study (Fig. 1)...")
	fmt.Println()

	a, err := experiments.Fig1a()
	if err != nil {
		return err
	}
	if err := a.Table().Write(os.Stdout); err != nil {
		return err
	}

	b, err := experiments.Fig1b()
	if err != nil {
		return err
	}
	if err := b.Table().Write(os.Stdout); err != nil {
		return err
	}

	c, err := experiments.Fig1c()
	if err != nil {
		return err
	}
	if err := c.Table().Write(os.Stdout); err != nil {
		return err
	}

	d, err := experiments.Fig1d()
	if err != nil {
		return err
	}
	return d.Table().Write(os.Stdout)
}
