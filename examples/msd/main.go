// MSD campaign: run the paper's full §V-C Microsoft-derived synthetic
// workload (87 jobs) on the 16-node testbed under every scheduler and
// print per-machine-type energy — the Fig. 8a experiment as a standalone
// program.
//
//	go run ./examples/msd [-jobs 87] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"eant"
)

func main() {
	jobs := flag.Int("jobs", 87, "MSD job count")
	seed := flag.Int64("seed", 1, "workload and simulation seed")
	flag.Parse()
	if err := run(*jobs, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "msd:", err)
		os.Exit(1)
	}
}

func run(jobs int, seed int64) error {
	workload := eant.MSDWorkload(jobs, seed)
	fmt.Printf("MSD workload: %d jobs on the 16-node testbed (seed %d)\n\n", jobs, seed)

	results, savings, err := eant.Compare(eant.RunSpec{
		Cluster: eant.PaperTestbed(),
		Jobs:    workload,
		Seed:    seed,
	})
	if err != nil {
		return err
	}

	// Stable machine-type order for the report.
	var types []string
	for name := range results[eant.SchedulerFair].TypeJoules {
		types = append(types, name)
	}
	sort.Strings(types)

	order := []eant.Scheduler{eant.SchedulerFIFO, eant.SchedulerFair, eant.SchedulerTarazu, eant.SchedulerEAnt}
	fmt.Printf("%-10s", "machine")
	for _, s := range order {
		fmt.Printf("%12s", s)
	}
	fmt.Println(" (KJ)")
	for _, name := range types {
		fmt.Printf("%-10s", name)
		for _, s := range order {
			fmt.Printf("%12.0f", results[s].TypeJoules[name]/1000)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "TOTAL")
	for _, s := range order {
		fmt.Printf("%12.0f", results[s].TotalJoules/1000)
	}
	fmt.Println()

	fmt.Println()
	for _, s := range order {
		fmt.Printf("%-8s makespan %v\n", s, results[s].Makespan.Round(time.Second))
	}
	fmt.Println()
	// Iterate the fixed scheduler order, not the map: map iteration is
	// randomized, and the report should read identically on every run.
	for _, s := range order {
		if pct, ok := savings[s]; ok {
			fmt.Printf("E-Ant saving vs %-8s %+.1f%%\n", s, pct)
		}
	}
	return nil
}
