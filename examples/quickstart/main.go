// Quickstart: build the paper's testbed, submit a small mixed workload,
// and compare E-Ant against the Hadoop Fair Scheduler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"eant"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	cluster := eant.PaperTestbed()

	// Nine jobs, three of each PUMA benchmark, ~3 GB input each,
	// submitted 20 s apart.
	var jobs []eant.Job
	apps := []eant.App{eant.Wordcount, eant.Grep, eant.Terasort}
	for i := 0; i < 9; i++ {
		jobs = append(jobs, eant.NewJob(i, apps[i%3], 3200, 4,
			time.Duration(i)*20*time.Second))
	}

	results, savings, err := eant.Compare(eant.RunSpec{
		Cluster: cluster,
		Jobs:    jobs,
		Seed:    1,
	}, eant.SchedulerEAnt, eant.SchedulerFair)
	if err != nil {
		return err
	}

	for _, s := range []eant.Scheduler{eant.SchedulerFair, eant.SchedulerEAnt} {
		r := results[s]
		fmt.Printf("%-6s finished %d jobs in %v using %.0f KJ\n",
			s, r.JobsCompleted, r.Makespan.Round(time.Second), r.TotalJoules/1000)
	}
	fmt.Printf("E-Ant energy saving vs Fair: %.1f%%\n", savings[eant.SchedulerFair])
	return nil
}
