// Tuning: explore E-Ant's parameter space on a fixed workload — the β
// fairness/energy tradeoff, the evaporation coefficient ρ, and the
// exchange strategies (the paper's §VI-C/§VI-D studies in miniature).
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"os"
	"time"

	"eant"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tuning:", err)
		os.Exit(1)
	}
}

func run() error {
	jobs := eant.MSDWorkload(30, 5)
	noiseOff := eant.NoNoise()

	baseline, err := eant.Run(eant.RunSpec{
		Cluster:   eant.PaperTestbed(),
		Scheduler: eant.SchedulerFIFO,
		Jobs:      jobs,
		Seed:      5,
		Noise:     &noiseOff,
	})
	if err != nil {
		return err
	}
	fmt.Printf("baseline (FIFO): %.0f KJ in %v\n\n",
		baseline.TotalJoules/1000, baseline.Makespan.Round(time.Second))

	runWith := func(label string, mutate func(*eant.EAntParams)) error {
		params := eant.DefaultEAntParams()
		mutate(&params)
		r, err := eant.Run(eant.RunSpec{
			Cluster:    eant.PaperTestbed(),
			Scheduler:  eant.SchedulerEAnt,
			EAntParams: &params,
			Jobs:       jobs,
			Seed:       5,
			Noise:      &noiseOff,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		saving := 100 * (baseline.TotalJoules - r.TotalJoules) / baseline.TotalJoules
		fmt.Printf("%-28s %.0f KJ (saving %+5.1f%%) makespan %v\n",
			label, r.TotalJoules/1000, saving, r.Makespan.Round(time.Second))
		return nil
	}

	fmt.Println("β sweep (fairness/locality weight):")
	for _, beta := range []float64{0, 0.1, 0.2, 0.4} {
		beta := beta
		if err := runWith(fmt.Sprintf("  beta=%.1f", beta), func(p *eant.EAntParams) { p.Beta = beta }); err != nil {
			return err
		}
	}

	fmt.Println("\nρ sweep (pheromone evaporation):")
	for _, rho := range []float64{0.2, 0.5, 0.8} {
		rho := rho
		if err := runWith(fmt.Sprintf("  rho=%.1f", rho), func(p *eant.EAntParams) { p.Rho = rho }); err != nil {
			return err
		}
	}

	fmt.Println("\nexchange strategies:")
	variants := []struct {
		label        string
		machine, job bool
	}{
		{"  no exchange", false, false},
		{"  machine-level only", true, false},
		{"  job-level only", false, true},
		{"  both (paper default)", true, true},
	}
	for _, v := range variants {
		v := v
		if err := runWith(v.label, func(p *eant.EAntParams) {
			p.MachineExchange = v.machine
			p.JobExchange = v.job
		}); err != nil {
			return err
		}
	}
	return nil
}
