package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenProbesOnOff pins the observability layer's headline guarantee:
// running an experiment with probes fully enabled (per-heartbeat machine
// sampling plus pheromone-trail snapshots) produces byte-identical output
// to the probe-free run, and both match the committed golden. fig8 covers
// the steady-state E-Ant decision loop; failures covers the
// crash/recovery/blacklist paths, which record through the same probe.
func TestGoldenProbesOnOff(t *testing.T) {
	for _, name := range []string{"fig8", "failures"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var off strings.Builder
			if code := run([]string{name}, &off, io.Discard); code != 0 {
				t.Fatalf("probes off: exit %d", code)
			}
			var on strings.Builder
			if code := run([]string{name, "-probe-interval", "1", "-probe-trails"}, &on, io.Discard); code != 0 {
				t.Fatalf("probes on: exit %d", code)
			}
			if on.String() != off.String() {
				t.Errorf("probes perturbed %s output\nprobes on:\n%s\nprobes off:\n%s",
					name, on.String(), off.String())
			}
			want, err := os.ReadFile(filepath.Join("testdata", name+".golden"))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			if on.String() != string(want) {
				t.Errorf("probes-on output differs from committed golden for %s", name)
			}
		})
	}
}

// TestProbeSinkFlagsRejectedOutsideTrace: the file sinks only make sense
// for the single-run 'trace' experiment; sweeps must reject them loudly
// rather than silently dropping data.
func TestProbeSinkFlagsRejectedOutsideTrace(t *testing.T) {
	var errOut strings.Builder
	if code := run([]string{"fig8", "-trace", filepath.Join(t.TempDir(), "x.jsonl")}, io.Discard, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "trace") {
		t.Errorf("error should point at the 'trace' experiment: %s", errOut.String())
	}
}
