package main

import (
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestCLITables(t *testing.T) {
	for _, name := range []string{"table1", "table2", "table3", "machines", "msd-spec"} {
		name := name
		t.Run(name, func(t *testing.T) {
			out, _, code := runCLI(t, name)
			if code != 0 {
				t.Fatalf("exit %d", code)
			}
			if len(out) == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestCLIFigure(t *testing.T) {
	out, _, code := runCLI(t, "fig1d")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "Wordcount") {
		t.Errorf("missing rows:\n%s", out)
	}
}

func TestCLICSVMode(t *testing.T) {
	out, _, code := runCLI(t, "table1", "-csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "model,cores,") {
		t.Errorf("not CSV:\n%s", out)
	}
}

func TestCLICompare(t *testing.T) {
	out, _, code := runCLI(t, "compare", "-jobs", "8", "-seed", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"E-Ant", "Fair", "Tarazu", "FIFO", "8 MSD jobs, seed 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestCLITraceFormats(t *testing.T) {
	out, _, code := runCLI(t, "trace", "-jobs", "3", "-format", "summary")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, `"scheduler": "E-Ant"`) {
		t.Errorf("bad summary:\n%s", out)
	}
	out, _, code = runCLI(t, "trace", "-jobs", "3", "-format", "csv", "-sched", "Fair")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "job_id,") {
		t.Errorf("bad CSV:\n%s", out)
	}
	_, errOut, code := runCLI(t, "trace", "-format", "yaml")
	if code == 0 {
		t.Error("unknown format accepted")
	}
	if !strings.Contains(errOut, "unknown trace format") {
		t.Errorf("unhelpful error: %s", errOut)
	}
}

func TestCLIUnknownExperiment(t *testing.T) {
	_, errOut, code := runCLI(t, "fig99")
	if code == 0 {
		t.Error("unknown experiment accepted")
	}
	if !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("unhelpful error: %s", errOut)
	}
}

func TestCLINoArgs(t *testing.T) {
	_, errOut, code := runCLI(t)
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "usage:") {
		t.Errorf("no usage text: %s", errOut)
	}
}

func TestCLISweep(t *testing.T) {
	out, _, code := runCLI(t, "sweep", "-jobs", "6", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "sweep") || !strings.Contains(out, "0.1") {
		t.Errorf("missing sweep grid:\n%s", out)
	}
}
