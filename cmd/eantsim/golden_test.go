package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenExperiments are the figure and sweep outputs that must stay
// byte-identical across refactors: the assignment fast paths (incremental
// aggregates, per-interval trail indices) are exact rewrites of the scans
// they replace, so any byte of drift here is a behavior change, not a
// performance change.
var goldenExperiments = []string{
	"fig8", "fig11a", "fig11b", "fig12a", "fig12b", "failures",
}

func TestGoldenExperimentOutputs(t *testing.T) {
	for _, name := range goldenExperiments {
		name := name
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			if code := run([]string{name}, &out, io.Discard); code != 0 {
				t.Fatalf("exit %d", code)
			}
			path := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got := out.String(); got != string(want) {
				t.Errorf("output differs from %s (run with -update only if the change is intentional)\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
		})
	}
}
