package main

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every Since, so the timing line is
// fully deterministic under test.
type fakeClock struct {
	at   time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time                  { return c.at }
func (c *fakeClock) Since(t time.Time) time.Duration { return c.step }

func TestTimedReportsInjectedDuration(t *testing.T) {
	old := wall
	wall = &fakeClock{step: 1500 * time.Millisecond}
	defer func() { wall = old }()

	var errOut strings.Builder
	ran := false
	if err := timed("fig4", &errOut, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("timed did not run the experiment")
	}
	if got, want := errOut.String(), "[fig4 done in 1.5s]\n"; got != want {
		t.Fatalf("timing line %q, want %q", got, want)
	}
}

func TestTimedPropagatesErrorWithoutTiming(t *testing.T) {
	old := wall
	wall = &fakeClock{step: time.Second}
	defer func() { wall = old }()

	var errOut strings.Builder
	boom := errors.New("boom")
	if err := timed("fig4", &errOut, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if errOut.Len() != 0 {
		t.Fatalf("unexpected timing output on failure: %q", errOut.String())
	}
}
