package main

import (
	"fmt"
	"io"
	"time"
)

// clock abstracts the wall clock behind the sweep-timing printout, so the
// binary's only real-time consumer is this one injection point and tests
// can substitute a fake. Everything below main() runs on the simulator's
// virtual clock; eantlint's noclock rule keeps it that way.
type clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
}

// sysClock is the real wall clock.
type sysClock struct{}

func (sysClock) Now() time.Time                  { return time.Now() }
func (sysClock) Since(t time.Time) time.Duration { return time.Since(t) }

// wall is the injected clock; tests swap it for a fake.
var wall clock = sysClock{}

// timed runs f and reports its wall-clock duration on stderr, rounded to
// milliseconds.
func timed(name string, stderr io.Writer, f func() error) error {
	start := wall.Now()
	if err := f(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "[%s done in %v]\n", name, wall.Since(start).Round(time.Millisecond))
	return nil
}
