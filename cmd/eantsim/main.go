// Command eantsim runs the reproduction experiments of "Towards Energy
// Efficiency in Heterogeneous Hadoop Clusters by Adaptive Task
// Assignment" (ICDCS 2015) and prints the tables and figure series the
// paper reports.
//
// Usage:
//
//	eantsim <experiment> [flags]
//
// Experiments: table1 table2 table3 fig1a fig1b fig1c fig1d fig4 fig6
// fig7 fig8 fig9 fig10 fig11a fig11b fig12a fig12b compare all
//
// Flags:
//
//	-csv        emit CSV instead of aligned tables
//	-jobs N     job count for the 'compare' experiment (default 40)
//	-seed S     seed for the 'compare' experiment (default 1)
//	-parallel N worker cap for experiment sweeps (default GOMAXPROCS;
//	            1 forces fully sequential execution — results are
//	            identical either way)
//	-cpuprofile F  write a pprof CPU profile of the experiment to F
//	-memprofile F  write a pprof heap profile (after the run) to F
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/experiments"
	"eant/internal/mapreduce"
	"eant/internal/noise"
	"eant/internal/parallel"
	"eant/internal/sim"
	"eant/internal/tabwrite"
	"eant/internal/trace"
	"eant/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eantsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jobs := fs.Int("jobs", 40, "job count for 'compare' and 'trace'")
	seed := fs.Int64("seed", 1, "seed for 'compare' and 'trace'")
	schedName := fs.String("sched", "E-Ant", "scheduler for 'trace' (FIFO|Fair|Tarazu|LATE|E-Ant)")
	format := fs.String("format", "jsonl", "output for 'trace': jsonl, csv or summary")
	workers := fs.Int("parallel", 0, "worker cap for experiment sweeps (0 = GOMAXPROCS, 1 = sequential)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the experiment to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: eantsim <experiment> [flags]")
		fmt.Fprintln(stderr, "experiments:", allNames())
		fs.PrintDefaults()
	}
	if len(args) < 1 || args[0] == "-h" || args[0] == "-help" || args[0] == "--help" {
		fs.Usage()
		return 2
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	parallel.SetDefaultWorkers(*workers)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "eantsim: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "eantsim: -cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		// Snapshot the heap on the way out, after the experiment ran.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "eantsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "eantsim: -memprofile: %v\n", err)
			}
		}()
	}

	emit := func(t *tabwrite.Table) error {
		if *csv {
			return t.WriteCSV(stdout)
		}
		return t.Write(stdout)
	}

	if name == "sweep" {
		t, err := sweepTable(*jobs, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "eantsim: sweep: %v\n", err)
			return 1
		}
		if err := emit(t); err != nil {
			fmt.Fprintf(stderr, "eantsim: sweep: %v\n", err)
			return 1
		}
		return 0
	}
	if name == "trace" {
		if err := emitTrace(stdout, *jobs, *seed, *schedName, *format); err != nil {
			fmt.Fprintf(stderr, "eantsim: trace: %v\n", err)
			return 1
		}
		return 0
	}

	runOne := func(name string) error {
		tables, err := tablesFor(name, *jobs, *seed)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}

	if name == "all" {
		for _, n := range allNames() {
			if n == "all" || n == "compare" || n == "trace" || n == "sweep" {
				continue
			}
			if err := timed(n, stderr, func() error { return runOne(n) }); err != nil {
				fmt.Fprintf(stderr, "eantsim: %s: %v\n", n, err)
				return 1
			}
		}
		return 0
	}
	if err := runOne(name); err != nil {
		fmt.Fprintf(stderr, "eantsim: %s: %v\n", name, err)
		return 1
	}
	return 0
}

func allNames() []string {
	return []string{
		"table1", "table2", "table3",
		"fig1a", "fig1b", "fig1c", "fig1d",
		"fig4", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11a", "fig11b", "fig12a", "fig12b",
		"consolidation", "failures", "compare", "trace", "sweep", "all",
	}
}

// tablesFor runs one experiment and returns its renderable tables.
func tablesFor(name string, jobs int, seed int64) ([]*tabwrite.Table, error) {
	one := func(t *tabwrite.Table, err error) ([]*tabwrite.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*tabwrite.Table{t}, nil
	}
	switch name {
	case "table1", "machines":
		return one(experiments.TableI(), nil)
	case "table2":
		return one(experiments.TableII(), nil)
	case "table3", "msd-spec":
		t, err := experiments.TableIII(87, seed)
		return one(t, err)
	case "fig1a":
		r, err := experiments.Fig1a()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig1b":
		r, err := experiments.Fig1b()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig1c":
		r, err := experiments.Fig1c()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig1d":
		r, err := experiments.Fig1d()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig4":
		r, err := experiments.Fig4()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig6":
		r, err := experiments.Fig6()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig7":
		r, err := experiments.Fig7()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig8":
		r, err := experiments.Fig8(experiments.DefaultFig8Config())
		if err != nil {
			return nil, err
		}
		return []*tabwrite.Table{r.TableA(), r.TableB(), r.TableC()}, nil
	case "fig9":
		f8, err := experiments.Fig8(experiments.DefaultFig8Config())
		if err != nil {
			return nil, err
		}
		r, err := experiments.Fig9(f8)
		if err != nil {
			return nil, err
		}
		return []*tabwrite.Table{r.TableA(), r.TableB()}, nil
	case "fig10":
		r, err := experiments.Fig10()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig11a":
		r, err := experiments.Fig11a()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig11b":
		r, err := experiments.Fig11b()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig12a":
		r, err := experiments.Fig12a()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig12b":
		r, err := experiments.Fig12b()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "consolidation":
		r, err := experiments.Consolidation()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "failures":
		cfg := experiments.DefaultFailureSweepConfig()
		cfg.Seed = seed
		r, err := experiments.FailureSweepRun(cfg)
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "compare":
		return compareTable(jobs, seed)
	default:
		return nil, fmt.Errorf("unknown experiment %q (try one of %v)", name, allNames())
	}
}

// sweepTable grids E-Ant's (ρ, β) space on one MSD workload, reporting
// total energy per cell relative to the Fair baseline.
func sweepTable(jobs int, seed int64) (*tabwrite.Table, error) {
	msd, err := workload.GenerateMSD(workload.MSDConfig{
		Jobs: jobs, Scale: experiments.ScaleDown, MeanInterarrival: 30 * time.Second,
	}, sim.NewRNG(seed).Fork("experiments"))
	if err != nil {
		return nil, err
	}
	runWith := func(schedName experiments.SchedulerName, params core.Params) (float64, error) {
		cfg := mapreduce.DefaultConfig()
		cfg.ControlInterval = experiments.DefaultControlInterval
		cfg.Seed = seed
		cfg.Noise = noise.Default()
		stats, err := experiments.Campaign{
			Cluster: cluster.Testbed(), Sched: schedName, Params: params,
			Jobs: msd, Config: cfg,
		}.Run()
		if err != nil {
			return 0, err
		}
		return stats.TotalJoules, nil
	}
	baseline, err := runWith(experiments.SchedFair, core.DefaultParams())
	if err != nil {
		return nil, err
	}
	rhos := []float64{0.2, 0.5, 0.8}
	betas := []float64{0, 0.1, 0.2, 0.4}
	t := tabwrite.New(
		fmt.Sprintf("E-Ant (ρ, β) sweep — %d MSD jobs, seed %d; cells: saving vs Fair %%", jobs, seed),
		"rho \\ beta", "0", "0.1", "0.2", "0.4")
	for _, rho := range rhos {
		row := []any{fmt.Sprintf("%.1f", rho)}
		for _, beta := range betas {
			params := core.DefaultParams()
			params.Rho = rho
			params.Beta = beta
			j, err := runWith(experiments.SchedEAnt, params)
			if err != nil {
				return nil, err
			}
			row = append(row, tabwrite.Cell(100*(baseline-j)/baseline, 1))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// emitTrace runs one MSD campaign and streams it in the chosen format.
func emitTrace(w io.Writer, jobs int, seed int64, schedName, format string) error {
	msd, err := workload.GenerateMSD(workload.MSDConfig{
		Jobs: jobs, Scale: experiments.ScaleDown, MeanInterarrival: 45 * time.Second,
	}, sim.NewRNG(seed).Fork("experiments"))
	if err != nil {
		return err
	}
	cfg := mapreduce.DefaultConfig()
	cfg.ControlInterval = experiments.DefaultControlInterval
	cfg.Seed = seed
	cfg.Noise = noise.Default()
	cfg.KeepTaskRecords = format != "summary"
	stats, err := experiments.Campaign{
		Cluster: cluster.Testbed(),
		Sched:   experiments.SchedulerName(schedName),
		Params:  core.DefaultParams(),
		Jobs:    msd,
		Config:  cfg,
	}.Run()
	if err != nil {
		return err
	}
	switch format {
	case "jsonl":
		return trace.WriteJSONL(w, stats)
	case "csv":
		return trace.WriteTasksCSV(w, stats)
	case "summary":
		return trace.WriteSummary(w, stats)
	default:
		return fmt.Errorf("unknown trace format %q (jsonl|csv|summary)", format)
	}
}

// compareTable runs a quick ad-hoc MSD comparison across all schedulers.
func compareTable(jobs int, seed int64) ([]*tabwrite.Table, error) {
	cfg := experiments.Fig8Config{
		Jobs:             jobs,
		Seeds:            1,
		MeanInterarrival: 45 * time.Second,
	}
	r, err := experiments.Fig8(cfg)
	if err != nil {
		return nil, err
	}
	t := tabwrite.New(
		fmt.Sprintf("Scheduler comparison — %d MSD jobs, seed %d", jobs, seed),
		"scheduler", "total KJ", "makespan", "saving vs Fair %")
	fair := r.Result(experiments.SchedFair)
	var rows []struct {
		name   string
		joules float64
		span   time.Duration
	}
	for _, sr := range r.Results {
		rows = append(rows, struct {
			name   string
			joules float64
			span   time.Duration
		}{string(sr.Sched), sr.TotalJoules, sr.Makespan})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].joules < rows[j].joules })
	for _, row := range rows {
		saving := "-"
		if fair != nil && fair.TotalJoules > 0 && row.name != string(experiments.SchedFair) {
			saving = tabwrite.Cell(100*(fair.TotalJoules-row.joules)/fair.TotalJoules, 1)
		}
		t.AddRow(row.name, tabwrite.Cell(row.joules/1000, 0), row.span.Round(time.Second).String(), saving)
	}
	return []*tabwrite.Table{t}, nil
}
