// Command eantsim runs the reproduction experiments of "Towards Energy
// Efficiency in Heterogeneous Hadoop Clusters by Adaptive Task
// Assignment" (ICDCS 2015) and prints the tables and figure series the
// paper reports.
//
// Usage:
//
//	eantsim <experiment> [flags]
//
// Experiments: table1 table2 table3 fig1a fig1b fig1c fig1d fig4 fig6
// fig7 fig8 fig9 fig10 fig11a fig11b fig12a fig12b compare all
//
// Flags:
//
//	-csv        emit CSV instead of aligned tables
//	-jobs N     job count for the 'compare' experiment (default 40)
//	-seed S     seed for the 'compare' experiment (default 1)
//	-parallel N worker cap for experiment sweeps (default GOMAXPROCS;
//	            1 forces fully sequential execution — results are
//	            identical either way)
//	-cpuprofile F  write a pprof CPU profile of the experiment to F
//	-memprofile F  write a pprof heap profile (after the run) to F
//	-probe-interval N  enable in-engine probes, sampling machines every N
//	            heartbeats; output stays byte-identical (golden-enforced)
//	-probe-trails      record pheromone snapshots at every control tick
//	-trace F    stream probe events as JSONL to F ('trace' experiment)
//	-timeline F write a Chrome trace-event / Perfetto timeline to F
//	            ('trace' experiment)
//	-probe-report F  write the probe histogram report as JSON to F
//	            ('trace' experiment)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/experiments"
	"eant/internal/mapreduce"
	"eant/internal/noise"
	"eant/internal/parallel"
	"eant/internal/probe"
	"eant/internal/sim"
	"eant/internal/tabwrite"
	"eant/internal/trace"
	"eant/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eantsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jobs := fs.Int("jobs", 40, "job count for 'compare' and 'trace'")
	seed := fs.Int64("seed", 1, "seed for 'compare' and 'trace'")
	schedName := fs.String("sched", "E-Ant", "scheduler for 'trace' (FIFO|Fair|Tarazu|LATE|E-Ant)")
	format := fs.String("format", "jsonl", "output for 'trace': jsonl, csv or summary")
	workers := fs.Int("parallel", 0, "worker cap for experiment sweeps (0 = GOMAXPROCS, 1 = sequential)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the experiment to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	probeInterval := fs.Int("probe-interval", 0, "sample every machine's utilization/energy/slots every N heartbeats (0 = off); enables in-engine probes for any experiment without changing its output")
	probeTrails := fs.Bool("probe-trails", false, "record per-control-tick pheromone-matrix snapshots (enables probes)")
	traceFile := fs.String("trace", "", "stream probe events as JSONL to this file ('trace' experiment only)")
	timelineFile := fs.String("timeline", "", "write a Chrome trace-event / Perfetto timeline to this file ('trace' experiment only)")
	reportFile := fs.String("probe-report", "", "write the probe's histogram report as JSON to this file ('trace' experiment only)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: eantsim <experiment> [flags]")
		fmt.Fprintln(stderr, "experiments:", allNames())
		fs.PrintDefaults()
	}
	if len(args) < 1 || args[0] == "-h" || args[0] == "-help" || args[0] == "--help" {
		fs.Usage()
		return 2
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	parallel.SetDefaultWorkers(*workers)

	// Probes observe without perturbing: any experiment may run with them
	// on, and its table output stays byte-identical (golden-enforced).
	// Always reset afterwards — the test harness calls run() repeatedly in
	// one process.
	if *probeInterval > 0 || *probeTrails {
		experiments.SetCampaignProbe(&probe.Config{SampleEvery: *probeInterval, Trails: *probeTrails})
		defer experiments.SetCampaignProbe(nil)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "eantsim: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "eantsim: -cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		// Snapshot the heap on the way out, after the experiment ran.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "eantsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "eantsim: -memprofile: %v\n", err)
			}
		}()
	}

	emit := func(t *tabwrite.Table) error {
		if *csv {
			return t.WriteCSV(stdout)
		}
		return t.Write(stdout)
	}

	if name == "sweep" {
		t, err := sweepTable(*jobs, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "eantsim: sweep: %v\n", err)
			return 1
		}
		if err := emit(t); err != nil {
			fmt.Fprintf(stderr, "eantsim: sweep: %v\n", err)
			return 1
		}
		return 0
	}
	if name == "trace" {
		sinks := probeSinks{
			Interval: *probeInterval,
			Trails:   *probeTrails,
			Stream:   *traceFile,
			Timeline: *timelineFile,
			Report:   *reportFile,
		}
		if err := emitTrace(stdout, *jobs, *seed, *schedName, *format, sinks); err != nil {
			fmt.Fprintf(stderr, "eantsim: trace: %v\n", err)
			return 1
		}
		return 0
	}
	if *traceFile != "" || *timelineFile != "" || *reportFile != "" {
		fmt.Fprintf(stderr, "eantsim: -trace/-timeline/-probe-report only apply to the 'trace' experiment (it runs a single campaign; sweeps would interleave streams)\n")
		return 2
	}

	runOne := func(name string) error {
		tables, err := tablesFor(name, *jobs, *seed)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}

	if name == "all" {
		for _, n := range allNames() {
			if n == "all" || n == "compare" || n == "trace" || n == "sweep" {
				continue
			}
			if err := timed(n, stderr, func() error { return runOne(n) }); err != nil {
				fmt.Fprintf(stderr, "eantsim: %s: %v\n", n, err)
				return 1
			}
		}
		return 0
	}
	if err := runOne(name); err != nil {
		fmt.Fprintf(stderr, "eantsim: %s: %v\n", name, err)
		return 1
	}
	return 0
}

func allNames() []string {
	return []string{
		"table1", "table2", "table3",
		"fig1a", "fig1b", "fig1c", "fig1d",
		"fig4", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11a", "fig11b", "fig12a", "fig12b",
		"consolidation", "failures", "compare", "trace", "sweep", "all",
	}
}

// tablesFor runs one experiment and returns its renderable tables.
func tablesFor(name string, jobs int, seed int64) ([]*tabwrite.Table, error) {
	one := func(t *tabwrite.Table, err error) ([]*tabwrite.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*tabwrite.Table{t}, nil
	}
	switch name {
	case "table1", "machines":
		return one(experiments.TableI(), nil)
	case "table2":
		return one(experiments.TableII(), nil)
	case "table3", "msd-spec":
		t, err := experiments.TableIII(87, seed)
		return one(t, err)
	case "fig1a":
		r, err := experiments.Fig1a()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig1b":
		r, err := experiments.Fig1b()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig1c":
		r, err := experiments.Fig1c()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig1d":
		r, err := experiments.Fig1d()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig4":
		r, err := experiments.Fig4()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig6":
		r, err := experiments.Fig6()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig7":
		r, err := experiments.Fig7()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig8":
		r, err := experiments.Fig8(experiments.DefaultFig8Config())
		if err != nil {
			return nil, err
		}
		return []*tabwrite.Table{r.TableA(), r.TableB(), r.TableC()}, nil
	case "fig9":
		f8, err := experiments.Fig8(experiments.DefaultFig8Config())
		if err != nil {
			return nil, err
		}
		r, err := experiments.Fig9(f8)
		if err != nil {
			return nil, err
		}
		return []*tabwrite.Table{r.TableA(), r.TableB()}, nil
	case "fig10":
		r, err := experiments.Fig10()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig11a":
		r, err := experiments.Fig11a()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig11b":
		r, err := experiments.Fig11b()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig12a":
		r, err := experiments.Fig12a()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "fig12b":
		r, err := experiments.Fig12b()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "consolidation":
		r, err := experiments.Consolidation()
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "failures":
		cfg := experiments.DefaultFailureSweepConfig()
		cfg.Seed = seed
		r, err := experiments.FailureSweepRun(cfg)
		if err != nil {
			return nil, err
		}
		return one(r.Table(), nil)
	case "compare":
		return compareTable(jobs, seed)
	default:
		return nil, fmt.Errorf("unknown experiment %q (try one of %v)", name, allNames())
	}
}

// sweepTable grids E-Ant's (ρ, β) space on one MSD workload, reporting
// total energy per cell relative to the Fair baseline.
func sweepTable(jobs int, seed int64) (*tabwrite.Table, error) {
	msd, err := workload.GenerateMSD(workload.MSDConfig{
		Jobs: jobs, Scale: experiments.ScaleDown, MeanInterarrival: 30 * time.Second,
	}, sim.NewRNG(seed).Fork("experiments"))
	if err != nil {
		return nil, err
	}
	runWith := func(schedName experiments.SchedulerName, params core.Params) (float64, error) {
		cfg := mapreduce.DefaultConfig()
		cfg.ControlInterval = experiments.DefaultControlInterval
		cfg.Seed = seed
		cfg.Noise = noise.Default()
		stats, err := experiments.Campaign{
			Cluster: cluster.Testbed(), Sched: schedName, Params: params,
			Jobs: msd, Config: cfg,
		}.Run()
		if err != nil {
			return 0, err
		}
		return stats.TotalJoules, nil
	}
	baseline, err := runWith(experiments.SchedFair, core.DefaultParams())
	if err != nil {
		return nil, err
	}
	rhos := []float64{0.2, 0.5, 0.8}
	betas := []float64{0, 0.1, 0.2, 0.4}
	t := tabwrite.New(
		fmt.Sprintf("E-Ant (ρ, β) sweep — %d MSD jobs, seed %d; cells: saving vs Fair %%", jobs, seed),
		"rho \\ beta", "0", "0.1", "0.2", "0.4")
	for _, rho := range rhos {
		row := []any{fmt.Sprintf("%.1f", rho)}
		for _, beta := range betas {
			params := core.DefaultParams()
			params.Rho = rho
			params.Beta = beta
			j, err := runWith(experiments.SchedEAnt, params)
			if err != nil {
				return nil, err
			}
			row = append(row, tabwrite.Cell(100*(baseline-j)/baseline, 1))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// probeSinks are the live-observability outputs of the 'trace' experiment:
// a JSONL event stream, a Perfetto timeline, and a histogram report.
type probeSinks struct {
	Interval int
	Trails   bool
	Stream   string
	Timeline string
	Report   string
}

func (s probeSinks) enabled() bool {
	return s.Stream != "" || s.Timeline != "" || s.Report != ""
}

// emitTrace runs one MSD campaign and streams it in the chosen format,
// optionally recording a live probe into the configured sinks.
func emitTrace(w io.Writer, jobs int, seed int64, schedName, format string, sinks probeSinks) error {
	msd, err := workload.GenerateMSD(workload.MSDConfig{
		Jobs: jobs, Scale: experiments.ScaleDown, MeanInterarrival: 45 * time.Second,
	}, sim.NewRNG(seed).Fork("experiments"))
	if err != nil {
		return err
	}
	cfg := mapreduce.DefaultConfig()
	cfg.ControlInterval = experiments.DefaultControlInterval
	cfg.Seed = seed
	cfg.Noise = noise.Default()
	cfg.KeepTaskRecords = format != "summary"

	var p *probe.Probe
	if sinks.enabled() {
		pcfg := probe.Config{SampleEvery: sinks.Interval, Trails: sinks.Trails}
		if pcfg.SampleEvery <= 0 {
			pcfg.SampleEvery = 1 // live sinks imply sampling every heartbeat
		}
		if sinks.Stream != "" {
			f, err := os.Create(sinks.Stream)
			if err != nil {
				return fmt.Errorf("-trace: %w", err)
			}
			defer f.Close()
			pcfg.Stream = f
		}
		p, err = probe.New(pcfg)
		if err != nil {
			return err
		}
		cfg.Probe = p
	}

	stats, err := experiments.Campaign{
		Cluster: cluster.Testbed(),
		Sched:   experiments.SchedulerName(schedName),
		Params:  core.DefaultParams(),
		Jobs:    msd,
		Config:  cfg,
	}.Run()
	if err != nil {
		return err
	}
	if err := p.Err(); err != nil {
		return err
	}
	if sinks.Timeline != "" {
		f, err := os.Create(sinks.Timeline)
		if err != nil {
			return fmt.Errorf("-timeline: %w", err)
		}
		if err := probe.WriteTimeline(f, p.Events()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("-timeline: %w", err)
		}
	}
	if sinks.Report != "" {
		f, err := os.Create(sinks.Report)
		if err != nil {
			return fmt.Errorf("-probe-report: %w", err)
		}
		if err := p.Report().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("-probe-report: %w", err)
		}
	}
	switch format {
	case "jsonl":
		return trace.WriteJSONL(w, stats)
	case "csv":
		return trace.WriteTasksCSV(w, stats)
	case "summary":
		return trace.WriteSummary(w, stats)
	default:
		return fmt.Errorf("unknown trace format %q (jsonl|csv|summary)", format)
	}
}

// compareTable runs a quick ad-hoc MSD comparison across all schedulers.
func compareTable(jobs int, seed int64) ([]*tabwrite.Table, error) {
	cfg := experiments.Fig8Config{
		Jobs:             jobs,
		Seeds:            1,
		MeanInterarrival: 45 * time.Second,
	}
	r, err := experiments.Fig8(cfg)
	if err != nil {
		return nil, err
	}
	t := tabwrite.New(
		fmt.Sprintf("Scheduler comparison — %d MSD jobs, seed %d", jobs, seed),
		"scheduler", "total KJ", "makespan", "saving vs Fair %")
	fair := r.Result(experiments.SchedFair)
	var rows []struct {
		name   string
		joules float64
		span   time.Duration
	}
	for _, sr := range r.Results {
		rows = append(rows, struct {
			name   string
			joules float64
			span   time.Duration
		}{string(sr.Sched), sr.TotalJoules, sr.Makespan})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].joules < rows[j].joules })
	for _, row := range rows {
		saving := "-"
		if fair != nil && fair.TotalJoules > 0 && row.name != string(experiments.SchedFair) {
			saving = tabwrite.Cell(100*(fair.TotalJoules-row.joules)/fair.TotalJoules, 1)
		}
		t.AddRow(row.name, tabwrite.Cell(row.joules/1000, 0), row.span.Round(time.Second).String(), saving)
	}
	return []*tabwrite.Table{t}, nil
}
