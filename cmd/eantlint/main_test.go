package main

import (
	"go/token"
	"strings"
	"testing"

	"eant/internal/analysis"
)

// TestRepoIsClean is the acceptance smoke test: the suite must exit 0 on
// the repository itself. Every rule violation is either fixed or carries
// a justification annotation; a regression here means new code broke a
// determinism or hot-path contract.
func TestRepoIsClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("eantlint exit %d on its own repository\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", out.String())
	}
}

func TestAnalyzersFlagListsSuite(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-analyzers"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, name := range []string{"rngonly", "noclock", "maporder", "floatsum", "statsmut", "hotclosure", "resetstate"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-analyzers output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-format", "sarif"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUnknownPackageRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"internal/nonexistent"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestFormatDiagGithubAnnotations(t *testing.T) {
	d := analysis.Diagnostic{
		Pos:      token.Position{Filename: "/repo/internal/core/eant.go", Line: 42, Column: 7},
		Message:  "wall-clock call time.Now in simulation package",
		Analyzer: "noclock",
	}
	got := formatDiag("github", "/repo", d)
	want := "::error file=internal/core/eant.go,line=42,col=7,title=eantlint/noclock::wall-clock call time.Now in simulation package"
	if got != want {
		t.Fatalf("github format:\n got %q\nwant %q", got, want)
	}
	if text := formatDiag("text", "/repo", d); !strings.Contains(text, "eant.go:42:7") || !strings.Contains(text, "(noclock)") {
		t.Fatalf("text format %q missing position or analyzer", text)
	}
}
