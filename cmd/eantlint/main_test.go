package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eant/internal/analysis"
)

// repoBaseline locates the committed lint.baseline at the module root —
// tests run from cmd/eantlint, so the path must be anchored, not cwd-relative.
func repoBaseline(t *testing.T) string {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(root, "lint.baseline")
}

// TestRepoIsClean is the acceptance smoke test: the suite must exit 0 on
// the repository itself, modulo the committed baseline. Every rule
// violation is either fixed, carries a justification annotation, or is
// recorded as known debt in lint.baseline; a regression here means new
// code broke a determinism or hot-path contract.
func TestRepoIsClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", repoBaseline(t)}, &out, &errOut); code != 0 {
		t.Fatalf("eantlint exit %d on its own repository\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", out.String())
	}
	if strings.Contains(errOut.String(), "stale baseline entry") {
		t.Fatalf("committed baseline has stale entries:\n%s", errOut.String())
	}
}

func TestAnalyzersFlagListsSuite(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-analyzers"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, name := range []string{"rngonly", "noclock", "maporder", "floatsum", "statsmut", "hotclosure", "hotalloc", "resetstate"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-analyzers output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-format", "sarif"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUnknownPackageRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"internal/nonexistent"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestJSONFormatEmpty: a clean (baselined) run in JSON mode must emit an
// empty array, not null — consumers index into the result unconditionally.
func TestJSONFormatEmpty(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-format", "json", "-baseline", repoBaseline(t)}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if diags == nil || len(diags) != 0 {
		t.Fatalf("want empty array, got %q", out.String())
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	err := writeJSON(&sb, "/repo", []analysis.Diagnostic{{
		Pos:      token.Position{Filename: "/repo/internal/core/eant.go", Line: 42, Column: 7},
		Message:  "wall-clock call time.Now in simulation package",
		Analyzer: "noclock",
	}})
	if err != nil {
		t.Fatal(err)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(sb.String()), &diags); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	want := jsonDiag{File: "internal/core/eant.go", Line: 42, Col: 7, Analyzer: "noclock", Message: "wall-clock call time.Now in simulation package"}
	if len(diags) != 1 || diags[0] != want {
		t.Fatalf("got %+v, want %+v", diags, want)
	}
}

// TestBaselineRoundTrip exercises save → load → filter: baselined findings
// are consumed, new findings survive, and unconsumed entries surface as
// stale.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "lint.baseline")
	known := analysis.Diagnostic{
		Pos:      token.Position{Filename: filepath.Join(root, "a.go"), Line: 3, Column: 1},
		Message:  "make allocates in hot function",
		Analyzer: "hotalloc",
	}
	if err := saveBaseline(path, root, []analysis.Diagnostic{known, known}); err != nil {
		t.Fatal(err)
	}
	b, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// The same finding on a different line still matches: line numbers are
	// not part of the key.
	moved := known
	moved.Pos.Line = 99
	fresh := analysis.Diagnostic{
		Pos:      token.Position{Filename: filepath.Join(root, "b.go"), Line: 1, Column: 1},
		Message:  "string concatenation allocates",
		Analyzer: "hotalloc",
	}
	got, stale := b.filter(root, []analysis.Diagnostic{moved, fresh})
	if len(got) != 1 || got[0] != fresh {
		t.Fatalf("fresh findings = %+v, want just the unbaselined one", got)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "a.go") {
		t.Fatalf("stale = %q, want the one unconsumed entry", stale)
	}
}

func TestBaselineMalformedRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.baseline")
	if err := os.WriteFile(path, []byte("# comment ok\nno tabs here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v, want malformed-entry error", err)
	}
}

// fakeClock steps a fixed interval per Since call, so -timing output is
// deterministic under test.
type fakeClock struct{ step time.Duration }

func (fakeClock) Now() time.Time                  { return time.Unix(0, 0) }
func (f fakeClock) Since(time.Time) time.Duration { return f.step }

// TestTimingUsesInjectedClock swaps the wall clock for a fake and checks
// the per-analyzer timing lines report the injected duration — proving the
// binary's only wall-clock read goes through the seam.
func TestTimingUsesInjectedClock(t *testing.T) {
	old := wall
	wall = fakeClock{step: 1500 * time.Millisecond}
	defer func() { wall = old }()

	var out, errOut strings.Builder
	if code := run([]string{"-timing", "-baseline", repoBaseline(t)}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	lines := 0
	for _, line := range strings.Split(errOut.String(), "\n") {
		if strings.Contains(line, "1.5s") {
			lines++
		}
	}
	if want := len(analysis.All()); lines != want {
		t.Fatalf("%d timing lines report the fake duration, want %d\nstderr:\n%s", lines, want, errOut.String())
	}
}

func TestFormatDiagGithubAnnotations(t *testing.T) {
	d := analysis.Diagnostic{
		Pos:      token.Position{Filename: "/repo/internal/core/eant.go", Line: 42, Column: 7},
		Message:  "wall-clock call time.Now in simulation package",
		Analyzer: "noclock",
	}
	got := formatDiag("github", "/repo", d)
	want := "::error file=internal/core/eant.go,line=42,col=7,title=eantlint/noclock::wall-clock call time.Now in simulation package"
	if got != want {
		t.Fatalf("github format:\n got %q\nwant %q", got, want)
	}
	if text := formatDiag("text", "/repo", d); !strings.Contains(text, "eant.go:42:7") || !strings.Contains(text, "(noclock)") {
		t.Fatalf("text format %q missing position or analyzer", text)
	}
}
