package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"

	"eant/internal/analysis"
)

// A baseline is the committed ledger of known findings. Each entry is
// one tab-separated line — "file<TAB>analyzer<TAB>message" — and a
// finding firing N times on one file appears N times. Line numbers are
// deliberately left out of the key: a baseline should survive unrelated
// edits to the file, and the analyzer messages (which embed names and
// witness chains, not positions) are specific enough to match findings
// one-to-one in practice.
//
// Matching is multiset subtraction: each current finding consumes one
// baseline entry with the same key. Findings left over are new and fail
// the run; baseline entries left over are stale and only warn, so
// fixing debt never breaks CI — the next -write-baseline tidies up.
type baseline struct {
	counts map[string]int
}

func baselineKey(root string, d analysis.Diagnostic) string {
	return relPath(root, d.Pos.Filename) + "\t" + d.Analyzer + "\t" + d.Message
}

func loadBaseline(path string) (*baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	defer f.Close()
	b := &baseline{counts: map[string]int{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("%s:%d: malformed baseline entry (want file<TAB>analyzer<TAB>message)", path, lineNo)
		}
		b.counts[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	return b, nil
}

// filter removes baselined findings from diags, returning the surviving
// (new) findings and a sorted description of stale baseline entries.
func (b *baseline) filter(root string, diags []analysis.Diagnostic) ([]analysis.Diagnostic, []string) {
	remaining := make(map[string]int, len(b.counts))
	for k, c := range b.counts {
		remaining[k] = c
	}
	var fresh []analysis.Diagnostic
	for _, d := range diags {
		k := baselineKey(root, d)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	var stale []string
	for k, c := range remaining {
		for i := 0; i < c; i++ {
			stale = append(stale, strings.ReplaceAll(k, "\t", " | "))
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// saveBaseline writes the findings as a sorted baseline file.
func saveBaseline(path, root string, diags []analysis.Diagnostic) error {
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		keys = append(keys, baselineKey(root, d))
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("# eantlint baseline: known findings, one tab-separated file/analyzer/message per line.\n")
	sb.WriteString("# Regenerate with: go run ./cmd/eantlint -baseline <this file> -write-baseline\n")
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
