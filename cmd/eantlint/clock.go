package main

import "time"

// clock abstracts the wall clock behind the -timing printout — the same
// injection pattern cmd/eantsim uses for sweep timing — so the binary's
// only real-time consumer is this one seam and tests can substitute a
// fake. The analyzers themselves never read time; eantlint's own noclock
// rule keeps it that way.
type clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
}

// sysClock is the real wall clock.
type sysClock struct{}

func (sysClock) Now() time.Time                  { return time.Now() }
func (sysClock) Since(t time.Time) time.Duration { return time.Since(t) }

// wall is the injected clock; tests swap it for a fake.
var wall clock = sysClock{}
