// Command eantlint is the project's multichecker: it runs the
// internal/analysis suite — rngonly, noclock, maporder, floatsum,
// statsmut, hotclosure, resetstate — over every package of this module
// and reports violations of the simulator's determinism and hot-path
// contracts.
//
// Usage:
//
//	eantlint [-format text|github] [packages...]
//
// With no arguments (or "./..."), every package in the module is checked.
// Arguments may also be directories relative to the module root
// (e.g. internal/core). Exit status is 1 if any diagnostic was reported,
// 2 on a loading or usage error.
//
// -format=github emits GitHub Actions workflow annotations
// (::error file=...,line=...) so CI failures render as clickable
// file:line markers on the pull request.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"eant/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eantlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "diagnostic format: text or github (GitHub Actions annotations)")
	list := fs.Bool("analyzers", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: eantlint [-format text|github] [packages...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "github" {
		fmt.Fprintf(stderr, "eantlint: unknown format %q\n", *format)
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "eantlint: %v\n", err)
		return 2
	}
	dirs, err := selectDirs(root, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "eantlint: %v\n", err)
		return 2
	}

	loader := analysis.NewLoader()
	found := 0
	for _, dp := range dirs {
		pkg, err := loader.LoadDir(dp[0], dp[1])
		if err != nil {
			fmt.Fprintf(stderr, "eantlint: %v\n", err)
			return 2
		}
		diags, err := analysis.Run(pkg, analysis.All())
		if err != nil {
			fmt.Fprintf(stderr, "eantlint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			found++
			fmt.Fprintln(stdout, formatDiag(*format, root, d))
		}
	}
	if found > 0 {
		fmt.Fprintf(stderr, "eantlint: %d violation(s)\n", found)
		return 1
	}
	return 0
}

// formatDiag renders one diagnostic. "github" produces a GitHub Actions
// workflow annotation — the repo-relative file path and line make the
// violation a clickable marker on the pull request. Messages are
// single-line by construction, so no %0A escaping is needed.
func formatDiag(format, root string, d analysis.Diagnostic) string {
	if format == "github" {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil {
			rel = filepath.ToSlash(r)
		}
		return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=eantlint/%s::%s",
			rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return d.String()
}

// moduleRoot locates the enclosing module by walking up to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// selectDirs resolves the package arguments to (dir, importPath) pairs.
// "./..." or no arguments selects the whole module.
func selectDirs(root string, args []string) ([][2]string, error) {
	all, err := analysis.PackageDirs(root)
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return all, nil
	}
	var out [][2]string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return all, nil
		}
		clean := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(arg, "./")))
		matched := false
		for _, dp := range all {
			rel, err := filepath.Rel(root, dp[0])
			if err != nil {
				continue
			}
			if filepath.ToSlash(rel) == clean || dp[1] == arg {
				out = append(out, dp)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("no package matches %q", arg)
		}
	}
	return out, nil
}
