// Command eantlint is the project's multichecker: it runs the
// internal/analysis suite — rngonly, noclock, maporder, floatsum,
// statsmut, hotclosure, hotalloc, resetstate — over the module and
// reports violations of the simulator's determinism and hot-path
// contracts.
//
// Usage:
//
//	eantlint [-format text|github|json] [-baseline file] [-write-baseline]
//	         [-timing] [packages...]
//
// The whole module is always loaded and analyzed as one unit — the suite
// is interprocedural since PR 9, so facts (taint, hotness) must be
// computed over every package before any one of them can be judged.
// Package arguments only filter which packages' diagnostics are
// *reported*: "eantlint internal/analysis" prints findings in that
// package alone, computed with full whole-program context.
//
// -baseline file suppresses the known findings recorded in file (exact
// file+analyzer+message matches; line numbers are deliberately not part
// of the key so unrelated edits don't invalidate it). New findings still
// fail; entries in the baseline that no longer fire are reported as
// stale on stderr without failing. -write-baseline rewrites the file
// from the current findings.
//
// -format=github emits GitHub Actions workflow annotations
// (::error file=...,line=...); -format=json emits a JSON array of
// {file,line,col,analyzer,message} objects.
//
// -timing prints per-analyzer wall time on stderr, measured through the
// injected clock below — the binary's only wall-clock consumer.
//
// Exit status is 1 if any non-baselined diagnostic was reported, 2 on a
// loading or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"eant/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eantlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "diagnostic format: text, github (GitHub Actions annotations) or json")
	list := fs.Bool("analyzers", false, "list the analyzers and exit")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this baseline file")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file (default lint.baseline) from current findings")
	timing := fs.Bool("timing", false, "print per-analyzer wall time on stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: eantlint [-format text|github|json] [-baseline file] [-write-baseline] [-timing] [packages...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "text", "github", "json":
	default:
		fmt.Fprintf(stderr, "eantlint: unknown format %q\n", *format)
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "eantlint: %v\n", err)
		return 2
	}
	dirs, err := selectDirs(root, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "eantlint: %v\n", err)
		return 2
	}
	all, err := analysis.PackageDirs(root)
	if err != nil {
		fmt.Fprintf(stderr, "eantlint: %v\n", err)
		return 2
	}
	fullModule := len(dirs) == len(all)

	// The whole module is loaded regardless of the package filter: hot
	// roots live in sim/mapreduce/core and taints cross package
	// boundaries, so per-function facts are only correct with every
	// package in the graph.
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadAll(root)
	if err != nil {
		fmt.Fprintf(stderr, "eantlint: %v\n", err)
		return 2
	}
	mod := analysis.NewModule(pkgs)

	var diags []analysis.Diagnostic
	for _, a := range analysis.All() {
		start := wall.Now()
		ds, err := analysis.RunModule(mod, []*analysis.Analyzer{a})
		if err != nil {
			fmt.Fprintf(stderr, "eantlint: %v\n", err)
			return 2
		}
		diags = append(diags, ds...)
		if *timing {
			fmt.Fprintf(stderr, "eantlint: %-10s %8v  %d finding(s)\n",
				a.Name, wall.Since(start).Round(time.Millisecond), len(ds))
		}
	}
	diags = filterDirs(diags, dirs)
	sortDiags(diags)

	if *writeBaseline {
		path := *baselinePath
		if path == "" {
			path = "lint.baseline"
		}
		if err := saveBaseline(path, root, diags); err != nil {
			fmt.Fprintf(stderr, "eantlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "eantlint: wrote %d finding(s) to %s\n", len(diags), path)
		return 0
	}

	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "eantlint: %v\n", err)
			return 2
		}
		var stale []string
		diags, stale = base.filter(root, diags)
		// Staleness is only meaningful on a whole-module run: a
		// package-filtered invocation drops out-of-scope findings before
		// baseline matching, so their entries would be falsely reported.
		if fullModule {
			for _, s := range stale {
				fmt.Fprintf(stderr, "eantlint: stale baseline entry (no longer fires): %s\n", s)
			}
		}
	}

	if *format == "json" {
		if err := writeJSON(stdout, root, diags); err != nil {
			fmt.Fprintf(stderr, "eantlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, formatDiag(*format, root, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "eantlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// filterDirs keeps diagnostics whose file lives directly in one of the
// selected package directories.
func filterDirs(diags []analysis.Diagnostic, dirs [][2]string) []analysis.Diagnostic {
	selected := make(map[string]bool, len(dirs))
	for _, dp := range dirs {
		selected[dp[0]] = true
	}
	out := diags[:0]
	for _, d := range diags {
		if selected[filepath.Dir(d.Pos.Filename)] {
			out = append(out, d)
		}
	}
	return out
}

// sortDiags orders findings by (file, line, column, analyzer) — the same
// canonical order analysis.RunModule uses, re-applied here because the
// per-analyzer timing loop concatenates separately-sorted batches.
func sortDiags(diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// jsonDiag is the -format json shape for one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, root string, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relPath renders path repo-relative with forward slashes; absolute
// fallback if it is outside root.
func relPath(root, path string) string {
	if r, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(path)
}

// formatDiag renders one diagnostic. "github" produces a GitHub Actions
// workflow annotation — the repo-relative file path and line make the
// violation a clickable marker on the pull request. Messages are
// single-line by construction, so no %0A escaping is needed.
func formatDiag(format, root string, d analysis.Diagnostic) string {
	if format == "github" {
		return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=eantlint/%s::%s",
			relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return d.String()
}

// moduleRoot locates the enclosing module by walking up to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// selectDirs resolves the package arguments to (dir, importPath) pairs.
// "./..." or no arguments selects the whole module.
func selectDirs(root string, args []string) ([][2]string, error) {
	all, err := analysis.PackageDirs(root)
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return all, nil
	}
	var out [][2]string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return all, nil
		}
		clean := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(arg, "./")))
		matched := false
		for _, dp := range all {
			rel, err := filepath.Rel(root, dp[0])
			if err != nil {
				continue
			}
			if filepath.ToSlash(rel) == clean || dp[1] == arg {
				out = append(out, dp)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("no package matches %q", arg)
		}
	}
	return out, nil
}
