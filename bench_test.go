package eant

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, regenerating the corresponding rows/series, plus ablation
// benches for the design choices DESIGN.md calls out. Custom metrics
// attach the headline quantity of each experiment (energy, savings,
// error, convergence time) to the benchmark output, so
// `go test -bench=. -benchmem` doubles as the reproduction record.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/experiments"
	"eant/internal/workload"
)

// The Fig. 8a/b/c and Fig. 9a/b benchmarks are five views of one and the
// same campaign (Fig. 9 is derived from the Fig. 8 task log), so the
// campaign is simulated once per process and shared; each benchmark then
// measures its own view extraction. The simulation itself is measured by
// BenchmarkFig8Campaign.
var (
	fig8Once   sync.Once
	fig8Shared *experiments.Fig8Result
	fig8Err    error
)

func sharedFig8(b *testing.B) *experiments.Fig8Result {
	b.Helper()
	fig8Once.Do(func() {
		fig8Shared, fig8Err = experiments.Fig8(experiments.DefaultFig8Config())
	})
	if fig8Err != nil {
		b.Fatal(fig8Err)
	}
	return fig8Shared
}

// BenchmarkFig8Campaign measures the full Fig. 8 sweep (4 schedulers × 5
// seeds), the cost the view benchmarks above it no longer repeat.
func BenchmarkFig8Campaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(experiments.DefaultFig8Config())
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Results) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if experiments.TableI() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if experiments.TableII() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIII(87, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1a(b *testing.B) {
	b.ReportAllocs()
	var crossover float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1a()
		if err != nil {
			b.Fatal(err)
		}
		crossover = r.Crossover
	}
	b.ReportMetric(crossover, "crossover_task/min")
}

func BenchmarkFig1b(b *testing.B) {
	b.ReportAllocs()
	var xeonIdleShare float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1b()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Machine == "XeonE5" && row.Load == "light" {
				xeonIdleShare = row.IdleWatts / (row.IdleWatts + row.WorkloadWatts)
			}
		}
	}
	b.ReportMetric(xeonIdleShare, "xeon_light_idle_frac")
}

func BenchmarkFig1c(b *testing.B) {
	b.ReportAllocs()
	var wcPeak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1c()
		if err != nil {
			b.Fatal(err)
		}
		wcPeak = r.PeakRate[workload.Wordcount]
	}
	b.ReportMetric(wcPeak, "wordcount_peak_task/min")
}

func BenchmarkFig1d(b *testing.B) {
	b.ReportAllocs()
	var wcMapFrac float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1d()
		if err != nil {
			b.Fatal(err)
		}
		wcMapFrac = r.Rows[0].Map
	}
	b.ReportMetric(wcMapFrac, "wordcount_map_frac")
}

func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		worst = r.MaxNRMSE()
	}
	b.ReportMetric(100*worst, "max_nrmse_%")
}

func BenchmarkFig6(b *testing.B) {
	b.ReportAllocs()
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		first := r.Rows[0].JCT
		last := r.Rows[len(r.Rows)-1].JCT
		speedup = float64(first) / float64(last)
	}
	b.ReportMetric(speedup, "jct_10%_vs_80%_local")
}

func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	var spike float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		spike = r.SpikeRatio()
	}
	b.ReportMetric(spike, "noise_spike_ratio")
}

func BenchmarkFig8a(b *testing.B) {
	b.ReportAllocs()
	r := sharedFig8(b)
	b.ResetTimer()
	var vsFair, vsTarazu float64
	for i := 0; i < b.N; i++ {
		vsFair = r.SavingVs(experiments.SchedFair)
		vsTarazu = r.SavingVs(experiments.SchedTarazu)
	}
	b.ReportMetric(vsFair, "saving_vs_fair_%")
	b.ReportMetric(vsTarazu, "saving_vs_tarazu_%")
}

func BenchmarkFig8b(b *testing.B) {
	b.ReportAllocs()
	r := sharedFig8(b)
	b.ResetTimer()
	var t420Shift float64
	for i := 0; i < b.N; i++ {
		fair := r.Result(experiments.SchedFair)
		eantRes := r.Result(experiments.SchedEAnt)
		t420Shift = 100 * (eantRes.TypeUtil["T420"] - fair.TypeUtil["T420"])
	}
	b.ReportMetric(t420Shift, "t420_util_shift_pp")
}

func BenchmarkFig8c(b *testing.B) {
	b.ReportAllocs()
	r := sharedFig8(b)
	b.ResetTimer()
	var worstRatio float64
	for i := 0; i < b.N; i++ {
		fair := r.Result(experiments.SchedFair)
		eantRes := r.Result(experiments.SchedEAnt)
		worstRatio = 0
		for label, base := range fair.ClassJCT {
			if base <= 0 {
				continue
			}
			ratio := float64(eantRes.ClassJCT[label]) / float64(base)
			if ratio > worstRatio {
				worstRatio = ratio
			}
		}
	}
	b.ReportMetric(worstRatio, "worst_jct_vs_fair")
}

func BenchmarkFig9a(b *testing.B) {
	b.ReportAllocs()
	f8 := sharedFig8(b)
	b.ResetTimer()
	var wcShareT420 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(f8)
		if err != nil {
			b.Fatal(err)
		}
		wcShareT420 = r.WordcountShare("T420")
	}
	b.ReportMetric(wcShareT420, "t420_wordcount_share")
}

func BenchmarkFig9b(b *testing.B) {
	b.ReportAllocs()
	f8 := sharedFig8(b)
	b.ResetTimer()
	var mapFracT420 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(f8)
		if err != nil {
			b.Fatal(err)
		}
		byKind := r.ByKind["T420"]
		total := 0
		for _, n := range byKind {
			total += n
		}
		if total > 0 {
			mapFracT420 = float64(byKind[1]) / float64(total)
		}
	}
	b.ReportMetric(mapFracT420, "t420_map_fraction")
}

func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	var bothGain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		bothGain = r.FinalSaving[experiments.ExchangeBoth] - r.FinalSaving[experiments.ExchangeNone]
	}
	b.ReportMetric(bothGain, "both_vs_none_KJ")
}

func BenchmarkFig11a(b *testing.B) {
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11a()
		if err != nil {
			b.Fatal(err)
		}
		row := r.Rows[len(r.Rows)-1]
		if row.Converged > 0 {
			last = row.Convergence.Seconds()
		}
	}
	b.ReportMetric(last, "convergence_8_machines_s")
}

func BenchmarkFig11b(b *testing.B) {
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11b()
		if err != nil {
			b.Fatal(err)
		}
		row := r.Rows[len(r.Rows)-1]
		if row.Converged > 0 {
			last = row.Convergence.Seconds()
		}
	}
	b.ReportMetric(last, "convergence_40_jobs_s")
}

func BenchmarkFig12a(b *testing.B) {
	b.ReportAllocs()
	var bestBeta float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12a()
		if err != nil {
			b.Fatal(err)
		}
		best := r.Rows[0]
		for _, row := range r.Rows {
			if row.SavingKJ > best.SavingKJ {
				best = row
			}
		}
		bestBeta = best.Beta
	}
	b.ReportMetric(bestBeta, "best_beta")
}

func BenchmarkFig12b(b *testing.B) {
	b.ReportAllocs()
	var peak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12b()
		if err != nil {
			b.Fatal(err)
		}
		peak = r.PeakInterval().Seconds()
	}
	b.ReportMetric(peak, "peak_interval_s")
}

// --- Ablation benches (DESIGN.md §6) ---

// ablationRun measures E-Ant total energy on a fixed workload under a
// parameter mutation, reporting KJ (lower is better).
func ablationRun(b *testing.B, mutate func(*core.Params)) {
	b.Helper()
	var joules float64
	for i := 0; i < b.N; i++ {
		params := core.DefaultParams()
		mutate(&params)
		noiseCfg := DefaultNoise()
		r, err := Run(RunSpec{
			Cluster:    PaperTestbed(),
			Scheduler:  SchedulerEAnt,
			EAntParams: &params,
			Jobs:       MSDWorkload(40, 11),
			Seed:       11,
			Noise:      &noiseCfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		joules = r.TotalJoules
	}
	b.ReportMetric(joules/1000, "KJ")
}

func BenchmarkAblationDefault(b *testing.B) {
	b.ReportAllocs()
	ablationRun(b, func(*core.Params) {})
}

func BenchmarkAblationNoNegativeFeedback(b *testing.B) {
	b.ReportAllocs()
	ablationRun(b, func(p *core.Params) { p.NegativeFeedback = false })
}

func BenchmarkAblationGreedySelection(b *testing.B) {
	b.ReportAllocs()
	ablationRun(b, func(p *core.Params) { p.Greedy = true })
}

func BenchmarkAblationPaperSumDeposits(b *testing.B) {
	b.ReportAllocs()
	ablationRun(b, func(p *core.Params) { p.SumDeposits = true; p.Gamma = 1 })
}

func BenchmarkAblationWorkConserving(b *testing.B) {
	b.ReportAllocs()
	ablationRun(b, func(p *core.Params) { p.AcceptFloor = 1 })
}

func BenchmarkAblationRho02(b *testing.B) {
	b.ReportAllocs()
	ablationRun(b, func(p *core.Params) { p.Rho = 0.2 })
}

func BenchmarkAblationRho08(b *testing.B) {
	b.ReportAllocs()
	ablationRun(b, func(p *core.Params) { p.Rho = 0.8 })
}

func BenchmarkAblationNoExchange(b *testing.B) {
	b.ReportAllocs()
	ablationRun(b, func(p *core.Params) {
		p.MachineExchange = false
		p.JobExchange = false
	})
}

// BenchmarkConsolidation measures the §VIII future-work extension:
// covering-subset power management paired with each scheduler.
func BenchmarkConsolidation(b *testing.B) {
	b.ReportAllocs()
	var fairGain, eantGain, advantage float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Consolidation()
		if err != nil {
			b.Fatal(err)
		}
		fairGain = r.ConsolidationGain(experiments.SchedFair)
		eantGain = r.ConsolidationGain(experiments.SchedEAnt)
		advantage = r.EAntAdvantage()
	}
	b.ReportMetric(fairGain, "fair_gain_%")
	b.ReportMetric(eantGain, "eant_gain_%")
	b.ReportMetric(advantage, "eant_vs_fair_consolidated_%")
}

// BenchmarkLATE measures speculative execution's tail cut under heavy
// stragglers relative to Fair.
func BenchmarkLATE(b *testing.B) {
	b.ReportAllocs()
	heavy := NoiseConfig{DurationCV: 0.1, StragglerProb: 0.25, StragglerMin: 4, StragglerMax: 6}
	var speedup float64
	for i := 0; i < b.N; i++ {
		// Tail-dominated batches: every job's last wave rides on whether
		// a straggler gets speculated.
		var jobs []Job
		for id := 0; id < 6; id++ {
			jobs = append(jobs, NewJob(id, Wordcount, 3200, 4, time.Duration(id)*10*time.Second))
		}
		run := func(s Scheduler) float64 {
			r, err := Run(RunSpec{
				Cluster: PaperTestbed(), Scheduler: s, Jobs: jobs, Seed: 5, Noise: &heavy,
			})
			if err != nil {
				b.Fatal(err)
			}
			return r.Makespan.Seconds()
		}
		speedup = run(SchedulerFair) / run(SchedulerLATE)
	}
	b.ReportMetric(speedup, "fair/late_makespan")
}

// --- Cluster-scale benches (DESIGN.md §7) ---

// scaledTestbed returns the paper's §V-B fleet proportions multiplied by
// factor: 16·factor machines keeping the 8:3:2:1:1:1 hardware mix.
func scaledTestbed(tb testing.TB, factor int) *Cluster {
	tb.Helper()
	c, err := NewCluster(
		ClusterGroup{Spec: cluster.SpecDesktop, Count: 8 * factor},
		ClusterGroup{Spec: cluster.SpecT110, Count: 3 * factor},
		ClusterGroup{Spec: cluster.SpecT420, Count: 2 * factor},
		ClusterGroup{Spec: cluster.SpecT320, Count: factor},
		ClusterGroup{Spec: cluster.SpecT620, Count: factor},
		ClusterGroup{Spec: cluster.SpecAtom, Count: factor},
	)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// scaleRun runs one cell of the scale grid and reports ns/offer: wall
// time divided by scheduler slot offers (AssignMap+AssignReduce calls),
// the per-heartbeat hot path. Flat ns/offer across cluster sizes is the
// O(1)-assignment claim the incremental aggregates and per-interval
// indices exist to deliver.
//
// Each cell measures the warm-run steady state: the world (cluster,
// driver, scheduler) is built and primed once before the timer, and every
// measured iteration resets it in place via Runner — so allocs/op is the
// true per-run residual of a sweep, not the one-time construction cost.
// The priming run is what a cold iteration used to be; BenchmarkRunManyWarm
// keeps the cold-vs-warm comparison measurable side by side.
func scaleRun(b *testing.B, sched Scheduler, factor, jobs int) {
	b.ReportAllocs()
	spec := RunSpec{
		Cluster:   scaledTestbed(b, factor),
		Scheduler: sched,
		Jobs:      MSDWorkload(jobs, 7),
		Seed:      7,
	}
	runner, err := NewRunner(spec.Cluster)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := runner.Run(spec); err != nil { // prime: build + first run
		b.Fatal(err)
	}
	b.ResetTimer()
	offers := 0
	start := time.Now()
	for i := 0; i < b.N; i++ {
		r, err := runner.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		offers += r.Stats.MapOffers + r.Stats.ReduceOffers
	}
	elapsed := time.Since(start)
	if offers > 0 {
		b.ReportMetric(float64(elapsed.Nanoseconds())/float64(offers), "ns/offer")
	}
}

// BenchmarkScale sweeps E-Ant across machines {16,64,256,1024} × jobs
// {5,20,80}.
func BenchmarkScale(b *testing.B) {
	for _, factor := range []int{1, 4, 16, 64} {
		for _, jobs := range []int{5, 20, 80} {
			b.Run(fmt.Sprintf("machines=%d/jobs=%d", 16*factor, jobs), func(b *testing.B) {
				scaleRun(b, SchedulerEAnt, factor, jobs)
			})
		}
	}
}

// BenchmarkScaleBaselines sweeps the comparison schedulers over the same
// grid so E-Ant's per-offer cost can be read against policies without
// pheromone state.
func BenchmarkScaleBaselines(b *testing.B) {
	for _, sched := range []Scheduler{SchedulerFair, SchedulerTarazu} {
		for _, factor := range []int{1, 4, 16, 64} {
			for _, jobs := range []int{5, 20, 80} {
				name := fmt.Sprintf("sched=%s/machines=%d/jobs=%d", sched, 16*factor, jobs)
				b.Run(name, func(b *testing.B) {
					scaleRun(b, sched, factor, jobs)
				})
			}
		}
	}
}

// BenchmarkRunManyWarm measures the sweep-level payoff of per-worker
// world reuse. Both sub-benchmarks push the same 8-spec scheduler ×
// workload grid through RunMany; "cold" gives every spec its own cluster
// clone, forcing each worker to rebuild its world per spec (the pre-Runner
// behaviour), while "warm" points every spec at one shared cluster so each
// worker constructs its world once and resets it between specs. The
// allocs/op gap between the two is the construction cost the warm path
// deletes from sweeps.
func BenchmarkRunManyWarm(b *testing.B) {
	const workers = 4
	jobGrid := [][]Job{MSDWorkload(5, 7), MSDWorkload(15, 7)}
	schedGrid := []Scheduler{SchedulerEAnt, SchedulerFair, SchedulerTarazu, SchedulerFIFO}
	buildSpecs := func(cl func() *Cluster) []RunSpec {
		var specs []RunSpec
		for _, jobs := range jobGrid {
			for _, s := range schedGrid {
				specs = append(specs, RunSpec{Cluster: cl(), Scheduler: s, Jobs: jobs, Seed: 7})
			}
		}
		return specs
	}
	run := func(b *testing.B, specs []RunSpec) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			results, err := RunMany(specs, workers)
			if err != nil {
				b.Fatal(err)
			}
			if len(results) != len(specs) {
				b.Fatal("short sweep")
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		base := PaperTestbed()
		run(b, buildSpecs(func() *Cluster { return base.Clone() }))
	})
	b.Run("warm", func(b *testing.B) {
		shared := PaperTestbed()
		run(b, buildSpecs(func() *Cluster { return shared }))
	})
}

// BenchmarkSimulatorThroughput measures raw simulator speed: completed
// tasks per wall-clock second on the MSD workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	jobs := MSDWorkload(40, 1)
	b.ResetTimer()
	tasks := 0
	start := time.Now()
	for i := 0; i < b.N; i++ {
		r, err := Run(RunSpec{
			Cluster:   PaperTestbed(),
			Scheduler: SchedulerFair,
			Jobs:      jobs,
			Seed:      1,
		})
		if err != nil {
			b.Fatal(err)
		}
		tasks += r.Stats.TasksDone()
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(tasks)/elapsed, "tasks/s")
	}
}
