package eant

import (
	"testing"
	"time"
)

func quickSpec(s Scheduler) RunSpec {
	return RunSpec{
		Cluster:   PaperTestbed(),
		Scheduler: s,
		Jobs:      MSDWorkload(10, 1),
		Seed:      1,
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	for _, s := range Schedulers() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			r, err := Run(quickSpec(s))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if r.JobsCompleted != 10 {
				t.Errorf("completed %d/10 jobs", r.JobsCompleted)
			}
			if r.TotalJoules <= 0 || r.Makespan <= 0 {
				t.Error("empty result")
			}
			if len(r.TypeJoules) == 0 || len(r.TypeUtilization) == 0 {
				t.Error("missing per-type aggregates")
			}
			if r.Stats == nil {
				t.Error("missing Stats")
			}
		})
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunSpec{Scheduler: SchedulerFair, Jobs: MSDWorkload(1, 1)}); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := Run(RunSpec{Cluster: PaperTestbed(), Scheduler: SchedulerFair}); err == nil {
		t.Error("empty jobs accepted")
	}
	spec := quickSpec("Mystery")
	if _, err := Run(spec); err == nil {
		t.Error("unknown scheduler accepted")
	}
	bad := DefaultEAntParams()
	bad.Rho = 5
	spec = quickSpec(SchedulerEAnt)
	spec.EAntParams = &bad
	if _, err := Run(spec); err == nil {
		t.Error("invalid E-Ant params accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickSpec(SchedulerEAnt))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickSpec(SchedulerEAnt))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalJoules != b.TotalJoules || a.Makespan != b.Makespan {
		t.Errorf("identical specs diverged: %v/%v vs %v/%v",
			a.TotalJoules, a.Makespan, b.TotalJoules, b.Makespan)
	}
}

func TestMSDWorkloadShape(t *testing.T) {
	jobs := MSDWorkload(87, 7)
	if len(jobs) != 87 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("invalid job: %v", err)
		}
	}
}

func TestNewJobAndCustomCluster(t *testing.T) {
	specs := MachineSpecs()
	if len(specs) == 0 {
		t.Fatal("empty catalog")
	}
	c, err := NewCluster(
		ClusterGroup{Spec: specs[0], Count: 2},
	)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	r, err := Run(RunSpec{
		Cluster:   c,
		Scheduler: SchedulerFIFO,
		Jobs:      []Job{NewJob(0, Wordcount, 640, 2, 0)},
		Noise:     ptr(NoNoise()),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.JobsCompleted != 1 {
		t.Error("job did not complete")
	}
}

func TestRunHorizonCap(t *testing.T) {
	spec := quickSpec(SchedulerFair)
	spec.Horizon = time.Minute
	r, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != time.Minute {
		t.Errorf("makespan = %v, want capped 1m", r.Makespan)
	}
}

func TestCompareProducesSavings(t *testing.T) {
	spec := RunSpec{
		Cluster: PaperTestbed(),
		Jobs:    MSDWorkload(20, 3),
		Seed:    3,
	}
	results, savings, err := Compare(spec, SchedulerEAnt, SchedulerFair)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if _, ok := savings[SchedulerFair]; !ok {
		t.Error("no saving computed vs Fair")
	}
}

func ptr[T any](v T) *T { return &v }

func TestRunWithConsolidation(t *testing.T) {
	jobs := MSDWorkload(8, 2)
	// Double the arrival spacing so lulls exist.
	for i := range jobs {
		jobs[i].Submit *= 3
	}
	base := RunSpec{Cluster: PaperTestbed(), Scheduler: SchedulerEAnt, Jobs: jobs, Seed: 2}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cons := base
	cons.Consolidation = &Consolidation{}
	saved, err := Run(cons)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Stats.Sleeps == 0 {
		t.Error("no machines slept under consolidation")
	}
	if saved.TotalJoules >= plain.TotalJoules {
		t.Errorf("consolidated %v J not below always-on %v J",
			saved.TotalJoules, plain.TotalJoules)
	}
	if saved.JobsCompleted != plain.JobsCompleted {
		t.Errorf("job counts differ: %d vs %d", saved.JobsCompleted, plain.JobsCompleted)
	}
}
