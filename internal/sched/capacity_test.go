package sched_test

import (
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/mapreduce"
	"eant/internal/sched"
	"eant/internal/workload"
)

func TestCapacityValidation(t *testing.T) {
	if _, err := sched.NewCapacity([]sched.CapacityQueue{{Name: "a", Share: 0}}, nil); err == nil {
		t.Error("zero share accepted")
	}
	if _, err := sched.NewCapacity([]sched.CapacityQueue{
		{Name: "a", Share: 0.7}, {Name: "b", Share: 0.7},
	}, nil); err == nil {
		t.Error("overcommitted shares accepted")
	}
	c, err := sched.NewCapacity(nil, nil)
	if err != nil {
		t.Fatalf("default queue: %v", err)
	}
	if c.Name() != "Capacity" {
		t.Error("name mismatch")
	}
}

func TestCapacityCompletesMultiQueueWorkload(t *testing.T) {
	queues := []sched.CapacityQueue{
		{Name: "prod", Share: 0.7},
		{Name: "adhoc", Share: 0.3},
	}
	s := sched.MustNewCapacity(queues, nil) // route by job ID parity
	cfg := mapreduce.DefaultConfig()
	jobs := []workload.JobSpec{
		workload.NewJobSpec(0, workload.Wordcount, 1280, 2, 0),
		workload.NewJobSpec(1, workload.Grep, 1280, 2, 0),
		workload.NewJobSpec(2, workload.Terasort, 1280, 2, 0),
		workload.NewJobSpec(3, workload.Wordcount, 1280, 2, 0),
	}
	d, err := mapreduce.NewDriver(cluster.Testbed(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.Run(jobs, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Jobs) != 4 {
		t.Fatalf("finished %d/4 jobs", len(stats.Jobs))
	}
}

func TestCapacitySmallQueueNotStarved(t *testing.T) {
	// A big job hogs queue 0; queue 1's small job must still progress on
	// its guaranteed share rather than waiting for the big job.
	queues := []sched.CapacityQueue{
		{Name: "big", Share: 0.8},
		{Name: "small", Share: 0.2},
	}
	s := sched.MustNewCapacity(queues, func(j *mapreduce.Job) int {
		if j.Spec.ID == 0 {
			return 0
		}
		return 1
	})
	cfg := mapreduce.DefaultConfig()
	jobs := []workload.JobSpec{
		workload.NewJobSpec(0, workload.Wordcount, 12800, 4, 0),
		workload.NewJobSpec(1, workload.Grep, 640, 1, 0),
	}
	d, err := mapreduce.NewDriver(cluster.Testbed(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.Run(jobs, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	small := stats.JobByID(1)
	big := stats.JobByID(0)
	if small == nil || big == nil {
		t.Fatal("missing job results")
	}
	if small.Finished >= big.Finished {
		t.Errorf("small queue job finished at %v, after the big job at %v",
			small.Finished, big.Finished)
	}
}

func TestFairDelaySchedulingImprovesLocality(t *testing.T) {
	// With single-replica placement most machines are remote for most
	// blocks, so plain Fair takes many remote assignments; delay
	// scheduling waits for local offers.
	runWith := func(s mapreduce.Scheduler) float64 {
		cfg := mapreduce.DefaultConfig()
		cfg.Replication = 1
		d, err := mapreduce.NewDriver(cluster.Testbed(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		jobs := workload.Batch(workload.Grep, 4, 3200, 2, 0)
		stats, err := d.Run(jobs, 12*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if len(stats.Jobs) != 4 {
			t.Fatalf("%s finished %d/4 jobs", s.Name(), len(stats.Jobs))
		}
		return stats.LocalityFraction()
	}
	plain := runWith(sched.NewFair())
	delayed := runWith(sched.NewFairWithDelay(5))
	if delayed <= plain {
		t.Errorf("delay scheduling locality %.3f not above plain %.3f", delayed, plain)
	}
	t.Logf("locality: plain %.3f vs delay %.3f", plain, delayed)
}
