package sched

import (
	"eant/internal/cluster"
	"eant/internal/mapreduce"
)

// Tarazu approximates the communication-aware load balancer of Ahmad et
// al. [ASPLOS'12] at the level the paper compares against: it balances map
// work against each machine's *compute capability* (cores × per-core
// speed) instead of slot counts, and it suppresses the bursty remote-map
// traffic that hurts heterogeneous clusters by letting slow machines take
// only data-local work once they are at their capability share.
//
// The result is performance-aware but energy-oblivious task assignment:
// Tarazu reduces job completion time on heterogeneous fleets (Fig. 8c) and
// incidentally saves some energy versus Fair (shorter runs), but it never
// consults the power characteristics of the machines (Fig. 8a).
type Tarazu struct {
	fair Fair

	// capShare[machineID] is the machine's fraction of fleet compute
	// capability, computed lazily on first assignment.
	//eant:reset-keep pure function of the cluster, which a driver never swaps
	capShare []float64
	// started[machineID] counts map tasks this scheduler has placed.
	started      []int
	totalStarted int

	// slack is the tolerated overshoot above the capability share before
	// remote tasks are declined. 1.0 is strict proportionality.
	//eant:reset-keep configuration fixed at construction
	slack float64
	// localBoost multiplies a job's affinity score when it has a
	// data-local task on the offering machine.
	//eant:reset-keep configuration fixed at construction
	localBoost float64
}

// NewTarazu returns a Tarazu scheduler with the default 50 % slack.
func NewTarazu() *Tarazu { return &Tarazu{slack: 1.5, localBoost: 2.0} }

var _ mapreduce.Scheduler = (*Tarazu)(nil)

// Name implements mapreduce.Scheduler.
func (t *Tarazu) Name() string { return "Tarazu" }

// ResetForRun zeroes the per-run balancing counters. The capability shares
// are a pure function of the cluster (which a warm rerun keeps) and stay.
func (t *Tarazu) ResetForRun() {
	t.fair.ResetForRun()
	for i := range t.started {
		t.started[i] = 0
	}
	t.totalStarted = 0
}

// init builds the per-machine capability shares once; excluded from the
// hot set because it runs exactly once per run.
//
//eant:hot-stop one-time lazy construction, not steady-state work
func (t *Tarazu) init(ctx *mapreduce.Context) {
	if t.capShare != nil {
		return
	}
	machines := ctx.Cluster.Machines()
	t.capShare = make([]float64, len(machines))
	t.started = make([]int, len(machines))
	var total float64
	for _, m := range machines {
		total += capability(m.Spec())
	}
	for i, m := range machines {
		t.capShare[i] = capability(m.Spec()) / total
	}
}

// capability scores a machine's map-compute throughput.
func capability(s *cluster.TypeSpec) float64 {
	return float64(s.Cores) * s.SpeedFactor
}

// advantage scores how comparatively fast machine spec runs j's map tasks:
// the mean service time across hardware types divided by the time on this
// type. >1 means this machine is a comparatively good home for the job.
func (t *Tarazu) advantage(ctx *mapreduce.Context, j *mapreduce.Job, spec *cluster.TypeSpec) float64 {
	var mean float64
	specs := ctx.TypeSpecs()
	for _, s := range specs {
		mean += ctx.EstimateMapSeconds(j, s)
	}
	mean /= float64(len(specs))
	return mean / ctx.EstimateMapSeconds(j, spec)
}

// AssignMap implements mapreduce.Scheduler: among jobs below fair share,
// pick the one whose map tasks run comparatively fastest on this machine
// (performance affinity), preferring data-local work; remote tasks are
// additionally gated by the machine's capability share so slow machines
// cannot swamp the network pulling blocks they process slowly.
func (t *Tarazu) AssignMap(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	t.init(ctx)
	var best *mapreduce.Job
	bestScore := 0.0
	for _, j := range ctx.ActiveJobs() {
		if j.PendingMaps() == 0 {
			continue
		}
		score := t.advantage(ctx, j, m.Spec())
		if ctx.HasLocalMap(j, m) {
			score *= t.localBoost
		}
		if best == nil || score > bestScore {
			best = j
			bestScore = score
		}
	}
	if best == nil {
		return nil
	}
	if !ctx.HasLocalMap(best, m) && t.totalStarted > 0 {
		// Remote work: only if this machine has not exceeded its share
		// of the fleet's map throughput.
		share := float64(t.started[m.ID()]+1) / float64(t.totalStarted+1)
		if share > t.capShare[m.ID()]*t.slack {
			return nil
		}
	}
	task := ctx.PopMapPreferLocal(best, m)
	if task != nil {
		t.note(m)
	}
	return task
}

func (t *Tarazu) note(m cluster.Machine) {
	t.started[m.ID()]++
	t.totalStarted++
}

// AssignReduce implements mapreduce.Scheduler: reduces follow the same
// comparative-speed affinity over reduce compute time.
func (t *Tarazu) AssignReduce(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	t.init(ctx)
	var best *mapreduce.Job
	bestScore := 0.0
	specs := ctx.TypeSpecs()
	for _, j := range ctx.ActiveJobs() {
		if !ctx.ReduceReady(j) {
			continue
		}
		var mean float64
		for _, s := range specs {
			mean += ctx.EstimateReduceSeconds(j, s)
		}
		mean /= float64(len(specs))
		own := ctx.EstimateReduceSeconds(j, m.Spec())
		score := 1.0
		if own > 0 {
			score = mean / own
		}
		if best == nil || score > bestScore {
			best = j
			bestScore = score
		}
	}
	if best == nil {
		return nil
	}
	return ctx.PopReduce(best)
}

// OnTaskComplete implements mapreduce.Scheduler; Tarazu's balancing state
// is advanced at assignment time.
func (t *Tarazu) OnTaskComplete(*mapreduce.Context, *mapreduce.Task) {}

// OnControlTick implements mapreduce.Scheduler.
func (t *Tarazu) OnControlTick(*mapreduce.Context) {}
