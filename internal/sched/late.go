package sched

import (
	"eant/internal/cluster"
	"eant/internal/mapreduce"
)

// LATE approximates the Longest Approximate Time to End scheduler of
// Zaharia et al. [OSDI'08]: Fair-style assignment while pending work
// remains, plus speculative re-execution of straggling attempts on free
// slots once a job's queue drains. A running attempt is speculated when
// its elapsed time exceeds SpeculationFactor times its expected service
// time on its host, and only a bounded fraction of a job's attempts may
// be speculative at once (Hadoop's speculative cap).
//
// LATE is the heterogeneity-aware *performance* baseline from the
// paper's related work: it shortens straggler-stretched tails but, like
// Tarazu, never consults energy.
type LATE struct {
	fair Fair

	// SpeculationFactor is the elapsed/expected ratio beyond which an
	// attempt counts as a straggler. Hadoop's heuristic is ~1.2–1.5.
	//eant:reset-keep configuration fixed at construction
	SpeculationFactor float64
	// MaxSpeculativeFraction bounds in-flight clones per job, as a
	// fraction of the job's running attempts (minimum 1).
	//eant:reset-keep configuration fixed at construction
	MaxSpeculativeFraction float64
}

// NewLATE returns a LATE scheduler with Hadoop-like defaults.
func NewLATE() *LATE {
	return &LATE{SpeculationFactor: 1.5, MaxSpeculativeFraction: 0.1}
}

var _ mapreduce.Scheduler = (*LATE)(nil)

// Name implements mapreduce.Scheduler.
func (l *LATE) Name() string { return "LATE" }

// ResetForRun clears the embedded Fair scheduler's per-run state; LATE's
// speculation thresholds are configuration, not run state.
func (l *LATE) ResetForRun() {
	l.fair.ResetForRun()
}

// AssignMap implements mapreduce.Scheduler: normal fair assignment first,
// speculation only with spare slots.
func (l *LATE) AssignMap(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	if t := l.fair.AssignMap(ctx, m); t != nil {
		return t
	}
	return l.speculate(ctx, m, mapreduce.MapTask)
}

// AssignReduce implements mapreduce.Scheduler.
func (l *LATE) AssignReduce(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	if t := l.fair.AssignReduce(ctx, m); t != nil {
		return t
	}
	return l.speculate(ctx, m, mapreduce.ReduceTask)
}

// speculate scans active jobs (submission order) for the worst straggler
// of the given kind whose clone could run on m, and clones it.
func (l *LATE) speculate(ctx *mapreduce.Context, m cluster.Machine, kind mapreduce.TaskKind) *mapreduce.Task {
	now := ctx.Now()
	var worst *mapreduce.Task
	worstRatio := l.SpeculationFactor
	for _, j := range ctx.ActiveJobs() {
		attempts := j.RunningAttempts(kind)
		if len(attempts) == 0 {
			continue
		}
		clones := 0
		for _, t := range attempts {
			if t.Speculative() {
				clones++
			}
		}
		budget := int(l.MaxSpeculativeFraction * float64(len(attempts)))
		if budget < 1 {
			budget = 1
		}
		if clones >= budget {
			continue
		}
		for _, t := range attempts {
			if t.State != mapreduce.TaskRunning || t.HasClone() || t.Speculative() {
				continue
			}
			if t.Machine.Valid() && t.Machine.ID() == m.ID() {
				// Re-running on the same (possibly slow or noisy)
				// machine defeats the purpose.
				continue
			}
			expected := ctx.EstimateMapSeconds(j, t.Machine.Spec())
			if kind == mapreduce.ReduceTask {
				expected = ctx.EstimateReduceSeconds(j, t.Machine.Spec())
			}
			if expected <= 0 {
				continue
			}
			ratio := (now - t.ComputeStart()).Seconds() / expected
			if ratio > worstRatio {
				worstRatio = ratio
				worst = t
			}
		}
	}
	if worst == nil {
		return nil
	}
	return ctx.CloneForSpeculation(worst)
}

// OnTaskComplete implements mapreduce.Scheduler.
func (l *LATE) OnTaskComplete(*mapreduce.Context, *mapreduce.Task) {}

// OnControlTick implements mapreduce.Scheduler.
func (l *LATE) OnControlTick(*mapreduce.Context) {}
