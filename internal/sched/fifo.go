// Package sched implements the baseline task-assignment policies the paper
// compares E-Ant against: Hadoop's FIFO scheduler (the "default
// heterogeneity-agnostic Hadoop" that savings are measured over), the Fair
// Scheduler, and Tarazu's communication-aware load balancing [4].
package sched

import (
	"eant/internal/cluster"
	"eant/internal/mapreduce"
)

// FIFO is Hadoop's default scheduler: strict job-arrival order, data-local
// tasks preferred within the head job. Heterogeneity- and energy-oblivious.
type FIFO struct{}

// NewFIFO returns a FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

var _ mapreduce.Scheduler = (*FIFO)(nil)

// Name implements mapreduce.Scheduler.
func (f *FIFO) Name() string { return "FIFO" }

// ResetForRun is a no-op: FIFO carries no run state.
func (f *FIFO) ResetForRun() {}

// AssignMap hands m the oldest job's next map task, local block preferred.
func (f *FIFO) AssignMap(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	for _, j := range ctx.ActiveJobs() {
		if j.PendingMaps() == 0 {
			continue
		}
		if t := ctx.PopMapPreferLocal(j, m); t != nil {
			return t
		}
	}
	return nil
}

// AssignReduce hands m the oldest ready job's next reduce task.
func (f *FIFO) AssignReduce(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	for _, j := range ctx.ActiveJobs() {
		if !ctx.ReduceReady(j) {
			continue
		}
		if t := ctx.PopReduce(j); t != nil {
			return t
		}
	}
	return nil
}

// OnTaskComplete implements mapreduce.Scheduler; FIFO ignores feedback.
func (f *FIFO) OnTaskComplete(*mapreduce.Context, *mapreduce.Task) {}

// OnControlTick implements mapreduce.Scheduler; FIFO has no policy state.
func (f *FIFO) OnControlTick(*mapreduce.Context) {}
