package sched

import (
	"eant/internal/cluster"
	"eant/internal/mapreduce"
)

// Fair is the Hadoop Fair Scheduler with a single pool: every free slot
// goes to the active job furthest below its fair share (equal split of the
// slot pool), with data-local tasks preferred within the chosen job. It is
// the paper's primary heterogeneity-oblivious baseline.
//
// With a non-zero locality wait it implements delay scheduling (Zaharia
// et al., EuroSys'10): a job with no data-local task on the offering
// machine is passed over for up to LocalityWaitTicks heartbeats before it
// accepts a remote assignment.
type Fair struct {
	// LocalityWaitTicks is how many consecutive non-local offers a job
	// declines before running remotely. Zero disables delay scheduling.
	//eant:reset-keep configuration fixed at construction
	LocalityWaitTicks int

	// skipped counts consecutive non-local offers per job ID.
	skipped map[int]int

	// considered is the per-offer scratch set for the delay-scheduling
	// walk, hoisted to a field so steady-state offers allocate nothing.
	considered map[int]bool
}

// NewFair returns a Fair scheduler without delay scheduling.
func NewFair() *Fair { return &Fair{} }

// NewFairWithDelay returns a Fair scheduler with delay scheduling: jobs
// wait up to waitTicks heartbeat offers for a data-local slot.
func NewFairWithDelay(waitTicks int) *Fair {
	return &Fair{LocalityWaitTicks: waitTicks}
}

var _ mapreduce.Scheduler = (*Fair)(nil)

// Name implements mapreduce.Scheduler.
func (f *Fair) Name() string { return "Fair" }

// ResetForRun clears the per-run delay-scheduling skip counters so the
// same instance can drive another simulation from scratch.
func (f *Fair) ResetForRun() {
	clear(f.skipped)
	clear(f.considered)
}

// neediest returns the eligible job with the largest fair-share deficit
// (fair share minus running tasks), ties broken by submission order.
func neediest(ctx *mapreduce.Context, eligible func(*mapreduce.Job) bool) *mapreduce.Job {
	var best *mapreduce.Job
	bestDeficit := 0.0
	for _, j := range ctx.ActiveJobs() {
		if !eligible(j) {
			continue
		}
		deficit := ctx.FairShare(j) - float64(j.Running())
		if best == nil || deficit > bestDeficit {
			best = j
			bestDeficit = deficit
		}
	}
	return best
}

// AssignMap implements mapreduce.Scheduler.
func (f *Fair) AssignMap(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	if f.LocalityWaitTicks <= 0 {
		j := neediest(ctx, func(j *mapreduce.Job) bool { return j.PendingMaps() > 0 })
		if j == nil {
			return nil
		}
		return ctx.PopMapPreferLocal(j, m)
	}

	// Delay scheduling: walk jobs in deficit order; take the first with
	// local work, let others accrue skips until their wait expires.
	if f.skipped == nil {
		f.skipped = make(map[int]int) //eant:alloc-ok lazy one-time init, amortized across the run
		f.considered = map[int]bool{} //eant:alloc-ok lazy one-time init, amortized across the run
	}
	clear(f.considered)
	for {
		j := neediest(ctx, func(j *mapreduce.Job) bool { //eant:alloc-ok non-escaping predicate, stack-allocated
			return j.PendingMaps() > 0 && !f.considered[j.Spec.ID]
		})
		if j == nil {
			return nil
		}
		f.considered[j.Spec.ID] = true
		if ctx.HasLocalMap(j, m) {
			f.skipped[j.Spec.ID] = 0
			return ctx.PopMapPreferLocal(j, m)
		}
		if f.skipped[j.Spec.ID] >= f.LocalityWaitTicks {
			f.skipped[j.Spec.ID] = 0
			return ctx.PopMapAny(j)
		}
		f.skipped[j.Spec.ID]++
	}
}

// AssignReduce implements mapreduce.Scheduler.
func (f *Fair) AssignReduce(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	j := neediest(ctx, func(j *mapreduce.Job) bool { return ctx.ReduceReady(j) }) //eant:alloc-ok non-escaping predicate, stack-allocated
	if j == nil {
		return nil
	}
	return ctx.PopReduce(j)
}

// OnTaskComplete implements mapreduce.Scheduler; Fair ignores feedback.
func (f *Fair) OnTaskComplete(*mapreduce.Context, *mapreduce.Task) {}

// OnControlTick implements mapreduce.Scheduler; Fair has no policy state.
func (f *Fair) OnControlTick(*mapreduce.Context) {}
