package sched

import (
	"fmt"

	"eant/internal/cluster"
	"eant/internal/mapreduce"
)

// Capacity is the Hadoop Capacity Scheduler (the other multi-tenant
// scheduler the paper's related work names): jobs are routed to named
// queues, each guaranteed a fraction of the slot pool; queues may borrow
// idle capacity beyond their guarantee and are preempted back to it only
// by attrition (running tasks finish). Within a queue, jobs run FIFO.
type Capacity struct {
	queues []CapacityQueue //eant:reset-keep queue declarations are configuration fixed at construction
	// route maps a job to a queue index; default routes by JobID modulo
	// queue count.
	//eant:reset-keep routing policy is configuration fixed at construction
	route func(*mapreduce.Job) int

	// usage[queueIdx] counts running tasks per queue.
	usage map[int]int

	// queueOrder scratch, reused across slot offers (one scheduler per
	// single-threaded driver).
	idx     []int     //eant:reset-keep per-offer scratch, fully overwritten before every read
	deficit []float64 //eant:reset-keep per-offer scratch, fully overwritten before every read
}

// CapacityQueue declares one queue's share of the slot pool.
type CapacityQueue struct {
	Name  string
	Share float64 // fraction of total slots guaranteed, Σ ≤ 1
}

// NewCapacity builds a Capacity scheduler. With no queues it behaves as a
// single 100 % queue (plain FIFO).
func NewCapacity(queues []CapacityQueue, route func(*mapreduce.Job) int) (*Capacity, error) {
	if len(queues) == 0 {
		queues = []CapacityQueue{{Name: "default", Share: 1}}
	}
	var total float64
	for _, q := range queues {
		if q.Share <= 0 {
			return nil, fmt.Errorf("sched: queue %q has share %v", q.Name, q.Share)
		}
		total += q.Share
	}
	if total > 1+1e-9 {
		return nil, fmt.Errorf("sched: queue shares sum to %v > 1", total)
	}
	c := &Capacity{queues: queues, route: route, usage: make(map[int]int)}
	if c.route == nil {
		c.route = func(j *mapreduce.Job) int { return j.Spec.ID % len(queues) }
	}
	return c, nil
}

// MustNewCapacity is NewCapacity for known-valid configurations.
func MustNewCapacity(queues []CapacityQueue, route func(*mapreduce.Job) int) *Capacity {
	c, err := NewCapacity(queues, route)
	if err != nil {
		panic(err)
	}
	return c
}

var _ mapreduce.Scheduler = (*Capacity)(nil)

// Name implements mapreduce.Scheduler.
func (c *Capacity) Name() string { return "Capacity" }

// ResetForRun clears the per-run queue usage counters; queue declarations
// and routing are configuration and stay.
func (c *Capacity) ResetForRun() {
	clear(c.usage)
}

// queueOrder returns queue indices sorted by how far each queue is below
// its guaranteed share (most underserved first); queues over guarantee
// come last (they may still borrow idle slots).
func (c *Capacity) queueOrder(ctx *mapreduce.Context) []int {
	total := float64(ctx.TotalSlots())
	if c.idx == nil {
		c.idx = make([]int, len(c.queues))         //eant:alloc-ok lazy one-time init, amortized across the run
		c.deficit = make([]float64, len(c.queues)) //eant:alloc-ok lazy one-time init, amortized across the run
	}
	idx, deficit := c.idx, c.deficit
	for i := range c.queues {
		idx[i] = i
		deficit[i] = c.queues[i].Share*total - float64(c.usage[i])
	}
	// Stable insertion sort, descending by deficit: queue counts are tiny
	// and this avoids sort.SliceStable's reflection allocations on a path
	// hit once per slot offer.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && deficit[idx[j]] > deficit[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// assign picks the first runnable job scanning queues in deficit order and
// each queue's jobs FIFO.
func (c *Capacity) assign(ctx *mapreduce.Context, eligible func(*mapreduce.Job) bool) (*mapreduce.Job, int) {
	for _, qi := range c.queueOrder(ctx) {
		for _, j := range ctx.ActiveJobs() {
			if c.route(j) != qi || !eligible(j) {
				continue
			}
			return j, qi
		}
	}
	return nil, -1
}

// AssignMap implements mapreduce.Scheduler.
func (c *Capacity) AssignMap(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	j, qi := c.assign(ctx, func(j *mapreduce.Job) bool { return j.PendingMaps() > 0 })
	if j == nil {
		return nil
	}
	t := ctx.PopMapPreferLocal(j, m)
	if t != nil {
		c.usage[qi]++
	}
	return t
}

// AssignReduce implements mapreduce.Scheduler.
func (c *Capacity) AssignReduce(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	j, qi := c.assign(ctx, func(j *mapreduce.Job) bool { return ctx.ReduceReady(j) }) //eant:alloc-ok non-escaping predicate, stack-allocated
	if j == nil {
		return nil
	}
	t := ctx.PopReduce(j)
	if t != nil {
		c.usage[qi]++
	}
	return t
}

// OnTaskComplete implements mapreduce.Scheduler: returns the slot to the
// queue's usage accounting.
func (c *Capacity) OnTaskComplete(ctx *mapreduce.Context, t *mapreduce.Task) {
	qi := c.route(t.Job)
	if c.usage[qi] > 0 {
		c.usage[qi]--
	}
}

// OnControlTick implements mapreduce.Scheduler.
func (c *Capacity) OnControlTick(*mapreduce.Context) {}
