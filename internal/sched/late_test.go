package sched_test

import (
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/fault"
	"eant/internal/mapreduce"
	"eant/internal/noise"
	"eant/internal/sched"
	"eant/internal/workload"
)

// stragglerConfig injects frequent, heavy stragglers so speculation has
// something to chase.
func stragglerConfig(seed int64) mapreduce.Config {
	cfg := mapreduce.DefaultConfig()
	cfg.Seed = seed
	cfg.Noise = noise.Config{
		DurationCV:    0.1,
		StragglerProb: 0.25,
		StragglerMin:  4,
		StragglerMax:  6,
	}
	return cfg
}

func runLate(t *testing.T, s mapreduce.Scheduler, cfg mapreduce.Config) *mapreduce.Stats {
	t.Helper()
	d, err := mapreduce.NewDriver(cluster.Testbed(), s, cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	jobs := workload.Batch(workload.Wordcount, 4, 3200, 4, 10*time.Second)
	stats, err := d.Run(jobs, 12*time.Hour)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats
}

func TestLATEName(t *testing.T) {
	if sched.NewLATE().Name() != "LATE" {
		t.Error("name mismatch")
	}
}

func TestLATECompletesAllJobsWithSpeculation(t *testing.T) {
	stats := runLate(t, sched.NewLATE(), stragglerConfig(1))
	if len(stats.Jobs) != 4 {
		t.Fatalf("finished %d/4 jobs", len(stats.Jobs))
	}
	if stats.SpeculativeStarted == 0 {
		t.Error("no speculative attempts launched under heavy stragglers")
	}
	if stats.SpeculativeKilled == 0 {
		t.Error("no race losers killed")
	}
	// Every race resolves exactly one loser: started clones either win
	// (original killed) or lose (clone killed); either way one kill per
	// *resolved* race, and no more kills than races.
	if stats.SpeculativeKilled > stats.SpeculativeStarted {
		t.Errorf("killed %d > started %d", stats.SpeculativeKilled, stats.SpeculativeStarted)
	}
	if stats.SpeculativeWon > stats.SpeculativeStarted {
		t.Errorf("clone wins %d > clones started %d", stats.SpeculativeWon, stats.SpeculativeStarted)
	}
	t.Logf("speculation: started=%d cloneWins=%d killed=%d",
		stats.SpeculativeStarted, stats.SpeculativeWon, stats.SpeculativeKilled)
}

func TestLATEShortensStragglerTails(t *testing.T) {
	// Compare makespans under identical straggler noise: LATE's
	// speculative copies should cut the tail relative to Fair.
	var fairMs, lateMs float64
	for seed := int64(1); seed <= 3; seed++ {
		fair := runLate(t, sched.NewFair(), stragglerConfig(seed))
		late := runLate(t, sched.NewLATE(), stragglerConfig(seed))
		fairMs += fair.Horizon.Seconds()
		lateMs += late.Horizon.Seconds()
		if len(late.Jobs) != 4 {
			t.Fatalf("seed %d: LATE finished %d/4 jobs", seed, len(late.Jobs))
		}
	}
	if lateMs >= fairMs {
		t.Errorf("LATE mean makespan %.0fs not below Fair %.0fs under heavy stragglers",
			lateMs/3, fairMs/3)
	}
	t.Logf("makespan: LATE %.0fs vs Fair %.0fs", lateMs/3, fairMs/3)
}

func TestLATENoSpeculationWithoutStragglers(t *testing.T) {
	cfg := mapreduce.DefaultConfig() // noise off
	stats := runLate(t, sched.NewLATE(), cfg)
	if stats.SpeculativeStarted != 0 {
		t.Errorf("launched %d speculative attempts without noise", stats.SpeculativeStarted)
	}
	if len(stats.Jobs) != 4 {
		t.Fatalf("finished %d/4 jobs", len(stats.Jobs))
	}
}

func TestLATETaskAccountingConsistent(t *testing.T) {
	cfg := stragglerConfig(7)
	cfg.KeepTaskRecords = true
	stats := runLate(t, sched.NewLATE(), cfg)
	// Each logical task completes exactly once: 4 jobs × (50 maps + 4
	// reduces) records, regardless of how many clones raced.
	want := 4 * (50 + 4)
	if got := len(stats.Tasks); got != want {
		t.Errorf("task records = %d, want %d", got, want)
	}
	if got := stats.TasksDone(); got != want {
		t.Errorf("TasksDone = %d, want %d", got, want)
	}
}

func TestSpeculationCloneRules(t *testing.T) {
	// CloneForSpeculation's refusal rules are driver-internal; exercise
	// them through a scheduler that tries to clone everything.
	cfg := stragglerConfig(3)
	greedy := &cloneEverything{}
	d, err := mapreduce.NewDriver(cluster.Testbed(), greedy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := workload.Batch(workload.Grep, 2, 1280, 2, 0)
	stats, err := d.Run(jobs, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Jobs) != 2 {
		t.Fatalf("finished %d/2 jobs", len(stats.Jobs))
	}
	// No double-clones: kills can never exceed clones started.
	if stats.SpeculativeKilled > stats.SpeculativeStarted {
		t.Errorf("killed %d > started %d", stats.SpeculativeKilled, stats.SpeculativeStarted)
	}
}

func TestLATESurvivesStragglersAndFaults(t *testing.T) {
	// LATE's straggler chasing must compose with fault recovery: heavy
	// straggler noise drives speculation while machine churn and attempt
	// failures kill race members mid-flight. Every job still completes,
	// with each logical task recorded exactly once plus any map outputs
	// re-executed after crashes.
	cfg := stragglerConfig(2)
	cfg.KeepTaskRecords = true
	cfg.Fault = fault.Config{
		MachineMTBF:  8 * time.Minute,
		MachineMTTR:  time.Minute,
		TaskFailProb: 0.05,
		MaxAttempts:  100,
	}
	stats := runLate(t, sched.NewLATE(), cfg)
	if stats.SpeculativeStarted == 0 || stats.Crashes == 0 || stats.TaskFailures == 0 {
		t.Fatalf("test inert: clones=%d crashes=%d failures=%d",
			stats.SpeculativeStarted, stats.Crashes, stats.TaskFailures)
	}
	if len(stats.Jobs) != 4 {
		t.Fatalf("finished %d/4 jobs under faults", len(stats.Jobs))
	}
	for _, j := range stats.Jobs {
		if j.Failed {
			t.Errorf("job %d failed with a generous retry budget", j.Spec.ID)
		}
	}
	want := 4*(50+4) + stats.MapOutputsLost
	if got := len(stats.Tasks); got != want {
		t.Errorf("task records = %d, want %d (incl. %d re-executed maps)",
			got, want, stats.MapOutputsLost)
	}
	t.Logf("faults under LATE: crashes=%d failures=%d killedByCrash=%d outputsLost=%d clones=%d",
		stats.Crashes, stats.TaskFailures, stats.TasksKilledByCrash,
		stats.MapOutputsLost, stats.SpeculativeStarted)
}

// cloneEverything is a pathological scheduler that speculates any running
// attempt whenever it has no pending work, with no straggler threshold.
type cloneEverything struct{ fair sched.Fair }

func (c *cloneEverything) Name() string { return "CloneEverything" }

func (c *cloneEverything) AssignMap(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	if t := c.fair.AssignMap(ctx, m); t != nil {
		return t
	}
	for _, j := range ctx.ActiveJobs() {
		for _, t := range j.RunningAttempts(mapreduce.MapTask) {
			if clone := ctx.CloneForSpeculation(t); clone != nil {
				return clone
			}
		}
	}
	return nil
}

func (c *cloneEverything) AssignReduce(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	return c.fair.AssignReduce(ctx, m)
}

func (c *cloneEverything) OnTaskComplete(*mapreduce.Context, *mapreduce.Task) {}
func (c *cloneEverything) OnControlTick(*mapreduce.Context)                   {}
