package sched_test

import (
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/mapreduce"
	"eant/internal/sched"
	"eant/internal/workload"
)

func testbed() *cluster.Cluster {
	return cluster.MustNew(
		cluster.Group{Spec: cluster.SpecDesktop, Count: 2},
		cluster.Group{Spec: cluster.SpecT420, Count: 1},
		cluster.Group{Spec: cluster.SpecAtom, Count: 1},
	)
}

func runJobs(t *testing.T, s mapreduce.Scheduler, jobs []workload.JobSpec) *mapreduce.Stats {
	t.Helper()
	cfg := mapreduce.DefaultConfig()
	cfg.KeepTaskRecords = true
	d, err := mapreduce.NewDriver(testbed(), s, cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	stats, err := d.Run(jobs, 12*time.Hour)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats
}

func TestSchedulerNames(t *testing.T) {
	if sched.NewFIFO().Name() != "FIFO" {
		t.Error("FIFO name")
	}
	if sched.NewFair().Name() != "Fair" {
		t.Error("Fair name")
	}
	if sched.NewTarazu().Name() != "Tarazu" {
		t.Error("Tarazu name")
	}
}

func TestFIFOCompletesJobsInOrder(t *testing.T) {
	jobs := []workload.JobSpec{
		workload.NewJobSpec(0, workload.Wordcount, 3200, 2, 0),
		workload.NewJobSpec(1, workload.Wordcount, 320, 1, 0),
	}
	stats := runJobs(t, sched.NewFIFO(), jobs)
	if len(stats.Jobs) != 2 {
		t.Fatalf("finished %d jobs, want 2", len(stats.Jobs))
	}
	big := stats.JobByID(0)
	small := stats.JobByID(1)
	// FIFO serves the big job first; the small job, despite being 10×
	// smaller, cannot leapfrog it.
	if small.Finished < big.MapsDoneAt {
		t.Errorf("FIFO let the later job finish (%v) before the head job's maps (%v)",
			small.Finished, big.MapsDoneAt)
	}
}

func TestFairSharesAmongJobs(t *testing.T) {
	// Under Fair, a small job co-submitted with a big one finishes far
	// earlier than the big one, unlike FIFO.
	jobs := []workload.JobSpec{
		workload.NewJobSpec(0, workload.Wordcount, 6400, 2, 0),
		workload.NewJobSpec(1, workload.Wordcount, 320, 1, 0),
	}
	fair := runJobs(t, sched.NewFair(), jobs)
	small := fair.JobByID(1)
	big := fair.JobByID(0)
	if small.Finished >= big.Finished {
		t.Errorf("Fair: small job finished at %v, after big job at %v",
			small.Finished, big.Finished)
	}
	if small.CompletionTime() > big.CompletionTime()/2 {
		t.Errorf("Fair: small JCT %v not ≪ big JCT %v", small.CompletionTime(), big.CompletionTime())
	}
}

func TestTarazuShiftsLoadTowardCapableMachines(t *testing.T) {
	// A slot-heavy but compute-weak machine: Fair fills its 8 map slots
	// blindly; Tarazu caps it near its ~8% capability share.
	slug := &cluster.TypeSpec{
		Name: "Slug", Cores: 4, SpeedFactor: 0.35, MemoryGB: 8,
		DiskMBps: 90, NetMBps: 117, IdleWatts: 18, AlphaWatts: 12,
		MapSlots: 8, ReduceSlots: 2,
	}
	fleet := func() *cluster.Cluster {
		return cluster.MustNew(
			cluster.Group{Spec: cluster.SpecDesktop, Count: 2},
			cluster.Group{Spec: slug, Count: 1},
		)
	}
	runOn := func(s mapreduce.Scheduler) *mapreduce.Stats {
		cfg := mapreduce.DefaultConfig()
		// The Slug runs no DataNode, so all of its work would be remote
		// and the capability gate decides how much it gets.
		cfg.ComputeOnlyTypes = []string{"Slug"}
		d, err := mapreduce.NewDriver(fleet(), s, cfg)
		if err != nil {
			t.Fatalf("NewDriver: %v", err)
		}
		stats, err := d.Run(workload.Batch(workload.Grep, 4, 3200, 0, 0), 12*time.Hour)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return stats
	}
	share := func(s *mapreduce.Stats, machineType string) float64 {
		total := 0
		for _, n := range s.CompletedByMachine {
			total += n
		}
		byType := 0
		for _, app := range workload.Apps() {
			byType += s.CompletedByTypeApp(machineType, app)
		}
		return float64(byType) / float64(total)
	}
	fairShare := share(runOn(sched.NewFair()), "Slug")
	tarazuShare := share(runOn(sched.NewTarazu()), "Slug")
	if tarazuShare >= fairShare {
		t.Errorf("Tarazu Slug share %.3f not below Fair %.3f", tarazuShare, fairShare)
	}
}

func TestTarazuImprovesMakespanOverFair(t *testing.T) {
	jobs := workload.Batch(workload.Wordcount, 6, 3200, 2, 0)
	fair := runJobs(t, sched.NewFair(), jobs)
	tarazu := runJobs(t, sched.NewTarazu(), jobs)
	// Communication-aware balancing should not lengthen the campaign.
	if tarazu.Horizon > fair.Horizon*105/100 {
		t.Errorf("Tarazu makespan %v worse than Fair %v", tarazu.Horizon, fair.Horizon)
	}
}

func TestAllSchedulersCompleteMixedWorkload(t *testing.T) {
	jobs := []workload.JobSpec{
		workload.NewJobSpec(0, workload.Wordcount, 1280, 2, 0),
		workload.NewJobSpec(1, workload.Grep, 1280, 2, 30*time.Second),
		workload.NewJobSpec(2, workload.Terasort, 1280, 4, time.Minute),
	}
	for _, s := range []mapreduce.Scheduler{sched.NewFIFO(), sched.NewFair(), sched.NewTarazu()} {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			stats := runJobs(t, s, jobs)
			if len(stats.Jobs) != 3 {
				t.Fatalf("%s finished %d/3 jobs", s.Name(), len(stats.Jobs))
			}
			if stats.TasksDone() != 20*3+2+2+4 {
				t.Errorf("%s completed %d tasks, want 68", s.Name(), stats.TasksDone())
			}
		})
	}
}

func TestSchedulersPreferLocalTasks(t *testing.T) {
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Grep, 6400, 2, 0)}
	for _, s := range []mapreduce.Scheduler{sched.NewFIFO(), sched.NewFair(), sched.NewTarazu()} {
		stats := runJobs(t, s, jobs)
		// Replication 3 over 4 machines: most assignments can be local.
		if got := stats.LocalityFraction(); got < 0.5 {
			t.Errorf("%s locality fraction = %.2f, want ≥ 0.5", s.Name(), got)
		}
	}
}
