// Package parallel provides the bounded worker-pool fan-out layer used to
// run independent simulations concurrently.
//
// Every experiment sweep in this repository is embarrassingly parallel
// across (scheduler, sweep-point, seed) cells: each cell owns its own
// sim.Engine, RNG forks and scheduler instance, and shares no mutable
// state with any other cell. Map exploits that by fanning the cells out
// over a bounded pool of goroutines while collecting results in
// submission (index) order, so the aggregation that follows consumes
// results in exactly the order a sequential loop would have produced
// them — float accumulations and table rows are bit-identical to the
// sequential path regardless of worker count or goroutine interleaving.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker cap used when Map is called
// with workers <= 0. Zero means GOMAXPROCS. It is read atomically so
// concurrent sweeps may consult it while a CLI flag handler sets it.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker cap used by
// Map when its workers argument is <= 0. n <= 0 restores the GOMAXPROCS
// default. The eantsim -parallel flag routes here.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers reports the effective default worker cap: the value set
// by SetDefaultWorkers, or GOMAXPROCS when unset.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the n results in index order. workers <= 0 uses
// DefaultWorkers(); workers == 1 runs every call inline on the calling
// goroutine, which is the reference sequential path.
//
// Work items are claimed in strictly increasing index order. When a call
// fails, no further items are claimed, already-running items finish, and
// Map returns the error of the lowest-index failed item — the same error
// a sequential loop that stops at the first failure would return
// (indices below the first failure always run to completion before the
// failure can halt claiming). On error the result slice is nil.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorkers(n, workers, func(_, i int) (T, error) { return fn(i) })
}

// Workers reports the worker count MapWorkers will actually use for n
// items: workers (or DefaultWorkers when <= 0) clamped to n. Callers
// sizing per-worker state (one warm simulation world per worker) use it
// to allocate exactly the slots that will be touched.
func Workers(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// MapWorkers is Map with the worker identity exposed: fn(worker, i) runs
// with worker in [0, Workers(n, workers)), and no two concurrent calls
// share a worker index. Per-worker state (scratch arenas, warm simulation
// worlds) indexed by worker therefore needs no locking; items claimed by
// the same worker see its state in strictly increasing index order. The
// inline path (effective worker count 1) always passes worker 0.
func MapWorkers[T any](n, workers int, fn func(worker, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(n, workers)
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(0, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next   atomic.Int64 // next index to claim
		failed atomic.Bool  // stop claiming new items
		mu     sync.Mutex
		errIdx = -1
		errVal error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, errVal = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(w, i)
				if err != nil {
					record(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, errVal
	}
	return out, nil
}

// ForEach is Map for work that produces no value.
func ForEach(n, workers int, fn func(i int) error) error {
	_, err := Map(n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
