package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(100, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	out, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Map(0) = %v, %v; want nil, nil", out, err)
	}
	out, err = Map(-3, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Map(-3) = %v, %v; want nil, nil", out, err)
	}
}

// TestMapWorkersOneRunsInline pins the reference path: with workers == 1
// every call runs on the calling goroutine, in index order, stopping at
// the first error exactly like a plain loop.
func TestMapWorkersOneRunsInline(t *testing.T) {
	main := goroutineID()
	var order []int
	_, err := Map(5, 1, func(i int) (int, error) {
		if goroutineID() != main {
			t.Error("workers=1 ran fn off the calling goroutine")
		}
		order = append(order, i)
		if i == 3 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

// TestMapBoundedConcurrency asserts the pool never runs more than the
// requested number of calls at once.
func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(64, workers, func(i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		// Give the scheduler chances to interleave so an unbounded pool
		// would actually be observed exceeding the cap.
		for y := 0; y < 4; y++ {
			runtime.Gosched()
		}
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker cap %d", p, workers)
	}
}

// TestMapReturnsLowestIndexError pins the deterministic error rule: the
// error returned is the one a sequential stop-at-first-failure loop would
// have hit, regardless of which goroutine failed first in wall-clock time.
func TestMapReturnsLowestIndexError(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("fail@%d", i) }
	for trial := 0; trial < 50; trial++ {
		out, err := Map(32, 8, func(i int) (int, error) {
			if i == 7 || i == 19 || i == 31 {
				return 0, errAt(i)
			}
			return i, nil
		})
		if out != nil {
			t.Fatal("result slice must be nil on error")
		}
		if err == nil || err.Error() != "fail@7" {
			t.Fatalf("trial %d: err = %v, want fail@7", trial, err)
		}
	}
}

func TestMapStopsClaimingAfterFailure(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(1000, 2, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 100 {
		t.Errorf("ran %d items after an index-0 failure; claiming did not stop", n)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(100, 4, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Errorf("sum = %d, want 4950", sum.Load())
	}
	if err := ForEach(10, 4, func(i int) error {
		if i == 2 {
			return errors.New("nope")
		}
		return nil
	}); err == nil || err.Error() != "nope" {
		t.Errorf("err = %v, want nope", err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	t.Cleanup(func() { SetDefaultWorkers(0) })
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("unset DefaultWorkers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("DefaultWorkers() = %d, want 3", got)
	}
	SetDefaultWorkers(-5)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative reset: DefaultWorkers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// goroutineID returns the current goroutine's ID from its stack header
// ("goroutine N [running]:"), stable for the goroutine's lifetime.
func goroutineID() string {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	return strings.Fields(string(buf[:n]))[1]
}
