package tabwrite

import (
	"strings"
	"testing"
)

func TestTableRendersAligned(t *testing.T) {
	tb := New("Energy", "machine", "joules")
	tb.AddRow("Desktop", 123.456)
	tb.AddRow("Atom", 7.0)
	out := tb.String()
	if !strings.Contains(out, "Energy") || !strings.Contains(out, "machine") {
		t.Errorf("missing title/header in output:\n%s", out)
	}
	if !strings.Contains(out, "Desktop") || !strings.Contains(out, "123.5") {
		t.Errorf("missing row data in output:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow(1)
	out := tb.String()
	if strings.HasPrefix(out, "\n") || strings.Contains(out, "---") {
		t.Errorf("untitled table rendered a title block:\n%q", out)
	}
}

func TestCellFormatsDecimals(t *testing.T) {
	if got := Cell(3.14159, 2); got != "3.14" {
		t.Errorf("Cell = %q, want 3.14", got)
	}
	if got := Cell(2, 0); got != "2" {
		t.Errorf("Cell = %q, want 2", got)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := New("t", "name", "note")
	tb.AddRow("a,b", `say "hi"`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestAddRowFormatsFloats(t *testing.T) {
	tb := New("t", "v")
	tb.AddRow(float32(1.5))
	tb.AddRow(0.000123456)
	if tb.Rows[0][0] != "1.5" {
		t.Errorf("float32 cell = %q", tb.Rows[0][0])
	}
	if tb.Rows[1][0] != "0.0001235" {
		t.Errorf("small float cell = %q", tb.Rows[1][0])
	}
}
