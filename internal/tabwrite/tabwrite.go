// Package tabwrite renders experiment results as aligned text tables and
// CSV, so every harness prints the same rows the paper's tables and
// figures report.
package tabwrite

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells render via fmt.Sprint. Floats format with
// %.4g; use Cell for custom formatting.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Cell formats a float with the given decimal places, for AddRow.
func Cell(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title))); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		if _, err := fmt.Fprintln(tw, strings.Join(t.Header, "\t")); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when
// needed).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the aligned-table form.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}
