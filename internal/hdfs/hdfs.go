// Package hdfs models the pieces of the Hadoop Distributed File System
// that task assignment depends on: block-granular input files with
// replicated placement across the fleet. The data-locality term of E-Ant's
// heuristic function (Eq. 7, "η = ∞ if task has local data") needs real
// block→machine maps to be meaningful, so every job's input is placed here
// before its map tasks become schedulable.
//
// Placement follows HDFS defaults for off-cluster writers: each block's
// replicas land on distinct, randomly chosen machines, balanced so no
// machine holds a disproportionate share.
package hdfs

import (
	"fmt"

	"eant/internal/cluster"
	"eant/internal/sim"
)

// DefaultReplication is HDFS's default replica count.
const DefaultReplication = 3

// File is one job's input: Blocks[i] lists the machine IDs holding a
// replica of block i.
type File struct {
	JobID  int
	Blocks [][]int
}

// Namespace places and resolves input files. Not safe for concurrent use;
// the simulation loop is single-threaded.
type Namespace struct {
	cluster     *cluster.Cluster //eant:reset-keep the namespace serves one fixed fleet for its lifetime
	replication int              //eant:reset-keep configuration fixed at construction
	files       map[int]*File
	// blocksHeld counts replicas per machine, used to balance placement.
	blocksHeld []int
	// excluded marks compute-only machines that never receive replicas.
	excluded map[int]bool
	// covering, when set, constrains each block's first replica to these
	// machines (the consolidation covering subset).
	covering []int
	rng      *sim.RNG
	// recycled holds Files retired by Reset, keyed by job ID, so a warm
	// rerun of the same workload re-places into the same backing arrays.
	recycled map[int]*File
}

// NewNamespace returns an empty namespace over c. replication is clamped
// to the cluster size.
func NewNamespace(c *cluster.Cluster, replication int, rng *sim.RNG) *Namespace {
	if replication <= 0 {
		replication = DefaultReplication
	}
	if replication > c.Size() {
		replication = c.Size()
	}
	return &Namespace{
		cluster:     c,
		replication: replication,
		files:       make(map[int]*File),
		blocksHeld:  make([]int, c.Size()),
		rng:         rng,
	}
}

// Replication returns the effective replica count.
func (ns *Namespace) Replication() int { return ns.replication }

// Reset empties the namespace and rewinds its RNG stream to the given
// seed, so a subsequent identical Place sequence reproduces the original
// placements bit for bit. Retired Files move to a recycling pool keyed by
// job ID; exclusions and the covering constraint are dropped (the driver
// re-applies them before placing).
func (ns *Namespace) Reset(seed int64) {
	if ns.recycled == nil {
		ns.recycled = make(map[int]*File, len(ns.files))
	}
	for id, f := range ns.files {
		ns.recycled[id] = f
	}
	clear(ns.files)
	for i := range ns.blocksHeld {
		ns.blocksHeld[i] = 0
	}
	ns.excluded = nil
	ns.covering = nil
	ns.rng.Reseed(seed)
}

// PreferFirstReplicaOn constrains every future block's *first* replica to
// the given machine set — the "covering subset" of Leverich & Kozyrakis
// that keeps one copy of all data on always-on machines so the rest of
// the fleet may power down without losing availability. Remaining
// replicas place anywhere. Call before Place.
func (ns *Namespace) PreferFirstReplicaOn(machineIDs []int) {
	ns.covering = nil
	for _, id := range machineIDs {
		if id < 0 || id >= ns.cluster.Size() {
			panic(fmt.Sprintf("hdfs: covering machine %d in fleet of %d", id, ns.cluster.Size()))
		}
		ns.covering = append(ns.covering, id)
	}
}

// ExcludeFromPlacement marks a machine as compute-only (no DataNode):
// future placements never put replicas there. Must be called before any
// Place whose blocks should honor it. Excluding every machine panics at
// the next Place.
func (ns *Namespace) ExcludeFromPlacement(machineID int) {
	if machineID < 0 || machineID >= ns.cluster.Size() {
		panic(fmt.Sprintf("hdfs: exclude of machine %d in fleet of %d", machineID, ns.cluster.Size()))
	}
	if ns.excluded == nil {
		ns.excluded = make(map[int]bool)
	}
	ns.excluded[machineID] = true
}

// Place creates the input file for a job with the given block count,
// choosing replica sets that are distinct per block and globally balanced.
// Placing a job twice is a driver bug and returns an error.
func (ns *Namespace) Place(jobID, blocks int) (*File, error) {
	if _, ok := ns.files[jobID]; ok {
		return nil, fmt.Errorf("hdfs: job %d already placed", jobID)
	}
	if blocks <= 0 {
		return nil, fmt.Errorf("hdfs: job %d has %d blocks", jobID, blocks)
	}
	f := ns.recycled[jobID]
	if f != nil && len(f.Blocks) == blocks {
		delete(ns.recycled, jobID)
	} else {
		f = &File{JobID: jobID, Blocks: make([][]int, blocks)}
	}
	for b := 0; b < blocks; b++ {
		f.Blocks[b] = ns.pickReplicas(f.Blocks[b][:0])
	}
	ns.files[jobID] = f
	return f, nil
}

// pickReplicas selects replication distinct placeable machines, preferring
// machines holding fewer replicas (power-of-two-choices balancing with
// random tie-breaking). The result is built in dst's backing array when it
// has capacity. Membership tests scan the (≤ replication-long) result
// directly — same draws, no per-block map.
func (ns *Namespace) pickReplicas(dst []int) []int {
	n := ns.cluster.Size()
	placeable := n - len(ns.excluded)
	if placeable <= 0 {
		panic("hdfs: every machine excluded from placement")
	}
	reps := ns.replication
	if reps > placeable {
		reps = placeable
	}
	chosen := dst[:0]
	inChosen := func(id int) bool {
		for _, c := range chosen {
			if c == id {
				return true
			}
		}
		return false
	}
	usable := func(id int) bool { return !inChosen(id) && !ns.excluded[id] }
	if len(ns.covering) > 0 {
		// First replica on the least-loaded covering machine (random
		// tie-break via a two-candidate draw).
		a := ns.covering[ns.rng.Intn(len(ns.covering))]
		b := ns.covering[ns.rng.Intn(len(ns.covering))]
		pick := a
		if usable(b) && (!usable(a) || ns.blocksHeld[b] < ns.blocksHeld[a]) {
			pick = b
		}
		if usable(pick) {
			ns.blocksHeld[pick]++
			chosen = append(chosen, pick)
		}
	}
	for len(chosen) < reps {
		// Two random candidates; keep the less-loaded usable one.
		a := ns.rng.Intn(n)
		b := ns.rng.Intn(n)
		pick := -1
		switch {
		case usable(a) && usable(b):
			pick = a
			if ns.blocksHeld[b] < ns.blocksHeld[a] {
				pick = b
			}
		case usable(a):
			pick = a
		case usable(b):
			pick = b
		}
		if pick < 0 {
			// Linear fallback: scan for the least-loaded usable machine.
			for id := 0; id < n; id++ {
				if !usable(id) {
					continue
				}
				if pick < 0 || ns.blocksHeld[id] < ns.blocksHeld[pick] {
					pick = id
				}
			}
		}
		ns.blocksHeld[pick]++
		chosen = append(chosen, pick)
	}
	return chosen
}

// File returns the placed file for jobID, or nil.
func (ns *Namespace) File(jobID int) *File { return ns.files[jobID] }

// Replicas returns the machine IDs holding block b of jobID's input.
func (ns *Namespace) Replicas(jobID, block int) []int {
	f := ns.files[jobID]
	if f == nil {
		panic(fmt.Sprintf("hdfs: job %d not placed", jobID))
	}
	if block < 0 || block >= len(f.Blocks) {
		panic(fmt.Sprintf("hdfs: job %d has no block %d", jobID, block))
	}
	return f.Blocks[block]
}

// IsLocal reports whether machineID holds a replica of block b of jobID.
func (ns *Namespace) IsLocal(jobID, block, machineID int) bool {
	for _, id := range ns.Replicas(jobID, block) {
		if id == machineID {
			return true
		}
	}
	return false
}

// Remove drops a job's file (job retired), releasing its placement load.
func (ns *Namespace) Remove(jobID int) {
	f := ns.files[jobID]
	if f == nil {
		return
	}
	for _, reps := range f.Blocks {
		for _, id := range reps {
			ns.blocksHeld[id]--
		}
	}
	delete(ns.files, jobID)
}

// BlocksHeld returns how many replicas machine id currently holds.
func (ns *Namespace) BlocksHeld(id int) int { return ns.blocksHeld[id] }
