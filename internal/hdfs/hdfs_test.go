package hdfs

import (
	"testing"
	"testing/quick"

	"eant/internal/cluster"
	"eant/internal/sim"
)

func testCluster(n int) *cluster.Cluster {
	return cluster.MustNew(cluster.Group{Spec: cluster.SpecDesktop, Count: n})
}

func TestPlaceReplicasDistinct(t *testing.T) {
	ns := NewNamespace(testCluster(10), 3, sim.NewRNG(1))
	f, err := ns.Place(1, 200)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	for b, reps := range f.Blocks {
		if len(reps) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", b, len(reps))
		}
		seen := map[int]bool{}
		for _, id := range reps {
			if seen[id] {
				t.Fatalf("block %d has duplicate replica on machine %d", b, id)
			}
			seen[id] = true
			if id < 0 || id >= 10 {
				t.Fatalf("block %d replica on nonexistent machine %d", b, id)
			}
		}
	}
}

func TestPlaceBalanced(t *testing.T) {
	c := testCluster(8)
	ns := NewNamespace(c, 3, sim.NewRNG(2))
	if _, err := ns.Place(1, 800); err != nil {
		t.Fatal(err)
	}
	// 800 blocks × 3 replicas over 8 machines = 300 expected per machine.
	for id := 0; id < 8; id++ {
		held := ns.BlocksHeld(id)
		if held < 200 || held > 400 {
			t.Errorf("machine %d holds %d replicas, want ≈ 300", id, held)
		}
	}
}

func TestReplicationClampedToClusterSize(t *testing.T) {
	ns := NewNamespace(testCluster(2), 3, sim.NewRNG(3))
	if ns.Replication() != 2 {
		t.Fatalf("Replication() = %d, want clamped 2", ns.Replication())
	}
	f, err := ns.Place(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, reps := range f.Blocks {
		if len(reps) != 2 {
			t.Fatalf("replica count %d, want 2", len(reps))
		}
	}
}

func TestDefaultReplicationApplied(t *testing.T) {
	ns := NewNamespace(testCluster(5), 0, sim.NewRNG(4))
	if ns.Replication() != DefaultReplication {
		t.Errorf("Replication() = %d, want %d", ns.Replication(), DefaultReplication)
	}
}

func TestPlaceErrors(t *testing.T) {
	ns := NewNamespace(testCluster(5), 3, sim.NewRNG(5))
	if _, err := ns.Place(1, 0); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := ns.Place(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Place(1, 10); err == nil {
		t.Error("duplicate placement accepted")
	}
}

func TestIsLocalMatchesReplicas(t *testing.T) {
	ns := NewNamespace(testCluster(6), 3, sim.NewRNG(6))
	if _, err := ns.Place(7, 50); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 50; b++ {
		reps := ns.Replicas(7, b)
		onReplica := map[int]bool{}
		for _, id := range reps {
			onReplica[id] = true
		}
		for id := 0; id < 6; id++ {
			if ns.IsLocal(7, b, id) != onReplica[id] {
				t.Fatalf("IsLocal(7,%d,%d) inconsistent with Replicas", b, id)
			}
		}
	}
}

func TestRemoveReleasesLoad(t *testing.T) {
	ns := NewNamespace(testCluster(4), 2, sim.NewRNG(7))
	if _, err := ns.Place(1, 100); err != nil {
		t.Fatal(err)
	}
	ns.Remove(1)
	for id := 0; id < 4; id++ {
		if held := ns.BlocksHeld(id); held != 0 {
			t.Errorf("machine %d still holds %d replicas after Remove", id, held)
		}
	}
	if ns.File(1) != nil {
		t.Error("File(1) still present after Remove")
	}
	ns.Remove(1) // idempotent
}

func TestUnplacedLookupsPanic(t *testing.T) {
	ns := NewNamespace(testCluster(3), 2, sim.NewRNG(8))
	for _, fn := range []func(){
		func() { ns.Replicas(1, 0) },
		func() { ns.IsLocal(1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("lookup on unplaced job did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestExcludeFromPlacement(t *testing.T) {
	ns := NewNamespace(testCluster(5), 3, sim.NewRNG(10))
	ns.ExcludeFromPlacement(2)
	f, err := ns.Place(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for b, reps := range f.Blocks {
		for _, id := range reps {
			if id == 2 {
				t.Fatalf("block %d placed on excluded machine 2", b)
			}
		}
	}
	if ns.BlocksHeld(2) != 0 {
		t.Error("excluded machine holds replicas")
	}
}

func TestExcludeClampsReplication(t *testing.T) {
	ns := NewNamespace(testCluster(3), 3, sim.NewRNG(11))
	ns.ExcludeFromPlacement(0)
	f, err := ns.Place(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, reps := range f.Blocks {
		if len(reps) != 2 {
			t.Fatalf("replica count %d with one machine excluded, want 2", len(reps))
		}
	}
}

func TestExcludeAllPanicsOnPlace(t *testing.T) {
	ns := NewNamespace(testCluster(2), 1, sim.NewRNG(12))
	ns.ExcludeFromPlacement(0)
	ns.ExcludeFromPlacement(1)
	defer func() {
		if recover() == nil {
			t.Error("placement with all machines excluded did not panic")
		}
	}()
	_, _ = ns.Place(1, 1)
}

func TestExcludeInvalidMachinePanics(t *testing.T) {
	ns := NewNamespace(testCluster(2), 1, sim.NewRNG(13))
	defer func() {
		if recover() == nil {
			t.Error("excluding nonexistent machine did not panic")
		}
	}()
	ns.ExcludeFromPlacement(9)
}

func TestPlacementInvariantsProperty(t *testing.T) {
	f := func(seed int64, blocks uint8, machines uint8) bool {
		n := int(machines)%14 + 2
		b := int(blocks)%60 + 1
		ns := NewNamespace(testCluster(n), 3, sim.NewRNG(seed))
		file, err := ns.Place(1, b)
		if err != nil {
			return false
		}
		total := 0
		for _, reps := range file.Blocks {
			want := 3
			if n < 3 {
				want = n
			}
			if len(reps) != want {
				return false
			}
			seen := map[int]bool{}
			for _, id := range reps {
				if seen[id] || id < 0 || id >= n {
					return false
				}
				seen[id] = true
			}
			total += len(reps)
		}
		held := 0
		for id := 0; id < n; id++ {
			held += ns.BlocksHeld(id)
		}
		return held == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
