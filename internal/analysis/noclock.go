package analysis

import (
	"go/ast"
	"strings"
)

// clockAllowlist names the internal packages permitted to read the wall
// clock. Only the parallel runner's plumbing qualifies (worker pools and
// profiling hooks live at the process boundary); everything else inside
// internal/ runs on the simulator's virtual clock. cmd/ and examples/ are
// process entry points and are exempt wholesale.
var clockAllowlist = map[string]bool{
	"eant/internal/parallel": true,
}

// wallClockFuncs are the time-package calls that observe or schedule on
// the wall clock. Pure constructors like time.Duration arithmetic and
// formatting are fine — the contract is about *reading* real time.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Sleep":     true,
}

// NoClock enforces the virtual-clock contract: simulation packages under
// internal/ must not read the wall clock — sim.Engine owns time. A
// time.Now snuck into a scheduler or experiment would make runs
// irreproducible in a way seeded tests cannot reliably catch.
//
// The check is interprocedural: direct time.Now/time.Since calls are
// flagged where they occur, and calls into *unchecked* packages (the
// clock allowlist, cmd/, anything outside internal/) whose callees
// transitively reach the wall clock are flagged at the call site that
// imports the taint, with the witness chain in the message. Escape with
// "//eant:clock-ok <reason>" on the call.
var NoClock = &Analyzer{
	Name: "noclock",
	Doc:  "forbid wall-clock reads (time.Now, time.Since, timers) in internal simulation packages, including transitively through unchecked packages; the sim engine owns time",
	Run:  runNoClock,
}

// clockChecked reports whether a package's own body is subject to the
// intra-package noclock rule — taints inside it are flagged directly
// there, so edges into it need no frontier report.
func clockChecked(path string) bool {
	return strings.HasPrefix(path, "eant/internal/") && !clockAllowlist[path]
}

func runNoClock(pass *Pass) error {
	path := pass.Path()
	if !clockChecked(path) {
		return nil
	}
	reportTransitiveTaint(pass, TaintClock, clockChecked, "clock-ok",
		"use the sim engine's virtual clock")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pass.calleePkgFunc(call)
			if ok && pkg == "time" && wallClockFuncs[name] {
				pass.Reportf(call.Pos(), "wall-clock call time.%s in simulation package %s: use the sim engine's virtual clock (wall time is allowed only in cmd/ and the internal/parallel allowlist)", name, path)
			}
			return true
		})
	}
	return nil
}
