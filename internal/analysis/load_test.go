package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"eant/internal/analysis"
)

func TestModulePath(t *testing.T) {
	got, err := analysis.ModulePath(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if got != "eant" {
		t.Fatalf("module path %q, want eant", got)
	}
}

func TestPackageDirsCoversModuleAndSkipsTestdata(t *testing.T) {
	dirs, err := analysis.PackageDirs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, dp := range dirs {
		seen[dp[1]] = true
		if strings.Contains(dp[0], "testdata") {
			t.Errorf("testdata directory leaked into package list: %s", dp[0])
		}
	}
	for _, want := range []string{"eant", "eant/cmd/eantlint", "eant/cmd/eantsim", "eant/internal/analysis", "eant/internal/core", "eant/internal/sim"} {
		if !seen[want] {
			t.Errorf("package list missing %s (got %d packages)", want, len(dirs))
		}
	}
}

func TestPathDirectiveOverridesImportPath(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "noclock_bad"), "fixture/noclock_bad")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "eant/internal/core" {
		t.Fatalf("directive-overridden path %q, want eant/internal/core", pkg.Path)
	}
}
