package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder enforces the iteration-order contract: a `for range` over a map
// visits keys in a randomized order, so any loop whose body makes that
// order observable — appending to a slice, writing output, feeding the
// RNG, or last-writer-wins assignments from the loop variables — is a
// latent nondeterminism bug (exactly the class PR 2 had to fix in the
// greedy ablation after tests missed it). The fix is to sort the keys
// first and range over the slice; provably order-immaterial loops may
// instead carry a "//eant:unordered-ok <reason>" annotation.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body observes iteration order (append, output, RNG draws, loop-var assignment); sort keys or annotate //eant:unordered-ok",
	Run:  runMapOrder,
}

// unorderedRange reports whether r iterates in map-hash order: directly
// over a map, or over the maps.Keys/Values/All iterators.
func (p *Pass) unorderedRange(r *ast.RangeStmt) bool {
	if t := p.TypeOf(r.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return true
		}
	}
	if call, ok := r.X.(*ast.CallExpr); ok {
		if pkg, name, ok := p.calleePkgFunc(call); ok && pkg == "maps" {
			switch name {
			case "Keys", "Values", "All":
				return true
			}
		}
	}
	return false
}

// checkUnorderedAnnotation handles the escape hatch for one unordered
// range: it returns true (and stops further checks) when the loop carries
// an //eant:unordered-ok annotation, reporting the annotation itself if
// its mandatory one-line reason is missing.
func (p *Pass) checkUnorderedAnnotation(r *ast.RangeStmt) bool {
	reason, ok := p.Annotation(r.Pos(), "unordered-ok")
	if !ok {
		return false
	}
	if reason == "" {
		p.Reportf(r.Pos(), "//eant:unordered-ok annotation needs a one-line reason")
	}
	return true
}

// loopVars returns the objects bound by the range clause.
func (p *Pass) loopVars(r *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			r, ok := n.(*ast.RangeStmt)
			if !ok || !pass.unorderedRange(r) {
				return true
			}
			if pass.checkUnorderedAnnotation(r) {
				return true
			}
			pass.checkMapRangeBody(f, r)
			return true
		})
	}
	return nil
}

// checkMapRangeBody walks one unordered loop body for the four
// order-observing triggers. Nested unordered ranges are skipped — they are
// visited and reported on their own.
func (pass *Pass) checkMapRangeBody(f *ast.File, r *ast.RangeStmt) {
	vars := pass.loopVars(r)
	fn := funcFor(f, r)
	ast.Inspect(r.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != r && pass.unorderedRange(inner) {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			pass.checkMapRangeCall(f, fn, r, x)
		case *ast.AssignStmt:
			if x.Tok != token.ASSIGN {
				return true
			}
			for i, lhs := range x.Lhs {
				if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
					// Keyed writes (m2[k] = v) land on distinct cells per
					// iteration; the visit order is not observable.
					continue
				}
				obj := pass.rootObject(lhs)
				if !declaredOutside(obj, r) {
					continue
				}
				if i < len(x.Rhs) && pass.isAppendCall(x.Rhs[i]) {
					// s = append(s, ...) is the append trigger's domain,
					// including its collect-then-sort suppression.
					continue
				}
				if i < len(x.Rhs) && pass.usesAny(x.Rhs[i], vars) {
					pass.Reportf(x.Pos(), "assignment to %s from a map-range loop variable: last writer wins in randomized order; sort the keys first or annotate //eant:unordered-ok", obj.Name())
				}
			}
		}
		return true
	})
}

// checkMapRangeCall classifies one call inside an unordered loop body:
// append-to-outer-slice (unless the slice is sorted after the loop),
// output writes, and RNG draws.
func (pass *Pass) checkMapRangeCall(f *ast.File, fn *ast.FuncDecl, r *ast.RangeStmt, call *ast.CallExpr) {
	// append to a slice that outlives the loop.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			obj := pass.rootObject(call.Args[0])
			if declaredOutside(obj, r) && !pass.sortedAfter(fn, r, obj) {
				pass.Reportf(call.Pos(), "append to %s inside unordered map iteration: element order depends on the map hash seed; sort the keys first or annotate //eant:unordered-ok", obj.Name())
			}
			return
		}
	}

	// Output written during iteration.
	if pkg, name, ok := pass.calleePkgFunc(call); ok && pkg == "fmt" {
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			pass.Reportf(call.Pos(), "fmt.%s inside unordered map iteration: output line order depends on the map hash seed; sort the keys first or annotate //eant:unordered-ok", name)
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if name := sel.Sel.Name; len(name) >= 5 && name[:5] == "Write" {
			if _, isMethod := pass.Info.Selections[sel]; isMethod {
				pass.Reportf(call.Pos(), "%s call inside unordered map iteration: write order depends on the map hash seed; sort the keys first or annotate //eant:unordered-ok", name)
				return
			}
		}
	}

	// RNG draws: a method on sim.RNG, or an RNG handed to a callee.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if namedFrom(pass.TypeOf(sel.X), "eant/internal/sim", "RNG") {
			pass.Reportf(call.Pos(), "RNG draw inside unordered map iteration: consumption order depends on the map hash seed; sort the keys first or annotate //eant:unordered-ok")
			return
		}
	}
	for _, arg := range call.Args {
		if namedFrom(pass.TypeOf(arg), "eant/internal/sim", "RNG") {
			pass.Reportf(call.Pos(), "RNG passed to a callee inside unordered map iteration: draw order depends on the map hash seed; sort the keys first or annotate //eant:unordered-ok")
			return
		}
	}
}

// isAppendCall reports whether e is a call to the append builtin.
func (p *Pass) isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// usesAny reports whether e references any of the given objects.
func (p *Pass) usesAny(e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[p.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether obj is passed to a sort/slices call after
// the loop within the same function — the canonical collect-then-sort
// pattern, which erases iteration order before anyone observes it.
func (pass *Pass) sortedAfter(fn *ast.FuncDecl, r *ast.RangeStmt, obj types.Object) bool {
	if fn == nil || fn.Body == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < r.End() {
			return true
		}
		if pkg, _, ok := pass.calleePkgFunc(call); !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if pass.usesAny(arg, map[types.Object]bool{obj: true}) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
