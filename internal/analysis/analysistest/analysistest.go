// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against "// want" expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the project's
// stdlib-only framework.
//
// A fixture is one directory under testdata/src/<name>/ holding a small,
// type-checkable package. Lines that must produce a diagnostic carry a
// trailing comment with one quoted regexp per expected diagnostic:
//
//	time.Now() // want `wall-clock call`
//
// Any diagnostic on a line without a matching expectation, and any
// expectation without a matching diagnostic, fails the test. Fixture
// packages may override their import path with "//eantlint:path", which
// is how path-scoped analyzers (noclock, floatsum's equality rule,
// statsmut) are exercised from testdata.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"eant/internal/analysis"
)

// want is one expectation: a compiled regexp at a file:line, matched off
// against diagnostics as they arrive.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE extracts quoted or backquoted regexps from a "// want" comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// loader is shared across Run calls so dependency packages (fmt, time,
// eant/internal/sim, ...) are type-checked once per test binary. Tests in
// one package run sequentially unless they opt into t.Parallel; Run
// serializes nothing itself.
var loader = analysis.NewLoader()

// Run loads the fixture package in dir, applies the analyzers, and
// reports every mismatch between produced diagnostics and the fixture's
// "// want" expectations.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := loader.LoadDir(dir, "fixture/"+filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	wants, err := parseWants(dir)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		if !claim(wants, filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: %s (%s)",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// RunModule loads several fixture directories as one module — listed
// dependency-first, so a later fixture can import an earlier one by its
// "fixture/<base>" path — applies the analyzers with cross-package fact
// propagation, and checks "// want" expectations across every directory.
// This is the harness for the interprocedural fixtures: the old
// single-package Run wraps its fixture in a degenerate one-package
// module and cannot see taints that cross fixture boundaries.
func RunModule(t *testing.T, dirs []string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	var pkgs []*analysis.Package
	var wants []*want
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, "fixture/"+filepath.Base(dir))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
		ws, err := parseWants(dir)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}
	diags, err := analysis.RunModule(analysis.NewModule(pkgs), analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %v: %v", dirs, err)
	}
	for _, d := range diags {
		if !claim(wants, filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: %s (%s)",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation on (file, line) whose
// regexp matches msg.
func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants scans every fixture file for "// want" comments.
func parseWants(dir string) ([]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, spec, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			quoted := wantRE.FindAllString(spec, -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment %q", e.Name(), i+1, spec)
			}
			for _, q := range quoted {
				var pattern string
				if strings.HasPrefix(q, "`") {
					pattern = strings.Trim(q, "`")
				} else {
					unq := q[1 : len(q)-1]
					pattern = strings.ReplaceAll(strings.ReplaceAll(unq, `\"`, `"`), `\\`, `\`)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", e.Name(), i+1, q, err)
				}
				wants = append(wants, &want{file: e.Name(), line: i + 1, re: re, raw: q})
			}
		}
	}
	return wants, nil
}
