package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the zero-allocation contract on the engine inner
// loop: functions marked hot by the reachability pass (reach.go) must not
// execute allocating constructs in steady state. The warm-run benchmarks
// (BENCH_5.json) depend on the offer path staying allocation-free; one
// closure or map literal per heartbeat undoes the PR-7/PR-8 work at
// 1024-machine scale.
//
// Flagged constructs, chosen to be cheap to prove allocating:
//
//   - closure literals that capture variables (non-capturing literals
//     compile to static functions and are skipped)
//   - make of a map, slice or channel
//   - map and slice composite literals
//   - append whose destination is a clearly-fresh local (declared nil or
//     initialized from a composite literal) — growth is guaranteed;
//     appends to parameters, fields, make()-backed or re-sliced scratch
//     buffers are allowed, matching the repo's scratch-buffer idiom
//   - fmt.Sprintf/Sprint/Sprintln/Errorf and string concatenation
//   - interface boxing at explicit conversions of non-pointer-shaped values
//
// Escape hatches: "//eant:alloc-ok <reason>" on the construct's line (or
// the line above) accepts a justified allocation — lazy one-time
// construction, error paths, capacity-bounded growth. "//eant:hot-stop
// <reason>" on a function declaration removes the function (and anything
// reachable only through it) from the hot set entirely; see reach.go.
// Arguments to panic() are exempt: a panicking path is already off the
// steady-state loop.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs (closures, make, map/slice literals, growing append, Sprintf, interface boxing) in functions reachable from the engine inner loop",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, n := range pass.Mod.Graph.Nodes {
		if n.Pkg != pass.pkg {
			continue
		}
		if n.facts.hotStopNR {
			pass.Reportf(n.Pos(), "//eant:hot-stop annotation must carry a reason")
		}
		if !n.Hot() || n.Body == nil {
			continue
		}
		checkHotAllocs(pass, n)
	}
	return nil
}

func checkHotAllocs(pass *Pass, n *Node) {
	fresh := freshSliceLocals(pass, n.Body)
	chain := n.HotChain(4)
	flag := func(pos token.Pos, what string) {
		reason, ok := pass.Annotation(pos, "alloc-ok")
		if ok && reason == "" {
			pass.Reportf(pos, "//eant:alloc-ok annotation must carry a reason")
			return
		}
		if ok {
			return
		}
		pass.Reportf(pos, "%s in hot function %s (%s); fix the allocation or annotate //eant:alloc-ok <reason>", what, n.Name, chain)
	}

	var walk func(ast.Node, bool)
	walk = func(root ast.Node, inPanic bool) {
		ast.Inspect(root, func(nd ast.Node) bool {
			switch x := nd.(type) {
			case *ast.FuncLit:
				// The literal's body is its own graph node — hot only if a
				// call edge actually reaches it — but materializing the
				// closure value allocates here if it captures.
				if x != root && capturesVariables(pass, x) && !inPanic {
					flag(x.Pos(), "closure literal captures variables")
				}
				return x == root
			case *ast.CallExpr:
				if isPanicCall(pass, x) {
					// Panic formatting is terminal; walk arguments with the
					// exemption set rather than flagging them.
					for _, a := range x.Args {
						walk(a, true)
					}
					return false
				}
				if inPanic {
					return true
				}
				if isBuiltin(pass, x.Fun, "make") {
					flag(x.Pos(), "make allocates")
					return true
				}
				if isBuiltin(pass, x.Fun, "append") && len(x.Args) > 0 {
					if obj := pass.rootObject(x.Args[0]); obj != nil && fresh[obj] {
						flag(x.Pos(), "append to freshly-declared slice grows without capacity")
					}
					return true
				}
				if pkg, name, ok := pass.calleePkgFunc(x); ok && pkg == "fmt" {
					switch name {
					case "Sprintf", "Sprint", "Sprintln", "Errorf":
						flag(x.Pos(), "fmt."+name+" allocates its result")
					}
					return true
				}
				if boxed, ok := interfaceConversion(pass, x); ok {
					flag(x.Pos(), "conversion boxes "+boxed+" into an interface")
				}
			case *ast.CompositeLit:
				t := pass.TypeOf(x)
				if inPanic || t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Map:
					flag(x.Pos(), "map literal allocates")
				case *types.Slice:
					flag(x.Pos(), "slice literal allocates")
				}
			case *ast.BinaryExpr:
				if !inPanic && x.Op == token.ADD && isString(pass.TypeOf(x)) {
					flag(x.Pos(), "string concatenation allocates")
					return false // one report per concat chain
				}
			case *ast.AssignStmt:
				if !inPanic && x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(pass.TypeOf(x.Lhs[0])) {
					flag(x.Pos(), "string concatenation allocates")
				}
			}
			return true
		})
	}
	walk(n.Body, false)
}

// freshSliceLocals collects local slice variables whose declaration
// guarantees no spare capacity: `var s []T` (nil) or `s := []T{...}`
// (composite literal, len == cap). Appending to one of these must grow.
// Locals initialized via make, a slice expression (s2 := s[:0]), a call,
// or a field read are excluded — those are the scratch-buffer shapes.
func freshSliceLocals(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	mark := func(id *ast.Ident, rhs ast.Expr) {
		obj := pass.ObjectOf(id)
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		if rhs == nil {
			fresh[obj] = true // var s []T
			return
		}
		if _, ok := unparen(rhs).(*ast.CompositeLit); ok {
			fresh[obj] = true // s := []T{...}
		}
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		switch x := nd.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && i < len(x.Rhs) {
					mark(id, x.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					mark(id, rhs)
				}
			}
		}
		return true
	})
	return fresh
}

// capturesVariables reports whether lit references any variable declared
// outside the literal itself (including enclosing parameters and the
// receiver). A literal with no captures is a static function value — no
// allocation.
func capturesVariables(pass *Pass, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		v, ok := pass.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level vars live in static storage — not captured.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if declaredOutside(v, lit) {
			captures = true
		}
		return true
	})
	return captures
}

// interfaceConversion reports whether call is an explicit conversion
// T(x) to an interface type from a non-interface, non-pointer-shaped
// value — the shape that forces a heap box. Pointers, maps, channels and
// funcs fit in the interface word directly.
func interfaceConversion(pass *Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return "", false
	}
	if !isInterface(tv.Type) {
		return "", false
	}
	argT := pass.TypeOf(call.Args[0])
	if argT == nil || isInterface(argT) {
		return "", false
	}
	switch argT.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return "", false
	}
	return argT.String(), true
}

// isPanicCall reports whether call is the builtin panic.
func isPanicCall(pass *Pass, call *ast.CallExpr) bool {
	return isBuiltin(pass, call.Fun, "panic")
}

// isBuiltin reports whether fun denotes the named universe builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
