package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"eant/internal/analysis"
)

// loadModule loads the given fixture directories with a fresh Loader and
// builds a Module over them. Fixtures used here import only the standard
// library, so a fresh Loader per call stays cheap.
func loadModule(t *testing.T, dirs ...string) *analysis.Module {
	t.Helper()
	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		full := filepath.Join("testdata", "src", dir)
		pkg, err := loader.LoadDir(full, "fixture/"+dir)
		if err != nil {
			t.Fatalf("loading %s: %v", full, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return analysis.NewModule(pkgs)
}

func nodeByName(t *testing.T, m *analysis.Module, name string) *analysis.Node {
	t.Helper()
	for _, n := range m.Graph.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no node named %s; have:\n%s", name, m.Graph.Dump())
	return nil
}

// TestGraphInterfaceDispatch: a call through an interface produces one
// dispatch edge per implementing type in the module, and the taint of
// any implementation reaches the caller.
func TestGraphInterfaceDispatch(t *testing.T) {
	m := loadModule(t, "interproc_iface")
	dump := m.Graph.Dump()
	for _, want := range []string{
		"fixture/interproc_iface.gather -> (fixture/interproc_iface.clocky).collect (dispatch)",
		"fixture/interproc_iface.gather -> (fixture/interproc_iface.pure).collect (dispatch)",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("missing edge %q in graph:\n%s", want, dump)
		}
	}
	gather := nodeByName(t, m, "fixture/interproc_iface.gather")
	if gather.Taint()&analysis.TaintClock == 0 {
		t.Errorf("gather should carry clock taint through the clocky implementation; taint=%s", gather.Taint())
	}
	pure := nodeByName(t, m, "(fixture/interproc_iface.pure).collect")
	if pure.Taint() != 0 {
		t.Errorf("pure.collect should be untainted, got %s", pure.Taint())
	}
}

// TestGraphMutualRecursion: the fixpoint terminates on a call cycle and
// both halves carry the taint introduced at the base.
func TestGraphMutualRecursion(t *testing.T) {
	m := loadModule(t, "interproc_rec")
	for _, name := range []string{
		"fixture/interproc_rec.even",
		"fixture/interproc_rec.odd",
		"fixture/interproc_rec.wall",
	} {
		if n := nodeByName(t, m, name); n.Taint()&analysis.TaintClock == 0 {
			t.Errorf("%s should carry clock taint, got %s", name, n.Taint())
		}
	}
	dump := m.Graph.Dump()
	for _, want := range []string{
		"fixture/interproc_rec.even -> fixture/interproc_rec.odd (call)",
		"fixture/interproc_rec.odd -> fixture/interproc_rec.even (call)",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("missing edge %q in graph:\n%s", want, dump)
		}
	}
}

// TestGraphMethodValues: method values bound to variables, stored in
// function-typed struct fields, or passed as arguments produce ref edges
// that carry taint to the function where the value escapes.
func TestGraphMethodValues(t *testing.T) {
	m := loadModule(t, "interproc_methodval")
	dump := m.Graph.Dump()
	for _, want := range []string{
		"fixture/interproc_methodval.build -> (fixture/interproc_methodval.worker).stamp (ref)",
		"fixture/interproc_methodval.handoff -> (fixture/interproc_methodval.worker).stamp (ref)",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("missing edge %q in graph:\n%s", want, dump)
		}
	}
	for name, wantTaint := range map[string]bool{
		"fixture/interproc_methodval.build":    true,
		"fixture/interproc_methodval.handoff":  true,
		"fixture/interproc_methodval.indirect": false,
	} {
		n := nodeByName(t, m, name)
		if got := n.Taint()&analysis.TaintClock != 0; got != wantTaint {
			t.Errorf("%s clock taint = %v, want %v", name, got, wantTaint)
		}
	}
}

// TestGraphDeterministic is the property test: two fresh loads of the
// same fixture set must produce byte-identical graphs and facts —
// sorted edges, stable node numbering, stable fixpoint witnesses.
func TestGraphDeterministic(t *testing.T) {
	dirs := []string{"interproc_iface", "interproc_methodval", "interproc_rec"}
	m1 := loadModule(t, dirs...)
	m2 := loadModule(t, dirs...)
	if d1, d2 := m1.Graph.Dump(), m2.Graph.Dump(); d1 != d2 {
		t.Errorf("graph dumps differ across loads:\n--- first\n%s--- second\n%s", d1, d2)
	}
	if f1, f2 := m1.Graph.DumpFacts(), m2.Graph.DumpFacts(); f1 != f2 {
		t.Errorf("fact dumps differ across loads:\n--- first\n%s--- second\n%s", f1, f2)
	}
	// Loading the same directories in a different order must converge to
	// the same sorted module view.
	m3 := loadModule(t, "interproc_rec", "interproc_iface", "interproc_methodval")
	if d1, d3 := m1.Graph.Dump(), m3.Graph.Dump(); d1 != d3 {
		t.Errorf("graph depends on load order:\n--- sorted\n%s--- shuffled\n%s", d1, d3)
	}
	if f1, f3 := m1.Graph.DumpFacts(), m3.Graph.DumpFacts(); f1 != f3 {
		t.Errorf("facts depend on load order:\n--- sorted\n%s--- shuffled\n%s", f1, f3)
	}
}
