package analysis_test

import (
	"path/filepath"
	"testing"

	"eant/internal/analysis"
	"eant/internal/analysis/analysistest"
)

// fixture maps one testdata package to the analyzer it exercises. Every
// analyzer has at least one fixture with a firing ("// want") line, so a
// silently dead rule fails the suite.
var fixtures = []struct {
	dir      string
	analyzer *analysis.Analyzer
}{
	{"rngonly_bad", analysis.RngOnly},
	{"rngonly_sim", analysis.RngOnly},
	{"noclock_bad", analysis.NoClock},
	{"noclock_parallel", analysis.NoClock},
	{"noclock_cmd", analysis.NoClock},
	{"maporder", analysis.MapOrder},
	{"floatsum_accum", analysis.FloatSum},
	{"floatsum_eq", analysis.FloatSum},
	{"statsmut_driver", analysis.StatsMut},
	{"statsmut_sched", analysis.StatsMut},
	{"hotclosure_driver", analysis.HotClosure},
	{"hotclosure_hotfn", analysis.HotClosure},
	{"hotalloc_hot", analysis.HotAlloc},
	{"resetstate", analysis.ResetState},
	{"ptrretain", analysis.PtrRetain},
}

func TestFixtures(t *testing.T) {
	for _, f := range fixtures {
		t.Run(f.dir+"/"+f.analyzer.Name, func(t *testing.T) {
			analysistest.Run(t, filepath.Join("testdata", "src", f.dir), f.analyzer)
		})
	}
}

// TestInterprocFixtures loads multi-package fixture modules — dependency
// first — and checks that taints and hotness cross the package boundary:
// the transitive catches the per-package analyzers miss.
func TestInterprocFixtures(t *testing.T) {
	base := filepath.Join("testdata", "src")
	t.Run("noclock+hotalloc", func(t *testing.T) {
		analysistest.RunModule(t,
			[]string{filepath.Join(base, "interproc_dep"), filepath.Join(base, "interproc_root")},
			analysis.NoClock, analysis.HotAlloc)
	})
	t.Run("rngonly", func(t *testing.T) {
		analysistest.RunModule(t,
			[]string{filepath.Join(base, "interproc_rng_dep"), filepath.Join(base, "interproc_rng_root")},
			analysis.RngOnly)
	})
}

// TestSuiteComplete pins the suite roster: adding an analyzer without
// wiring a fixture (or dropping one from All) is a test failure.
func TestSuiteComplete(t *testing.T) {
	covered := map[string]bool{}
	for _, f := range fixtures {
		covered[f.analyzer.Name] = true
	}
	all := analysis.All()
	if len(all) != 9 {
		t.Fatalf("All() has %d analyzers, want 9", len(all))
	}
	for _, a := range all {
		if !covered[a.Name] {
			t.Errorf("analyzer %s has no fixture", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}
