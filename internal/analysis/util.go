package analysis

import (
	"go/ast"
	"go/types"
)

// importedPkg resolves a qualified-identifier base (the "time" in
// time.Now) to the imported package's path, or "".
func (p *Pass) importedPkg(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// calleePkgFunc splits a call on a package-qualified function into
// (package path, function name); ok is false for method calls, locals and
// builtins.
func (p *Pass) calleePkgFunc(call *ast.CallExpr) (pkg, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	path := p.importedPkg(sel.X)
	if path == "" {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// rootObject walks an lvalue (ident, selector chain, index, deref,
// parens) down to the object of its base identifier, or nil.
func (p *Pass) rootObject(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return p.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj is declared outside node — i.e. the
// object outlives one iteration, so writes to it through an unordered loop
// are order-observable. Package-level objects (pos inside no node) count
// as outside; objects with no position (builtins) do not.
func declaredOutside(obj types.Object, node ast.Node) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() < node.Pos() || obj.Pos() >= node.End()
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// namedFrom reports whether t (after stripping pointers) is the named type
// pkgSuffix.name, matching the package by import-path suffix so fixture
// packages loaded under fake paths still match.
func namedFrom(t types.Type, pkgPath, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// funcFor returns the FuncDecl enclosing pos in file, or nil.
func funcFor(file *ast.File, pos ast.Node) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos.Pos() && pos.End() <= fd.End() {
			return fd
		}
	}
	return nil
}
