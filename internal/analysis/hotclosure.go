package analysis

import (
	"go/ast"
	"go/types"
)

// hotPathPkgs are the packages whose event scheduling sits on the
// simulator's innermost loop: the engine itself and the driver that runs
// every heartbeat, completion, and control tick through it. Closure-based
// scheduling is fine everywhere else (setup, fault campaigns, tests) —
// there it trades one small allocation for clarity on cold paths.
var hotPathPkgs = map[string]bool{
	"eant/internal/sim":       true,
	"eant/internal/mapreduce": true,
}

// closureSchedulers are the sim.Engine methods that accept a Handler
// closure, keyed to the argument index carrying it. Every is flagged at
// the call itself: it builds a self-rescheduling closure chain, so a hot
// periodic process should register a typed kind instead.
var closureSchedulers = map[string]int{
	"Schedule":      1,
	"ScheduleAfter": 1,
	"Every":         2,
}

// HotClosure enforces the typed-event contract from the calendar-queue
// refactor: inside the driver/engine hot path, events must be scheduled
// through registered kinds (RegisterKind + ScheduleKind), not closures. A
// closure literal passed to Schedule allocates per event — at 1024
// machines that is hundreds of thousands of allocations per simulated
// hour whose only job is to carry a pointer the typed payload carries for
// free. Deliberate cold-path exceptions carry "//eant:closure-ok <reason>".
//
// Scope is interprocedural since PR 9: a call site is in the hot path if
// its package is one of hotPathPkgs (the original rule) OR the enclosing
// function carries the hot fact from reach.go — so a helper in
// internal/core or internal/cluster that schedules closures on behalf of
// the driver no longer sails through.
var HotClosure = &Analyzer{
	Name: "hotclosure",
	Doc:  "forbid closure-allocating Schedule/ScheduleAfter/Every calls on sim.Engine in the driver/engine hot path or any hot-marked function; use RegisterKind + ScheduleKind",
	Run:  runHotClosure,
}

func runHotClosure(pass *Pass) error {
	pkgHot := hotPathPkgs[pass.Path()]
	hotEnclosing := map[ast.Node]bool{}
	if !pkgHot {
		for _, n := range pass.Mod.Graph.Nodes {
			if n.Pkg == pass.pkg && n.Hot() && n.Body != nil {
				hotEnclosing[n.Body] = true
			}
		}
		if len(hotEnclosing) == 0 {
			return nil
		}
	}
	for _, f := range pass.Files {
		var inHot func(root ast.Node, hot bool)
		inHot = func(root ast.Node, hot bool) {
			ast.Inspect(root, func(n ast.Node) bool {
				if n != root && !pkgHot {
					// Recurse at hot-region boundaries so nested literals
					// switch scope with their own node's fact. In a
					// hotPathPkgs package the whole file is in scope and no
					// switching happens.
					if body, ok := bodyOf(n); ok && hotEnclosing[body] != hot {
						inHot(body, !hot)
						return false
					}
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				argIdx, scheduler := closureSchedulers[sel.Sel.Name]
				if !scheduler || !namedFrom(pass.TypeOf(sel.X), "eant/internal/sim", "Engine") {
					return true
				}
				if !hot && !pkgHot {
					return true
				}
				if !pass.closureArg(call, sel.Sel.Name, argIdx) {
					return true
				}
				reason, annotated := pass.Annotation(call.Pos(), "closure-ok")
				if annotated {
					if reason == "" {
						pass.Reportf(call.Pos(), "//eant:closure-ok annotation needs a one-line reason")
					}
					return true
				}
				pass.Reportf(call.Pos(), "closure-allocating Engine.%s in the hot path: this allocates per event; register a typed kind (RegisterKind) and use ScheduleKind, or annotate //eant:closure-ok with a reason", sel.Sel.Name)
				return true
			})
		}
		inHot(f, pkgHot)
	}
	return nil
}

// bodyOf returns the body block of a function declaration or literal.
func bodyOf(n ast.Node) (*ast.BlockStmt, bool) {
	switch x := n.(type) {
	case *ast.FuncDecl:
		return x.Body, x.Body != nil
	case *ast.FuncLit:
		return x.Body, x.Body != nil
	}
	return nil, false
}

// closureArg reports whether the scheduling call allocates a closure per
// invocation: an Every call always does (its chain closure is built
// inside), a Schedule/ScheduleAfter does when the handler argument is a
// func literal or a method value — both materialize a fresh closure at the
// call site. A plain identifier bound to a prebuilt handler is allowed:
// it was allocated once, not per event.
func (pass *Pass) closureArg(call *ast.CallExpr, name string, argIdx int) bool {
	if name == "Every" {
		return true
	}
	if len(call.Args) <= argIdx {
		return false
	}
	switch arg := call.Args[argIdx].(type) {
	case *ast.FuncLit:
		return true
	case *ast.SelectorExpr:
		// A method value (m.Run as a func value) allocates its bound
		// closure each evaluation; a plain field read does not.
		if s, ok := pass.Info.Selections[arg]; ok && s.Kind() == types.MethodVal {
			return true
		}
	}
	return false
}
