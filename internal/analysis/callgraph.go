package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-module call graph the interprocedural layer
// (facts.go) runs its fixpoints over. The graph is conservative and
// deterministic:
//
//   - Nodes are every function, method, and function literal that has
//     syntax in the loaded packages. External callees (the standard
//     library, packages only reachable through the source importer) are
//     not nodes; the constructs that make them interesting — time.Now,
//     global math/rand draws, os/net calls — are detected directly at the
//     call site and recorded as base facts on the calling node instead.
//   - Static calls and method calls produce one edge to the resolved
//     *types.Func.
//   - Calls through an interface method produce one edge per concrete
//     type in the module that implements the interface (checked with
//     types.Implements against both T and *T), in sorted (package, type)
//     order.
//   - A function or method *value* that is referenced outside call
//     position — passed as an argument, assigned to a variable or a
//     function-typed struct field, returned — produces a conservative
//     "ref" edge from the enclosing function, on the assumption that
//     whoever receives the value may invoke it in the referrer's context.
//
// Node identity is positional: nodes are numbered in (package path, file
// name, offset) order, and every edge list is sorted, so two builds over
// the same sources produce byte-identical graphs regardless of map
// iteration or load order.

// EdgeKind classifies how a call-graph edge was discovered.
type EdgeKind uint8

const (
	// EdgeCall is a direct static call or resolved method call.
	EdgeCall EdgeKind = iota
	// EdgeDispatch is an interface-method call resolved to one concrete
	// implementation by types.Implements.
	EdgeDispatch
	// EdgeRef is a conservative edge for a function value referenced
	// outside call position (argument, assignment, struct field, return).
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDispatch:
		return "dispatch"
	case EdgeRef:
		return "ref"
	}
	return fmt.Sprintf("EdgeKind(%d)", uint8(k))
}

// An Edge is one caller→callee relation, positioned at the call or
// reference site.
type Edge struct {
	Caller *Node
	Callee *Node
	Pos    token.Pos
	Kind   EdgeKind
}

// A Node is one function with syntax in the module: a declared function or
// method, or a function literal.
type Node struct {
	// ID is the node's dense index in CallGraph.Nodes, assigned in sorted
	// positional order — stable across repeated loads of the same sources.
	ID int
	// Name is the qualified display name: "pkg.Func",
	// "(pkg.Type).Method", or "pkg.Func$1" for the n-th literal inside
	// Func.
	Name string
	// Pkg is the loaded package holding the node's syntax.
	Pkg *Package
	// Fn is the type-checker object for declared functions and methods;
	// nil for function literals.
	Fn *types.Func
	// Syntax is the *ast.FuncDecl or *ast.FuncLit.
	Syntax ast.Node
	// Body is the function body (nil for bodyless declarations).
	Body *ast.BlockStmt

	// Out and In are the sorted outgoing and incoming edges.
	Out []Edge
	In  []Edge

	facts nodeFacts
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos { return n.Syntax.Pos() }

// A CallGraph is the whole-module graph over every loaded package.
type CallGraph struct {
	// Nodes in deterministic (package path, file, offset) order; a node's
	// slice index is its ID.
	Nodes []*Node

	fset    *token.FileSet
	byFunc  map[*types.Func]*Node
	byLit   map[*ast.FuncLit]*Node
	pkgs    []*Package
	pkgOf   map[*types.Package]*Package
	methods []methodEntry
}

// methodEntry caches one named type's method set for interface dispatch:
// implements-checking walks these instead of re-enumerating scopes per
// call site.
type methodEntry struct {
	named *types.Named
	ptr   types.Type
}

// NodeOf returns the node for a declared function or method, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// LitNode returns the node for a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// BuildGraph constructs the call graph over the given packages. The
// packages are expected to come from one Loader (one FileSet, one type
// universe); passing both an importer's copy and a root copy of the same
// package would split its nodes.
func BuildGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		fset:   pkgs[0].Fset,
		byFunc: map[*types.Func]*Node{},
		byLit:  map[*ast.FuncLit]*Node{},
		pkgOf:  map[*types.Package]*Package{},
	}
	g.pkgs = append(g.pkgs, pkgs...)
	sort.Slice(g.pkgs, func(i, j int) bool { return g.pkgs[i].Path < g.pkgs[j].Path })
	for _, p := range g.pkgs {
		g.pkgOf[p.Types] = p
	}

	g.collectNodes()
	g.collectMethodSets()
	for _, n := range g.Nodes {
		if n.Body != nil {
			g.scanBody(n)
		}
	}
	g.sortEdges()
	return g
}

// collectNodes creates one node per FuncDecl and FuncLit, in (package
// path, file, offset) order. Packages are already sorted; files within a
// package were parsed in sorted name order, and ast.Inspect visits a
// file's declarations in positional order, so a simple walk is already
// deterministic.
func (g *CallGraph) collectNodes() {
	for _, p := range g.pkgs {
		for _, f := range p.Files {
			litSeq := map[string]int{}
			var walk func(nd ast.Node, outer string)
			walk = func(nd ast.Node, outer string) {
				ast.Inspect(nd, func(inner ast.Node) bool {
					if inner == nd {
						return true
					}
					lit, ok := inner.(*ast.FuncLit)
					if !ok {
						return true
					}
					litSeq[outer]++
					name := fmt.Sprintf("%s$%d", outer, litSeq[outer])
					g.addNode(&Node{Name: name, Pkg: p, Syntax: lit, Body: lit.Body})
					walk(lit, name)
					return false
				})
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					// Literals in var initializers hang off a synthetic
					// "init" scope name.
					walk(decl, p.Path+".init")
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				name := declName(p, fd)
				g.addNode(&Node{Name: name, Pkg: p, Fn: obj, Syntax: fd, Body: fd.Body})
				walk(fd, name)
			}
		}
	}
	// Nodes were appended decl-first, literals nested in declaration order
	// within each file; re-sort by position for a single canonical order.
	sort.Slice(g.Nodes, func(i, j int) bool {
		a, b := g.Nodes[i], g.Nodes[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		pa, pb := g.fset.Position(a.Pos()), g.fset.Position(b.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	})
	for i, n := range g.Nodes {
		n.ID = i
	}
}

// declName renders a declared function's display name.
func declName(p *Package, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return p.Path + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	recv := "?"
	switch x := t.(type) {
	case *ast.Ident:
		recv = x.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := x.X.(*ast.Ident); ok {
			recv = id.Name
		}
	}
	return fmt.Sprintf("(%s.%s).%s", p.Path, recv, fd.Name.Name)
}

func (g *CallGraph) addNode(n *Node) {
	g.Nodes = append(g.Nodes, n)
	if n.Fn != nil {
		g.byFunc[n.Fn] = n
	} else if lit, ok := n.Syntax.(*ast.FuncLit); ok {
		g.byLit[lit] = n
	}
}

// collectMethodSets indexes every named type declared in the loaded
// packages for interface dispatch. Scope.Names is sorted, and packages are
// walked in path order, so the implementation order is deterministic.
func (g *CallGraph) collectMethodSets() {
	for _, p := range g.pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.NumMethods() == 0 {
				continue
			}
			g.methods = append(g.methods, methodEntry{named: named, ptr: types.NewPointer(named)})
		}
	}
}

// scanBody walks one node's body, recording call, dispatch, and ref edges.
// Nested function literals are skipped — they are their own nodes and are
// scanned separately; the literal itself produces a ref edge here.
func (g *CallGraph) scanBody(n *Node) {
	info := n.Pkg.Info
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		if lit, ok := nd.(*ast.FuncLit); ok {
			if callee := g.byLit[lit]; callee != nil {
				g.addEdge(n, callee, lit.Pos(), EdgeRef)
			}
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		g.scanCall(n, info, call)
		return true
	})

	// Second pass: function and method values used outside call position.
	// The walk above handled literals; this one handles named functions and
	// methods referenced as values (arguments, assignments, struct fields,
	// returns) — conservatively assumed invokable by the receiver. The Sel
	// of a call-position selector is marked too, so `d.foo()` does not
	// double as a method-value reference to foo.
	inCallPos := map[ast.Node]bool{}
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := nd.(*ast.CallExpr); ok {
			fun := unparen(call.Fun)
			inCallPos[fun] = true
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				inCallPos[sel.Sel] = true
			}
		}
		return true
	})
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		switch x := nd.(type) {
		case *ast.Ident:
			if inCallPos[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				if callee := g.byFunc[fn]; callee != nil {
					g.addEdge(n, callee, x.Pos(), EdgeRef)
				}
			}
		case *ast.SelectorExpr:
			if inCallPos[x] {
				return true
			}
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal {
				if callee := g.byFunc[sel.Obj().(*types.Func)]; callee != nil {
					g.addEdge(n, callee, x.Pos(), EdgeRef)
				}
				return false
			}
			if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
				if callee := g.byFunc[fn]; callee != nil {
					g.addEdge(n, callee, x.Pos(), EdgeRef)
				}
				return false
			}
		}
		return true
	})
}

// scanCall resolves one call expression to edges.
func (g *CallGraph) scanCall(n *Node, info *types.Info, call *ast.CallExpr) {
	fun := unparen(call.Fun)
	switch x := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[x].(*types.Func); ok {
			if callee := g.byFunc[fn]; callee != nil {
				g.addEdge(n, callee, call.Pos(), EdgeCall)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if sel.Kind() != types.MethodVal {
				return
			}
			fn := sel.Obj().(*types.Func)
			if isInterface(sel.Recv()) {
				g.dispatch(n, call, sel.Recv(), fn)
				return
			}
			if callee := g.byFunc[fn]; callee != nil {
				g.addEdge(n, callee, call.Pos(), EdgeCall)
			}
			return
		}
		// Package-qualified call (pkg.Func).
		if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
			if callee := g.byFunc[fn]; callee != nil {
				g.addEdge(n, callee, call.Pos(), EdgeCall)
			}
		}
	case *ast.FuncLit:
		if callee := g.byLit[x]; callee != nil {
			g.addEdge(n, callee, call.Pos(), EdgeCall)
		}
	}
}

// dispatch resolves an interface-method call to every module type that
// implements the interface, adding one EdgeDispatch per implementation's
// method. The walk over methodEntry is in collection (sorted) order.
func (g *CallGraph) dispatch(n *Node, call *ast.CallExpr, recv types.Type, ifaceMethod *types.Func) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	name := ifaceMethod.Name()
	for _, me := range g.methods {
		var impl types.Type
		switch {
		case types.Implements(me.named, iface):
			impl = me.named
		case types.Implements(me.ptr, iface):
			impl = me.ptr
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, ifaceMethod.Pkg(), name)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if callee := g.byFunc[fn]; callee != nil {
			g.addEdge(n, callee, call.Pos(), EdgeDispatch)
		}
	}
}

func (g *CallGraph) addEdge(caller, callee *Node, pos token.Pos, kind EdgeKind) {
	e := Edge{Caller: caller, Callee: callee, Pos: pos, Kind: kind}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// sortEdges puts every edge list in (callee/caller ID, position, kind)
// order and drops exact duplicates, making the graph independent of the
// two-pass discovery order within scanBody.
func (g *CallGraph) sortEdges() {
	for _, n := range g.Nodes {
		n.Out = dedupEdges(n.Out, func(e Edge) int { return e.Callee.ID })
		n.In = dedupEdges(n.In, func(e Edge) int { return e.Caller.ID })
	}
}

func dedupEdges(edges []Edge, peer func(Edge) int) []Edge {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if pa, pb := peer(a), peer(b); pa != pb {
			return pa < pb
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Kind < b.Kind
	})
	out := edges[:0]
	for i, e := range edges {
		if i > 0 {
			prev := edges[i-1]
			if peer(prev) == peer(e) && prev.Pos == e.Pos && prev.Kind == e.Kind {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// Dump renders the graph as one line per edge — "caller -> callee (kind)"
// in node order — for the determinism property test and debugging.
func (g *CallGraph) Dump() string {
	var b strings.Builder
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			fmt.Fprintf(&b, "%s -> %s (%s)\n", n.Name, e.Callee.Name, e.Kind)
		}
	}
	return b.String()
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}
