package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqPkgs are the packages where exact float comparison is flagged:
// the E-Ant decision core and the power model, where pheromone trails and
// energy integrals are accumulated floats and an == can silently flip on a
// reassociated sum.
var floatEqPkgs = map[string]bool{
	"eant/internal/core":  true,
	"eant/internal/power": true,
}

// FloatSum enforces the float-determinism contract in two parts. First,
// compound float accumulation (+=, -=, *=, /=) into state that outlives an
// unordered map iteration is flagged everywhere: float addition is not
// associative, so a hash-seed-dependent visit order perturbs the low bits
// and golden outputs stop replaying. Second, in internal/core and
// internal/power, == and != between floats is flagged: pheromone and
// energy values are long accumulation chains, and exact equality on them
// encodes an order assumption. Deliberate exact comparisons (sentinels,
// untouched-value checks) carry "//eant:float-eq-ok <reason>".
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc:  "flag order-sensitive float accumulation under unordered map iteration, and exact float ==/!= in internal/core and internal/power",
	Run:  runFloatSum,
}

func runFloatSum(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if r, ok := n.(*ast.RangeStmt); ok && pass.unorderedRange(r) {
				if _, annotated := pass.Annotation(r.Pos(), "unordered-ok"); annotated {
					// maporder owns validating the annotation's reason.
					return true
				}
				pass.checkFloatAccum(r)
			}
			return true
		})
	}
	if floatEqPkgs[pass.Path()] {
		pass.checkFloatEquality()
	}
	return nil
}

// checkFloatAccum flags compound float assignment into state declared
// outside the unordered loop. Integer accumulation is exact and therefore
// order-insensitive; only floats reassociate.
func (pass *Pass) checkFloatAccum(r *ast.RangeStmt) {
	keyObj := types.Object(nil)
	if id, ok := r.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = pass.ObjectOf(id)
	}
	ast.Inspect(r.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != r && pass.unorderedRange(inner) {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			if !isFloat(pass.TypeOf(lhs)) {
				continue
			}
			if idx, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
				if id, ok := idx.Index.(*ast.Ident); ok && pass.ObjectOf(id) == keyObj {
					// m2[k] op= v keyed by the loop key touches each cell
					// exactly once per pass, so the visit order cannot
					// reassociate any cell's sum.
					continue
				}
			}
			obj := pass.rootObject(lhs)
			if declaredOutside(obj, r) {
				pass.Reportf(as.Pos(), "float accumulation %s %s ... inside unordered map iteration: float addition is not associative, so the result depends on the map hash seed; sort the keys first or annotate //eant:unordered-ok", exprString(lhs), as.Tok)
			}
		}
		return true
	})
}

// checkFloatEquality flags exact ==/!= between float operands.
func (pass *Pass) checkFloatEquality() {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) || !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			reason, annotated := pass.Annotation(be.Pos(), "float-eq-ok")
			if annotated {
				if reason == "" {
					pass.Reportf(be.Pos(), "//eant:float-eq-ok annotation needs a one-line reason")
				}
				return true
			}
			pass.Reportf(be.Pos(), "exact float comparison (%s) on accumulated values: compare with a tolerance or annotate //eant:float-eq-ok with a reason", be.Op)
			return true
		})
	}
}

// exprString renders a short lvalue for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	default:
		return "expression"
	}
}
