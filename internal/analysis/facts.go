package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file computes per-function facts by fixpoint over the call graph:
//
//   - Taint ("nondeterministic"): the function transitively reaches a
//     nondeterminism source — a wall-clock read (time.Now and friends),
//     the global math/rand generators, an os/net boundary, or map
//     iteration feeding output. Taint propagates callee→caller: calling a
//     tainted function taints you.
//   - Hot: the function is transitively reachable from the engine inner
//     loop — sim.Engine.RunUntil, the typed-kind dispatch table (every
//     function value handed to Engine.RegisterKind/Schedule/Every), the
//     driver heartbeat/control-tick handlers, and the E-Ant offer/draw
//     path. Hot propagates caller→callee: everything a hot function calls
//     runs on the hot path.
//
// Both lattices are finite (a bit set, a boolean) and propagation is
// monotone, so the worklist fixpoint terminates even on mutual recursion.
// Worklists are processed in node-ID order and every fact records the
// first witness that established it, so repeated loads of the same
// sources produce identical facts and identical diagnostic chains.
//
// Escape hatch: a "//eant:hot-stop <reason>" annotation on a function
// declaration keeps the function (and everything reachable only through
// it) out of the hot set — for one-time lazy construction or diagnostic
// paths that are reachable from the inner loop but never run in steady
// state.

// Taint is a bit set of nondeterminism sources a function transitively
// reaches.
type Taint uint8

const (
	// TaintClock marks wall-clock reads: time.Now, time.Since, timers.
	TaintClock Taint = 1 << iota
	// TaintRand marks draws from the global math/rand or any crypto/rand
	// generators — randomness outside the seeded sim.RNG streams.
	TaintRand
	// TaintOS marks os-package boundaries (environment, files, process
	// state).
	TaintOS
	// TaintNet marks net-package boundaries.
	TaintNet
	// TaintMapOrder marks map iteration whose body writes output — order
	// observable, hash-seed dependent.
	TaintMapOrder
)

// String renders the taint set as a sorted +-joined list.
func (t Taint) String() string {
	var parts []string
	for _, e := range []struct {
		bit  Taint
		name string
	}{
		{TaintClock, "clock"}, {TaintRand, "rand"}, {TaintOS, "os"},
		{TaintNet, "net"}, {TaintMapOrder, "maporder"},
	} {
		if t&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// taintWitness records how one taint bit got onto one node: either a base
// construct in the node's own body (via == nil) or a call edge to the
// callee that carried it in.
type taintWitness struct {
	pos  token.Pos
	desc string // base construct, e.g. "time.Now()"
	via  *Node  // callee the taint came from (nil for base)
}

// nodeFacts is the per-node fact storage, living on the Node itself.
type nodeFacts struct {
	taint     Taint
	witness   map[Taint]taintWitness // one witness per bit
	hot       bool
	hotVia    *Node  // caller that made it hot (nil for roots)
	hotRoot   string // frontier description for roots
	hotStop   bool   // //eant:hot-stop annotation present
	hotStopNR bool   // annotation present but reason missing
}

// Taint reports the node's propagated taint set.
func (n *Node) Taint() Taint { return n.facts.taint }

// Hot reports whether the node is on the engine-loop hot path.
func (n *Node) Hot() bool { return n.facts.hot }

// HotChain renders why the node is hot: the root frontier entry and up to
// limit intermediate callers, e.g.
// "reachable from typed event kind (eant/internal/mapreduce) via
// (eant/internal/mapreduce.Driver).heartbeatTick → ...".
func (n *Node) HotChain(limit int) string {
	if !n.facts.hot {
		return ""
	}
	var hops []string
	cur := n
	for cur.facts.hotVia != nil && len(hops) < limit {
		cur = cur.facts.hotVia
		hops = append(hops, cur.Name)
	}
	root := cur.facts.hotRoot
	if root == "" {
		root = cur.Name
	}
	if len(hops) == 0 {
		return "hot-path root: " + root
	}
	// hops are callee→caller; present caller→callee.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return fmt.Sprintf("reachable from %s via %s", root, strings.Join(hops, " → "))
}

// TaintChain renders how the node reaches the given taint bit: the call
// chain down to the base construct, e.g.
// "fixture/dep.Stamp → time.Now()".
func (n *Node) TaintChain(bit Taint, limit int) string {
	if n.facts.taint&bit == 0 {
		return ""
	}
	var hops []string
	cur := n
	for len(hops) < limit {
		w, ok := cur.facts.witness[bit]
		if !ok {
			break
		}
		if w.via == nil {
			hops = append(hops, w.desc)
			break
		}
		cur = w.via
		hops = append(hops, cur.Name)
	}
	return strings.Join(hops, " → ")
}

// wallClockFuncs (noclock.go) names the time-package readers; the base
// taint detector reuses it so the two layers can never disagree on what a
// clock read is.

// randPkgs are the import paths whose package-level state makes any use a
// TaintRand base fact.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// computeFacts seeds base facts and runs both fixpoints.
func (g *CallGraph) computeFacts() {
	for _, n := range g.Nodes {
		n.facts.witness = map[Taint]taintWitness{}
		g.seedNode(n)
	}
	g.propagateTaint()
	g.markHot()
}

// seedNode records the node's base taints and hot-stop annotation.
func (g *CallGraph) seedNode(n *Node) {
	if fd, ok := n.Syntax.(*ast.FuncDecl); ok {
		reason, ok := n.Pkg.annotationAt(g.fset.Position(fd.Pos()), "hot-stop")
		if ok {
			n.facts.hotStop = true
			n.facts.hotStopNR = reason == ""
		}
	}
	if n.Body == nil {
		return
	}
	info := n.Pkg.Info
	ast.Inspect(n.Body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false // literal bodies seed their own nodes
		}
		switch x := nd.(type) {
		case *ast.SelectorExpr:
			// Qualified uses of nondeterminism-source packages: function
			// calls and value reads alike (rand.Int, rand.Reader), but not
			// type or constant references (os.File in a signature observes
			// nothing).
			if id, ok := x.X.(*ast.Ident); ok {
				if pn, ok := info.Uses[id].(*types.PkgName); ok {
					switch info.Uses[x.Sel].(type) {
					case *types.TypeName, *types.Const:
						return true
					}
					path := pn.Imported().Path()
					switch {
					case randPkgs[path]:
						// Constructors over explicit sources (rand.New,
						// rand.NewSource, rand.NewPCG) are how the seeded
						// sim.RNG streams are built — deterministic, not
						// tainted. The global draws and crypto/rand are.
						if path == "crypto/rand" || !strings.HasPrefix(x.Sel.Name, "New") {
							n.addBaseTaint(TaintRand, x.Pos(), path+"."+x.Sel.Name)
						}
					case path == "time" && wallClockFuncs[x.Sel.Name]:
						n.addBaseTaint(TaintClock, x.Pos(), "time."+x.Sel.Name)
					case path == "os" || strings.HasPrefix(path, "os/"):
						n.addBaseTaint(TaintOS, x.Pos(), path+"."+x.Sel.Name)
					case path == "net" || strings.HasPrefix(path, "net/"):
						n.addBaseTaint(TaintNet, x.Pos(), path+"."+x.Sel.Name)
					}
				}
			}
		case *ast.RangeStmt:
			if g.mapRangeWritesOutput(n.Pkg, x) {
				n.addBaseTaint(TaintMapOrder, x.Pos(), "map iteration feeding output")
			}
		}
		return true
	})
}

// mapRangeWritesOutput reports whether r ranges over a map and its body
// writes output (the fmt print family or a Write* method) — the
// order-observable subset maporder flags, minus annotations: the fact is
// about what the code does, the diagnostic about whether it is justified.
func (g *CallGraph) mapRangeWritesOutput(p *Package, r *ast.RangeStmt) bool {
	t := p.Info.TypeOf(r.X)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return false
	}
	writes := false
	ast.Inspect(r.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
					switch sel.Sel.Name {
					case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
						writes = true
					}
					return true
				}
			}
			if strings.HasPrefix(sel.Sel.Name, "Write") {
				if _, isMethod := p.Info.Selections[sel]; isMethod {
					writes = true
				}
			}
		}
		return !writes
	})
	return writes
}

func (n *Node) addBaseTaint(bit Taint, pos token.Pos, desc string) {
	if n.facts.taint&bit != 0 {
		return
	}
	n.facts.taint |= bit
	n.facts.witness[bit] = taintWitness{pos: pos, desc: desc}
}

// propagateTaint runs the callee→caller fixpoint. The worklist is seeded
// and processed in node-ID order; since the join is a monotone bit-or the
// final sets are order-independent, and first-writer-wins witnesses are
// deterministic given the ordered processing.
func (g *CallGraph) propagateTaint() {
	work := make([]*Node, 0, len(g.Nodes))
	queued := make([]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.facts.taint != 0 {
			work = append(work, n)
			queued[n.ID] = true
		}
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n.ID] = false
		for _, e := range n.In {
			caller := e.Caller
			add := n.facts.taint &^ caller.facts.taint
			if add == 0 {
				continue
			}
			caller.facts.taint |= add
			for bit := Taint(1); bit != 0 && bit <= TaintMapOrder; bit <<= 1 {
				if add&bit != 0 {
					caller.facts.witness[bit] = taintWitness{pos: e.Pos, via: n}
				}
			}
			if !queued[caller.ID] {
				work = append(work, caller)
				queued[caller.ID] = true
			}
		}
	}
}

// annotationAt returns the "//eant:<name> <reason>" annotation attached at
// position (same line or the line above), mirroring Pass.Annotation for
// callers outside an analyzer pass.
func (p *Package) annotationAt(position token.Position, name string) (string, bool) {
	for _, line := range []int{position.Line, position.Line - 1} {
		if a, found := p.annotations[annKey{position.Filename, line, name}]; found {
			return a.Reason, true
		}
	}
	return "", false
}

// DumpFacts renders every node's facts one per line — "name hot=… taint=…"
// — for the determinism property test and the -facts debugging flag.
func (g *CallGraph) DumpFacts() string {
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "%s hot=%s taint=%s\n", n.Name, strconv.FormatBool(n.facts.hot), n.facts.taint)
	}
	return b.String()
}

// reportTransitiveTaint is the shared frontier reporter behind the
// interprocedural noclock/rngonly rules. For every function of the pass's
// package it reports each call-graph edge whose target transitively
// carries bit AND lives in a package the intra-package rule does not
// check (checked(path) == false): that edge is where the taint crosses
// into checked territory, so exactly one diagnostic fires per entry
// point. Edges into checked packages are skipped — the base construct is
// flagged directly there. ann names the escape annotation consulted at
// the call site.
func reportTransitiveTaint(pass *Pass, bit Taint, checked func(string) bool, ann, contract string) {
	for _, n := range pass.Mod.Graph.Nodes {
		if n.Pkg != pass.pkg {
			continue
		}
		for _, e := range n.Out {
			callee := e.Callee
			if callee.Taint()&bit == 0 || checked(callee.Pkg.Path) {
				continue
			}
			reason, annotated := pass.Annotation(e.Pos, ann)
			if annotated {
				if reason == "" {
					pass.Reportf(e.Pos, "//eant:%s annotation must carry a reason", ann)
				}
				continue
			}
			pass.Reportf(e.Pos, "call to %s transitively reaches %s (%s); %s, or annotate //eant:%s <reason>",
				callee.Name, callee.TaintChain(bit, 5), bit, contract, ann)
		}
	}
}
