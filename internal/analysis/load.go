package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A Package is one loaded, type-checked compilation unit plus the
// annotation index the analyzers consult for escape hatches.
type Package struct {
	// Dir is the directory the sources were read from.
	Dir string
	// Path is the import path analyzers scope their rules by. Fixtures may
	// override it with a "//eantlint:path" directive in any file.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	annotations map[annKey]annotation
}

// annKey locates an annotation: one file, one line, one annotation name.
type annKey struct {
	File string
	Line int
	Name string
}

// annotation is a parsed "//eant:<name> <reason>" comment.
type annotation struct {
	Name   string
	Reason string
}

// A Loader parses and type-checks packages of this module. It shares one
// FileSet and one source importer across loads, and caches every package
// it has checked by the import path it was requested under, so a package
// is type-checked at most once per Loader — whether it is loaded as an
// analysis root or pulled in as a dependency of one.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
	// loaded caches checked packages by the path LoadDir was called with
	// (NOT the "//eantlint:path" override, which only renames the package
	// for rule scoping). A later LoadDir of the same path returns the
	// cached package, and a root package importing that path resolves to
	// it instead of re-type-checking the directory through the source
	// importer — which is what lets fixture packages import each other
	// and lets LoadAll check each module package exactly once.
	loaded map[string]*Package
	// Tests controls whether _test.go files are included. The lint suite
	// analyzes non-test sources: test files may legitimately use wall-clock
	// timeouts and ad-hoc randomness, and test-order dependence is caught
	// dynamically by `go test -shuffle=on` in CI instead.
	Tests bool
}

// NewLoader returns a Loader backed by the stdlib source importer, which
// resolves imports by compiling them from source — no pre-built export
// data and no network required.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	l := &Loader{fset: fset, loaded: map[string]*Package{}}
	l.imp = importer.ForCompiler(fset, "source", nil)
	return l
}

// Import implements types.Importer: already-loaded root packages resolve
// from the Loader's cache, everything else (the standard library) falls
// through to the source importer. Loader itself is the Importer handed to
// every type-check, so module-internal imports never re-check a package a
// previous LoadDir already produced.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p.Types, nil
	}
	return l.imp.Import(path)
}

// LoadDir loads the single package in dir under import path. An
// "//eantlint:path" directive in any file overrides path (used by test
// fixtures to exercise path-scoped rules). Repeated loads of the same
// import path return the cached package.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	pkg, err := l.parseDir(dir, path)
	if err != nil {
		return nil, err
	}
	if err := l.check(pkg); err != nil {
		return nil, err
	}
	l.loaded[path] = pkg
	return pkg, nil
}

// parseDir parses the package in dir without type-checking it.
func (l *Loader) parseDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.Tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{
		Dir:         dir,
		Path:        path,
		Fset:        l.fset,
		Files:       files,
		annotations: map[annKey]annotation{},
	}
	pkg.indexComments()
	return pkg, nil
}

// check type-checks a parsed package, resolving imports through the
// Loader (cache first, source importer for the standard library).
func (l *Loader) check(pkg *Package) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkg.Path, l.fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %w", pkg.Path, err)
	}
	// Mark complete so the package is usable as an import of a later root.
	tpkg.MarkComplete()
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// LoadAll loads every package of the module at root exactly once: all
// directories are parsed up front, ordered so dependencies precede their
// dependents, and each is type-checked with module-internal imports served
// from the packages already checked. The old per-LoadDir flow checked each
// module package twice — once as a root with syntax, and again from source
// whenever a later root imported it — which is the suite-runtime waste
// this path removes. The result is sorted by import path.
func (l *Loader) LoadAll(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := PackageDirs(root)
	if err != nil {
		return nil, err
	}
	parsed := make([]*Package, 0, len(dirs))
	byPath := make(map[string]*Package, len(dirs))
	for _, dp := range dirs {
		if p, ok := l.loaded[dp[1]]; ok {
			parsed = append(parsed, p)
			byPath[dp[1]] = p
			continue
		}
		pkg, err := l.parseDir(dp[0], dp[1])
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, pkg)
		byPath[dp[1]] = pkg
	}

	// Topological order by module-internal imports (imports are acyclic by
	// construction; the go compiler would have rejected a cycle). The DFS
	// visits packages in sorted-path order, so the order — and therefore
	// every downstream artifact — is deterministic across loads.
	order := make([]*Package, 0, len(parsed))
	state := make(map[*Package]int, len(parsed)) // 0 new, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		for _, imp := range p.importPaths() {
			if strings.HasPrefix(imp, modPath+"/") || imp == modPath {
				if dep, ok := byPath[imp]; ok && state[dep] != 1 {
					visit(dep)
				}
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range parsed {
		visit(p)
	}

	for _, pkg := range order {
		key := pkg.Path
		if _, ok := l.loaded[key]; ok {
			continue
		}
		if err := l.check(pkg); err != nil {
			return nil, err
		}
		l.loaded[key] = pkg
	}
	sort.Slice(parsed, func(i, j int) bool { return parsed[i].Path < parsed[j].Path })
	return parsed, nil
}

// importPaths returns the package's imports, deduplicated and sorted.
func (p *Package) importPaths() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// indexComments scans every comment for "//eant:<name> <reason>"
// annotations and "//eantlint:path <path>" directives.
func (p *Package) indexComments() {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if rest, ok := strings.CutPrefix(text, "//eantlint:path"); ok {
					if path := strings.TrimSpace(rest); path != "" {
						p.Path = path
					}
					continue
				}
				rest, ok := strings.CutPrefix(text, "//eant:")
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(rest, " ")
				pos := p.Fset.Position(c.Pos())
				p.annotations[annKey{pos.Filename, pos.Line, name}] = annotation{
					Name:   name,
					Reason: strings.TrimSpace(reason),
				}
			}
		}
	}
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s/go.mod: no module directive", root)
}

// PackageDirs walks the module at root and returns every directory holding
// a Go package, with its import path. testdata, hidden and vendor
// directories are skipped, matching the go tool's "./..." expansion.
func PackageDirs(root string) ([][2]string, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	var out [][2]string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				imp := modPath
				if rel != "." {
					imp = modPath + "/" + filepath.ToSlash(rel)
				}
				out = append(out, [2]string{path, imp})
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i][1] < out[j][1] })
	return out, nil
}
