package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked compilation unit plus the
// annotation index the analyzers consult for escape hatches.
type Package struct {
	// Dir is the directory the sources were read from.
	Dir string
	// Path is the import path analyzers scope their rules by. Fixtures may
	// override it with a "//eantlint:path" directive in any file.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	annotations map[annKey]annotation
}

// annKey locates an annotation: one file, one line, one annotation name.
type annKey struct {
	File string
	Line int
	Name string
}

// annotation is a parsed "//eant:<name> <reason>" comment.
type annotation struct {
	Name   string
	Reason string
}

// A Loader parses and type-checks packages of this module. It shares one
// FileSet and one source importer across loads, so dependency packages are
// type-checked at most once per Loader.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
	// Tests controls whether _test.go files are included. The lint suite
	// analyzes non-test sources: test files may legitimately use wall-clock
	// timeouts and ad-hoc randomness, and test-order dependence is caught
	// dynamically by `go test -shuffle=on` in CI instead.
	Tests bool
}

// NewLoader returns a Loader backed by the stdlib source importer, which
// resolves imports by compiling them from source — no pre-built export
// data and no network required.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadDir loads the single package in dir under import path. An
// "//eantlint:path" directive in any file overrides path (used by test
// fixtures to exercise path-scoped rules).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.Tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{
		Dir:         dir,
		Path:        path,
		Fset:        l.fset,
		Files:       files,
		annotations: map[annKey]annotation{},
	}
	pkg.indexComments()

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkg.Path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// indexComments scans every comment for "//eant:<name> <reason>"
// annotations and "//eantlint:path <path>" directives.
func (p *Package) indexComments() {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if rest, ok := strings.CutPrefix(text, "//eantlint:path"); ok {
					if path := strings.TrimSpace(rest); path != "" {
						p.Path = path
					}
					continue
				}
				rest, ok := strings.CutPrefix(text, "//eant:")
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(rest, " ")
				pos := p.Fset.Position(c.Pos())
				p.annotations[annKey{pos.Filename, pos.Line, name}] = annotation{
					Name:   name,
					Reason: strings.TrimSpace(reason),
				}
			}
		}
	}
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s/go.mod: no module directive", root)
}

// PackageDirs walks the module at root and returns every directory holding
// a Go package, with its import path. testdata, hidden and vendor
// directories are skipped, matching the go tool's "./..." expansion.
func PackageDirs(root string) ([][2]string, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	var out [][2]string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				imp := modPath
				if rel != "." {
					imp = modPath + "/" + filepath.ToSlash(rel)
				}
				out = append(out, [2]string{path, imp})
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i][1] < out[j][1] })
	return out, nil
}
