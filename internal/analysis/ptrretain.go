package analysis

import (
	"go/ast"
	"go/types"
)

// PtrRetain enforces the handle contract of the struct-of-arrays world
// state (DESIGN.md §17): per-machine scalars live in dense slice columns,
// so the address of a slice element (`&col[i]`) is only stable for as long
// as the backing array does not relocate. Taking such an address and
// storing it somewhere that outlives the current event — a struct field, a
// package-level variable, a composite literal that is itself retained —
// plants a dangling-pointer bug that goes off the day the column is grown
// with append. Keep the index (or a Machine handle) instead, and resolve it
// to an element on use; genuinely fixed-size retention may carry an
// "//eant:retain-ok <reason>" annotation.
var PtrRetain = &Analyzer{
	Name: "ptrretain",
	Doc:  "flag slice-element addresses (&col[i]) stored in struct fields or package variables: append may relocate the backing array; retain the index or handle, or annotate //eant:retain-ok",
	Run:  runPtrRetain,
}

// sliceElemAddr reports whether e takes the address of a slice element:
// a unary &x[i] where x has slice type (array elements do not relocate and
// are exempt).
func (p *Pass) sliceElemAddr(e ast.Expr) bool {
	un, ok := e.(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return false
	}
	idx, ok := un.X.(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := p.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, isSlice := t.Underlying().(*types.Slice)
	return isSlice
}

// retainTarget classifies an lvalue that makes a stored address outlive the
// storing statement: a struct field (x.f), any indexed cell (x[i] — the
// container plausibly outlives the event), or a package-level variable. It
// returns a human-readable label and true for such targets.
func (p *Pass) retainTarget(lhs ast.Expr) (string, bool) {
	switch x := lhs.(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return "field " + x.Sel.Name, true
		}
		// Package-qualified variable (pkg.Var).
		if obj := p.rootObject(lhs); obj != nil && isPackageLevel(obj) {
			return "package variable " + obj.Name(), true
		}
	case *ast.IndexExpr:
		return "container element", true
	case *ast.Ident:
		if obj := p.ObjectOf(x); obj != nil && isPackageLevel(obj) {
			return "package variable " + obj.Name(), true
		}
	case *ast.StarExpr:
		// Writing through a pointer lands outside the local frame.
		return "pointed-to location", true
	}
	return "", false
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Parent() == obj.Pkg().Scope()
}

// checkRetainAnnotation handles the escape hatch for one statement; it
// returns true when an //eant:retain-ok annotation covers it, reporting the
// annotation itself if the mandatory reason is missing.
func (p *Pass) checkRetainAnnotation(pos ast.Node) bool {
	reason, ok := p.Annotation(pos.Pos(), "retain-ok")
	if !ok {
		return false
	}
	if reason == "" {
		p.Reportf(pos.Pos(), "//eant:retain-ok annotation needs a one-line reason")
	}
	return true
}

func runPtrRetain(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if !pass.sliceElemAddr(rhs) || i >= len(x.Lhs) {
						continue
					}
					target, retained := pass.retainTarget(x.Lhs[i])
					if !retained {
						continue
					}
					if pass.checkRetainAnnotation(x) {
						continue
					}
					pass.Reportf(rhs.Pos(), "address of slice element stored in %s: append may relocate the backing array; retain the index or a handle, or annotate //eant:retain-ok", target)
				}
			case *ast.CompositeLit:
				// &col[i] placed in a struct/map/slice literal: the literal
				// value routinely outlives the event that built it.
				for _, el := range x.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if !pass.sliceElemAddr(v) {
						continue
					}
					if pass.checkRetainAnnotation(v) {
						continue
					}
					pass.Reportf(v.Pos(), "address of slice element placed in a composite literal: append may relocate the backing array; retain the index or a handle, or annotate //eant:retain-ok")
				}
			}
			return true
		})
	}
	return nil
}
