// Package analysis is the simulator's static-analysis suite: seven
// analyzers that machine-check the determinism and hot-path contracts the
// reproduction depends on (seeded runs must be bit-identical, the virtual
// clock is the only clock, the PR-3 incremental aggregates must never
// desynchronize from ground truth, the hot event paths must schedule
// through typed kinds rather than per-event closures, and warm-run Reset
// paths must account for every field of the structs they reuse).
//
// The framework deliberately mirrors the core shapes of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — so each
// analyzer's Run function could be lifted into an x/tools multichecker
// unchanged. It is self-contained because this repository builds with the
// standard library only: packages are parsed with go/parser and
// type-checked with go/types using the stdlib source importer, which
// resolves both standard-library and module-internal imports without
// network access.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and annotations.
	Name string
	// Doc is a one-paragraph description of the contract it enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned at Pos in the package's FileSet.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one package: the syntax trees, the
// type information, and the reporting sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	pkg    *Package
	report func(Diagnostic)
}

// Path returns the package's import path. Fixture packages may override it
// with a "//eantlint:path" directive so path-scoped analyzers can be
// exercised from testdata.
func (p *Pass) Path() string { return p.pkg.Path }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Annotation returns the "//eant:<name> <reason>" annotation attached to
// the statement at pos: a trailing comment on the same line or a comment on
// the line immediately above. The boolean reports whether one was found;
// Reason may be empty, which analyzers treat as its own violation (every
// escape hatch must carry a justification).
func (p *Pass) Annotation(pos token.Pos, name string) (reason string, ok bool) {
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		if a, found := p.pkg.annotations[annKey{position.Filename, line, name}]; found {
			return a.Reason, true
		}
	}
	return "", false
}

// Run applies each analyzer to pkg and returns the findings sorted by
// position, then analyzer name — a stable order independent of analyzer
// scheduling, in the spirit of the invariants this suite enforces.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			pkg:      pkg,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{RngOnly, NoClock, MapOrder, FloatSum, StatsMut, HotClosure, ResetState}
}
