// Package analysis is the simulator's static-analysis suite: eight
// analyzers that machine-check the determinism and hot-path contracts the
// reproduction depends on (seeded runs must be bit-identical, the virtual
// clock is the only clock, the PR-3 incremental aggregates must never
// desynchronize from ground truth, the hot event paths must schedule
// through typed kinds rather than per-event closures, warm-run Reset
// paths must account for every field of the structs they reuse, and
// functions on the engine inner loop must not allocate).
//
// Since PR 9 the suite is interprocedural: a Module bundles every loaded
// package with a whole-program call graph (callgraph.go) and per-function
// facts computed by fixpoint (facts.go, reach.go) — "nondeterministic"
// taint flowing callee→caller and "hot" reachability flowing from the
// engine inner loop caller→callee. noclock/rngonly flag the call site
// that imports a taint from an unchecked package, hotclosure follows the
// hot fact beyond its two hard-coded packages, and hotalloc flags
// allocating constructs in any hot function.
//
// The framework deliberately mirrors the core shapes of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — so each
// analyzer's Run function could be lifted into an x/tools multichecker
// unchanged. It is self-contained because this repository builds with the
// standard library only: packages are parsed with go/parser and
// type-checked with go/types using the stdlib source importer, which
// resolves both standard-library and module-internal imports without
// network access.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and annotations.
	Name string
	// Doc is a one-paragraph description of the contract it enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned at Pos in the package's FileSet.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one package: the syntax trees, the
// type information, and the reporting sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Mod is the module-wide view: all packages under analysis plus the
	// call graph and propagated facts. Never nil — single-package Run
	// wraps its package in a one-package Module.
	Mod *Module

	pkg    *Package
	report func(Diagnostic)
}

// Path returns the package's import path. Fixture packages may override it
// with a "//eantlint:path" directive so path-scoped analyzers can be
// exercised from testdata.
func (p *Pass) Path() string { return p.pkg.Path }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Annotation returns the "//eant:<name> <reason>" annotation attached to
// the statement at pos: a trailing comment on the same line or a comment on
// the line immediately above. The boolean reports whether one was found;
// Reason may be empty, which analyzers treat as its own violation (every
// escape hatch must carry a justification).
func (p *Pass) Annotation(pos token.Pos, name string) (reason string, ok bool) {
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		if a, found := p.pkg.annotations[annKey{position.Filename, line, name}]; found {
			return a.Reason, true
		}
	}
	return "", false
}

// A Module is the interprocedural unit of analysis: every package loaded
// for one run, the whole-program call graph over them, and the
// per-function facts propagated to fixpoint. Analyzers reach it through
// Pass.Mod.
type Module struct {
	// Pkgs is sorted by import path.
	Pkgs  []*Package
	Graph *CallGraph
}

// NewModule builds the call graph over pkgs and computes facts. The input
// may arrive in any order; the Module's view is sorted by import path.
func NewModule(pkgs []*Package) *Module {
	g := BuildGraph(pkgs)
	g.computeFacts()
	return &Module{Pkgs: g.pkgs, Graph: g}
}

// checksPath reports whether a package with the given import path is part
// of this module — i.e. its own body is under analysis, so taints inside
// it are flagged directly rather than at call sites that import them.
func (m *Module) checksPath(path string) bool {
	for _, p := range m.Pkgs {
		if p.Path == path {
			return true
		}
	}
	return false
}

// Run applies each analyzer to the single package pkg. The package is
// wrapped in a one-package Module so fact-consuming analyzers see a
// (degenerate) call graph; cross-package propagation needs RunModule.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runPass(NewModule([]*Package{pkg}), pkg, analyzers)
}

// RunModule applies each analyzer to every package of m and returns all
// findings sorted by position, then analyzer name — a stable order
// independent of analyzer and package scheduling.
func RunModule(m *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		ds, err := runPass(m, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sortDiags(diags)
	return diags, nil
}

func runPass(m *Module, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Mod:      m,
			pkg:      pkg,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sortDiags(diags)
	return diags, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{RngOnly, NoClock, MapOrder, FloatSum, StatsMut, HotClosure, HotAlloc, ResetState, PtrRetain}
}
