package analysis

import (
	"go/ast"
	"go/types"
)

// machineMutators are the cluster.Machine methods that change slot
// occupancy or availability — exactly the transitions the driver's
// incremental aggregates (internal/mapreduce/aggregates.go) mirror.
var machineMutators = map[string]bool{
	"AcquireMap":    true,
	"AcquireReduce": true,
	"ReleaseMap":    true,
	"ReleaseReduce": true,
	"Fail":          true,
	"Repair":        true,
	"Sleep":         true,
	"Wake":          true,
}

// aggregateEntryPoints are the driver functions allowed to invoke machine
// mutators: each pairs the mutation with the matching noteSlotChange /
// reclassify bookkeeping, keeping the O(1) aggregates bit-identical to the
// scans they replaced.
var aggregateEntryPoints = map[string]bool{
	"startMap":           true,
	"startReduce":        true,
	"beginReduceCompute": true,
	"completeTask":       true,
	"detachRunning":      true,
	"maybeSleep":         true,
	"wakeIfNeeded":       true,
	"crashMachine":       true,
	"recoverMachine":     true,
}

const (
	clusterPkg   = "eant/internal/cluster"
	mapreducePkg = "eant/internal/mapreduce"
)

// StatsMut enforces the aggregate-coherence contract from the O(1)
// heartbeat refactor: cluster.Machine slot/availability state may only be
// mutated through the driver entry points that update the incremental
// aggregates in the same event, and a shared mapreduce.Config must not be
// written after the driver captured it. A bare m.AcquireMap in a scheduler
// would silently desynchronize byClass/freeReduceByType from ground truth
// — a corruption only the test-only invariant checker would ever notice.
var StatsMut = &Analyzer{
	Name: "statsmut",
	Doc:  "restrict cluster.Machine slot/availability mutation to the driver's aggregate-updating entry points, and forbid writes through shared mapreduce.Config",
	Run:  runStatsMut,
}

func runStatsMut(pass *Pass) error {
	if pass.Path() == clusterPkg {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			pass.checkMachineMutation(fn)
			pass.checkConfigMutation(fn)
		}
	}
	return nil
}

// checkMachineMutation flags machineMutators calls outside the aggregate
// entry points.
func (pass *Pass) checkMachineMutation(fn *ast.FuncDecl) {
	if pass.Path() == mapreducePkg && aggregateEntryPoints[fn.Name.Name] {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !machineMutators[sel.Sel.Name] {
			return true
		}
		if !namedFrom(pass.TypeOf(sel.X), clusterPkg, "Machine") {
			return true
		}
		pass.Reportf(call.Pos(), "cluster.Machine.%s outside a driver aggregate entry point: slot/availability state would desynchronize from the incremental aggregates; route the transition through the driver (aggregates.go entry points)", sel.Sel.Name)
		return true
	})
}

// checkConfigMutation flags field writes into a mapreduce.Config reached
// through shared state — a pointer, or a field of some longer-lived struct
// (d.cfg.X = ...). Building up a local Config value before NewDriver is
// fine; Config's own methods (setDefaults) are fine.
func (pass *Pass) checkConfigMutation(fn *ast.FuncDecl) {
	if pass.receiverIsConfig(fn) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			base := sel.X
			if !namedFrom(pass.TypeOf(base), mapreducePkg, "Config") {
				continue
			}
			_, isIdent := base.(*ast.Ident)
			_, isPtr := pass.TypeOf(base).(*types.Pointer)
			if isIdent && !isPtr {
				// A local Config value: mutations stay private to this
				// copy until it is handed to NewDriver.
				continue
			}
			pass.Reportf(as.Pos(), "write to shared mapreduce.Config field %s: the driver captured its Config at construction and derived aggregates from it; mutate a local copy before NewDriver instead", sel.Sel.Name)
		}
		return true
	})
}

// receiverIsConfig reports whether fn is a method on (*)Config from the
// mapreduce package.
func (pass *Pass) receiverIsConfig(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	return namedFrom(pass.TypeOf(fn.Recv.List[0].Type), mapreducePkg, "Config")
}
