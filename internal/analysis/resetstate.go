package analysis

import (
	"go/ast"
	"go/types"
)

// resetTarget names one resettable struct and the function that must
// return it to its freshly-constructed state. The root function is looked
// up by name and receiver type in the target's own package; the audit
// follows same-package calls from there (Driver.Reset → resetAggregates),
// so helpers count toward coverage.
type resetTarget struct {
	// typ is the audited struct; fields of typ must be referenced in the
	// reset closure or carry //eant:reset-keep.
	typ string
	// fn / recv locate the reset entry point: method fn on receiver recv
	// (recv may differ from typ when a container resets its parts, e.g.
	// cluster.Machine fields are reset by Cluster.Reset, and core's
	// pooled colony is re-primed by Matrix.colonyFor).
	fn, recv string
}

// resetRoster registers every warm-run reset path, keyed by import path.
// Adding a resettable struct (or a reset method) without registering it
// here is invisible to the check — register the pair when introducing the
// Reset; the suite fixture pins the analyzer itself stays live.
var resetRoster = map[string][]resetTarget{
	"eant/internal/mapreduce": {
		{typ: "Driver", fn: "Reset", recv: "Driver"},
		{typ: "aggregates", fn: "Reset", recv: "Driver"},
		{typ: "Job", fn: "resetForRun", recv: "Job"},
	},
	"eant/internal/core": {
		{typ: "EAnt", fn: "ResetForRun", recv: "EAnt"},
		{typ: "Matrix", fn: "Clear", recv: "Matrix"},
		{typ: "colony", fn: "colonyFor", recv: "Matrix"},
		{typ: "hostIndex", fn: "colonyFor", recv: "Matrix"},
	},
	"eant/internal/sim": {
		{typ: "Engine", fn: "Reset", recv: "Engine"},
		{typ: "RNG", fn: "Reseed", recv: "RNG"},
	},
	"eant/internal/cluster": {
		{typ: "Cluster", fn: "Reset", recv: "Cluster"},
		{typ: "Machine", fn: "Reset", recv: "Cluster"},
	},
	"eant/internal/hdfs": {
		{typ: "Namespace", fn: "Reset", recv: "Namespace"},
	},
	"eant/internal/noise": {
		{typ: "Model", fn: "Reset", recv: "Model"},
	},
	"eant/internal/fault": {
		{typ: "Injector", fn: "Reset", recv: "Injector"},
	},
	"eant/internal/power": {
		{typ: "Meter", fn: "Reset", recv: "Meter"},
	},
	"eant/internal/sched": {
		{typ: "Fair", fn: "ResetForRun", recv: "Fair"},
		{typ: "Tarazu", fn: "ResetForRun", recv: "Tarazu"},
		{typ: "LATE", fn: "ResetForRun", recv: "LATE"},
		{typ: "FIFO", fn: "ResetForRun", recv: "FIFO"},
		{typ: "Capacity", fn: "ResetForRun", recv: "Capacity"},
	},
	// Fixture package (testdata/src/resetstate) so the suite can exercise
	// the analyzer without loading the real simulator packages.
	"eantlint/fixture/resetstate": {
		{typ: "World", fn: "Reset", recv: "World"},
		{typ: "Annotated", fn: "Reset", recv: "Annotated"},
	},
}

// ResetState enforces the warm-run reuse contract: every field of a
// resettable struct must either be touched by its Reset path (cleared,
// re-derived, or deliberately read) or carry a "//eant:reset-keep
// <reason>" annotation stating why it survives across runs. A field added
// to the Driver and forgotten by Reset would leak one run's state into
// the next — exactly the silent divergence the warm-equals-cold goldens
// exist to catch, surfaced here at compile time instead of as a golden
// diff.
var ResetState = &Analyzer{
	Name: "resetstate",
	Doc:  "require every field of a registered resettable struct to be referenced by its Reset path or annotated //eant:reset-keep, so new fields cannot silently leak state across warm runs",
	Run:  runResetState,
}

func runResetState(pass *Pass) error {
	targets := resetRoster[pass.Path()]
	if len(targets) == 0 {
		return nil
	}
	idx := pass.funcIndex()
	for _, t := range targets {
		pass.checkResetTarget(t, idx)
	}
	return nil
}

// funcIndex maps every package-level function object to its declaration,
// so the audit can follow same-package calls.
func (pass *Pass) funcIndex() map[types.Object]*ast.FuncDecl {
	idx := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.ObjectOf(fd.Name); obj != nil {
					idx[obj] = fd
				}
			}
		}
	}
	return idx
}

// checkResetTarget audits one (struct, reset function) pair.
func (pass *Pass) checkResetTarget(t resetTarget, idx map[types.Object]*ast.FuncDecl) {
	obj := pass.Pkg.Scope().Lookup(t.typ)
	if obj == nil {
		return // struct renamed away; the roster entry is dead
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(obj.Pos(), "resetstate roster names %s, which is not a struct", t.typ)
		return
	}
	root := pass.findFunc(t.fn, t.recv)
	if root == nil {
		pass.Reportf(obj.Pos(), "resettable struct %s has no reset entry point %s.%s; implement it or drop the roster entry", t.typ, t.recv, t.fn)
		return
	}
	touched := pass.reachableFieldRefs(root, idx)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if touched[f] {
			continue
		}
		reason, annotated := pass.Annotation(f.Pos(), "reset-keep")
		if !annotated {
			pass.Reportf(f.Pos(), "field %s.%s is not referenced by %s.%s or its helpers: clear or re-derive it there, or annotate //eant:reset-keep <reason> if it must survive across warm runs", t.typ, f.Name(), t.recv, t.fn)
			continue
		}
		if reason == "" {
			pass.Reportf(f.Pos(), "//eant:reset-keep annotation needs a one-line reason")
		}
	}
}

// findFunc returns the declaration of method fn on receiver type recv
// (base name, pointer or value), or nil.
func (pass *Pass) findFunc(fn, recv string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fn || fd.Body == nil {
				continue
			}
			if receiverBase(fd) == recv {
				return fd
			}
		}
	}
	return nil
}

// receiverBase returns the base type name of fd's receiver, or "".
func receiverBase(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// reachableFieldRefs walks root and every same-package function it
// (transitively) calls, collecting each struct-field object referenced —
// selector reads/writes, composite-literal keys, and clear() arguments all
// resolve to the field's types.Var through the Uses map.
func (pass *Pass) reachableFieldRefs(root *ast.FuncDecl, idx map[types.Object]*ast.FuncDecl) map[types.Object]bool {
	refs := map[types.Object]bool{}
	visited := map[*ast.FuncDecl]bool{}
	work := []*ast.FuncDecl{root}
	for len(work) > 0 {
		fd := work[len(work)-1]
		work = work[:len(work)-1]
		if visited[fd] {
			continue
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if obj := pass.ObjectOf(x); obj != nil {
					if v, ok := obj.(*types.Var); ok && v.IsField() {
						refs[obj] = true
					}
				}
			case *ast.CallExpr:
				var callee *ast.Ident
				switch fun := x.Fun.(type) {
				case *ast.Ident:
					callee = fun
				case *ast.SelectorExpr:
					callee = fun.Sel
				}
				if callee != nil {
					if next, ok := idx[pass.ObjectOf(callee)]; ok && !visited[next] {
						work = append(work, next)
					}
				}
			}
			return true
		})
	}
	return refs
}
