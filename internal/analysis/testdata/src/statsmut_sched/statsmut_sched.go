//eantlint:path eant/internal/sched

// Fixture: outside the driver package, entry-point names grant no
// license — schedulers observe machines, never mutate them.
package statsmutsched

import "eant/internal/cluster"

func wakeDirectly(m *cluster.Machine) {
	m.Wake() // want `cluster\.Machine\.Wake outside a driver aggregate entry point`
}

func startMap(m *cluster.Machine) {
	m.AcquireMap(1) // want `cluster\.Machine\.AcquireMap outside a driver aggregate entry point`
}

func observeOnly(m *cluster.Machine) int {
	return m.FreeMapSlots() + m.RunningMap()
}
