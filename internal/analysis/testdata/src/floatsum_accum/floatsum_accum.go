// Fixture: float accumulation into state that outlives an unordered map
// iteration fires; integer sums, per-key writes and justified
// annotations do not.
package floatsumaccum

type tally struct{ joules float64 }

func scalarSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation total \+=`
	}
	return total
}

func fieldSum(m map[string]float64, t *tally) {
	for _, v := range m {
		t.joules -= v // want `float accumulation t.joules -=`
	}
}

func keyedAccum(m map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range m {
		out[k] += v
	}
	return out
}

func keyedScale(m map[string]float64, n float64) {
	for k := range m {
		m[k] /= n
	}
}

func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func annotatedSum(m map[string]float64) float64 {
	var total float64
	//eant:unordered-ok downstream comparisons use a relative tolerance, not goldens
	for _, v := range m {
		total += v
	}
	return total
}
