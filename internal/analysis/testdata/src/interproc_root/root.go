//eantlint:path eant/internal/mapreduce

// Fixture: a checked driver package importing taint and exporting
// hotness through the unchecked interproc_dep package — the catches the
// old per-package analyzers miss. Load with analysistest.RunModule,
// dependency first.
package interprocroot

import (
	"eant/internal/sim"

	dep "fixture/interproc_dep"
)

type driver struct {
	engine *sim.Engine
	beat   sim.EventKind
	last   int64
	n      int
}

func (d *driver) setup() {
	d.beat = d.engine.RegisterKind(d.tick)
}

// tick is a typed handler: a hot root through the dispatch table.
func (d *driver) tick(i int, arg any) {
	d.last = dep.Stamp() // want `call to fixture/interproc_dep\.Stamp transitively reaches time\.Now`
	d.format()
}

// format is hot transitively; the allocation it causes lives in the dep
// package and is flagged there.
func (d *driver) format() {
	d.n = len(dep.Describe(d.n))
}

// coldStamp is not hot, but the virtual-clock contract covers the whole
// package: the transitive wall-clock read is flagged here too.
func (d *driver) coldStamp() {
	d.last = dep.Stamp() // want `transitively reaches time\.Now`
}

// annotated documents a sanctioned exception at the frontier call site.
func (d *driver) annotated() {
	d.last = dep.Stamp() //eant:clock-ok fixture: process-boundary logging
}

// clean calls into the dep carry no taint and stay silent.
func (d *driver) clean() string { return dep.Label() }
