// Fixture dependency: a helper package outside every checked import
// path. Its wall-clock read and its allocation are invisible to the
// intra-package rules — the interprocedural layer must carry the facts
// across the package boundary (taint to the callers in interproc_root,
// hotness from them back into here).
package interprocdep

import (
	"fmt"
	"time"
)

// Stamp reads the wall clock; callers in checked packages import the
// taint and are flagged at their call sites.
func Stamp() int64 { return time.Now().UnixNano() }

// Describe allocates. It is flagged only because a hot caller in
// interproc_root pulls it onto the engine loop.
func Describe(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf allocates its result in hot function`
}

// Label is clean: no taint, no allocation.
func Label() string { return "dep" }
