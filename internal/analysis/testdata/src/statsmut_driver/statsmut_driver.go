//eantlint:path eant/internal/mapreduce

// Fixture: inside the driver package, machine mutators are legal only in
// the aggregate entry points, and Config writes are legal only on a local
// value or through Config's own methods.
package statsmutdriver

import "eant/internal/cluster"

type Config struct{ Slowstart float64 }

type Driver struct{ cfg Config }

func (d *Driver) startMap(m *cluster.Machine) {
	m.AcquireMap(0.5)
}

func (d *Driver) offerDirect(m *cluster.Machine) {
	m.AcquireMap(0.5) // want `cluster\.Machine\.AcquireMap outside a driver aggregate entry point`
}

func (d *Driver) panicRepair(m *cluster.Machine) {
	m.Repair() // want `cluster\.Machine\.Repair outside a driver aggregate entry point`
}

func buildConfig() Config {
	cfg := Config{}
	cfg.Slowstart = 0.05
	return cfg
}

func (d *Driver) retune() {
	d.cfg.Slowstart = 0.1 // want `write to shared mapreduce\.Config field Slowstart`
}

func retuneByPtr(cfg *Config) {
	cfg.Slowstart = 0.1 // want `write to shared mapreduce\.Config field Slowstart`
}

func (c *Config) setDefaults() {
	c.Slowstart = 0.05
}
