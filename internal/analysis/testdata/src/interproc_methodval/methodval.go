// Fixture: function values outside call position. A method value bound
// to a variable, stored in a function-typed struct field, or passed as
// an argument produces a conservative ref edge from the enclosing
// function — whoever receives the value may invoke it there.
package interprocmethodval

import "time"

type worker struct{ fn func() int64 }

func (w *worker) stamp() int64 { return time.Now().UnixNano() }

// build stores a method value in a function-typed field: ref edge
// build → (worker).stamp, so build carries the clock taint.
func build() *worker {
	w := &worker{}
	w.fn = w.stamp
	return w
}

// handoff passes a method value as an argument: ref edge
// handoff → (worker).stamp.
func handoff(run func(func() int64), w *worker) {
	run(w.stamp)
}

// indirect calls through the field. The graph does not track values
// through struct fields, so indirect itself stays untainted — the taint
// was charged to build/handoff at the point the value escaped.
func indirect(w *worker) int64 { return w.fn() }
