// Fixture: map iterations whose bodies observe iteration order fire;
// the collect-then-sort idiom, keyed writes, and justified annotations
// do not.
package maporder

import (
	"bytes"
	"fmt"
	"maps"
	"sort"

	"eant/internal/sim"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside unordered map iteration`
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printsDuring(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside unordered map iteration`
	}
}

func writesDuring(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want `WriteString call inside unordered map iteration`
	}
}

func drawsRNG(m map[string]int, g *sim.RNG) {
	for range m {
		g.Float64() // want `RNG draw inside unordered map iteration`
	}
}

func feedsRNG(m map[string]int, g *sim.RNG) {
	for range m {
		draw(g) // want `RNG passed to a callee inside unordered map iteration`
	}
}

func draw(g *sim.RNG) { g.Float64() }

func lastWriterWins(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want `assignment to last from a map-range loop variable`
	}
	return last
}

func keyedWrites(m map[string]int) map[string]int {
	out := make(map[string]int)
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

func countOnly(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func annotatedOK(m map[string]int) []string {
	var keys []string
	//eant:unordered-ok caller treats the result as a set and sorts before rendering
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func annotatedNoReason(m map[string]int) []string {
	var keys []string
	//eant:unordered-ok
	for k := range m { // want `needs a one-line reason`
		keys = append(keys, k)
	}
	return keys
}

func iteratorRange(m map[string]int) []string {
	var keys []string
	for k := range maps.Keys(m) {
		keys = append(keys, k) // want `append to keys inside unordered map iteration`
	}
	return keys
}
