//eantlint:path eant/internal/core

// Fixture: a checked policy package reaching the global generator
// through the exempt wrapper package. Load with analysistest.RunModule,
// dependency first.
package interprocrngroot

import dep "fixture/interproc_rng_dep"

func pick() float64 {
	return dep.Jitter() // want `call to eant/internal/sim\.Jitter transitively reaches math/rand\.Float64`
}

// seeded uses the explicitly-seeded constructor route: clean.
func seeded() float64 { return dep.Seeded(7).Float64() }

func annotated() float64 {
	return dep.Jitter() //eant:rand-ok fixture: documented exception
}
