// Fixture: interface dispatch for the call-graph tests. A call through
// collector must produce one dispatch edge per implementing type in the
// module, and the taint of any implementation must reach the caller.
package interprociface

import "time"

type collector interface{ collect() int }

type clocky struct{}

func (clocky) collect() int { return int(time.Now().Unix()) }

type pure struct{ n int }

func (p pure) collect() int { return p.n }

func gather(c collector) int { return c.collect() }
