//eantlint:path eant/internal/core

// Fixture: wall-clock reads inside an internal simulation package fire;
// pure time.Duration arithmetic does not.
package noclockbad

import "time"

func observes(t0 time.Time) {
	time.Now()        // want `wall-clock call time.Now in simulation package`
	time.Since(t0)    // want `wall-clock call time.Since in simulation package`
	time.Sleep(0)     // want `wall-clock call time.Sleep in simulation package`
	time.After(0)     // want `wall-clock call time.After in simulation package`
	time.NewTimer(0)  // want `wall-clock call time.NewTimer in simulation package`
	time.NewTicker(1) // want `wall-clock call time.NewTicker in simulation package`
}

func arithmeticOnly() time.Duration {
	return 3 * time.Second / 2
}
