// Fixture: allocating constructs inside functions reachable from the
// engine loop. setup registers tick as a typed kind, which makes tick a
// hot root and everything it reaches hot; cold functions and hot-stop
// annotated ones stay unflagged.
package hotallochot

import (
	"fmt"

	"eant/internal/sim"
)

type stringer interface{ String() string }

type point struct{ x, y int }

func (p point) String() string { return "point" }

type ticker struct {
	engine  *sim.Engine
	kind    sim.EventKind
	scratch []int
	names   map[int]string
	label   string
	sum     int
}

func (t *ticker) setup() {
	t.kind = t.engine.RegisterKind(t.tick)
}

func (t *ticker) tick(i int, arg any) {
	t.names = make(map[int]string) // want `make allocates in hot function`
	var fresh []int
	fresh = append(fresh, i)         // want `append to freshly-declared slice grows without capacity`
	t.scratch = append(t.scratch, i) // field-rooted scratch buffer: allowed
	buf := t.scratch[:0]
	buf = append(buf, i)                // re-sliced scratch: allowed
	t.label = fmt.Sprintf("tick %d", i) // want `fmt\.Sprintf allocates its result in hot function`
	t.label = t.label + "!"             // want `string concatenation allocates`
	n := i
	f := func() int { return n } // want `closure literal captures variables`
	t.sum += f()
	g := func() int { return 42 } // non-capturing literal: static function, allowed
	t.sum += g()
	t.box(i)
	t.lazy()
	t.annotated()
	t.badAnnotation()
	t.sum += fresh[0] + buf[0]
}

// box is hot transitively through tick.
func (t *ticker) box(i int) {
	p := point{x: i} // struct composite: no allocation, allowed
	if i < 0 {
		panic(fmt.Sprintf("bad index %d", i)) // panic path: exempt
	}
	_ = stringer(p) // want `conversion boxes`
}

// lazy builds its index the first time the loop reaches it — excluded
// from the hot set, together with everything only it reaches.
//
//eant:hot-stop one-time lazy construction, not steady-state work
func (t *ticker) lazy() {
	if t.names == nil {
		t.names = make(map[int]string)
	}
}

func (t *ticker) annotated() {
	t.names = make(map[int]string, 1) //eant:alloc-ok fixture: capacity-bounded one-shot
}

func (t *ticker) badAnnotation() {
	//eant:alloc-ok
	t.names = make(map[int]string) // want `//eant:alloc-ok annotation must carry a reason`
}

//eant:hot-stop
func (t *ticker) badStop() {} // want `//eant:hot-stop annotation must carry a reason`

// cold is never reached from the loop: everything here is allowed.
func cold() map[int]bool {
	m := map[int]bool{}
	s := fmt.Sprint("cold")
	m[len(s)] = true
	return m
}
