// Fixture: addresses of slice elements must not be retained across event
// boundaries — append may relocate the backing column. Indices and value
// handles are fine; annotated fixed-size retention is tolerated.
package ptrretain

type sample struct{ util float64 }

type probe struct {
	cur  *sample
	slot int
}

var columns = struct {
	util []float64
}{util: make([]float64, 8)}

var lastUtil *float64

type world struct {
	samples []sample
	byName  map[string]*sample
}

func (w *world) retainField(p *probe, i int) {
	p.cur = &w.samples[i] // want `address of slice element stored in field cur`
}

func (w *world) retainPackageVar(i int) {
	lastUtil = &columns.util[i] // want `address of slice element stored in package variable lastUtil`
}

func (w *world) retainInMap(name string, i int) {
	w.byName[name] = &w.samples[i] // want `address of slice element stored in container element`
}

func (w *world) retainInLiteral(i int) probe {
	return probe{cur: &w.samples[i]} // want `address of slice element placed in a composite literal`
}

func (w *world) retainAnnotated(p *probe, i int) {
	p.cur = &w.samples[i] //eant:retain-ok samples is sized once at construction and never appended to
}

func (w *world) retainAnnotatedNoReason(p *probe, i int) {
	//eant:retain-ok
	p.cur = &w.samples[i] // want `//eant:retain-ok annotation needs a one-line reason`
}

func (w *world) localUseIsFine(i int) float64 {
	s := &w.samples[i] // local scratch pointer: dies with the frame
	return s.util
}

func (w *world) indexRetentionIsFine(p *probe, i int) {
	p.slot = i // retaining the index is the sanctioned pattern
}

func (w *world) arrayElementIsFine(p *probe) {
	var fixed [4]sample
	p.cur = &fixed[0] // array backing storage never relocates
	_ = fixed
}
