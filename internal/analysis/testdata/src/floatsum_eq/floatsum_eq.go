//eantlint:path eant/internal/core

// Fixture: exact float ==/!= fires in the core package; annotated
// sentinels, ordered comparisons and integer equality do not.
package floatsumeq

func eq(a, b float64) bool {
	return a == b // want `exact float comparison`
}

func neq(a, b float64) bool {
	return a != b // want `exact float comparison`
}

func annotated(dep float64) bool {
	//eant:float-eq-ok 0 is an exact sentinel assigned, never accumulated
	return dep != 0
}

func annotatedNoReason(a, b float64) bool {
	//eant:float-eq-ok
	return a == b // want `needs a one-line reason`
}

func ints(a, b int) bool { return a == b }

func ordered(a, b float64) bool { return a < b }
