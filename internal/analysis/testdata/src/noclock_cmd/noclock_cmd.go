//eantlint:path eant/cmd/eantfoo

// Fixture: cmd/ packages are process entry points and exempt wholesale.
package noclockcmd

import "time"

func stamp() time.Time { return time.Now() }
