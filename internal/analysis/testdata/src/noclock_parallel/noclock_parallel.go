//eantlint:path eant/internal/parallel

// Fixture: the parallel runner's plumbing is on the wall-clock allowlist.
package noclockparallel

import "time"

func heartbeat() time.Time { return time.Now() }
