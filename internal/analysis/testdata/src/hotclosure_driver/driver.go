//eantlint:path eant/internal/mapreduce

// Fixture: inside the driver hot path, events go through typed kinds —
// closure literals, method values, and Every chains are per-event
// allocations the calendar refactor removed.
package hotclosuredriver

import (
	"time"

	"eant/internal/sim"
)

type driver struct {
	engine *sim.Engine
	beat   sim.EventKind
}

func (d *driver) tick(i int, arg any) {}

func (d *driver) heartbeatClosure() {
	d.engine.Schedule(0, func() {}) // want `closure-allocating Engine\.Schedule in the hot path`
}

func (d *driver) completionClosure(delay time.Duration) {
	d.engine.ScheduleAfter(delay, func() {}) // want `closure-allocating Engine\.ScheduleAfter in the hot path`
}

func (d *driver) methodValue() {
	d.engine.Schedule(0, d.fire) // want `closure-allocating Engine\.Schedule in the hot path`
}

func (d *driver) fire() {}

func (d *driver) periodicChain() {
	d.engine.Every(0, 3*time.Second, func() bool { return true }) // want `closure-allocating Engine\.Every in the hot path`
}

func (d *driver) typedIsFine() {
	d.beat = d.engine.RegisterKind(d.tick)
	d.engine.ScheduleKind(0, d.beat, 0, nil)
	d.engine.ScheduleKindAfter(3*time.Second, d.beat, 1, nil)
}

func (d *driver) prebuiltHandlerIsFine(h sim.Handler) {
	d.engine.Schedule(0, h)
}

func (d *driver) annotatedColdPath() {
	//eant:closure-ok one-shot campaign setup, fires once per run
	d.engine.Schedule(0, func() {})
}

func (d *driver) annotatedWithoutReason() {
	//eant:closure-ok
	d.engine.Schedule(0, func() {}) // want `//eant:closure-ok annotation needs a one-line reason`
}
