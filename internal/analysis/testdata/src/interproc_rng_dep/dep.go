//eantlint:path eant/internal/sim

// Fixture: the RNG wrapper package is exempt from the import ban, so a
// global draw hiding here is invisible to the intra-package rule; the
// taint must reach callers through the call graph.
package interprocrngdep

import "math/rand"

// Jitter draws from the shared global generator — nondeterministic
// across runs, tainted.
func Jitter() float64 { return rand.Float64() }

// Seeded builds an explicitly-seeded stream: the sanctioned
// construction, not tainted.
func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
