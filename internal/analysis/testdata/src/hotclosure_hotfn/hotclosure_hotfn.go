// Fixture: hotclosure follows the hot fact outside its two hard-coded
// packages. This package is not in hotPathPkgs, but tick is registered
// as a typed handler — a hot root — so closure scheduling inside it is
// flagged, while the same call on a cold path is allowed.
package hotclosurehotfn

import "eant/internal/sim"

type helper struct {
	engine *sim.Engine
	kind   sim.EventKind
}

func (h *helper) setup() {
	h.kind = h.engine.RegisterKind(h.tick)
}

func (h *helper) tick(i int, arg any) {
	h.engine.Schedule(0, func() {}) // want `closure-allocating Engine\.Schedule in the hot path`
}

// coldSchedule is neither hot nor in a hot-listed package: allowed.
func (h *helper) coldSchedule() {
	h.engine.Schedule(0, func() {})
}
