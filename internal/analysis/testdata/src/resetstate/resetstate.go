//eantlint:path eantlint/fixture/resetstate

// Fixture: a resettable struct must account for every field in its Reset
// path — cleared directly, re-derived in a helper, or annotated
// //eant:reset-keep with a reason.
package resetstate

type World struct {
	clock   int
	queue   []int
	scratch []byte // cleared by the drain helper, reachable from Reset
	catalog []string
	leaked  map[int]int // want `field World\.leaked is not referenced by World\.Reset`
	//eant:reset-keep
	badKeep int // want `//eant:reset-keep annotation needs a one-line reason`
}

func (w *World) Reset() {
	w.clock = 0
	w.queue = w.queue[:0]
	w.drain()
	_ = w.catalog // read counts: the reset path considered the field
}

func (w *World) drain() {
	w.scratch = w.scratch[:0]
}

type Annotated struct {
	pool []int //eant:reset-keep recycled buffers are the point of reuse
	used int
}

func (a *Annotated) Reset() {
	a.used = 0
}
