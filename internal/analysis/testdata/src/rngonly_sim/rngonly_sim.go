//eantlint:path eant/internal/sim

// Fixture: internal/sim itself is the one package allowed to touch the
// raw generator.
package rngonlysim

import _ "math/rand"
