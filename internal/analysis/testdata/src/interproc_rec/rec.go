// Fixture: mutual recursion. The taint fixpoint must terminate and both
// halves of the cycle must carry the clock taint introduced at the base
// of the recursion.
package interprocrec

import "time"

func even(n int) bool {
	if n == 0 {
		return wall() > 0
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func wall() int64 { return time.Now().Unix() }
