// Fixture: every banned randomness import outside internal/sim fires.
package rngonlybad

import (
	_ "crypto/rand"       // want `import of crypto/rand outside internal/sim`
	_ "eant/internal/sim" // importing the wrapper is the sanctioned route
	_ "math/rand"         // want `import of math/rand outside internal/sim`
	_ "math/rand/v2"      // want `import of math/rand/v2 outside internal/sim`
)
