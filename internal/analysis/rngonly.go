package analysis

import "strconv"

// rngExempt is the one package allowed to touch the raw generators: it
// defines sim.RNG, the seeded, forkable stream every subsystem draws from.
var rngExempt = map[string]bool{
	"eant/internal/sim": true,
}

// bannedRand are the import paths that introduce randomness outside the
// simulator's seeded streams. crypto/rand is banned outright: it is
// nondeterministic by construction, so a single draw breaks bit-identical
// replay.
var bannedRand = map[string]string{
	"math/rand":    "use sim.RNG (forked from the run seed) instead",
	"math/rand/v2": "use sim.RNG (forked from the run seed) instead",
	"crypto/rand":  "nondeterministic by construction; the simulator must replay bit-identically",
}

// RngOnly enforces the single-RNG contract: outside internal/sim, no
// package may import math/rand, math/rand/v2 or crypto/rand. All
// randomness flows through sim.RNG so that one master seed determines
// every stream and golden outputs replay bit-for-bit.
var RngOnly = &Analyzer{
	Name: "rngonly",
	Doc:  "forbid math/rand and crypto/rand imports outside internal/sim; randomness must flow through sim.RNG",
	Run:  runRngOnly,
}

func runRngOnly(pass *Pass) error {
	if rngExempt[pass.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			why, banned := bannedRand[path]
			if !banned {
				continue
			}
			pass.Reportf(imp.Pos(), "import of %s outside internal/sim: %s", path, why)
		}
	}
	return nil
}
