package analysis

import "strconv"

// rngExempt is the one package allowed to touch the raw generators: it
// defines sim.RNG, the seeded, forkable stream every subsystem draws from.
var rngExempt = map[string]bool{
	"eant/internal/sim": true,
}

// bannedRand are the import paths that introduce randomness outside the
// simulator's seeded streams. crypto/rand is banned outright: it is
// nondeterministic by construction, so a single draw breaks bit-identical
// replay.
var bannedRand = map[string]string{
	"math/rand":    "use sim.RNG (forked from the run seed) instead",
	"math/rand/v2": "use sim.RNG (forked from the run seed) instead",
	"crypto/rand":  "nondeterministic by construction; the simulator must replay bit-identically",
}

// RngOnly enforces the single-RNG contract: outside internal/sim, no
// package may import math/rand, math/rand/v2 or crypto/rand. All
// randomness flows through sim.RNG so that one master seed determines
// every stream and golden outputs replay bit-for-bit.
//
// The import ban is intra-package; on top of it, calls into *unchecked*
// packages (the sim exemption, cmd/, anything outside internal/) whose
// callees transitively draw from the global math/rand generators or
// crypto/rand are flagged at the call site that imports the taint.
// Constructors over explicit sources (rand.New(rand.NewSource(seed))) do
// not taint — they are exactly how the seeded sim.RNG streams are built.
// Escape with "//eant:rand-ok <reason>" on the call.
var RngOnly = &Analyzer{
	Name: "rngonly",
	Doc:  "forbid math/rand and crypto/rand imports outside internal/sim, and calls that transitively draw global randomness; randomness must flow through sim.RNG",
	Run:  runRngOnly,
}

// rngChecked reports whether a package's own body is subject to the
// intra-package import ban. Unlike the clock rule, the randomness ban
// covers everything — cmd/ entry points included; only the sim.RNG
// wrapper package touches raw generators.
func rngChecked(path string) bool {
	return !rngExempt[path]
}

func runRngOnly(pass *Pass) error {
	if !rngChecked(pass.Path()) {
		return nil
	}
	reportTransitiveTaint(pass, TaintRand, rngChecked, "rand-ok",
		"route the draw through sim.RNG (forked from the run seed)")
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			why, banned := bannedRand[path]
			if !banned {
				continue
			}
			pass.Reportf(imp.Pos(), "import of %s outside internal/sim: %s", path, why)
		}
	}
	return nil
}
