package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// This file defines the hot frontier — which functions count as "inside
// the engine inner loop" — and the forward reachability pass that marks
// everything they transitively call as hot. DESIGN.md §16 documents the
// frontier; hotalloc and hotclosure consume the resulting fact.

// engineSchedulers are the sim.Engine methods whose function-valued
// arguments execute inside the engine loop: the typed-kind jump table and
// the closure scheduling API. Every function value handed to one becomes a
// hot root, no matter how cold the code that registered it.
var engineSchedulers = map[string]bool{
	"RegisterKind":  true,
	"Schedule":      true,
	"ScheduleAfter": true,
	"Every":         true,
}

// simEnginePath/simEngineType identify the engine type for root
// detection; fixtures that import the real package match too.
const (
	simEnginePath = "eant/internal/sim"
	simEngineName = "Engine"
)

// hotFrontier names the functions that ARE the engine inner loop, matched
// by (package path, receiver, name). The dispatch-table and closure roots
// are discovered syntactically (see engineSchedulers); these are the named
// anchors from DESIGN.md §16's frontier definition.
var hotFrontier = []struct {
	pkg, recv, name string
	desc            string
}{
	{simEnginePath, simEngineName, "RunUntil", "the engine run loop sim.Engine.RunUntil"},
	{"eant/internal/mapreduce", "Driver", "heartbeatTick", "the driver heartbeat handler"},
	{"eant/internal/mapreduce", "Driver", "controlTickEvent", "the driver control-tick handler"},
	{"eant/internal/core", "EAnt", "AssignMap", "the E-Ant map offer path"},
	{"eant/internal/core", "EAnt", "AssignReduce", "the E-Ant reduce offer path"},
}

// markHot seeds the hot roots and runs the caller→callee fixpoint over
// call, dispatch, and ref edges. Hot-stop annotated nodes never enter the
// set and never propagate.
func (g *CallGraph) markHot() {
	var work []*Node
	root := func(n *Node, desc string) {
		if n == nil || n.facts.hot || n.facts.hotStop {
			return
		}
		n.facts.hot = true
		n.facts.hotRoot = desc
		work = append(work, n)
	}

	// Named frontier anchors.
	for _, n := range g.Nodes {
		if n.Fn == nil {
			continue
		}
		for _, f := range hotFrontier {
			if n.Pkg.Types.Path() == f.pkg && n.Fn.Name() == f.name && recvTypeName(n.Fn) == f.recv {
				root(n, f.desc)
			}
		}
	}

	// Dispatch-table and closure roots: function values passed to the
	// engine's scheduling methods.
	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Body, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !engineSchedulers[sel.Sel.Name] {
				return true
			}
			if !namedFromInfo(info, sel.X, simEnginePath, simEngineName) {
				return true
			}
			for _, arg := range call.Args {
				arg = unparen(arg)
				if sig := info.TypeOf(arg); sig == nil {
					continue
				} else if _, ok := sig.Underlying().(*types.Signature); !ok {
					continue
				}
				desc := fmt.Sprintf("a handler registered with sim.Engine.%s (fires inside the run loop)", sel.Sel.Name)
				switch a := arg.(type) {
				case *ast.FuncLit:
					root(g.byLit[a], desc)
				case *ast.Ident:
					if fn, ok := info.Uses[a].(*types.Func); ok {
						root(g.byFunc[fn], desc)
					}
				case *ast.SelectorExpr:
					if s, ok := info.Selections[a]; ok && s.Kind() == types.MethodVal {
						root(g.byFunc[s.Obj().(*types.Func)], desc)
					} else if fn, ok := info.Uses[a.Sel].(*types.Func); ok {
						root(g.byFunc[fn], desc)
					}
				}
			}
			return true
		})
	}

	sort.Slice(work, func(i, j int) bool { return work[i].ID < work[j].ID })
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, e := range n.Out {
			callee := e.Callee
			if callee.facts.hot || callee.facts.hotStop {
				continue
			}
			callee.facts.hot = true
			callee.facts.hotVia = n
			work = append(work, callee)
		}
	}
}

// recvTypeName returns the bare name of fn's receiver type, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// namedFromInfo is namedFrom without a Pass: reports whether e's type
// (after stripping pointers) is the named type pkgPath.name.
func namedFromInfo(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	return namedFrom(info.TypeOf(e), pkgPath, name)
}
