package core_test

import (
	"encoding/binary"
	"math"
	"testing"

	"eant/internal/core"
	"eant/internal/sim"
)

func TestFairnessEta(t *testing.T) {
	const etaMax = 10.0
	cases := []struct {
		name              string
		sMin, sOcc, sPool float64
		want              float64
	}{
		// Empty pool (no live slots at all) is neutral by definition.
		{"emptyPool", 3, 1, 0, 1},
		{"negativePool", 3, 1, -4, 1},
		// At exactly fair share the heuristic is neutral.
		{"atShare", 5, 5, 20, 1},
		// Starved job: occupancy below fair share boosts η above 1.
		// denom = 1 - (5-1)/20 = 0.8 → η = 1.25.
		{"starved", 5, 1, 20, 1.25},
		// Above fair share: η dips below 1. denom = 1 - (5-9)/20 = 1.2.
		{"aboveShare", 5, 9, 20, 1 / 1.2},
		// Fully starved job whose deficit equals the pool hits the cap
		// (denom → 0 stands in for the locality branch's η = ∞).
		{"deficitEqualsPool", 20, 0, 20, etaMax},
		// Deficit beyond the pool would make denom negative; still capped.
		{"deficitBeyondPool", 40, 0, 20, etaMax},
		// Massive over-occupancy clamps at the floor 1/etaMax.
		{"gluttonFloor", 0, 1000, 10, 1 / etaMax},
	}
	for _, c := range cases {
		got := core.FairnessEta(c.sMin, c.sOcc, c.sPool, etaMax)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: FairnessEta(%v, %v, %v) = %v, want %v",
				c.name, c.sMin, c.sOcc, c.sPool, got, c.want)
		}
	}
}

func TestFairnessEtaAlwaysWithinClamp(t *testing.T) {
	const etaMax = 8.0
	for _, sMin := range []float64{0, 1, 7, 100} {
		for _, sOcc := range []float64{0, 1, 7, 100} {
			for _, sPool := range []float64{0, 1, 16, 87} {
				got := core.FairnessEta(sMin, sOcc, sPool, etaMax)
				if got < 1/etaMax-1e-12 || got > etaMax+1e-12 {
					t.Fatalf("FairnessEta(%v, %v, %v) = %v escapes [%v, %v]",
						sMin, sOcc, sPool, got, 1/etaMax, etaMax)
				}
			}
		}
	}
}

func TestHeuristicWeight(t *testing.T) {
	cases := []struct {
		name           string
		tau, eta, beta float64
		want           float64
	}{
		// β ≤ 0 disables the heuristic term: pure pheromone selection.
		{"betaZero", 2.5, 4, 0, 2.5},
		{"betaNegative", 2.5, 4, -1, 2.5},
		// β = 1 multiplies the trail by the full fairness factor.
		{"betaOne", 2, 3, 1, 6},
		// Fractional β dampens the heuristic: 2 · 4^0.5 = 4.
		{"betaHalf", 2, 4, 0.5, 4},
		// η < 1 (above fair share) discounts the trail.
		{"etaBelowOne", 10, 0.25, 0.5, 5},
		// Neutral η leaves the trail untouched for any β.
		{"etaNeutral", 3.7, 1, 0.8, 3.7},
	}
	for _, c := range cases {
		got := core.HeuristicWeight(c.tau, c.eta, c.beta)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: HeuristicWeight(%v, %v, %v) = %v, want %v",
				c.name, c.tau, c.eta, c.beta, got, c.want)
		}
	}
}

func TestRouletteSelectMatchesRouletteWithoutAvailability(t *testing.T) {
	// The bit-compatibility contract: with available == nil, RouletteSelect
	// must consume the same draws and return the same indices as
	// sim.RNG.Roulette, including degenerate all-zero weights.
	weightSets := [][]float64{
		{1, 2, 3, 4},
		{0.3},
		{0, 0, 5, 0},
		{0, 0, 0},
		{1e-9, 1e9, 2},
	}
	a, b := sim.NewRNG(99), sim.NewRNG(99)
	for _, w := range weightSets {
		for i := 0; i < 200; i++ {
			got, want := core.RouletteSelect(a, w, nil), b.Roulette(w)
			if got != want {
				t.Fatalf("weights %v draw %d: RouletteSelect = %d, Roulette = %d", w, i, got, want)
			}
		}
	}
}

func TestRouletteSelectRespectsAvailability(t *testing.T) {
	rng := sim.NewRNG(4)
	w := []float64{5, 1, 3, 2}
	avail := []bool{false, true, false, true}
	for i := 0; i < 500; i++ {
		got := core.RouletteSelect(rng, w, avail)
		if got != 1 && got != 3 {
			t.Fatalf("selected unavailable index %d", got)
		}
	}
	// All eligible weights zero → uniform over eligible only (the big
	// weights sit on unavailable indices).
	w = []float64{7, 0, 9, 0}
	seen := map[int]int{}
	for i := 0; i < 500; i++ {
		seen[core.RouletteSelect(rng, w, avail)]++
	}
	if seen[0]+seen[2] != 0 || seen[1] == 0 || seen[3] == 0 {
		t.Errorf("degenerate draw distribution wrong: %v", seen)
	}
}

func TestRouletteSelectPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	rng := sim.NewRNG(1)
	expectPanic("empty weights", func() { core.RouletteSelect(rng, nil, nil) })
	expectPanic("length mismatch", func() { core.RouletteSelect(rng, []float64{1, 2}, []bool{true}) })
	expectPanic("nothing available", func() { core.RouletteSelect(rng, []float64{1, 2}, []bool{false, false}) })
}

func TestSelectionProbabilities(t *testing.T) {
	p := core.SelectionProbabilities([]float64{1, 3}, nil)
	if math.Abs(p[0]-0.25) > 1e-12 || math.Abs(p[1]-0.75) > 1e-12 {
		t.Errorf("probabilities = %v, want [0.25 0.75]", p)
	}
	// Unavailable indices carry zero mass even with large weights.
	p = core.SelectionProbabilities([]float64{100, 1, 1}, []bool{false, true, true})
	if p[0] != 0 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Errorf("availability-masked probabilities = %v", p)
	}
	// Degenerate weights → uniform over eligible.
	p = core.SelectionProbabilities([]float64{0, math.NaN(), math.Inf(1)}, nil)
	for i, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Errorf("degenerate p[%d] = %v, want 1/3", i, v)
		}
	}
	// Nothing eligible → nil.
	if p := core.SelectionProbabilities([]float64{1}, []bool{false}); p != nil {
		t.Errorf("no-eligible probabilities = %v, want nil", p)
	}
	if p := core.SelectionProbabilities(nil, nil); p != nil {
		t.Errorf("empty probabilities = %v, want nil", p)
	}
}

// FuzzRouletteSelect hammers the selection invariants with arbitrary
// weight vectors (including NaN/Inf bit patterns) and availability masks:
// the drawn index is always in range and eligible, the nil-availability
// path stays bit-compatible with sim.RNG.Roulette, and the announced
// selection distribution is a proper distribution.
func FuzzRouletteSelect(f *testing.F) {
	f.Add(int64(1), []byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{1})
	f.Add(int64(7), []byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255}, []byte{0, 1})
	f.Add(int64(-3), []byte{0x7f, 0xf0, 0, 0, 0, 0, 0, 1}, []byte{})
	f.Fuzz(func(t *testing.T, seed int64, wBytes, aBytes []byte) {
		n := len(wBytes) / 8
		if n == 0 || n > 64 {
			t.Skip()
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(wBytes[i*8:]))
		}
		var available []bool
		anyAvailable := false
		if len(aBytes) > 0 {
			available = make([]bool, n)
			for i := range available {
				available[i] = aBytes[i%len(aBytes)]&1 == 1
				anyAvailable = anyAvailable || available[i]
			}
			if !anyAvailable {
				t.Skip() // panics by contract
			}
		}

		rng := sim.NewRNG(seed)
		got := core.RouletteSelect(rng, weights, available)
		if got < 0 || got >= n {
			t.Fatalf("index %d out of range [0, %d)", got, n)
		}
		if available != nil && !available[got] {
			t.Fatalf("selected unavailable index %d (weights %v, available %v)", got, weights, available)
		}

		// The bit-compatibility contract holds for finite weights only:
		// sim.RNG.Roulette lets NaN/Inf poison its walk (NaN is neither
		// summed nor skipped), where RouletteSelect zeroes them.
		finite := true
		for _, w := range weights {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				finite = false
				break
			}
		}
		if available == nil && finite {
			ref := sim.NewRNG(seed)
			if want := ref.Roulette(weights); want != got {
				t.Fatalf("parity break: RouletteSelect = %d, Roulette = %d (weights %v)", got, want, weights)
			}
		}

		p := core.SelectionProbabilities(weights, available)
		if p == nil {
			t.Fatalf("no distribution for selectable input (weights %v, available %v)", weights, available)
		}
		var sum float64
		for i, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("p[%d] = %v", i, v)
			}
			if available != nil && !available[i] && v != 0 {
				t.Fatalf("unavailable index %d carries mass %v", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	})
}
