// Package core implements E-Ant, the paper's contribution: an ant-colony-
// optimization task assigner that minimizes cluster energy on heterogeneous
// hardware using only the task-level energy feedback TaskTrackers report.
//
// Mapping (§III-B): each job is an ant colony, each task an ant, each
// (job, machine) pair a path carrying a pheromone value τ. Task assignment
// is probabilistic over pheromone and heuristic information (Eqs. 3, 8);
// pheromone evolves by evaporation plus energy-efficiency rewards
// (Eqs. 4, 5), with cross-job negative feedback (Eq. 6) and the two
// noise-robustness exchange strategies of §IV-D.
package core

import "fmt"

// Params are E-Ant's tuning knobs. DefaultParams reproduces the paper's
// configuration.
type Params struct {
	// Rho is the pheromone evaporation coefficient ρ of Eq. 4. The
	// paper's worked example uses 0.5.
	Rho float64
	// Beta is the heuristic exponent β of Eq. 8, trading energy saving
	// against data locality and job fairness. The paper's sensitivity
	// study (Fig. 12a) peaks energy saving at β ≈ 0.1. β = 0 disables
	// heuristic information entirely, including the locality priority.
	Beta float64
	// InitTau is the pheromone a new path starts with.
	InitTau float64
	// MinTau / MaxTau clamp pheromone values so probabilities never pin
	// to zero (exploration survives) nor explode.
	MinTau float64
	MaxTau float64
	// EtaMax caps the fairness heuristic η for severely starved jobs.
	EtaMax float64
	// AcceptFloor lower-bounds the probability that a machine accepts a
	// task of a colony it ranks poorly, so backlogged work always drains.
	AcceptFloor float64
	// NegativeFeedback enables the cross-colony pheromone penalty (Eq. 6).
	NegativeFeedback bool
	// NegativeScale weights the Eq. 6 penalty relative to the mean
	// competitor reward. 1.0 is the paper's plain −Δτ; smaller values
	// soften the segregation pressure.
	NegativeScale float64
	// MachineExchange averages rewards across homogeneous machines
	// (§IV-D machine-level exchange).
	MachineExchange bool
	// JobExchange averages rewards across homogeneous jobs and warm-starts
	// new colonies from same-kind colonies (§IV-D job-level exchange).
	JobExchange bool
	// Greedy replaces roulette selection with argmax — an ablation knob,
	// not part of the paper's design (which argues for randomness).
	Greedy bool
	// ColonyDraws bounds how many colonies one slot offer samples before
	// the slot idles for the heartbeat. Higher values make the
	// affinity matching under load closer to a full preference sort.
	ColonyDraws int
	// Gamma sharpens the per-task reward: Δτ uses (avgE/E)^Gamma instead
	// of the plain ratio. The scaled-down testbed compresses per-app
	// energy contrasts to 10–20 %, too soft for roulette selection to
	// segregate task types; Gamma > 1 restores selection pressure.
	Gamma float64
	// SumDeposits reproduces Eq. 4/5 literally: deposits are *sums* of
	// task rewards, so trails also track completion counts ("the higher
	// the task completion rate ... the greater the chance of updating the
	// pheromone"). The default (false) averages per-task experiences as
	// §IV-D's exchange text describes, which measures energy efficiency
	// independent of slot share. Kept as a knob for the fidelity
	// ablation.
	SumDeposits bool
}

// DefaultParams returns the paper's configuration: ρ = 0.5, β = 0.1, both
// exchange strategies and negative feedback on.
func DefaultParams() Params {
	return Params{
		Rho:              0.5,
		Beta:             0.1,
		InitTau:          1.0,
		MinTau:           0.05,
		MaxTau:           25,
		EtaMax:           10,
		AcceptFloor:      0.05,
		NegativeFeedback: true,
		NegativeScale:    0.5,
		ColonyDraws:      3,
		Gamma:            4,
		MachineExchange:  true,
		JobExchange:      true,
	}
}

// Validate reports the first problem with the parameters.
func (p Params) Validate() error {
	switch {
	case p.Rho < 0 || p.Rho > 1:
		return fmt.Errorf("core: rho %v outside [0,1]", p.Rho)
	case p.Beta < 0:
		return fmt.Errorf("core: beta %v negative", p.Beta)
	case p.InitTau <= 0:
		return fmt.Errorf("core: init pheromone %v must be positive", p.InitTau)
	case p.MinTau <= 0 || p.MaxTau < p.MinTau:
		return fmt.Errorf("core: pheromone bounds [%v,%v] invalid", p.MinTau, p.MaxTau)
	case p.InitTau < p.MinTau || p.InitTau > p.MaxTau:
		return fmt.Errorf("core: init pheromone %v outside bounds [%v,%v]", p.InitTau, p.MinTau, p.MaxTau)
	case p.EtaMax < 1:
		return fmt.Errorf("core: eta cap %v below 1", p.EtaMax)
	case p.AcceptFloor < 0 || p.AcceptFloor > 1:
		return fmt.Errorf("core: accept floor %v outside [0,1]", p.AcceptFloor)
	case p.NegativeFeedback && (p.NegativeScale < 0 || p.NegativeScale > 1):
		return fmt.Errorf("core: negative-feedback scale %v outside [0,1]", p.NegativeScale)
	case p.ColonyDraws <= 0:
		return fmt.Errorf("core: colony draws %d must be positive", p.ColonyDraws)
	case p.Gamma <= 0:
		return fmt.Errorf("core: gamma %v must be positive", p.Gamma)
	}
	return nil
}
