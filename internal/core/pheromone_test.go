package core

import (
	"math"
	"testing"
	"testing/quick"

	"eant/internal/mapreduce"
	"eant/internal/workload"
)

func mapColony(jobID int, app workload.App) ColonyKey {
	return ColonyKey{JobID: jobID, App: app, Kind: mapreduce.MapTask}
}

func noExchange() Params {
	p := DefaultParams()
	p.MachineExchange = false
	p.JobExchange = false
	p.NegativeFeedback = false
	return p
}

// paperForm returns params running the literal Eq. 4/5 sum deposits.
func paperForm() Params {
	p := noExchange()
	p.SumDeposits = true
	p.Gamma = 1
	return p
}

func mustMatrix(t *testing.T, machines int, p Params) *Matrix {
	t.Helper()
	mx, err := NewMatrix(machines, p)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	return mx
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.Rho = -0.1 },
		func(p *Params) { p.Rho = 1.1 },
		func(p *Params) { p.Beta = -1 },
		func(p *Params) { p.InitTau = 0 },
		func(p *Params) { p.MinTau = 0 },
		func(p *Params) { p.MaxTau = 0.01 },
		func(p *Params) { p.InitTau = 100 },
		func(p *Params) { p.EtaMax = 0.5 },
		func(p *Params) { p.AcceptFloor = 2 },
	}
	for i, mutate := range mutations {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0, DefaultParams()); err == nil {
		t.Error("zero machines accepted")
	}
	bad := DefaultParams()
	bad.Rho = 2
	if _, err := NewMatrix(3, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestInitialPheromoneUniform(t *testing.T) {
	mx := mustMatrix(t, 3, noExchange())
	k := mapColony(1, workload.Wordcount)
	for m := 0; m < 3; m++ {
		if got := mx.Tau(k, m); got != 1.0 {
			t.Errorf("initial tau[%d] = %v, want 1", m, got)
		}
	}
	if mx.Colonies() != 1 {
		t.Errorf("Colonies() = %d, want 1", mx.Colonies())
	}
}

func TestUpdateRewardsEnergyEfficientMachine(t *testing.T) {
	// Paper's worked example (§IV-C2): machine A does two 2 KJ tasks,
	// machine B one 3 KJ task; ρ = 0.5. A's trail must rise above B's.
	// Uses the literal Eq. 4/5 sum-form deposits the example computes.
	mx := mustMatrix(t, 2, paperForm())
	k := mapColony(1, workload.Wordcount)
	mx.Feedback(k, 0, 2000)
	mx.Feedback(k, 0, 2000)
	mx.Feedback(k, 1, 3000)
	mx.Update(nil)

	tauA, tauB := mx.Tau(k, 0), mx.Tau(k, 1)
	if tauA <= tauB {
		t.Fatalf("tauA = %v not above tauB = %v", tauA, tauB)
	}
	// Before mean-normalization the paper's arithmetic gives 1.66 vs
	// 0.88, a ratio of ≈ 1.89; normalization preserves the ratio.
	ratio := tauA / tauB
	if math.Abs(ratio-1.66/0.88) > 0.02 {
		t.Errorf("tau ratio = %.3f, want ≈ %.3f", ratio, 1.66/0.88)
	}
}

func TestUpdateEvaporatesIdlePaths(t *testing.T) {
	p := noExchange()
	mx := mustMatrix(t, 2, p)
	k := mapColony(1, workload.Grep)
	mx.row(k)
	// No feedback at all: trails evaporate toward MinTau but
	// normalization keeps the row mean at 1 (both machines equal).
	mx.Update(nil)
	if a, b := mx.Tau(k, 0), mx.Tau(k, 1); math.Abs(a-b) > 1e-9 {
		t.Errorf("symmetric evaporation broke symmetry: %v vs %v", a, b)
	}
	// With feedback only on machine 0, machine 1 decays relative to it.
	mx.Feedback(k, 0, 100)
	mx.Update(nil)
	if mx.Tau(k, 1) >= mx.Tau(k, 0) {
		t.Error("idle path did not decay relative to rewarded path")
	}
}

func TestUpdateClampsToBounds(t *testing.T) {
	p := noExchange()
	mx := mustMatrix(t, 2, p)
	k := mapColony(1, workload.Terasort)
	// Massive asymmetric rewards drive the loser to MinTau.
	for round := 0; round < 20; round++ {
		for i := 0; i < 50; i++ {
			mx.Feedback(k, 0, 1)
		}
		mx.Feedback(k, 1, 1e9)
		mx.Update(nil)
	}
	for m := 0; m < 2; m++ {
		v := mx.Tau(k, m)
		if v < p.MinTau-1e-12 || v > p.MaxTau+1e-12 {
			t.Errorf("tau[%d] = %v outside [%v, %v]", m, v, p.MinTau, p.MaxTau)
		}
	}
	if mx.Tau(k, 1) != p.MinTau {
		t.Errorf("starved path = %v, want floor %v", mx.Tau(k, 1), p.MinTau)
	}
}

func TestPheromonePositivityProperty(t *testing.T) {
	p := noExchange()
	f := func(joules []float64, machines []uint8) bool {
		mx, err := NewMatrix(4, p)
		if err != nil {
			return false
		}
		k := mapColony(1, workload.Wordcount)
		n := len(joules)
		if len(machines) < n {
			n = len(machines)
		}
		for i := 0; i < n; i++ {
			mx.Feedback(k, int(machines[i])%4, math.Abs(joules[i]))
		}
		mx.Update(nil)
		for m := 0; m < 4; m++ {
			v := mx.Tau(k, m)
			if !(v >= p.MinTau-1e-12 && v <= p.MaxTau+1e-12) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMachineLevelExchangeSharesWithinGroup(t *testing.T) {
	p := noExchange()
	p.MachineExchange = true
	mx := mustMatrix(t, 4, p)
	k := mapColony(1, workload.Wordcount)
	// Machines 0,1 are one hardware type; 2,3 another. Feedback lands
	// only on machine 0 and machine 2.
	mx.Feedback(k, 0, 100) // efficient
	mx.Feedback(k, 2, 400) // inefficient
	groups := [][]int{{0, 1}, {2, 3}}
	mx.Update(groups)

	if a, b := mx.Tau(k, 0), mx.Tau(k, 1); math.Abs(a-b) > 1e-9 {
		t.Errorf("group members diverged: %v vs %v", a, b)
	}
	if c, d := mx.Tau(k, 2), mx.Tau(k, 3); math.Abs(c-d) > 1e-9 {
		t.Errorf("group members diverged: %v vs %v", c, d)
	}
	if mx.Tau(k, 1) <= mx.Tau(k, 3) {
		t.Error("efficient group's idle member not preferred over inefficient group's")
	}
}

func TestJobLevelExchangePoolsColonies(t *testing.T) {
	p := noExchange()
	p.JobExchange = true
	mx := mustMatrix(t, 2, p)
	k1 := mapColony(1, workload.Grep)
	k2 := mapColony(2, workload.Grep)
	// Colony 1 saw machine 0 efficient; colony 2 saw machine 1
	// inefficient. Pooling gives both colonies both experiences.
	mx.Feedback(k1, 0, 100)
	mx.Feedback(k1, 1, 100)
	mx.Feedback(k2, 0, 100)
	mx.Feedback(k2, 1, 900)
	mx.Update(nil)
	if math.Abs(mx.Tau(k1, 0)-mx.Tau(k2, 0)) > 1e-9 {
		t.Error("job-level exchange did not equalize same-app colonies")
	}
	if mx.Tau(k1, 0) <= mx.Tau(k1, 1) {
		t.Error("pooled experience did not prefer the efficient machine")
	}
}

func TestJobExchangeDoesNotPoolAcrossApps(t *testing.T) {
	p := noExchange()
	p.JobExchange = true
	mx := mustMatrix(t, 2, p)
	kWC := mapColony(1, workload.Wordcount)
	kTS := mapColony(2, workload.Terasort)
	mx.Feedback(kWC, 0, 100)
	mx.Feedback(kWC, 1, 500)
	mx.Feedback(kTS, 0, 500)
	mx.Feedback(kTS, 1, 100)
	mx.Update(nil)
	if mx.Tau(kWC, 0) <= mx.Tau(kWC, 1) {
		t.Error("Wordcount colony polluted by Terasort feedback")
	}
	if mx.Tau(kTS, 1) <= mx.Tau(kTS, 0) {
		t.Error("Terasort colony polluted by Wordcount feedback")
	}
}

func TestJobExchangeWarmStartsNewColony(t *testing.T) {
	p := noExchange()
	p.JobExchange = true
	mx := mustMatrix(t, 2, p)
	k1 := mapColony(1, workload.Grep)
	mx.Feedback(k1, 0, 100)
	mx.Feedback(k1, 1, 400)
	mx.Update(nil)

	k2 := mapColony(9, workload.Grep)
	if math.Abs(mx.Tau(k2, 0)-mx.Tau(k1, 0)) > 1e-9 {
		t.Error("new same-app colony did not inherit trails")
	}
	// A different app starts cold.
	k3 := mapColony(10, workload.Wordcount)
	if mx.Tau(k3, 0) != p.InitTau {
		t.Errorf("new different-app colony tau = %v, want %v", mx.Tau(k3, 0), p.InitTau)
	}
}

func TestNegativeFeedbackSuppressesCompetitors(t *testing.T) {
	p := noExchange()
	p.NegativeFeedback = true
	p.NegativeScale = 0.5
	mx := mustMatrix(t, 2, p)
	winner := mapColony(1, workload.Wordcount)
	loser := mapColony(2, workload.Grep)
	// Winner earns strong rewards on machine 0; the loser's own feedback
	// is symmetric across both machines, so any asymmetry in its trails
	// comes from the Eq. 6 cross-colony penalty on machine 0.
	mx.Feedback(winner, 0, 10)
	mx.Feedback(winner, 0, 10)
	mx.Feedback(loser, 0, 100)
	mx.Feedback(loser, 1, 100)
	mx.Update(nil)
	if mx.Tau(loser, 0) >= mx.Tau(loser, 1) {
		t.Errorf("negative feedback did not suppress competitor: tau0=%v tau1=%v",
			mx.Tau(loser, 0), mx.Tau(loser, 1))
	}
	// The winner keeps its advantage on machine 0.
	if mx.Tau(winner, 0) <= mx.Tau(winner, 1) {
		t.Error("winner lost its rewarded machine")
	}
}

func TestNegativeFeedbackSparesSameAppColonies(t *testing.T) {
	// Homogeneous jobs are pooled by the job-level exchange, not rivals:
	// Eq. 6 must not apply between colonies of the same application.
	p := noExchange()
	p.NegativeFeedback = true
	p.NegativeScale = 1
	mx := mustMatrix(t, 2, p)
	a := mapColony(1, workload.Grep)
	b := mapColony(2, workload.Grep)
	mx.Feedback(a, 0, 10)
	mx.Feedback(a, 0, 10)
	mx.Feedback(b, 0, 100)
	mx.Feedback(b, 1, 100)
	mx.Update(nil)
	if mx.Tau(b, 0) < mx.Tau(b, 1) {
		t.Errorf("same-app colony was penalized: tau0=%v tau1=%v",
			mx.Tau(b, 0), mx.Tau(b, 1))
	}
}

func TestRetireDropsColonies(t *testing.T) {
	mx := mustMatrix(t, 2, noExchange())
	mx.Feedback(mapColony(1, workload.Grep), 0, 5)
	mx.Feedback(mapColony(2, workload.Grep), 0, 5)
	mx.Retire(1)
	if mx.Colonies() != 1 {
		t.Errorf("Colonies() = %d after retire, want 1", mx.Colonies())
	}
	if mx.PendingFeedback() != 1 {
		t.Errorf("PendingFeedback() = %d after retire, want 1", mx.PendingFeedback())
	}
}

func TestFeedbackValidation(t *testing.T) {
	mx := mustMatrix(t, 2, noExchange())
	k := mapColony(1, workload.Grep)
	// Non-positive joules are floored, not rejected.
	mx.Feedback(k, 0, 0)
	mx.Update(nil)
	if v := mx.Tau(k, 0); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("zero-energy feedback produced tau %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range machine accepted")
		}
	}()
	mx.Feedback(k, 5, 1)
}

func TestRowReturnsCopy(t *testing.T) {
	mx := mustMatrix(t, 2, noExchange())
	k := mapColony(1, workload.Grep)
	row := mx.Row(k)
	row[0] = 99
	if mx.Tau(k, 0) == 99 {
		t.Error("Row exposed internal state")
	}
}

func TestMaxTau(t *testing.T) {
	mx := mustMatrix(t, 3, noExchange())
	k := mapColony(1, workload.Grep)
	mx.Feedback(k, 1, 10)
	mx.Feedback(k, 0, 1000)
	mx.Update(nil)
	maxV := mx.MaxTau(k)
	for m := 0; m < 3; m++ {
		if mx.Tau(k, m) > maxV {
			t.Error("MaxTau below an actual trail")
		}
	}
	if maxV != mx.Tau(k, 1) {
		t.Error("MaxTau should be the rewarded machine's trail")
	}
}
