package core

import (
	"fmt"
	"math"

	"eant/internal/mapreduce"
	"eant/internal/sim"
	"eant/internal/workload"
)

// ColonyKey identifies one ant colony: a job's tasks of one kind. Map and
// reduce tasks of the same job form separate colonies because their energy
// profiles differ (§III-A: machines ranked highly "will likely be assigned
// with more of the same type of tasks"; Fig. 9b shows the resulting split).
type ColonyKey struct {
	JobID int
	App   workload.App
	Kind  mapreduce.TaskKind
}

// reward is one task's completion feedback gathered within the current
// control interval.
type reward struct {
	machineID int
	joules    float64
}

// colony is one ant colony's live state: its pheromone row, the rewards
// accumulated since the last Update, and per-Update scratch buffers
// (reused across intervals so the control tick allocates nothing in
// steady state).
type colony struct {
	key     ColonyKey
	row     []float64
	pending []reward

	// delta/count are Update scratch: per-machine deposit and feedback
	// count for the current interval. Valid only while hasDelta is set.
	delta    []float64 //eant:reset-keep Update scratch, valid only while hasDelta (which reuse clears)
	count    []int     //eant:reset-keep Update scratch, valid only while hasDelta (which reuse clears)
	hasDelta bool

	// idx is the colony's per-control-interval host index (E-Ant's decline
	// guard): trails only change at the control tick, so the trail-ranked
	// machine view is rebuilt at most once per colony per interval. Owned
	// and stamped by EAnt (see eant.go); buffers are reused across rebuilds.
	idx *hostIndex
}

// Matrix holds pheromone trails per colony over the machine set and folds
// in per-interval energy feedback according to Eqs. 4–6 and the §IV-D
// exchange strategies.
//
// Colonies live in a flat, insertion-ordered table with a key index on
// the side. The scheduler's inner loops (one Tau lookup per candidate per
// slot offer, one per machine in the decline guard) hit the flat rows
// instead of hashing a struct key per probe, and every cross-colony fold
// in Update iterates the table in insertion order — float accumulation
// order is fixed, so runs are bit-for-bit reproducible instead of
// depending on Go's randomized map iteration.
type Matrix struct {
	p        Params
	machines int //eant:reset-keep pure function of the cluster size, fixed for the matrix's lifetime
	index    map[ColonyKey]int
	cols     []*colony

	// pool recycles retired colonies (their row/pending/delta/count/idx
	// buffers) so a warm rerun of the same workload allocates no new colony
	// state. Acquisition re-initializes every reused field, so a pooled
	// colony is observationally identical to a fresh one.
	pool []*colony

	// exchScratch is the job-level exchange fold's reusable accumulator:
	// one entry per (app, kind) group, rebuilt from length zero every
	// update tick. Group cardinality is tiny (apps × two task kinds), so
	// entries are found by linear scan — no per-tick map, no per-tick
	// group-sum slices once the scratch has warmed.
	exchScratch []exchGroup //eant:reset-keep pure scratch: rebuilt from length zero and re-zeroed at every update tick
}

// exchGroup accumulates one (app, kind) group's deposit sums during the
// job-level exchange stage of an update tick.
type exchGroup struct {
	app   workload.App
	kind  mapreduce.TaskKind
	sum   []float64
	count int
}

// NewMatrix returns an empty pheromone matrix over the given machine count.
func NewMatrix(machines int, p Params) (*Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if machines <= 0 {
		return nil, fmt.Errorf("core: matrix over %d machines", machines)
	}
	return &Matrix{
		p:        p,
		machines: machines,
		index:    make(map[ColonyKey]int),
	}, nil
}

// Colonies returns the number of tracked colonies.
func (mx *Matrix) Colonies() int { return len(mx.cols) }

// Keys returns the tracked colony keys in insertion order.
func (mx *Matrix) Keys() []ColonyKey {
	out := make([]ColonyKey, len(mx.cols)) //eant:alloc-ok copy-out diagnostic API, used at control ticks and in tests, not per offer
	for i, c := range mx.cols {
		out[i] = c.key
	}
	return out
}

// colonyFor returns the colony's state, creating it on first touch. A new
// colony warm-starts from existing same-(app, kind) colonies when
// job-level exchange is enabled — the sharing of experience that makes
// small-job convergence fast (Fig. 11b).
func (mx *Matrix) colonyFor(key ColonyKey) *colony {
	if i, ok := mx.index[key]; ok {
		return mx.cols[i]
	}
	var c *colony
	if n := len(mx.pool); n > 0 {
		c = mx.pool[n-1]
		mx.pool[n-1] = nil
		mx.pool = mx.pool[:n-1]
		for i := range c.row {
			c.row[i] = 0
		}
		c.pending = c.pending[:0]
		c.hasDelta = false
		if c.idx != nil {
			// The index stamps compare against the owning EAnt's tickSeq
			// and availability epoch, both of which restart on a warm run;
			// a stale stamp could alias a live interval, so force rebuild.
			c.idx.tick, c.idx.epoch, c.idx.listed = 0, 0, 0
		}
	} else {
		c = &colony{row: make([]float64, mx.machines)} //eant:alloc-ok first touch of a colony only; warm reruns recycle the pool
	}
	c.key = key
	row := c.row
	donors := 0
	if mx.p.JobExchange {
		// Average every same-group colony's trails (not just one picked
		// arbitrarily): deterministic, and exactly the pooled experience
		// the job-level exchange maintains.
		for _, c := range mx.cols {
			if c.key.App == key.App && c.key.Kind == key.Kind {
				for i, v := range c.row {
					row[i] += v
				}
				donors++
			}
		}
	}
	for i := range row {
		if donors > 0 {
			row[i] /= float64(donors)
		} else {
			row[i] = mx.p.InitTau
		}
	}
	mx.index[key] = len(mx.cols)
	mx.cols = append(mx.cols, c)
	return c
}

// row returns the colony's live pheromone vector (shared, not a copy),
// creating the colony on first touch.
func (mx *Matrix) row(key ColonyKey) []float64 {
	return mx.colonyFor(key).row
}

// Tau returns τ(colony, machine).
func (mx *Matrix) Tau(key ColonyKey, machineID int) float64 {
	return mx.row(key)[machineID]
}

// Row returns a copy of the colony's pheromone vector.
func (mx *Matrix) Row(key ColonyKey) []float64 {
	out := make([]float64, mx.machines) //eant:alloc-ok copy-out diagnostic API, used at control ticks and in tests, not per offer
	copy(out, mx.row(key))
	return out
}

// MaxTau returns the colony's strongest trail.
func (mx *Matrix) MaxTau(key ColonyKey) float64 {
	maxV := 0.0
	for _, v := range mx.row(key) {
		if v > maxV {
			maxV = v
		}
	}
	return maxV
}

// Feedback records one completed task's estimated energy, to be folded in
// at the next Update.
func (mx *Matrix) Feedback(key ColonyKey, machineID int, joules float64) {
	if machineID < 0 || machineID >= mx.machines {
		panic(fmt.Sprintf("core: feedback for machine %d of %d", machineID, mx.machines))
	}
	if joules <= 0 {
		// Zero-energy tasks would produce infinite rewards; floor them.
		joules = 1e-9
	}
	c := mx.colonyFor(key)
	c.pending = append(c.pending, reward{machineID: machineID, joules: joules})
}

// PendingFeedback returns the number of unapplied task rewards.
func (mx *Matrix) PendingFeedback() int {
	n := 0
	for _, c := range mx.cols {
		n += len(c.pending)
	}
	return n
}

// Retire drops colonies whose job has left the system.
func (mx *Matrix) Retire(jobID int) {
	mx.retire(func(k ColonyKey) bool { return k.JobID == jobID })
}

// RetireInactive drops every colony whose job fails the liveness check,
// in one pass over the table.
func (mx *Matrix) RetireInactive(active func(jobID int) bool) {
	mx.retire(func(k ColonyKey) bool { return !active(k.JobID) }) //eant:alloc-ok per-control-tick predicate wrapper, not per-offer
}

// retire compacts the colony table, dropping entries matching gone.
// Dropped colonies move to the recycling pool.
func (mx *Matrix) retire(gone func(ColonyKey) bool) {
	kept := mx.cols[:0]
	for _, c := range mx.cols {
		if gone(c.key) {
			delete(mx.index, c.key)
			mx.pool = append(mx.pool, c)
			continue
		}
		mx.index[c.key] = len(kept)
		kept = append(kept, c)
	}
	for i := len(kept); i < len(mx.cols); i++ {
		mx.cols[i] = nil
	}
	mx.cols = kept
}

// Clear retires every colony into the recycling pool and adopts the given
// parameters, returning the matrix to the state NewMatrix(machines, p)
// leaves it in while keeping every allocated buffer. p must validate.
func (mx *Matrix) Clear(p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	mx.p = p
	for i, c := range mx.cols {
		mx.pool = append(mx.pool, c)
		mx.cols[i] = nil
	}
	mx.cols = mx.cols[:0]
	clear(mx.index)
	return nil
}

// Update folds the interval's feedback into the trails:
//
//  1. Raw rewards per path (Eq. 5): Δτ(j,m) = Σ_tasks avgE_j / E_task,
//     where avgE_j is the mean energy of the colony's completed tasks.
//  2. Machine-level exchange (§IV-D): Δτ averaged across each homogeneous
//     machine group (typeGroups) that produced any feedback.
//  3. Job-level exchange (§IV-D): Δτ averaged across colonies of the same
//     (app, kind).
//  4. Negative feedback (Eq. 6): competing colonies are penalized on the
//     machines where this colony was rewarded.
//  5. Evaporation and deposit (Eq. 4): τ ← (1−ρ)τ + ρΔ, clamped, then the
//     row is rescaled to mean 1 (assignment probabilities are
//     scale-invariant; rescaling keeps trails inside the clamp range).
//
// typeGroups lists machine IDs per homogeneous hardware group.
func (mx *Matrix) Update(typeGroups [][]int) {
	mx.UpdateWithAvailability(typeGroups, nil)
}

// UpdateWithAvailability is Update with machine availability (fault
// injection): a machine with unavailable[id] set receives no deposit, no
// share of the exchange averages and no negative feedback — its trails only
// evaporate toward the floor, so every colony gradually forgets a crashed
// machine until it recovers and produces fresh feedback. Rewards already
// recorded for tasks that completed on a since-crashed machine are dropped.
// A nil unavailable slice means every machine is up and reproduces Update
// exactly.
func (mx *Matrix) UpdateWithAvailability(typeGroups [][]int, unavailable []bool) {
	down := func(id int) bool { //eant:alloc-ok non-escaping local predicate, stack-allocated
		return unavailable != nil && id < len(unavailable) && unavailable[id]
	}

	// Stage 1: raw per-path rewards. With SumDeposits the deposit is the
	// literal Eq. 4/5 sum Σ_n avgE/E_n, which also encodes completion
	// counts; the default averages the per-task experiences and sharpens
	// the ratio with Gamma, so trails read as pure relative energy
	// efficiency.
	for _, c := range mx.cols {
		if len(c.pending) == 0 {
			c.hasDelta = false
			continue
		}
		var sum float64
		for _, r := range c.pending {
			sum += r.joules
		}
		avg := sum / float64(len(c.pending))
		if c.delta == nil {
			c.delta = make([]float64, mx.machines) //eant:alloc-ok lazy once per colony, reused every interval
			c.count = make([]int, mx.machines)     //eant:alloc-ok lazy once per colony, reused every interval
		} else {
			for i := range c.delta {
				c.delta[i] = 0
				c.count[i] = 0
			}
		}
		for _, r := range c.pending {
			if down(r.machineID) {
				continue
			}
			c.delta[r.machineID] += avg / r.joules
			c.count[r.machineID]++
		}
		c.hasDelta = true
	}

	// Stage 2: machine-level exchange — pool experiences across each
	// homogeneous hardware group ("the average available experiences of
	// the completed tasks that visited those homogeneous machines").
	if mx.p.MachineExchange {
		for _, c := range mx.cols {
			if !c.hasDelta {
				continue
			}
			d, n := c.delta, c.count
			for _, group := range typeGroups {
				var sum float64
				tasks := 0
				members := 0
				for _, id := range group {
					sum += d[id]
					tasks += n[id]
					if n[id] > 0 {
						members++
					}
				}
				if tasks == 0 {
					continue
				}
				for _, id := range group {
					if down(id) {
						continue
					}
					if mx.p.SumDeposits {
						// Average the per-machine sums over members
						// that produced feedback.
						d[id] = sum / float64(members)
						n[id] = tasks / members
					} else {
						d[id] = sum
						n[id] = tasks
					}
				}
			}
		}
	}

	// Reduce sums to mean-experience deposits unless running the literal
	// Eq. 4/5 sum form, and apply the sharpening exponent.
	if !mx.p.SumDeposits {
		for _, c := range mx.cols {
			if !c.hasDelta {
				continue
			}
			for i := range c.delta {
				if c.count[i] > 0 {
					c.delta[i] = math.Pow(c.delta[i]/float64(c.count[i]), mx.p.Gamma)
				}
			}
		}
	}

	// Stage 3: job-level exchange. Group sums accumulate in table
	// (insertion) order, so the float folds are deterministic. Scratch
	// entries (and their sum slices) are reused across ticks: the group
	// cardinality is apps × kinds, so the linear scans stay cheap and the
	// steady state allocates nothing.
	if mx.p.JobExchange {
		withDelta := 0
		for _, c := range mx.cols {
			if c.hasDelta {
				withDelta++
			}
		}
		if withDelta > 1 {
			groups := mx.exchScratch[:0]
			for _, c := range mx.cols {
				if !c.hasDelta {
					continue
				}
				gi := -1
				for i := range groups {
					if groups[i].app == c.key.App && groups[i].kind == c.key.Kind {
						gi = i
						break
					}
				}
				if gi == -1 {
					if len(groups) < cap(groups) {
						groups = groups[:len(groups)+1]
					} else {
						groups = append(groups, exchGroup{}) //eant:alloc-ok scratch grows to the (app, kind) cardinality once; reused every tick after
					}
					gi = len(groups) - 1
					g := &groups[gi]
					g.app, g.kind, g.count = c.key.App, c.key.Kind, 0
					if len(g.sum) != mx.machines {
						g.sum = nil
					}
					if g.sum == nil {
						g.sum = make([]float64, mx.machines) //eant:alloc-ok first touch of a scratch group only; warm ticks reuse the slice
					} else {
						for i := range g.sum {
							g.sum[i] = 0
						}
					}
				}
				g := &groups[gi]
				for i, v := range c.delta {
					g.sum[i] += v
				}
				g.count++
			}
			mx.exchScratch = groups
			for _, c := range mx.cols {
				if !c.hasDelta {
					continue
				}
				var g *exchGroup
				for i := range groups {
					if groups[i].app == c.key.App && groups[i].kind == c.key.Kind {
						g = &groups[i]
						break
					}
				}
				n := float64(g.count)
				for i := range c.delta {
					c.delta[i] = g.sum[i] / n
				}
			}
		}
	}

	// Stage 4+5: per-colony evaporation, deposit, negative feedback.
	for _, c := range mx.cols {
		row := c.row
		for m := 0; m < mx.machines; m++ {
			if down(m) {
				// Crashed machine: pure evaporation toward the floor.
				row[m] = clamp((1-mx.p.Rho)*row[m], mx.p.MinTau, mx.p.MaxTau)
				continue
			}
			dep := 0.0
			if c.hasDelta {
				dep = c.delta[m]
			}
			//eant:float-eq-ok 0 is an exact "no deposit" sentinel assigned above, never the result of accumulation
			if mx.p.NegativeFeedback && dep != 0 {
				// Eq. 6: competitors' rewards on this machine push this
				// colony away from it. Only colonies with *different*
				// resource demands (different app) compete — same-app
				// colonies are the "homogeneous jobs" the job-level
				// exchange pools, not rivals. The penalty is the mean
				// competitor reward scaled by NegativeScale, applied only
				// where this colony had its own experience (dep != 0) so
				// idle paths are not dragged below the floor.
				var competitor float64
				n := 0
				for _, oc := range mx.cols {
					if !oc.hasDelta || oc.key.Kind != c.key.Kind || oc.key.App == c.key.App {
						continue
					}
					competitor += oc.delta[m]
					n++
				}
				if n > 0 {
					dep -= mx.p.NegativeScale * competitor / float64(n)
				}
			}
			v := (1-mx.p.Rho)*row[m] + mx.p.Rho*dep
			row[m] = clamp(v, mx.p.MinTau, mx.p.MaxTau)
		}
		normalizeMean(row, mx.p.MinTau, mx.p.MaxTau)
	}

	for _, c := range mx.cols {
		c.pending = c.pending[:0]
		c.hasDelta = false
	}
}

// RouletteSelect draws index i with probability weights[i]/Σweights,
// restricted to available indices (available may be nil: every index is
// eligible). Non-positive and non-finite weights count as zero. When every
// eligible weight is zero the draw is uniform over the eligible indices,
// which keeps the assigner alive when pheromones collapse; an unavailable
// (crashed) index is never returned. It panics on an empty slice, on a
// length mismatch, and when no index is available at all.
//
// With available == nil and finite weights this consumes exactly the same
// RNG draws and returns exactly the same index as sim.RNG.Roulette, so the
// E-Ant assignment stream is unchanged on a healthy cluster.
func RouletteSelect(rng *sim.RNG, weights []float64, available []bool) int {
	if len(weights) == 0 {
		panic("core: RouletteSelect over empty weights")
	}
	if available != nil && len(available) != len(weights) {
		panic(fmt.Sprintf("core: RouletteSelect with %d weights but %d availability flags", len(weights), len(available)))
	}
	eligible := func(i int) bool { return available == nil || available[i] } //eant:alloc-ok non-escaping local closure, stack-allocated
	eff := func(i int) float64 {                                             //eant:alloc-ok non-escaping local closure, stack-allocated
		w := weights[i]
		if !eligible(i) || w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return 0
		}
		return w
	}

	var total float64
	for i := range weights {
		total += eff(i)
	}
	if total > 0 {
		x := rng.Float64() * total
		last := -1
		for i := range weights {
			w := eff(i)
			if w <= 0 {
				continue
			}
			last = i
			x -= w
			if x < 0 {
				return i
			}
		}
		// Float drift can leave x at ~0 after the walk. sim.RNG.Roulette
		// returns the final index here; with availability in play the
		// final index may be crashed, so the last eligible positive-weight
		// index absorbs the drift instead.
		if available == nil {
			return len(weights) - 1
		}
		return last
	}

	// Degenerate case: uniform over the eligible indices.
	if available == nil {
		return rng.Intn(len(weights))
	}
	n := 0
	for i := range available {
		if available[i] {
			n++
		}
	}
	if n == 0 {
		panic("core: RouletteSelect with no available index")
	}
	k := rng.Intn(n)
	for i := range available {
		if !available[i] {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	panic("unreachable")
}

// SelectionProbabilities returns the distribution RouletteSelect draws
// from: p[i] = eff(i)/Σeff with the same zeroing of non-positive,
// non-finite and unavailable weights, falling back to uniform over the
// eligible indices when every effective weight is zero. The result always
// sums to 1 (within float tolerance) and contains no NaN or Inf; it is nil
// when no index is eligible.
func SelectionProbabilities(weights []float64, available []bool) []float64 {
	if len(weights) == 0 {
		return nil
	}
	if available != nil && len(available) != len(weights) {
		return nil
	}
	p := make([]float64, len(weights))
	var total float64
	eligibleCount := 0
	for i, w := range weights {
		if available != nil && !available[i] {
			continue
		}
		eligibleCount++
		if w > 0 && !math.IsInf(w, 0) && !math.IsNaN(w) {
			p[i] = w
			total += w
		}
	}
	if eligibleCount == 0 {
		return nil
	}
	if total <= 0 {
		u := 1 / float64(eligibleCount)
		for i := range p {
			if available == nil || available[i] {
				p[i] = u
			}
		}
		return p
	}
	if math.IsInf(total, 1) {
		// Σw overflows: the roulette walk's cursor is +Inf (or NaN) and
		// never goes negative, so every draw falls through to the last
		// index (nil mask) or the last eligible positive-weight index.
		last := len(p) - 1
		if available != nil {
			for i := range p {
				if p[i] > 0 {
					last = i
				}
			}
		}
		for i := range p {
			p[i] = 0
		}
		p[last] = 1
		return p
	}
	for i := range p {
		p[i] /= total
	}
	return p
}

// normalizeMean rescales row to mean 1, then re-clamps.
func normalizeMean(row []float64, lo, hi float64) {
	var sum float64
	for _, v := range row {
		sum += v
	}
	mean := sum / float64(len(row))
	if mean <= 0 {
		return
	}
	for i := range row {
		row[i] = clamp(row[i]/mean, lo, hi)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
