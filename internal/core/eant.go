package core

import (
	"math"
	"time"

	"eant/internal/cluster"
	"eant/internal/mapreduce"
)

// EAnt is the adaptive task assigner (§III–IV). It plugs into the
// simulated JobTracker as a mapreduce.Scheduler.
//
// Assignment realizes Eq. 8 at heartbeat granularity in two steps when a
// machine offers a free slot:
//
//  1. Colony selection — roulette over w(j) = τ(j,m)·η(j)^β among jobs
//     with pending work. Jobs holding data-local blocks on m form a
//     priority tier (η = ∞ in Eq. 7) when β > 0.
//  2. Path acceptance — the chosen colony runs on m with probability
//     τ(j,m)/max_m' τ(j,m'). Declining leaves the slot idle until the
//     next heartbeat; this is how E-Ant steers work away from machines it
//     has learned are energy-inefficient for the colony, rather than
//     greedily filling every slot as Fair does.
type EAnt struct {
	p  Params
	mx *Matrix

	// typeGroups caches machine IDs per hardware type for the
	// machine-level exchange; built on first use.
	typeGroups [][]int

	// trackTrails enables per-control-tick snapshots of every colony's
	// trail row, for convergence studies (Fig. 11).
	trackTrails bool
	trails      map[ColonyKey][]TrailSnapshot

	// Heartbeat-path scratch, reused across slot offers so steady-state
	// assignment allocates nothing. Safe because a scheduler instance is
	// owned by exactly one single-threaded driver (see DESIGN.md's
	// concurrency model).
	scratchJobs    []*mapreduce.Job
	scratchWeights []float64
	unavailable    []bool
}

// TrailSnapshot is one colony's pheromone row at a control tick.
type TrailSnapshot struct {
	At  time.Duration
	Row []float64
}

// TrackTrails enables trail-history recording; call before the run.
func (e *EAnt) TrackTrails() {
	e.trackTrails = true
	e.trails = make(map[ColonyKey][]TrailSnapshot)
}

// TrailHistory returns the recorded snapshots for a colony (nil when
// tracking was off or the colony never formed).
func (e *EAnt) TrailHistory(k ColonyKey) []TrailSnapshot { return e.trails[k] }

// NewEAnt returns an E-Ant scheduler with the given parameters.
func NewEAnt(p Params) (*EAnt, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &EAnt{p: p}, nil
}

// MustNewEAnt is NewEAnt for known-valid parameters.
func MustNewEAnt(p Params) *EAnt {
	e, err := NewEAnt(p)
	if err != nil {
		panic(err)
	}
	return e
}

var _ mapreduce.Scheduler = (*EAnt)(nil)

// Name implements mapreduce.Scheduler.
func (e *EAnt) Name() string { return "E-Ant" }

// Params returns the scheduler's configuration.
func (e *EAnt) Params() Params { return e.p }

// Matrix exposes the pheromone state for inspection (Table II dumps,
// tests). Nil until the first assignment.
func (e *EAnt) Matrix() *Matrix { return e.mx }

func (e *EAnt) init(ctx *mapreduce.Context) {
	if e.mx != nil {
		return
	}
	mx, err := NewMatrix(ctx.Cluster.Size(), e.p)
	if err != nil {
		panic(err) // params were validated in NewEAnt
	}
	e.mx = mx
	for _, name := range ctx.Cluster.TypeNames() {
		var ids []int
		for _, m := range ctx.Cluster.ByType(name) {
			ids = append(ids, m.ID)
		}
		e.typeGroups = append(e.typeGroups, ids)
	}
}

// key builds the colony key for a job's tasks of one kind.
func key(j *mapreduce.Job, kind mapreduce.TaskKind) ColonyKey {
	return ColonyKey{JobID: j.Spec.ID, App: j.Spec.App, Kind: kind}
}

// FairnessEta evaluates the fairness branch of the heuristic function
// (Eq. 7):
//
//	η(j) = 1 / (1 − (S_min − S_occ)/S_pool)
//
// η > 1 for starved jobs (occupancy sOcc below the fair share sMin), < 1
// for jobs above fair share, clamped into [1/etaMax, etaMax]. The locality
// branch's η = ∞ is represented by the etaMax cap. An empty slot pool
// (sPool ≤ 0) yields the neutral η = 1.
func FairnessEta(sMin, sOcc, sPool, etaMax float64) float64 {
	if sPool <= 0 {
		return 1
	}
	denom := 1 - (sMin-sOcc)/sPool
	if denom <= 1/etaMax {
		return etaMax
	}
	return clamp(1/denom, 1/etaMax, etaMax)
}

// HeuristicWeight evaluates the Eq. 8 numerator τ·η^β. β ≤ 0 disables the
// heuristic term entirely (pure pheromone selection).
func HeuristicWeight(tau, eta, beta float64) float64 {
	if beta <= 0 {
		return tau
	}
	return tau * math.Pow(eta, beta)
}

// eta evaluates Eq. 7's fairness branch for one job against the live slot
// pool (which shrinks while machines are crashed).
func (e *EAnt) eta(ctx *mapreduce.Context, j *mapreduce.Job) float64 {
	return FairnessEta(ctx.FairShare(j), float64(j.Running()), float64(ctx.TotalSlots()), e.p.EtaMax)
}

// weight evaluates the Eq. 8 numerator τ(j,m)·η(j,m)^β. Following Eq. 7,
// η is the (capped) locality bonus when the job holds a local block on
// the machine, and the fairness deficit otherwise; β controls how hard
// heuristic information overrides the energy trails.
func (e *EAnt) weight(ctx *mapreduce.Context, j *mapreduce.Job, k ColonyKey, m *cluster.Machine) float64 {
	tau := e.mx.Tau(k, m.ID)
	if e.p.Beta <= 0 {
		return tau
	}
	eta := e.eta(ctx, j)
	if k.Kind == mapreduce.MapTask && ctx.HasLocalMap(j, m) {
		eta = e.p.EtaMax
	}
	return HeuristicWeight(tau, eta, e.p.Beta)
}

// pickColony draws one job from candidates by roulette over Eq. 8 weights
// (argmax under the Greedy ablation).
func (e *EAnt) pickColony(ctx *mapreduce.Context, m *cluster.Machine, candidates []*mapreduce.Job, kind mapreduce.TaskKind) *mapreduce.Job {
	if len(candidates) == 0 {
		return nil
	}
	weights := e.scratchWeights[:0]
	for _, j := range candidates {
		weights = append(weights, e.weight(ctx, j, key(j, kind), m))
	}
	e.scratchWeights = weights
	if e.p.Greedy {
		best := 0
		for i := 1; i < len(weights); i++ {
			if weights[i] > weights[best] {
				best = i
			}
		}
		return candidates[best]
	}
	return candidates[RouletteSelect(ctx.Rng, weights, nil)]
}

// betterHostFactor is how much stronger another machine's trail must be
// before declining in its favor is considered.
const betterHostFactor = 1.2

// accepts decides whether machine m takes a task of the colony. Trails are
// mean-normalized per colony, so τ(j,m) directly reads as "goodness of m
// relative to the colony's average machine": above-average machines always
// accept; a below-average machine accepts with probability τ. A sampled
// decline is honored only when deferring cannot cost throughput:
//
//  1. the fleet-wide pending work of this task kind must fit inside the
//     better-trail machines' slot capacity (otherwise the work spills here
//     regardless and declining merely drip-feeds the backlog through a
//     few favored slots), and
//  2. a better-trail machine must have a free slot right now, so the task
//     is picked up within a heartbeat rather than parked.
//
// Deliberately idling a slot only saves energy when a better host actually
// runs the task instead — every machine keeps burning idle power while a
// task waits. These guards confine declining to light load and job tails,
// which is exactly where the paper's adaptive steering pays off
// (Fig. 1a); under saturation E-Ant stays work-conserving and colony
// *selection* does the affinity matching (Figs. 8b, 9).
func (e *EAnt) accepts(ctx *mapreduce.Context, j *mapreduce.Job, k ColonyKey, m *cluster.Machine) bool {
	// Aggregate pending work across ALL active jobs: better hosts are
	// shared, so judging against one colony's backlog would let every
	// colony assume the same free capacity and collectively over-decline.
	pending := 0
	for _, a := range ctx.ActiveJobs() {
		if k.Kind == mapreduce.ReduceTask {
			pending += a.PendingReduces()
		} else {
			pending += a.PendingMaps()
		}
	}

	// Under server consolidation a sleeping machine costs a wake (resume
	// latency plus a return to full idle draw); decline unless the awake
	// fleet genuinely cannot absorb the pending work.
	if m.Asleep() {
		awakeSlots, awakeFree := e.awakeCapacity(ctx, k.Kind, m)
		if pending <= awakeSlots && awakeFree > 0 {
			return false
		}
	}
	if k.Kind == mapreduce.ReduceTask {
		// Reduce placement adapts through colony selection only (see
		// selectColony); past the sleep guard it always accepts.
		return true
	}

	tau := e.mx.Tau(k, m.ID)
	if tau >= 1 {
		return true
	}
	p := clamp(tau, e.p.AcceptFloor, 1)
	if e.p.Greedy {
		if p >= 0.5 {
			return true
		}
	} else if ctx.Rng.Bernoulli(p) {
		return true
	}
	slots, free := e.betterHostCapacity(ctx, k, m)
	if pending > slots || free == 0 {
		return true
	}
	return false
}

// awakeCapacity sums slot capacity and free slots of the right kind
// across awake machines other than m.
func (e *EAnt) awakeCapacity(ctx *mapreduce.Context, kind mapreduce.TaskKind, m *cluster.Machine) (slots, free int) {
	for _, other := range ctx.Cluster.Machines() {
		if other.ID == m.ID || other.Asleep() || !other.Available() {
			continue
		}
		if kind == mapreduce.ReduceTask {
			slots += other.Spec.ReduceSlots
			free += other.FreeReduceSlots()
		} else {
			slots += other.Spec.MapSlots
			free += other.FreeMapSlots()
		}
	}
	return slots, free
}

// betterHostCapacity sums slot capacity and currently-free slots of the
// right kind across machines whose trail for the colony is meaningfully
// stronger than m's.
func (e *EAnt) betterHostCapacity(ctx *mapreduce.Context, k ColonyKey, m *cluster.Machine) (slots, free int) {
	// One key lookup for the whole scan: the colony's row is indexed by
	// machine ID, so the per-machine probe is a slice load, not a map hash.
	row := e.mx.row(k)
	threshold := row[m.ID] * betterHostFactor
	for _, other := range ctx.Cluster.Machines() {
		if other.ID == m.ID || !other.Available() || row[other.ID] < threshold {
			continue
		}
		if k.Kind == mapreduce.ReduceTask {
			slots += other.Spec.ReduceSlots
			free += other.FreeReduceSlots()
		} else {
			slots += other.Spec.MapSlots
			free += other.FreeMapSlots()
		}
	}
	return slots, free
}

// selectColony realizes Eq. 8 for one slot offer: restrict candidates to
// data-local colonies when the locality branch of Eq. 7 applies (η = ∞),
// then repeatedly roulette-draw a colony and test path acceptance. Map
// assignments pass the pheromone acceptance gate, which is what lets
// E-Ant starve machines it has learned are energy-inefficient. Reduce
// assignments adapt through colony selection only: a job has few, heavy
// reduce tasks, and declining one serializes the job tail on the favored
// machines — the energy cost of the stretched makespan always exceeds
// the dynamic-energy saving of the better host.
func (e *EAnt) selectColony(ctx *mapreduce.Context, m *cluster.Machine, candidates []*mapreduce.Job, kind mapreduce.TaskKind) *mapreduce.Job {
	draws := e.p.ColonyDraws
	if len(candidates) < draws {
		draws = len(candidates)
	}
	for attempt := 0; attempt < draws; attempt++ {
		j := e.pickColony(ctx, m, candidates, kind)
		if j == nil {
			return nil
		}
		if e.accepts(ctx, j, key(j, kind), m) {
			return j
		}
		// Remove the declined colony and redraw: m may still be a good
		// host for a different colony.
		for i, c := range candidates {
			if c == j {
				candidates = append(candidates[:i], candidates[i+1:]...)
				break
			}
		}
	}
	return nil
}

// AssignMap implements mapreduce.Scheduler.
func (e *EAnt) AssignMap(ctx *mapreduce.Context, m *cluster.Machine) *mapreduce.Task {
	e.init(ctx)

	pending := e.scratchJobs[:0]
	for _, j := range ctx.ActiveJobs() {
		if j.PendingMaps() > 0 {
			pending = append(pending, j)
		}
	}
	e.scratchJobs = pending
	j := e.selectColony(ctx, m, pending, mapreduce.MapTask)
	if j == nil {
		return nil
	}
	return ctx.PopMapPreferLocal(j, m)
}

// slowReduceFactor flags a machine as a pathological home for a job's
// reduces when its compute time exceeds this multiple of the type mean.
const slowReduceFactor = 2.0

// AssignReduce implements mapreduce.Scheduler.
func (e *EAnt) AssignReduce(ctx *mapreduce.Context, m *cluster.Machine) *mapreduce.Task {
	e.init(ctx)
	ready := e.scratchJobs[:0]
	for _, j := range ctx.ActiveJobs() {
		if ctx.ReduceReady(j) {
			ready = append(ready, j)
		}
	}
	e.scratchJobs = ready
	j := e.selectColony(ctx, m, ready, mapreduce.ReduceTask)
	if j == nil {
		return nil
	}
	if e.reduceWouldStraggle(ctx, j, m) {
		return nil
	}
	return ctx.PopReduce(j)
}

// reduceWouldStraggle reports whether parking one of j's reduces on m
// would create a tail straggler: m runs the reduce far slower than the
// fleet average and a faster machine has a free reduce slot right now.
// Reduces are few and heavy, so one bad placement can serialize a job's
// tail for longer than the whole map phase (the §I Atom anecdote: a third
// of the energy, three times the wall clock — a loss once the rest of the
// fleet sits burning idle power waiting for it).
func (e *EAnt) reduceWouldStraggle(ctx *mapreduce.Context, j *mapreduce.Job, m *cluster.Machine) bool {
	own := ctx.EstimateReduceSeconds(j, m.Spec)
	if own <= 0 {
		return false
	}
	var mean float64
	names := ctx.Cluster.TypeNames()
	for _, name := range names {
		mean += ctx.EstimateReduceSeconds(j, ctx.Cluster.ByType(name)[0].Spec)
	}
	mean /= float64(len(names))
	if own <= mean*slowReduceFactor {
		return false
	}
	for _, other := range ctx.Cluster.Machines() {
		if other.ID == m.ID || other.FreeReduceSlots() == 0 {
			continue
		}
		if ctx.EstimateReduceSeconds(j, other.Spec) <= mean*slowReduceFactor {
			return true
		}
	}
	return false
}

// OnTaskComplete implements mapreduce.Scheduler: the TaskTracker's energy
// report becomes pheromone feedback.
func (e *EAnt) OnTaskComplete(ctx *mapreduce.Context, t *mapreduce.Task) {
	e.init(ctx)
	e.mx.Feedback(key(t.Job, t.Kind), t.Machine.ID, t.EstJoules)
}

// OnControlTick implements mapreduce.Scheduler: retire finished colonies
// and fold the interval's feedback into the trails.
func (e *EAnt) OnControlTick(ctx *mapreduce.Context) {
	e.init(ctx)
	active := make(map[int]bool, len(ctx.ActiveJobs()))
	for _, j := range ctx.ActiveJobs() {
		active[j.Spec.ID] = true
	}
	e.mx.RetireInactive(func(jobID int) bool { return active[jobID] })
	// Crashed machines' trails are frozen out of the exchange and left to
	// evaporate (nil when the fleet is healthy, preserving Update exactly).
	if e.unavailable == nil {
		e.unavailable = make([]bool, ctx.Cluster.Size())
	}
	anyDown := false
	for i := range e.unavailable {
		e.unavailable[i] = false
	}
	for _, m := range ctx.Cluster.Machines() {
		if !m.Available() {
			e.unavailable[m.ID] = true
			anyDown = true
		}
	}
	var unavailable []bool
	if anyDown {
		unavailable = e.unavailable
	}
	e.mx.UpdateWithAvailability(e.typeGroups, unavailable)
	if e.trackTrails {
		for _, k := range e.mx.Keys() {
			e.trails[k] = append(e.trails[k], TrailSnapshot{
				At:  ctx.Now(),
				Row: e.mx.Row(k),
			})
		}
	}
}
