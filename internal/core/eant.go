package core

import (
	"math"
	"sort"
	"time"

	"eant/internal/cluster"
	"eant/internal/mapreduce"
)

// EAnt is the adaptive task assigner (§III–IV). It plugs into the
// simulated JobTracker as a mapreduce.Scheduler.
//
// Assignment realizes Eq. 8 at heartbeat granularity in two steps when a
// machine offers a free slot:
//
//  1. Colony selection — roulette over w(j) = τ(j,m)·η(j)^β among jobs
//     with pending work. Jobs holding data-local blocks on m form a
//     priority tier (η = ∞ in Eq. 7) when β > 0.
//  2. Path acceptance — the chosen colony runs on m with probability
//     τ(j,m)/max_m' τ(j,m'). Declining leaves the slot idle until the
//     next heartbeat; this is how E-Ant steers work away from machines it
//     has learned are energy-inefficient for the colony, rather than
//     greedily filling every slot as Fair does.
type EAnt struct {
	p  Params
	mx *Matrix

	// typeGroups caches machine IDs per hardware type for the
	// machine-level exchange; built on first use.
	//eant:reset-keep pure function of the cluster, which a Runner never swaps
	typeGroups [][]int

	// trackTrails enables per-control-tick snapshots of every colony's
	// trail row, for convergence studies (Fig. 11).
	trackTrails bool
	trails      map[ColonyKey][]TrailSnapshot

	// Heartbeat-path scratch, reused across slot offers so steady-state
	// assignment allocates nothing. Safe because a scheduler instance is
	// owned by exactly one single-threaded driver (see DESIGN.md's
	// concurrency model).
	scratchJobs    []*mapreduce.Job //eant:reset-keep scratch, fully overwritten before every read
	scratchCols    []*colony        //eant:reset-keep scratch, fully overwritten before every read
	scratchWeights []float64        //eant:reset-keep scratch, fully overwritten before every read
	scratchAvail   []bool           //eant:reset-keep scratch, fully overwritten before every read
	unavailable    []bool           //eant:reset-keep maintained by OnMachineDown/Up, which replay from the driver's reset fault state

	// Per-control-interval index state. Trails only change at the control
	// tick, so each map colony's trail-ranked host view (hostIndex) is
	// valid for a whole interval; tickSeq stamps indices with the interval
	// they were built in (starting at 1 so a zero-valued stamp never
	// matches), and indexed lists the colonies holding a current-interval
	// index so slot-change notifications can keep their free counters live.
	tickSeq uint64
	indexed []*colony
	// reduceMeans memoizes, per job ID, the fleet-mean reduce-compute
	// estimate (static: shuffle volume and specs are fixed at submission).
	reduceMeans map[int]float64

	// activeScratch is the control-tick scratch set of live job IDs,
	// hoisted to a field so the tick handler allocates nothing.
	activeScratch map[int]bool
}

// hostIndex is one map colony's per-control-interval view of the fleet
// for the decline guard: available machines ranked by trail strength
// (value descending, machine ID ascending on ties) with prefix-summed map
// slot capacity and bucketed free-slot counters, so "can the better-trail
// machines absorb the backlog, and does one have a free slot now" is a
// binary search plus O(1)-ish counter reads instead of a machine scan.
type hostIndex struct {
	tick   uint64 // e.tickSeq when built
	epoch  uint64 // availability epoch when built (crash/recover invalidates)
	listed uint64 // e.tickSeq when appended to e.indexed

	ids         []int     //eant:reset-keep rebuilt wholesale when the tick/epoch stamps mismatch
	vals        []float64 //eant:reset-keep rebuilt wholesale when the tick/epoch stamps mismatch
	prefixSlots []int     //eant:reset-keep rebuilt wholesale when the tick/epoch stamps mismatch
	rankOf      []int     //eant:reset-keep rebuilt wholesale when the tick/epoch stamps mismatch
	freeBuckets []int     //eant:reset-keep rebuilt wholesale when the tick/epoch stamps mismatch
}

// countAtLeast returns how many ranked machines have trail ≥ threshold.
func (idx *hostIndex) countAtLeast(threshold float64) int {
	return sort.Search(len(idx.vals), func(i int) bool { return idx.vals[i] < threshold }) //eant:alloc-ok non-escaping predicate, stack-allocated
}

// TrailSnapshot is one colony's pheromone row at a control tick.
type TrailSnapshot struct {
	At  time.Duration
	Row []float64
}

// TrackTrails enables trail-history recording; call before the run.
func (e *EAnt) TrackTrails() {
	e.trackTrails = true
	e.trails = make(map[ColonyKey][]TrailSnapshot)
}

// TrailHistory returns the recorded snapshots for a colony (nil when
// tracking was off or the colony never formed).
func (e *EAnt) TrailHistory(k ColonyKey) []TrailSnapshot { return e.trails[k] }

// NewEAnt returns an E-Ant scheduler with the given parameters.
func NewEAnt(p Params) (*EAnt, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &EAnt{p: p}, nil
}

// MustNewEAnt is NewEAnt for known-valid parameters.
func MustNewEAnt(p Params) *EAnt {
	e, err := NewEAnt(p)
	if err != nil {
		panic(err)
	}
	return e
}

var _ mapreduce.Scheduler = (*EAnt)(nil)
var _ mapreduce.SlotObserver = (*EAnt)(nil)

// ResetForRun returns the scheduler to its pre-run state in place so the
// same instance can drive another simulation over the same cluster,
// adopting new parameters (sweeps vary Beta and friends between runs of
// one warm world). The pheromone matrix, the cached type groups and every
// scratch buffer are kept; colonies are recycled through the matrix pool.
// After the reset the first offer's init fast path still short-circuits
// (mx stays non-nil), so state here must match a fresh initSlow exactly.
func (e *EAnt) ResetForRun(p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e.p = p
	if e.mx != nil {
		if err := e.mx.Clear(p); err != nil {
			return err
		}
		e.tickSeq = 1
		for i := range e.indexed {
			e.indexed[i] = nil
		}
		e.indexed = e.indexed[:0]
		clear(e.reduceMeans)
		clear(e.activeScratch)
	}
	if e.trackTrails {
		e.trails = make(map[ColonyKey][]TrailSnapshot)
	}
	return nil
}

// OnSlotFreeChange implements mapreduce.SlotObserver: the driver reports
// every ±1 free-slot transition, and the current interval's host indices
// fold it into the affected machine's rank bucket. Indices stamped with an
// older tick or availability epoch are already invalid (they rebuild on
// next use) and are left alone. Reduce-slot changes are ignored — only the
// map decline guard consumes a host index.
func (e *EAnt) OnSlotFreeChange(ctx *mapreduce.Context, m cluster.Machine, kind mapreduce.TaskKind, delta int) {
	if kind != mapreduce.MapTask || len(e.indexed) == 0 {
		return
	}
	epoch := ctx.AvailabilityEpoch()
	for _, c := range e.indexed {
		idx := c.idx
		if idx.tick != e.tickSeq || idx.epoch != epoch {
			continue
		}
		if r := idx.rankOf[m.ID()]; r >= 0 {
			idx.freeBuckets[r>>6] += delta
		}
	}
}

// Name implements mapreduce.Scheduler.
func (e *EAnt) Name() string { return "E-Ant" }

// Params returns the scheduler's configuration.
func (e *EAnt) Params() Params { return e.p }

// Matrix exposes the pheromone state for inspection (Table II dumps,
// tests). Nil until the first assignment.
func (e *EAnt) Matrix() *Matrix { return e.mx }

// init is called on every offer; the fast path must inline to a single
// load-and-branch, so the one-time construction lives in initSlow.
func (e *EAnt) init(ctx *mapreduce.Context) {
	if e.mx == nil {
		e.initSlow(ctx)
	}
}

// initSlow performs the one-time construction. Excluded from the hot set:
// it runs exactly once per run, so its allocations (and the cold helpers
// only it reaches, like Cluster.TypeNames) are not steady-state work.
//
//eant:hot-stop one-time lazy construction, not steady-state work
func (e *EAnt) initSlow(ctx *mapreduce.Context) {
	mx, err := NewMatrix(ctx.Cluster.Size(), e.p)
	if err != nil {
		panic(err) // params were validated in NewEAnt
	}
	e.mx = mx
	e.tickSeq = 1
	e.reduceMeans = make(map[int]float64)
	e.activeScratch = make(map[int]bool)
	for _, name := range ctx.Cluster.TypeNames() {
		var ids []int
		for _, m := range ctx.Cluster.ByType(name) {
			ids = append(ids, m.ID())
		}
		e.typeGroups = append(e.typeGroups, ids)
	}
}

// key builds the colony key for a job's tasks of one kind.
func key(j *mapreduce.Job, kind mapreduce.TaskKind) ColonyKey {
	return ColonyKey{JobID: j.Spec.ID, App: j.Spec.App, Kind: kind}
}

// FairnessEta evaluates the fairness branch of the heuristic function
// (Eq. 7):
//
//	η(j) = 1 / (1 − (S_min − S_occ)/S_pool)
//
// η > 1 for starved jobs (occupancy sOcc below the fair share sMin), < 1
// for jobs above fair share, clamped into [1/etaMax, etaMax]. The locality
// branch's η = ∞ is represented by the etaMax cap. An empty slot pool
// (sPool ≤ 0) yields the neutral η = 1.
func FairnessEta(sMin, sOcc, sPool, etaMax float64) float64 {
	if sPool <= 0 {
		return 1
	}
	denom := 1 - (sMin-sOcc)/sPool
	if denom <= 1/etaMax {
		return etaMax
	}
	return clamp(1/denom, 1/etaMax, etaMax)
}

// HeuristicWeight evaluates the Eq. 8 numerator τ·η^β. β ≤ 0 disables the
// heuristic term entirely (pure pheromone selection).
func HeuristicWeight(tau, eta, beta float64) float64 {
	if beta <= 0 {
		return tau
	}
	return tau * math.Pow(eta, beta)
}

// eta evaluates Eq. 7's fairness branch for one job against the live slot
// pool (which shrinks while machines are crashed).
func (e *EAnt) eta(ctx *mapreduce.Context, j *mapreduce.Job) float64 {
	return FairnessEta(ctx.FairShare(j), float64(j.Running()), float64(ctx.TotalSlots()), e.p.EtaMax)
}

// weight evaluates the Eq. 8 numerator τ(j,m)·η(j,m)^β. Following Eq. 7,
// η is the (capped) locality bonus when the job holds a local block on
// the machine, and the fairness deficit otherwise; β controls how hard
// heuristic information overrides the energy trails.
// The colony is pre-resolved by selectColony: one candidate-order map
// lookup per offer instead of one per weight/accept evaluation.
func (e *EAnt) weight(ctx *mapreduce.Context, j *mapreduce.Job, c *colony, kind mapreduce.TaskKind, m cluster.Machine) float64 {
	tau := c.row[m.ID()]
	if e.p.Beta <= 0 {
		return tau
	}
	eta := e.eta(ctx, j)
	if kind == mapreduce.MapTask && ctx.HasLocalMap(j, m) {
		eta = e.p.EtaMax
	}
	return HeuristicWeight(tau, eta, e.p.Beta)
}

// pickIndex draws one still-available candidate index by roulette over the
// precomputed Eq. 8 weights (first argmax among the available under the
// Greedy ablation). Masking declined candidates instead of splicing them
// out preserves both the candidate order and the roulette walk exactly:
// a masked weight contributes +0.0 to the float total and is skipped by
// the walk, which is bit-identical to its absence.
func (e *EAnt) pickIndex(ctx *mapreduce.Context, weights []float64, avail []bool) int {
	if e.p.Greedy {
		best := -1
		for i, w := range weights {
			if !avail[i] {
				continue
			}
			if best < 0 || w > weights[best] {
				best = i
			}
		}
		return best
	}
	return RouletteSelect(ctx.Rng, weights, avail)
}

// betterHostFactor is how much stronger another machine's trail must be
// before declining in its favor is considered.
const betterHostFactor = 1.2

// accepts decides whether machine m takes a task of the colony. Trails are
// mean-normalized per colony, so τ(j,m) directly reads as "goodness of m
// relative to the colony's average machine": above-average machines always
// accept; a below-average machine accepts with probability τ. A sampled
// decline is honored only when deferring cannot cost throughput:
//
//  1. the fleet-wide pending work of this task kind must fit inside the
//     better-trail machines' slot capacity (otherwise the work spills here
//     regardless and declining merely drip-feeds the backlog through a
//     few favored slots), and
//  2. a better-trail machine must have a free slot right now, so the task
//     is picked up within a heartbeat rather than parked.
//
// Deliberately idling a slot only saves energy when a better host actually
// runs the task instead — every machine keeps burning idle power while a
// task waits. These guards confine declining to light load and job tails,
// which is exactly where the paper's adaptive steering pays off
// (Fig. 1a); under saturation E-Ant stays work-conserving and colony
// *selection* does the affinity matching (Figs. 8b, 9).
func (e *EAnt) accepts(ctx *mapreduce.Context, j *mapreduce.Job, c *colony, kind mapreduce.TaskKind, m cluster.Machine) bool {
	// Under server consolidation a sleeping machine costs a wake (resume
	// latency plus a return to full idle draw); decline unless the awake
	// fleet genuinely cannot absorb the pending work. Pending work is
	// aggregated across ALL active jobs: better hosts are shared, so
	// judging against one colony's backlog would let every colony assume
	// the same free capacity and collectively over-decline. This is the
	// only path that reads pending on a reduce offer — an awake machine's
	// reduce acceptance never consults it.
	if m.Asleep() {
		// m sits in the asleep availability class, so the awake aggregates
		// exclude it — same machine set the old self-skipping scan covered.
		pending := ctx.PendingTasks(kind)
		awakeSlots, awakeFree := ctx.AwakeSlots(kind)
		if pending <= awakeSlots && awakeFree > 0 {
			return false
		}
	}
	if kind == mapreduce.ReduceTask {
		// Reduce placement adapts through colony selection only (see
		// selectColony); past the sleep guard it always accepts.
		return true
	}

	tau := c.row[m.ID()]
	if tau >= 1 {
		return true
	}
	p := clamp(tau, e.p.AcceptFloor, 1)
	if e.p.Greedy {
		if p >= 0.5 {
			return true
		}
	} else if ctx.Rng.Bernoulli(p) {
		return true
	}
	// A sampled decline is honored only when the better-trail machines can
	// absorb the whole backlog AND one of them has a free slot right now.
	return !e.betterHostsAbsorb(ctx, c, m)
}

// betterHostsAbsorb reports whether the machines whose trail for the
// colony is meaningfully stronger than m's have enough slot capacity for
// the fleet-wide pending map work and at least one currently-free map
// slot — the two conditions under which declining a map assignment cannot
// cost throughput. Served from the colony's per-interval host index: the
// trail threshold becomes a rank from a binary search, capacity a prefix
// sum, and the free-slot existence test a walk over 64-rank counters.
// m itself never qualifies (threshold > its own trail, trails are > 0),
// matching the old scan's explicit self-exclusion.
func (e *EAnt) betterHostsAbsorb(ctx *mapreduce.Context, c *colony, m cluster.Machine) bool {
	idx := c.idx
	if idx == nil || idx.tick != e.tickSeq || idx.epoch != ctx.AvailabilityEpoch() {
		idx = e.buildIndex(ctx, c)
	}
	r := idx.countAtLeast(c.row[m.ID()] * betterHostFactor)
	if ctx.PendingTasks(mapreduce.MapTask) > idx.prefixSlots[r] {
		return false
	}
	return e.anyFreeInRanks(ctx, idx, r)
}

// anyFreeInRanks reports whether any of the index's first r machines has a
// free map slot: whole 64-rank buckets answer from their counters, the
// partial tail bucket is probed machine by machine.
func (e *EAnt) anyFreeInRanks(ctx *mapreduce.Context, idx *hostIndex, r int) bool {
	full := r >> 6
	for b := 0; b < full; b++ {
		if idx.freeBuckets[b] > 0 {
			return true
		}
	}
	machines := ctx.Cluster.Machines()
	for i := full << 6; i < r; i++ {
		if machines[idx.ids[i]].FreeMapSlots() > 0 {
			return true
		}
	}
	return false
}

// buildIndex (re)builds the colony's host index for the current control
// interval and availability epoch, reusing the colony's buffers. Called at
// most once per map colony per interval on a healthy fleet; a crash or
// recovery bumps the availability epoch and forces a rebuild on next use.
func (e *EAnt) buildIndex(ctx *mapreduce.Context, c *colony) *hostIndex {
	idx := c.idx
	if idx == nil {
		idx = &hostIndex{}
		c.idx = idx
	}
	machines := ctx.Cluster.Machines()
	if cap(idx.rankOf) < len(machines) {
		idx.rankOf = make([]int, len(machines)) //eant:alloc-ok grows once to fleet size, then reused every interval
	}
	idx.rankOf = idx.rankOf[:len(machines)]
	for i := range idx.rankOf {
		idx.rankOf[i] = -1
	}
	ids := idx.ids[:0]
	for _, m := range machines {
		if m.Available() {
			ids = append(ids, m.ID())
		}
	}
	row := c.row
	sort.Slice(ids, func(a, b int) bool { //eant:alloc-ok per-interval index rebuild, not per-offer; comparator does not escape
		//eant:float-eq-ok sort tie-break: exact equality routes ties to the deterministic ID fallback
		if row[ids[a]] != row[ids[b]] {
			return row[ids[a]] > row[ids[b]]
		}
		return ids[a] < ids[b]
	})
	idx.ids = ids
	idx.vals = idx.vals[:0]
	idx.prefixSlots = append(idx.prefixSlots[:0], 0)
	idx.freeBuckets = idx.freeBuckets[:0]
	for b := (len(ids) + 63) / 64; b > 0; b-- {
		idx.freeBuckets = append(idx.freeBuckets, 0)
	}
	slots := 0
	for rank, id := range ids {
		m := machines[id]
		idx.vals = append(idx.vals, row[id])
		idx.rankOf[id] = rank
		slots += m.Spec().MapSlots
		idx.prefixSlots = append(idx.prefixSlots, slots)
		idx.freeBuckets[rank>>6] += m.FreeMapSlots()
	}
	idx.tick = e.tickSeq
	idx.epoch = ctx.AvailabilityEpoch()
	if idx.listed != e.tickSeq {
		idx.listed = e.tickSeq
		e.indexed = append(e.indexed, c)
	}
	return idx
}

// selectColony realizes Eq. 8 for one slot offer: restrict candidates to
// data-local colonies when the locality branch of Eq. 7 applies (η = ∞),
// then repeatedly roulette-draw a colony and test path acceptance. Map
// assignments pass the pheromone acceptance gate, which is what lets
// E-Ant starve machines it has learned are energy-inefficient. Reduce
// assignments adapt through colony selection only: a job has few, heavy
// reduce tasks, and declining one serializes the job tail on the favored
// machines — the energy cost of the stretched makespan always exceeds
// the dynamic-energy saving of the better host.
func (e *EAnt) selectColony(ctx *mapreduce.Context, m cluster.Machine, candidates []*mapreduce.Job, kind mapreduce.TaskKind) *mapreduce.Job {
	if len(candidates) == 0 {
		return nil
	}
	// Resolve each candidate's colony once, in candidate order — creating
	// missing colonies in exactly the order the old per-evaluation lookups
	// did, which pins the Matrix's deterministic iteration order — so the
	// draw loop below reads rows directly instead of re-hashing ColonyKeys.
	cols := e.scratchCols[:0]
	for _, j := range candidates {
		cols = append(cols, e.mx.colonyFor(key(j, kind)))
	}
	e.scratchCols = cols
	// Weights depend only on trails, fairness occupancy, and locality —
	// none of which an intra-offer decline changes — so they are computed
	// once and declined colonies are masked out in place for the redraw.
	weights := e.scratchWeights[:0]
	for i, j := range candidates {
		weights = append(weights, e.weight(ctx, j, cols[i], kind, m))
	}
	e.scratchWeights = weights
	avail := e.scratchAvail[:0]
	for range candidates {
		avail = append(avail, true)
	}
	e.scratchAvail = avail

	draws := e.p.ColonyDraws
	if len(candidates) < draws {
		draws = len(candidates)
	}
	for attempt := 0; attempt < draws; attempt++ {
		i := e.pickIndex(ctx, weights, avail)
		j := candidates[i]
		ok := e.accepts(ctx, j, cols[i], kind, m)
		// The probe is a pure observer of the decision: the trail is a
		// plain row read on the pre-resolved colony, and no randomness is
		// drawn, so instrumented runs replay bit-identically.
		if pr := ctx.Probe(); pr != nil {
			pr.Draw(ctx.Now(), m.ID(), j.Spec.ID, int8(kind), cols[i].row[m.ID()], weights[i], ok)
		}
		if ok {
			return j
		}
		// Mask the declined colony and redraw: m may still be a good host
		// for a different colony.
		avail[i] = false
	}
	return nil
}

// AssignMap implements mapreduce.Scheduler.
func (e *EAnt) AssignMap(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	e.init(ctx)
	// With no pending map anywhere the candidate list below is empty and
	// selectColony returns nil without drawing randomness; skip the
	// active-job scan (one offer per free slot on every heartbeat).
	if ctx.PendingTasks(mapreduce.MapTask) == 0 {
		return nil
	}

	pending := e.scratchJobs[:0]
	for _, j := range ctx.ActiveJobs() {
		if j.PendingMaps() > 0 {
			pending = append(pending, j)
		}
	}
	e.scratchJobs = pending
	j := e.selectColony(ctx, m, pending, mapreduce.MapTask)
	if j == nil {
		return nil
	}
	return ctx.PopMapPreferLocal(j, m)
}

// slowReduceFactor flags a machine as a pathological home for a job's
// reduces when its compute time exceeds this multiple of the type mean.
const slowReduceFactor = 2.0

// AssignReduce implements mapreduce.Scheduler.
func (e *EAnt) AssignReduce(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	e.init(ctx)
	// Ready-reduce count is maintained incrementally by the driver; zero
	// means ReduceReady holds for no job, so the scan would yield nothing.
	if ctx.ReadyReduceTasks() == 0 {
		return nil
	}
	ready := e.scratchJobs[:0]
	for _, j := range ctx.ActiveJobs() {
		if ctx.ReduceReady(j) {
			ready = append(ready, j)
		}
	}
	e.scratchJobs = ready
	j := e.selectColony(ctx, m, ready, mapreduce.ReduceTask)
	if j == nil {
		return nil
	}
	if e.reduceWouldStraggle(ctx, j, m) {
		return nil
	}
	return ctx.PopReduce(j)
}

// reduceWouldStraggle reports whether parking one of j's reduces on m
// would create a tail straggler: m runs the reduce far slower than the
// fleet average and a faster machine has a free reduce slot right now.
// Reduces are few and heavy, so one bad placement can serialize a job's
// tail for longer than the whole map phase (the §I Atom anecdote: a third
// of the energy, three times the wall clock — a loss once the rest of the
// fleet sits burning idle power waiting for it).
func (e *EAnt) reduceWouldStraggle(ctx *mapreduce.Context, j *mapreduce.Job, m cluster.Machine) bool {
	own := ctx.EstimateReduceSeconds(j, m.Spec())
	if own <= 0 {
		return false
	}
	mean, ok := e.reduceMeans[j.Spec.ID]
	if !ok {
		// Fleet-mean reduce estimate over one representative spec per type
		// (sorted type-name order — the same accumulation order as the old
		// per-offer loop). Static per job, so computed once.
		specs := ctx.TypeSpecs()
		for _, spec := range specs {
			mean += ctx.EstimateReduceSeconds(j, spec)
		}
		mean /= float64(len(specs))
		e.reduceMeans[j.Spec.ID] = mean
	}
	if own <= mean*slowReduceFactor {
		return false
	}
	// A fast machine with a free reduce slot exists iff some machine TYPE
	// is fast and has free reduce slots. m's own type is never fast here
	// (its estimate is own > mean·factor), so m needs no special-casing —
	// matching the old scan's self-exclusion.
	for i, spec := range ctx.TypeSpecs() {
		if ctx.EstimateReduceSeconds(j, spec) <= mean*slowReduceFactor && ctx.FreeReduceSlotsOfType(i) > 0 {
			return true
		}
	}
	return false
}

// OnTaskComplete implements mapreduce.Scheduler: the TaskTracker's energy
// report becomes pheromone feedback.
func (e *EAnt) OnTaskComplete(ctx *mapreduce.Context, t *mapreduce.Task) {
	e.init(ctx)
	e.mx.Feedback(key(t.Job, t.Kind), t.Machine.ID(), t.EstJoules)
}

// OnControlTick implements mapreduce.Scheduler: retire finished colonies
// and fold the interval's feedback into the trails.
func (e *EAnt) OnControlTick(ctx *mapreduce.Context) {
	e.init(ctx)
	// Trails are about to change: open a new index interval and drop the
	// indexed-colony list BEFORE retiring colonies, so it never holds a
	// reference to a retired colony.
	e.tickSeq++
	e.indexed = e.indexed[:0]
	active := e.activeScratch
	clear(active)
	for _, j := range ctx.ActiveJobs() {
		active[j.Spec.ID] = true
	}
	for id := range e.reduceMeans {
		if !active[id] {
			delete(e.reduceMeans, id)
		}
	}
	e.mx.RetireInactive(func(jobID int) bool { return active[jobID] }) //eant:alloc-ok per-control-tick predicate, not per-offer
	// Crashed machines' trails are frozen out of the exchange and left to
	// evaporate (nil when the fleet is healthy, preserving Update exactly).
	if e.unavailable == nil {
		e.unavailable = make([]bool, ctx.Cluster.Size()) //eant:alloc-ok lazy one-time init, amortized across the run
	}
	anyDown := false
	for i := range e.unavailable {
		e.unavailable[i] = false
	}
	for _, m := range ctx.Cluster.Machines() {
		if !m.Available() {
			e.unavailable[m.ID()] = true
			anyDown = true
		}
	}
	var unavailable []bool
	if anyDown {
		unavailable = e.unavailable
	}
	e.mx.UpdateWithAvailability(e.typeGroups, unavailable)
	if e.trackTrails {
		for _, k := range e.mx.Keys() {
			e.trails[k] = append(e.trails[k], TrailSnapshot{
				At:  ctx.Now(),
				Row: e.mx.Row(k),
			})
		}
	}
	// Pheromone-matrix snapshot for the observability layer: one row per
	// colony, in the matrix's insertion order (deterministic).
	if pr := ctx.Probe(); pr.TrailsEnabled() {
		for _, k := range e.mx.Keys() {
			pr.TrailRow(ctx.Now(), k.JobID, int8(k.Kind), k.App.String(), e.mx.Row(k))
		}
	}
}
