package core_test

import (
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/mapreduce"
	"eant/internal/sim"
	"eant/internal/workload"
)

// runVariant executes one MSD campaign with mutated E-Ant params.
func runVariant(t *testing.T, mutate func(*core.Params)) *mapreduce.Stats {
	t.Helper()
	params := core.DefaultParams()
	mutate(&params)
	jobs, err := workload.GenerateMSD(
		workload.MSDConfig{Jobs: 20, Scale: 64, MeanInterarrival: 30 * time.Second},
		sim.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	return runSched(t, cluster.Testbed(), core.MustNewEAnt(params), jobs, 21)
}

// Every documented parameter variant must run a full campaign without
// wedging the scheduler — the ablation benches assume this.
func TestEAntParameterVariantsComplete(t *testing.T) {
	variants := map[string]func(*core.Params){
		"default":          func(*core.Params) {},
		"sum-deposits":     func(p *core.Params) { p.SumDeposits = true; p.Gamma = 1 },
		"greedy":           func(p *core.Params) { p.Greedy = true },
		"no-neg-feedback":  func(p *core.Params) { p.NegativeFeedback = false },
		"neg-scale-1":      func(p *core.Params) { p.NegativeScale = 1 },
		"no-exchange":      func(p *core.Params) { p.MachineExchange = false; p.JobExchange = false },
		"work-conserving":  func(p *core.Params) { p.AcceptFloor = 1 },
		"rho-low":          func(p *core.Params) { p.Rho = 0.1 },
		"rho-high":         func(p *core.Params) { p.Rho = 0.9 },
		"gamma-1":          func(p *core.Params) { p.Gamma = 1 },
		"gamma-12":         func(p *core.Params) { p.Gamma = 12 },
		"beta-high":        func(p *core.Params) { p.Beta = 0.4 },
		"single-draw":      func(p *core.Params) { p.ColonyDraws = 1 },
		"many-draws":       func(p *core.Params) { p.ColonyDraws = 10 },
		"tight-tau-bounds": func(p *core.Params) { p.MinTau = 0.5; p.MaxTau = 2 },
	}
	for name, mutate := range variants {
		mutate := mutate
		t.Run(name, func(t *testing.T) {
			stats := runVariant(t, mutate)
			if len(stats.Jobs) != 20 {
				t.Fatalf("finished %d/20 jobs", len(stats.Jobs))
			}
			if stats.TotalJoules <= 0 {
				t.Fatal("no energy accounted")
			}
		})
	}
}

// The acceptance gate must never deadlock the cluster: even with a
// pathological floor and no better-host capacity the backlog drains.
func TestEAntNeverDeadlocks(t *testing.T) {
	params := core.DefaultParams()
	params.AcceptFloor = 0.0001
	params.MinTau = 0.001
	params.MaxTau = 1000
	jobs := workload.Batch(workload.Wordcount, 10, 1280, 2, 0)
	stats := runSched(t, cluster.Testbed(), core.MustNewEAnt(params), jobs, 31)
	if len(stats.Jobs) != 10 {
		t.Fatalf("finished %d/10 jobs — scheduler wedged", len(stats.Jobs))
	}
}

// Job-level warm start must not leak trails across retired colonies: a
// campaign of sequential same-app jobs stays consistent.
func TestEAntSequentialSameAppJobs(t *testing.T) {
	jobs := workload.Batch(workload.Grep, 8, 640, 1, 2*time.Minute)
	stats := runSched(t, cluster.Testbed(), core.MustNewEAnt(core.DefaultParams()), jobs, 41)
	if len(stats.Jobs) != 8 {
		t.Fatalf("finished %d/8 jobs", len(stats.Jobs))
	}
}
