package core_test

import (
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/mapreduce"
	"eant/internal/noise"
	"eant/internal/sched"
	"eant/internal/sim"
	"eant/internal/workload"
)

func runSched(t *testing.T, c *cluster.Cluster, s mapreduce.Scheduler, jobs []workload.JobSpec, seed int64) *mapreduce.Stats {
	t.Helper()
	cfg := mapreduce.DefaultConfig()
	// Scaled-down tasks need proportionally faster policy refreshes than
	// the paper's 5 min interval for real-size tasks.
	cfg.ControlInterval = 30 * time.Second
	cfg.Seed = seed
	cfg.Noise = noise.Default()
	d, err := mapreduce.NewDriver(c, s, cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	stats, err := d.Run(jobs, 24*time.Hour)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats
}

func mixedJobs(n int) []workload.JobSpec {
	apps := workload.Apps()
	jobs := make([]workload.JobSpec, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, workload.NewJobSpec(i, apps[i%len(apps)], 3200, 4,
			time.Duration(i)*10*time.Second))
	}
	return jobs
}

func TestEAntName(t *testing.T) {
	if core.MustNewEAnt(core.DefaultParams()).Name() != "E-Ant" {
		t.Error("Name mismatch")
	}
}

func TestNewEAntValidatesParams(t *testing.T) {
	bad := core.DefaultParams()
	bad.Rho = 7
	if _, err := core.NewEAnt(bad); err == nil {
		t.Error("invalid params accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewEAnt did not panic on invalid params")
		}
	}()
	core.MustNewEAnt(bad)
}

func TestEAntCompletesMixedWorkload(t *testing.T) {
	stats := runSched(t, cluster.Testbed(), core.MustNewEAnt(core.DefaultParams()), mixedJobs(9), 1)
	if len(stats.Jobs) != 9 {
		t.Fatalf("E-Ant finished %d/9 jobs", len(stats.Jobs))
	}
	if stats.TasksDone() == 0 || stats.TotalJoules <= 0 {
		t.Error("empty run stats")
	}
}

func TestEAntSavesEnergyVersusFair(t *testing.T) {
	// The headline claim (Fig. 8a): heterogeneity-aware assignment cuts
	// fleet energy on the MSD-style workload. Individual seeds are noisy
	// (the campaign tail is straggler-dominated), so compare means over a
	// few seeds.
	var fairJ, eantJ float64
	const seeds = 3
	for seed := int64(1); seed <= seeds; seed++ {
		jobs, err := workload.GenerateMSD(
			workload.MSDConfig{Jobs: 40, Scale: 64, MeanInterarrival: 30 * time.Second},
			sim.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		fairJ += runSched(t, cluster.Testbed(), sched.NewFair(), jobs, seed).TotalJoules
		eantJ += runSched(t, cluster.Testbed(), core.MustNewEAnt(core.DefaultParams()), jobs, seed).TotalJoules
	}
	if eantJ >= fairJ {
		t.Errorf("E-Ant mean energy %.0f J not below Fair %.0f J", eantJ/seeds, fairJ/seeds)
	}
	t.Logf("E-Ant saving vs Fair over %d seeds: %.1f%%", seeds, 100*(1-eantJ/fairJ))
}

func TestEAntDoesNotWreckJobPerformance(t *testing.T) {
	// Fig. 8c: once converged, E-Ant's completion times stay comparable
	// to Fair's (the paper shows E-Ant at or below Fair's JCT, with a few
	// jobs slightly slower in exchange for energy savings).
	jobs := mixedJobs(45)
	fair := runSched(t, cluster.Testbed(), sched.NewFair(), jobs, 5)
	eant := runSched(t, cluster.Testbed(), core.MustNewEAnt(core.DefaultParams()), jobs, 5)

	var fairSum, eantSum float64
	for _, r := range fair.Jobs {
		fairSum += r.CompletionTime().Seconds()
	}
	for _, r := range eant.Jobs {
		eantSum += r.CompletionTime().Seconds()
	}
	fairMean := fairSum / float64(len(fair.Jobs))
	eantMean := eantSum / float64(len(eant.Jobs))
	if eantMean > fairMean*1.35 {
		t.Errorf("E-Ant mean JCT %.0fs more than 35%% worse than Fair %.0fs", eantMean, fairMean)
	}
	t.Logf("mean JCT: E-Ant %.0fs vs Fair %.0fs", eantMean, fairMean)
}

func TestEAntAffinityMatchesWorkloadsToMachines(t *testing.T) {
	// Fig. 9a: under a mixed workload E-Ant segregates task types by
	// comparative energy advantage — CPU-bound Wordcount concentrates on
	// the compute-dense T420s (their shallow power slope makes them the
	// Eq. 2 winners for it), relative to the heterogeneity-oblivious Fair
	// assignment.
	jobs := mixedJobs(45)
	eant := runSched(t, cluster.Testbed(), core.MustNewEAnt(core.DefaultParams()), jobs, 7)
	fair := runSched(t, cluster.Testbed(), sched.NewFair(), jobs, 7)

	// Fraction of a machine type's completed tasks that are Wordcount.
	wcFrac := func(s *mapreduce.Stats, machineType string) float64 {
		total := 0
		for _, app := range workload.Apps() {
			total += s.CompletedByTypeApp(machineType, app)
		}
		if total == 0 {
			return 0
		}
		return float64(s.CompletedByTypeApp(machineType, workload.Wordcount)) / float64(total)
	}
	eT420, fT420 := wcFrac(eant, "T420"), wcFrac(fair, "T420")
	if eT420 <= fT420 {
		t.Errorf("E-Ant T420 Wordcount fraction %.3f not above Fair's %.3f", eT420, fT420)
	}
	// And the Atom, worst for Wordcount, carries less of it than the T420.
	if wcFrac(eant, "Atom") >= eT420 {
		t.Errorf("Atom WC fraction %.3f not below T420's %.3f", wcFrac(eant, "Atom"), eT420)
	}
	t.Logf("T420 Wordcount fraction: E-Ant %.3f vs Fair %.3f (Atom %.3f)",
		eT420, fT420, wcFrac(eant, "Atom"))
}

func TestEAntPheromoneMatrixExposed(t *testing.T) {
	e := core.MustNewEAnt(core.DefaultParams())
	if e.Matrix() != nil {
		t.Error("matrix should be nil before first assignment")
	}
	runSched(t, cluster.Testbed(), e, mixedJobs(3), 11)
	if e.Matrix() == nil {
		t.Error("matrix not materialized after run")
	}
	if got := e.Params().Rho; got != 0.5 {
		t.Errorf("Params().Rho = %v", got)
	}
}

func TestEAntGreedyAblationRuns(t *testing.T) {
	p := core.DefaultParams()
	p.Greedy = true
	stats := runSched(t, cluster.Testbed(), core.MustNewEAnt(p), mixedJobs(6), 13)
	if len(stats.Jobs) != 6 {
		t.Fatalf("greedy E-Ant finished %d/6 jobs", len(stats.Jobs))
	}
}

func TestEAntBetaZeroDisablesLocalityPriority(t *testing.T) {
	// Locality enters E-Ant through colony *selection* (η = ∞ in Eq. 7),
	// so the lever only shows with many competing small jobs: each job
	// holds blocks on only a few machines, and β = 0 stops steering those
	// jobs toward their data.
	jobs := workload.Batch(workload.Grep, 40, 320, 1, 0) // 5 maps each
	p := core.DefaultParams()
	p.Beta = 0
	zero := runSched(t, cluster.Testbed(), core.MustNewEAnt(p), jobs, 17)
	def := runSched(t, cluster.Testbed(), core.MustNewEAnt(core.DefaultParams()), jobs, 17)
	if zero.LocalityFraction() >= def.LocalityFraction() {
		t.Errorf("β=0 locality %.3f not below β=0.1 locality %.3f",
			zero.LocalityFraction(), def.LocalityFraction())
	}
	t.Logf("locality: β=0 %.3f vs β=0.1 %.3f", zero.LocalityFraction(), def.LocalityFraction())
}

func TestEAntExchangeOffStillCompletes(t *testing.T) {
	p := core.DefaultParams()
	p.MachineExchange = false
	p.JobExchange = false
	p.NegativeFeedback = false
	stats := runSched(t, cluster.Testbed(), core.MustNewEAnt(p), mixedJobs(6), 19)
	if len(stats.Jobs) != 6 {
		t.Fatalf("no-exchange E-Ant finished %d/6 jobs", len(stats.Jobs))
	}
}
