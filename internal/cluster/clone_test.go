package cluster

import "testing"

// TestCloneIsPristine pins the Clone contract the column-copy rewrite must
// preserve: a clone shares specs and IDs with its parent but starts with
// zeroed transient state, no matter how dirty the parent is.
func TestCloneIsPristine(t *testing.T) {
	parent := Testbed()

	// Dirty every kind of transient state in the parent.
	parent.Machine(0).AcquireMap(0.4)
	parent.Machine(0).AcquireReduce(0.1)
	parent.Machine(1).Sleep(7)
	parent.Machine(2).Fail()

	clone := parent.Clone()
	if clone.Size() != parent.Size() {
		t.Fatalf("clone size %d, want %d", clone.Size(), parent.Size())
	}
	for i := 0; i < clone.Size(); i++ {
		cm, pm := clone.Machine(i), parent.Machine(i)
		if cm.ID() != pm.ID() || cm.Spec() != pm.Spec() {
			t.Fatalf("machine %d: clone identity diverges (id %d/%d, spec %p/%p)",
				i, cm.ID(), pm.ID(), cm.Spec(), pm.Spec())
		}
		if cm.Running() != 0 || cm.Utilization() != 0 || cm.Asleep() || !cm.Available() {
			t.Errorf("machine %d: clone inherited runtime state: running=%d util=%v asleep=%v avail=%v",
				i, cm.Running(), cm.Utilization(), cm.Asleep(), cm.Available())
		}
		if cm.Power() != cm.Spec().IdleWatts {
			t.Errorf("machine %d: clone power %v, want idle %v", i, cm.Power(), cm.Spec().IdleWatts)
		}
	}
}

// TestCloneMutationDoesNotLeak pins mutation isolation in both directions:
// mutating the clone never shows through the parent's handles, and the
// parent's pre-existing dirt stays its own.
func TestCloneMutationDoesNotLeak(t *testing.T) {
	parent := Testbed()
	parent.Machine(3).AcquireMap(0.25)

	clone := parent.Clone()
	clone.Machine(0).AcquireMap(0.5)
	clone.Machine(1).Sleep(5)
	clone.Machine(2).Fail()
	clone.Machine(3).AcquireMap(0.25)
	clone.Machine(3).AcquireMap(0.25)

	if got := parent.Machine(0).RunningMap(); got != 0 {
		t.Errorf("clone AcquireMap leaked into parent: runningMap=%d", got)
	}
	if parent.Machine(0).Utilization() != 0 {
		t.Errorf("clone utilization leaked into parent: %v", parent.Machine(0).Utilization())
	}
	if parent.Machine(1).Asleep() {
		t.Error("clone Sleep leaked into parent")
	}
	if !parent.Machine(2).Available() {
		t.Error("clone Fail leaked into parent")
	}
	if got := parent.Machine(3).RunningMap(); got != 1 {
		t.Errorf("parent state perturbed by clone mutations: runningMap=%d, want 1", got)
	}
	if got := clone.Machine(3).RunningMap(); got != 2 {
		t.Errorf("clone lost its own mutations: runningMap=%d, want 2", got)
	}

	// Releasing in the clone must not touch the parent either.
	clone.Machine(3).ReleaseMap(0.25)
	if got := parent.Machine(3).RunningMap(); got != 1 {
		t.Errorf("clone ReleaseMap leaked into parent: runningMap=%d, want 1", got)
	}

	// Handles are bound to their cluster: the same ID compares unequal
	// across parent and clone, equal within one.
	if parent.Machine(0) == clone.Machine(0) {
		t.Error("parent and clone handles for machine 0 compare equal")
	}
	if parent.Machine(0) != parent.Machines()[0] {
		t.Error("handles for the same machine compare unequal")
	}
}

// TestCloneOfDirtyParentThenReset cross-checks Clone against Reset: a
// freshly cloned fleet and a reset fleet must be indistinguishable.
func TestCloneOfDirtyParentThenReset(t *testing.T) {
	c := Testbed()
	c.Machine(0).AcquireMap(0.4)
	c.Machine(1).Sleep(2)
	c.Machine(2).Fail()

	fresh := c.Clone()
	c.Reset()
	for i := 0; i < c.Size(); i++ {
		rm, fm := c.Machine(i), fresh.Machine(i)
		if rm.Running() != fm.Running() || rm.Utilization() != fm.Utilization() ||
			rm.Asleep() != fm.Asleep() || rm.Available() != fm.Available() ||
			rm.Power() != fm.Power() {
			t.Errorf("machine %d: reset state differs from fresh clone", i)
		}
	}
}
