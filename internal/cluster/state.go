package cluster

import (
	"fmt"
	"sort"
)

// Cluster is an ordered fleet of machines with a type index. Per-machine
// mutable state is stored column-wise (struct of arrays) and addressed
// through Machine handles: the offer path walks dense slices instead of
// chasing per-machine heap pointers, Clone is a handful of column copies,
// and Reset is a memclr of the mutable columns.
//
// Invariants (DESIGN.md §17):
//
//   - Columns are parallel: every column has length Size(), indexed by
//     MachineID, and machine i's state lives at index i in each.
//   - specs is the interned type table; typeOf[i] indexes into it. A spec
//     pointer registered twice interns to the same TypeID; two different
//     specs sharing a Name are rejected at construction.
//   - The fleet is fixed after New: columns never grow, so the backing
//     arrays never relocate while handles are live.
type Cluster struct {
	// Interned type table and the per-machine index into it. Fixed at
	// construction; spec pointers are shared across clones (immutable).
	specs  []*TypeSpec //eant:reset-keep interned type table is immutable configuration
	typeOf []TypeID    //eant:reset-keep machine→type mapping is fixed at construction

	// Derived immutable columns, denormalized from the type table so the
	// offer path (FreeMapSlots and friends) never chases a spec pointer.
	specOf      []*TypeSpec //eant:reset-keep denormalized typeOf→specs view, immutable
	mapSlots    []int16     //eant:reset-keep per-machine spec.MapSlots, immutable
	reduceSlots []int16     //eant:reset-keep per-machine spec.ReduceSlots, immutable

	// Mutable state columns, zeroed by Reset.
	runningMap    []int16
	runningReduce []int16
	util          []float64
	flags         []uint8
	sleepWatts    []float64

	// handles caches one Machine value per ID so Machines() returns a
	// stable slice without per-call allocation.
	handles []Machine            //eant:reset-keep handle cache over the fixed fleet
	byType  map[string][]Machine //eant:reset-keep index over the fixed fleet; Reset clears the columns it points at
}

// Group pairs a machine spec with a replica count.
type Group struct {
	Spec  *TypeSpec
	Count int
}

// New builds a cluster from counts of each spec, assigning stable IDs in
// the order given. It returns an error if any spec is invalid, any count is
// non-positive, or two distinct specs share a name (the interned type table
// requires names to identify types uniquely).
func New(groups ...Group) (*Cluster, error) {
	c := &Cluster{byType: make(map[string][]Machine)}
	for _, g := range groups {
		if err := g.Spec.Validate(); err != nil {
			return nil, err
		}
		if g.Count <= 0 {
			return nil, fmt.Errorf("cluster: group %q has count %d", g.Spec.Name, g.Count)
		}
		tid, err := c.internSpec(g.Spec)
		if err != nil {
			return nil, err
		}
		for i := 0; i < g.Count; i++ {
			c.typeOf = append(c.typeOf, tid)
		}
	}
	if len(c.typeOf) == 0 {
		return nil, fmt.Errorf("cluster: no machines")
	}
	c.grow()
	return c, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(groups ...Group) *Cluster {
	c, err := New(groups...)
	if err != nil {
		panic(err)
	}
	return c
}

// grow allocates the state columns and handle/type indexes for the fleet
// described by typeOf. Called once per construction (New or Clone); the
// columns never relocate afterwards.
func (c *Cluster) grow() {
	n := len(c.typeOf)
	c.runningMap = make([]int16, n)
	c.runningReduce = make([]int16, n)
	c.util = make([]float64, n)
	c.flags = make([]uint8, n)
	c.sleepWatts = make([]float64, n)
	c.specOf = make([]*TypeSpec, n)
	c.mapSlots = make([]int16, n)
	c.reduceSlots = make([]int16, n)
	c.handles = make([]Machine, n)
	for i := range c.handles {
		m := Machine{c: c, id: MachineID(i)}
		c.handles[i] = m
		spec := c.specs[c.typeOf[i]]
		c.specOf[i] = spec
		c.mapSlots[i] = int16(spec.MapSlots)
		c.reduceSlots[i] = int16(spec.ReduceSlots)
		c.byType[spec.Name] = append(c.byType[spec.Name], m)
	}
}

// Clone returns an independent cluster with the same machine IDs and
// specs and zeroed transient state (running tasks, sleep, crash flags).
// A Cluster must not be shared by concurrent simulation runs — clone it
// per run instead. TypeSpec pointers are shared: specs are immutable.
func (c *Cluster) Clone() *Cluster {
	out := &Cluster{
		specs:  append([]*TypeSpec(nil), c.specs...),
		typeOf: append([]TypeID(nil), c.typeOf...),
		byType: make(map[string][]Machine, len(c.byType)),
	}
	out.grow()
	return out
}

// Reset zeroes every machine's transient state (slot occupancy,
// utilization, sleep, crash flags), returning the fleet to the condition a
// fresh Clone starts in. Warm-run reuse calls it between runs instead of
// re-cloning.
func (c *Cluster) Reset() {
	clear(c.runningMap)
	clear(c.runningReduce)
	clear(c.util)
	clear(c.flags)
	clear(c.sleepWatts)
}

// Machines returns the fleet in ID order. The slice is shared; callers must
// not mutate it.
func (c *Cluster) Machines() []Machine { return c.handles }

// Size returns the number of machines.
func (c *Cluster) Size() int { return len(c.handles) }

// Machine returns the handle for the machine with the given ID.
func (c *Cluster) Machine(id int) Machine {
	if id < 0 || id >= len(c.handles) {
		panic(fmt.Sprintf("cluster: no machine %d in fleet of %d", id, len(c.handles)))
	}
	return c.handles[id]
}

// ByType returns the machines of one hardware type (the paper's
// "homogeneous sub-cluster" used by the machine-level exchange strategy).
func (c *Cluster) ByType(name string) []Machine { return c.byType[name] }

// TypeNames returns the distinct machine type names, sorted.
func (c *Cluster) TypeNames() []string {
	names := make([]string, 0, len(c.byType))
	for n := range c.byType {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalSlots returns Σ m_slot over the fleet (S_pool in Eq. 7 for a
// single-user system).
func (c *Cluster) TotalSlots() int {
	total := 0
	for _, t := range c.typeOf {
		total += c.specs[t].Slots()
	}
	return total
}

// TotalMapSlots returns the fleet-wide map slot count.
func (c *Cluster) TotalMapSlots() int {
	total := 0
	for _, t := range c.typeOf {
		total += c.specs[t].MapSlots
	}
	return total
}

// TotalReduceSlots returns the fleet-wide reduce slot count.
func (c *Cluster) TotalReduceSlots() int {
	total := 0
	for _, t := range c.typeOf {
		total += c.specs[t].ReduceSlots
	}
	return total
}
