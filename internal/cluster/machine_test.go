package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllCatalogSpecsValid(t *testing.T) {
	for _, s := range AllSpecs() {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s: %v", s.Name, err)
		}
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	tests := []struct {
		name string
		spec TypeSpec
	}{
		{"empty name", TypeSpec{Cores: 1, SpeedFactor: 1, DiskMBps: 1, NetMBps: 1, MapSlots: 1}},
		{"zero cores", TypeSpec{Name: "x", SpeedFactor: 1, DiskMBps: 1, NetMBps: 1, MapSlots: 1}},
		{"zero speed", TypeSpec{Name: "x", Cores: 1, DiskMBps: 1, NetMBps: 1, MapSlots: 1}},
		{"zero disk", TypeSpec{Name: "x", Cores: 1, SpeedFactor: 1, NetMBps: 1, MapSlots: 1}},
		{"negative idle", TypeSpec{Name: "x", Cores: 1, SpeedFactor: 1, DiskMBps: 1, NetMBps: 1, IdleWatts: -1, MapSlots: 1}},
		{"zero map slots", TypeSpec{Name: "x", Cores: 1, SpeedFactor: 1, DiskMBps: 1, NetMBps: 1}},
		{"negative reduce slots", TypeSpec{Name: "x", Cores: 1, SpeedFactor: 1, DiskMBps: 1, NetMBps: 1, MapSlots: 1, ReduceSlots: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.spec.Validate(); err == nil {
				t.Error("Validate accepted invalid spec")
			}
		})
	}
}

func TestPowerAtClampsUtilization(t *testing.T) {
	s := SpecDesktop
	if got := s.PowerAt(-0.5); got != s.IdleWatts {
		t.Errorf("PowerAt(-0.5) = %v, want idle %v", got, s.IdleWatts)
	}
	if got := s.PowerAt(2); got != s.PeakWatts() {
		t.Errorf("PowerAt(2) = %v, want peak %v", got, s.PeakWatts())
	}
	mid := s.PowerAt(0.5)
	want := s.IdleWatts + 0.5*s.AlphaWatts
	if math.Abs(mid-want) > 1e-9 {
		t.Errorf("PowerAt(0.5) = %v, want %v", mid, want)
	}
}

func TestPowerEnvelopeHeterogeneity(t *testing.T) {
	// The calibration that drives every motivation result: the desktop is
	// cheaper at idle, the Xeon is cheaper per unit of added utilization.
	if SpecDesktop.IdleWatts >= SpecXeonE5.IdleWatts {
		t.Error("desktop idle power should be below Xeon idle power")
	}
	if SpecDesktop.AlphaWatts <= SpecXeonE5.AlphaWatts {
		t.Error("desktop power slope should be above Xeon slope")
	}
	// Per-slot idle attribution (Eq. 2 first term) must favor the
	// slot-dense Xeon, otherwise Fig. 9a's CPU-task affinity cannot appear.
	deskPerSlot := SpecDesktop.IdleWatts / float64(SpecDesktop.Slots())
	xeonPerSlot := SpecXeonE5.IdleWatts / float64(SpecXeonE5.Slots())
	if xeonPerSlot >= deskPerSlot {
		t.Errorf("idle watts per slot: xeon %.2f should be below desktop %.2f", xeonPerSlot, deskPerSlot)
	}
}

// oneMachine returns a handle to the single machine of a fresh one-node
// cluster of the given type.
func oneMachine(spec *TypeSpec) Machine {
	return MustNew(Group{Spec: spec, Count: 1}).Machine(0)
}

func TestMachineSlotAccounting(t *testing.T) {
	m := oneMachine(SpecDesktop) // 4 map + 2 reduce
	for i := 0; i < 4; i++ {
		if !m.AcquireMap(0.1) {
			t.Fatalf("AcquireMap #%d failed", i)
		}
	}
	if m.AcquireMap(0.1) {
		t.Error("AcquireMap succeeded beyond capacity")
	}
	if m.FreeMapSlots() != 0 || m.RunningMap() != 4 {
		t.Errorf("map slots free=%d running=%d, want 0/4", m.FreeMapSlots(), m.RunningMap())
	}
	if !m.AcquireReduce(0.05) || !m.AcquireReduce(0.05) {
		t.Fatal("AcquireReduce failed with free slots")
	}
	if m.AcquireReduce(0.05) {
		t.Error("AcquireReduce succeeded beyond capacity")
	}
	if m.Running() != 6 {
		t.Errorf("Running() = %d, want 6", m.Running())
	}
	wantUtil := 4*0.1 + 2*0.05
	if math.Abs(m.Utilization()-wantUtil) > 1e-9 {
		t.Errorf("Utilization() = %v, want %v", m.Utilization(), wantUtil)
	}
	m.ReleaseMap(0.1)
	m.ReleaseReduce(0.05)
	if m.FreeMapSlots() != 1 || m.FreeReduceSlots() != 1 {
		t.Error("release did not free slots")
	}
}

func TestMachineFailedAcquireHasNoSideEffects(t *testing.T) {
	m := oneMachine(SpecAtom) // 2 map + 1 reduce
	m.AcquireMap(0.2)
	m.AcquireMap(0.2)
	before := m.Utilization()
	if m.AcquireMap(0.2) {
		t.Fatal("acquire should have failed")
	}
	if m.Utilization() != before {
		t.Error("failed acquire changed utilization")
	}
}

func TestMachineReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("releasing unheld slot did not panic")
		}
	}()
	oneMachine(SpecAtom).ReleaseMap(0.1)
}

func TestMachineUtilizationNeverNegative(t *testing.T) {
	m := oneMachine(SpecDesktop)
	// Acquire/release with slightly mismatched float math many times.
	f := func(shares []float64) bool {
		for _, s := range shares {
			s = math.Abs(math.Mod(s, 0.2))
			if m.AcquireMap(s) {
				m.ReleaseMap(s)
			}
		}
		return m.Utilization() >= 0 && m.Power() >= m.Spec().IdleWatts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClusterNew(t *testing.T) {
	c, err := New(
		Group{Spec: SpecDesktop, Count: 2},
		Group{Spec: SpecAtom, Count: 1},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.Size() != 3 {
		t.Fatalf("Size() = %d, want 3", c.Size())
	}
	for i, m := range c.Machines() {
		if m.ID() != i {
			t.Errorf("machine %d has ID %d", i, m.ID())
		}
	}
	if got := len(c.ByType("Desktop")); got != 2 {
		t.Errorf("ByType(Desktop) = %d machines, want 2", got)
	}
	if got := len(c.ByType("Atom")); got != 1 {
		t.Errorf("ByType(Atom) = %d machines, want 1", got)
	}
	names := c.TypeNames()
	if len(names) != 2 || names[0] != "Atom" || names[1] != "Desktop" {
		t.Errorf("TypeNames() = %v, want [Atom Desktop]", names)
	}
}

func TestClusterNewRejectsEmptyAndInvalid(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() with no groups should error")
	}
	if _, err := New(Group{Spec: SpecDesktop, Count: 0}); err == nil {
		t.Error("New with zero count should error")
	}
	bad := &TypeSpec{Name: ""}
	if _, err := New(Group{Spec: bad, Count: 1}); err == nil {
		t.Error("New with invalid spec should error")
	}
}

func TestTestbedComposition(t *testing.T) {
	c := Testbed()
	want := map[string]int{
		"Desktop": 8, "T110": 3, "T420": 2, "T320": 1, "T620": 1, "Atom": 1,
	}
	if c.Size() != 16 {
		t.Fatalf("testbed size = %d, want 16", c.Size())
	}
	for name, n := range want {
		if got := len(c.ByType(name)); got != n {
			t.Errorf("testbed has %d %s machines, want %d", got, name, n)
		}
	}
}

func TestClusterSlotTotals(t *testing.T) {
	c := CaseStudyPair() // desktop 4+2, xeon 12+6
	if got := c.TotalMapSlots(); got != 16 {
		t.Errorf("TotalMapSlots = %d, want 16", got)
	}
	if got := c.TotalReduceSlots(); got != 8 {
		t.Errorf("TotalReduceSlots = %d, want 8", got)
	}
	if got := c.TotalSlots(); got != 24 {
		t.Errorf("TotalSlots = %d, want 24", got)
	}
}

func TestClusterMachineLookup(t *testing.T) {
	c := Testbed()
	if m := c.Machine(0); m.ID() != 0 {
		t.Error("Machine(0) returned wrong machine")
	}
	defer func() {
		if recover() == nil {
			t.Error("Machine(-1) did not panic")
		}
	}()
	c.Machine(-1)
}
