// Package cluster models the heterogeneous machine fleet of a Hadoop 1.x
// cluster: per-type hardware capability, the power envelope (idle watts plus
// a linear utilization slope, the model the paper identifies with least
// squares), and map/reduce slot accounting.
//
// The shipped catalog reproduces the paper's testbed: the Table I case-study
// pair (Core i7 desktop, Xeon E5 PowerEdge) and the §V-B fleet (8 Dell
// desktops, 3 T110, 2 T420, 1 T320, 1 T620, 1 Atom).
package cluster

import (
	"fmt"
	"sort"
)

// TypeSpec describes one hardware generation. SpeedFactor is the per-core
// throughput relative to the reference core (the desktop's 3.4 GHz i7 core
// is 1.0). IdleWatts and AlphaWatts define the machine power envelope
//
//	P = IdleWatts + AlphaWatts · U
//
// where U ∈ [0, 1] is whole-machine CPU utilization; this is the linear
// model the paper fits per machine type (§IV-B).
type TypeSpec struct {
	Name        string
	Cores       int
	SpeedFactor float64
	MemoryGB    int
	DiskMBps    float64 // aggregate local-disk bandwidth
	NetMBps     float64 // NIC bandwidth (GbE ≈ 117 MB/s)
	IdleWatts   float64
	AlphaWatts  float64
	MapSlots    int
	ReduceSlots int
}

// Slots returns the total concurrent task capacity (m_slot in Eq. 1/2).
func (s *TypeSpec) Slots() int { return s.MapSlots + s.ReduceSlots }

// PowerAt returns the machine power draw in watts at utilization u,
// clamping u into [0, 1].
func (s *TypeSpec) PowerAt(u float64) float64 {
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	return s.IdleWatts + s.AlphaWatts*u
}

// PeakWatts returns the draw at full utilization.
func (s *TypeSpec) PeakWatts() float64 { return s.IdleWatts + s.AlphaWatts }

// Validate reports the first structural problem with the spec.
func (s *TypeSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("cluster: spec has empty name")
	case s.Cores <= 0:
		return fmt.Errorf("cluster: spec %q has %d cores", s.Name, s.Cores)
	case s.SpeedFactor <= 0:
		return fmt.Errorf("cluster: spec %q has non-positive speed factor", s.Name)
	case s.DiskMBps <= 0 || s.NetMBps <= 0:
		return fmt.Errorf("cluster: spec %q has non-positive bandwidth", s.Name)
	case s.IdleWatts < 0 || s.AlphaWatts < 0:
		return fmt.Errorf("cluster: spec %q has negative power coefficients", s.Name)
	case s.MapSlots <= 0 || s.ReduceSlots < 0:
		return fmt.Errorf("cluster: spec %q has invalid slot counts", s.Name)
	}
	return nil
}

// Machine is one slave node. Slot occupancy is plain state mutated by the
// single-threaded simulation loop; Machine is not safe for concurrent use.
type Machine struct {
	ID   int       //eant:reset-keep machine identity is fixed at construction
	Spec *TypeSpec //eant:reset-keep hardware type is immutable configuration

	runningMap    int
	runningReduce int

	// util is the current whole-machine CPU utilization contributed by
	// running tasks (Σ per-task machine share), piecewise constant
	// between task start/finish events.
	util float64

	// asleep marks a consolidated (powered-down) machine; sleepWatts is
	// its standby draw. Set through Sleep/Wake by the power-management
	// policy.
	asleep     bool
	sleepWatts float64

	// dead marks a crashed machine (fault injection): it holds no slots,
	// draws no power, and is skipped by heartbeats until repaired.
	dead bool
}

// NewMachine returns a machine of the given type.
func NewMachine(id int, spec *TypeSpec) *Machine {
	if spec == nil {
		panic("cluster: NewMachine with nil spec")
	}
	return &Machine{ID: id, Spec: spec}
}

// String identifies the machine for logs: "T420#3".
func (m *Machine) String() string { return fmt.Sprintf("%s#%d", m.Spec.Name, m.ID) }

// FreeMapSlots returns the number of unoccupied map slots; a dead machine
// has none.
func (m *Machine) FreeMapSlots() int {
	if m.dead {
		return 0
	}
	return m.Spec.MapSlots - m.runningMap
}

// FreeReduceSlots returns the number of unoccupied reduce slots; a dead
// machine has none.
func (m *Machine) FreeReduceSlots() int {
	if m.dead {
		return 0
	}
	return m.Spec.ReduceSlots - m.runningReduce
}

// RunningMap returns the number of occupied map slots.
func (m *Machine) RunningMap() int { return m.runningMap }

// RunningReduce returns the number of occupied reduce slots.
func (m *Machine) RunningReduce() int { return m.runningReduce }

// Running returns the total number of occupied slots.
func (m *Machine) Running() int { return m.runningMap + m.runningReduce }

// Utilization returns the current whole-machine CPU utilization in [0, 1].
func (m *Machine) Utilization() float64 { return m.util }

// Power returns the current draw in watts: zero while dead, the standby
// draw while asleep, the envelope P_idle + α·U otherwise.
func (m *Machine) Power() float64 {
	if m.dead {
		return 0
	}
	if m.asleep {
		return m.sleepWatts
	}
	return m.Spec.PowerAt(m.util)
}

// Asleep reports whether the machine is powered down.
func (m *Machine) Asleep() bool { return m.asleep }

// Available reports whether the machine can run tasks (not crashed).
func (m *Machine) Available() bool { return !m.dead }

// Fail crashes the machine: it leaves the slot pool and draws no power
// until Repair. The driver must kill (and release) every running attempt
// first; failing a machine with occupied slots is a model bug and panics.
// A sleeping machine may crash; the crash clears the sleep state (the
// eventual repair is a reboot into the normal idle envelope).
func (m *Machine) Fail() {
	if m.Running() > 0 {
		panic(fmt.Sprintf("cluster: %s crashed with %d running tasks", m, m.Running()))
	}
	m.dead = true
	m.asleep = false
	m.sleepWatts = 0
}

// Repair returns a crashed machine to service. Idempotent.
func (m *Machine) Repair() { m.dead = false }

// Sleep powers the machine down to the given standby draw. Sleeping with
// tasks running is a policy bug and panics.
func (m *Machine) Sleep(standbyWatts float64) {
	if m.Running() > 0 {
		panic(fmt.Sprintf("cluster: %s put to sleep with %d running tasks", m, m.Running()))
	}
	if standbyWatts < 0 {
		standbyWatts = 0
	}
	m.asleep = true
	m.sleepWatts = standbyWatts
}

// Wake powers the machine back up. Idempotent.
func (m *Machine) Wake() { m.asleep = false }

// AcquireMap claims a map slot and adds the task's CPU share. It returns
// false without side effects when no map slot is free.
func (m *Machine) AcquireMap(cpuShare float64) bool {
	if m.dead || m.runningMap >= m.Spec.MapSlots {
		return false
	}
	m.runningMap++
	m.addUtil(cpuShare)
	return true
}

// AcquireReduce claims a reduce slot and adds the task's CPU share. It
// returns false without side effects when no reduce slot is free.
func (m *Machine) AcquireReduce(cpuShare float64) bool {
	if m.dead || m.runningReduce >= m.Spec.ReduceSlots {
		return false
	}
	m.runningReduce++
	m.addUtil(cpuShare)
	return true
}

// ReleaseMap frees a map slot and removes the task's CPU share. Releasing
// an unheld slot is a model bug and panics.
func (m *Machine) ReleaseMap(cpuShare float64) {
	if m.runningMap <= 0 {
		panic(fmt.Sprintf("cluster: %s released map slot it does not hold", m))
	}
	m.runningMap--
	m.addUtil(-cpuShare)
}

// ReleaseReduce frees a reduce slot and removes the task's CPU share.
func (m *Machine) ReleaseReduce(cpuShare float64) {
	if m.runningReduce <= 0 {
		panic(fmt.Sprintf("cluster: %s released reduce slot it does not hold", m))
	}
	m.runningReduce--
	m.addUtil(-cpuShare)
}

func (m *Machine) addUtil(d float64) {
	m.util += d
	// Clamp tiny float drift so long runs can't accumulate a negative
	// utilization and produce negative power.
	if m.util < 1e-12 {
		m.util = 0
	}
	if m.util > 1 {
		m.util = 1
	}
}

// Cluster is an ordered fleet of machines with a type index.
type Cluster struct {
	machines []*Machine
	byType   map[string][]*Machine //eant:reset-keep index over the fixed fleet; Reset mutates the machines it points at
}

// New builds a cluster from counts of each spec, assigning stable IDs in
// the order given. It returns an error if any spec is invalid.
func New(groups ...Group) (*Cluster, error) {
	c := &Cluster{byType: make(map[string][]*Machine)}
	id := 0
	for _, g := range groups {
		if err := g.Spec.Validate(); err != nil {
			return nil, err
		}
		if g.Count <= 0 {
			return nil, fmt.Errorf("cluster: group %q has count %d", g.Spec.Name, g.Count)
		}
		for i := 0; i < g.Count; i++ {
			m := NewMachine(id, g.Spec)
			id++
			c.machines = append(c.machines, m)
			c.byType[g.Spec.Name] = append(c.byType[g.Spec.Name], m)
		}
	}
	if len(c.machines) == 0 {
		return nil, fmt.Errorf("cluster: no machines")
	}
	return c, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(groups ...Group) *Cluster {
	c, err := New(groups...)
	if err != nil {
		panic(err)
	}
	return c
}

// Group pairs a machine spec with a replica count.
type Group struct {
	Spec  *TypeSpec
	Count int
}

// Clone returns an independent cluster with the same machine IDs and
// specs and zeroed transient state (running tasks, sleep, crash flags).
// A Cluster must not be shared by concurrent simulation runs — clone it
// per run instead. TypeSpec pointers are shared: specs are immutable.
func (c *Cluster) Clone() *Cluster {
	out := &Cluster{byType: make(map[string][]*Machine, len(c.byType))}
	for _, m := range c.machines {
		nm := NewMachine(m.ID, m.Spec)
		out.machines = append(out.machines, nm)
		out.byType[m.Spec.Name] = append(out.byType[m.Spec.Name], nm)
	}
	return out
}

// Reset zeroes every machine's transient state (slot occupancy,
// utilization, sleep, crash flags), returning the fleet to the condition a
// fresh Clone starts in. Warm-run reuse calls it between runs instead of
// re-cloning.
func (c *Cluster) Reset() {
	for _, m := range c.machines {
		m.runningMap = 0
		m.runningReduce = 0
		m.util = 0
		m.asleep = false
		m.sleepWatts = 0
		m.dead = false
	}
}

// Machines returns the fleet in ID order. The slice is shared; callers must
// not mutate it.
func (c *Cluster) Machines() []*Machine { return c.machines }

// Size returns the number of machines.
func (c *Cluster) Size() int { return len(c.machines) }

// Machine returns the machine with the given ID.
func (c *Cluster) Machine(id int) *Machine {
	if id < 0 || id >= len(c.machines) {
		panic(fmt.Sprintf("cluster: no machine %d in fleet of %d", id, len(c.machines)))
	}
	return c.machines[id]
}

// ByType returns the machines of one hardware type (the paper's
// "homogeneous sub-cluster" used by the machine-level exchange strategy).
func (c *Cluster) ByType(name string) []*Machine { return c.byType[name] }

// TypeNames returns the distinct machine type names, sorted.
func (c *Cluster) TypeNames() []string {
	names := make([]string, 0, len(c.byType))
	for n := range c.byType {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalSlots returns Σ m_slot over the fleet (S_pool in Eq. 7 for a
// single-user system).
func (c *Cluster) TotalSlots() int {
	total := 0
	for _, m := range c.machines {
		total += m.Spec.Slots()
	}
	return total
}

// TotalMapSlots returns the fleet-wide map slot count.
func (c *Cluster) TotalMapSlots() int {
	total := 0
	for _, m := range c.machines {
		total += m.Spec.MapSlots
	}
	return total
}

// TotalReduceSlots returns the fleet-wide reduce slot count.
func (c *Cluster) TotalReduceSlots() int {
	total := 0
	for _, m := range c.machines {
		total += m.Spec.ReduceSlots
	}
	return total
}
