// Package cluster models the heterogeneous machine fleet of a Hadoop 1.x
// cluster: per-type hardware capability, the power envelope (idle watts plus
// a linear utilization slope, the model the paper identifies with least
// squares), and map/reduce slot accounting.
//
// The shipped catalog reproduces the paper's testbed: the Table I case-study
// pair (Core i7 desktop, Xeon E5 PowerEdge) and the §V-B fleet (8 Dell
// desktops, 3 T110, 2 T420, 1 T320, 1 T620, 1 Atom).
//
// World-state layout (DESIGN.md §17): per-machine mutable state lives in
// dense struct-of-arrays columns on the Cluster, indexed by MachineID.
// Machine is a two-word value handle (cluster pointer + index) — cheap to
// copy, comparable with ==, and free of per-machine heap objects.
package cluster

import (
	"fmt"
)

// TypeSpec describes one hardware generation. SpeedFactor is the per-core
// throughput relative to the reference core (the desktop's 3.4 GHz i7 core
// is 1.0). IdleWatts and AlphaWatts define the machine power envelope
//
//	P = IdleWatts + AlphaWatts · U
//
// where U ∈ [0, 1] is whole-machine CPU utilization; this is the linear
// model the paper fits per machine type (§IV-B).
type TypeSpec struct {
	Name        string
	Cores       int
	SpeedFactor float64
	MemoryGB    int
	DiskMBps    float64 // aggregate local-disk bandwidth
	NetMBps     float64 // NIC bandwidth (GbE ≈ 117 MB/s)
	IdleWatts   float64
	AlphaWatts  float64
	MapSlots    int
	ReduceSlots int
}

// Slots returns the total concurrent task capacity (m_slot in Eq. 1/2).
func (s *TypeSpec) Slots() int { return s.MapSlots + s.ReduceSlots }

// PowerAt returns the machine power draw in watts at utilization u,
// clamping u into [0, 1].
func (s *TypeSpec) PowerAt(u float64) float64 {
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	return s.IdleWatts + s.AlphaWatts*u
}

// PeakWatts returns the draw at full utilization.
func (s *TypeSpec) PeakWatts() float64 { return s.IdleWatts + s.AlphaWatts }

// Validate reports the first structural problem with the spec.
func (s *TypeSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("cluster: spec has empty name")
	case s.Cores <= 0:
		return fmt.Errorf("cluster: spec %q has %d cores", s.Name, s.Cores)
	case s.SpeedFactor <= 0:
		return fmt.Errorf("cluster: spec %q has non-positive speed factor", s.Name)
	case s.DiskMBps <= 0 || s.NetMBps <= 0:
		return fmt.Errorf("cluster: spec %q has non-positive bandwidth", s.Name)
	case s.IdleWatts < 0 || s.AlphaWatts < 0:
		return fmt.Errorf("cluster: spec %q has negative power coefficients", s.Name)
	case s.MapSlots <= 0 || s.ReduceSlots < 0:
		return fmt.Errorf("cluster: spec %q has invalid slot counts", s.Name)
	}
	return nil
}

// MachineID indexes the cluster's per-machine state columns. IDs are dense:
// a fleet of n machines uses exactly 0..n-1, assigned in construction order.
type MachineID int32

// TypeID indexes a cluster's interned TypeSpec table. A fleet has at most
// 256 distinct hardware types — far beyond any real heterogeneous rack.
type TypeID uint8

// Per-machine status bits in the flags column.
const (
	// flagAsleep marks a consolidated (powered-down) machine; the
	// sleepWatts column holds its standby draw.
	flagAsleep uint8 = 1 << 0
	// flagDead marks a crashed machine (fault injection): it holds no
	// slots, draws no power, and is skipped by heartbeats until repaired.
	flagDead uint8 = 1 << 1
)

// Machine is a handle to one slave node: a cluster pointer plus a dense
// index into the cluster's state columns. It is a two-word value — pass it
// by value, compare it with ==. The zero Machine is invalid (Valid reports
// false); slot occupancy is plain state mutated by the single-threaded
// simulation loop, so Machine is not safe for concurrent use.
type Machine struct {
	c  *Cluster  //eant:reset-keep handle identity; per-machine state lives in the cluster columns
	id MachineID //eant:reset-keep machine identity is fixed at construction
}

// Valid reports whether the handle refers to a machine (the zero Machine
// does not).
func (m Machine) Valid() bool { return m.c != nil }

// ID returns the machine's dense identifier in [0, cluster.Size()).
func (m Machine) ID() int { return int(m.id) }

// Spec returns the machine's interned hardware type.
func (m Machine) Spec() *TypeSpec { return m.c.specOf[m.id] }

// Type returns the machine's interned type index.
func (m Machine) Type() TypeID { return m.c.typeOf[m.id] }

// String identifies the machine for logs: "T420#3".
func (m Machine) String() string { return fmt.Sprintf("%s#%d", m.Spec().Name, m.id) }

// FreeMapSlots returns the number of unoccupied map slots; a dead machine
// has none.
func (m Machine) FreeMapSlots() int {
	if m.c.flags[m.id]&flagDead != 0 {
		return 0
	}
	return int(m.c.mapSlots[m.id] - m.c.runningMap[m.id])
}

// FreeReduceSlots returns the number of unoccupied reduce slots; a dead
// machine has none.
func (m Machine) FreeReduceSlots() int {
	if m.c.flags[m.id]&flagDead != 0 {
		return 0
	}
	return int(m.c.reduceSlots[m.id] - m.c.runningReduce[m.id])
}

// RunningMap returns the number of occupied map slots.
func (m Machine) RunningMap() int { return int(m.c.runningMap[m.id]) }

// RunningReduce returns the number of occupied reduce slots.
func (m Machine) RunningReduce() int { return int(m.c.runningReduce[m.id]) }

// Running returns the total number of occupied slots.
func (m Machine) Running() int {
	return int(m.c.runningMap[m.id]) + int(m.c.runningReduce[m.id])
}

// Utilization returns the current whole-machine CPU utilization in [0, 1]:
// the Σ per-task machine share contributed by running tasks, piecewise
// constant between task start/finish events.
func (m Machine) Utilization() float64 { return m.c.util[m.id] }

// Power returns the current draw in watts: zero while dead, the standby
// draw while asleep, the envelope P_idle + α·U otherwise.
func (m Machine) Power() float64 {
	f := m.c.flags[m.id]
	if f&flagDead != 0 {
		return 0
	}
	if f&flagAsleep != 0 {
		return m.c.sleepWatts[m.id]
	}
	return m.Spec().PowerAt(m.c.util[m.id])
}

// Asleep reports whether the machine is powered down.
func (m Machine) Asleep() bool { return m.c.flags[m.id]&flagAsleep != 0 }

// Available reports whether the machine can run tasks (not crashed).
func (m Machine) Available() bool { return m.c.flags[m.id]&flagDead == 0 }

// Fail crashes the machine: it leaves the slot pool and draws no power
// until Repair. The driver must kill (and release) every running attempt
// first; failing a machine with occupied slots is a model bug and panics.
// A sleeping machine may crash; the crash clears the sleep state (the
// eventual repair is a reboot into the normal idle envelope).
func (m Machine) Fail() {
	if m.Running() > 0 {
		panic(fmt.Sprintf("cluster: %s crashed with %d running tasks", m, m.Running()))
	}
	m.c.flags[m.id] = flagDead
	m.c.sleepWatts[m.id] = 0
}

// Repair returns a crashed machine to service. Idempotent.
func (m Machine) Repair() { m.c.flags[m.id] &^= flagDead }

// Sleep powers the machine down to the given standby draw. Sleeping with
// tasks running is a policy bug and panics.
func (m Machine) Sleep(standbyWatts float64) {
	if m.Running() > 0 {
		panic(fmt.Sprintf("cluster: %s put to sleep with %d running tasks", m, m.Running()))
	}
	if standbyWatts < 0 {
		standbyWatts = 0
	}
	m.c.flags[m.id] |= flagAsleep
	m.c.sleepWatts[m.id] = standbyWatts
}

// Wake powers the machine back up. Idempotent.
func (m Machine) Wake() { m.c.flags[m.id] &^= flagAsleep }

// AcquireMap claims a map slot and adds the task's CPU share. It returns
// false without side effects when no map slot is free.
func (m Machine) AcquireMap(cpuShare float64) bool {
	if m.c.flags[m.id]&flagDead != 0 || m.c.runningMap[m.id] >= m.c.mapSlots[m.id] {
		return false
	}
	m.c.runningMap[m.id]++
	m.addUtil(cpuShare)
	return true
}

// AcquireReduce claims a reduce slot and adds the task's CPU share. It
// returns false without side effects when no reduce slot is free.
func (m Machine) AcquireReduce(cpuShare float64) bool {
	if m.c.flags[m.id]&flagDead != 0 || m.c.runningReduce[m.id] >= m.c.reduceSlots[m.id] {
		return false
	}
	m.c.runningReduce[m.id]++
	m.addUtil(cpuShare)
	return true
}

// ReleaseMap frees a map slot and removes the task's CPU share. Releasing
// an unheld slot is a model bug and panics.
func (m Machine) ReleaseMap(cpuShare float64) {
	if m.c.runningMap[m.id] <= 0 {
		panic(fmt.Sprintf("cluster: %s released map slot it does not hold", m))
	}
	m.c.runningMap[m.id]--
	m.addUtil(-cpuShare)
}

// ReleaseReduce frees a reduce slot and removes the task's CPU share.
func (m Machine) ReleaseReduce(cpuShare float64) {
	if m.c.runningReduce[m.id] <= 0 {
		panic(fmt.Sprintf("cluster: %s released reduce slot it does not hold", m))
	}
	m.c.runningReduce[m.id]--
	m.addUtil(-cpuShare)
}

func (m Machine) addUtil(d float64) {
	u := m.c.util[m.id] + d
	// Clamp tiny float drift so long runs can't accumulate a negative
	// utilization and produce negative power.
	if u < 1e-12 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	m.c.util[m.id] = u
}
