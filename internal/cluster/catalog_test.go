package cluster

import (
	"strings"
	"testing"
)

func TestInternSameSpecPointerSharesTypeID(t *testing.T) {
	// The same spec pointer registered through two groups interns to one
	// table entry.
	c := MustNew(
		Group{Spec: SpecAtom, Count: 2},
		Group{Spec: SpecDesktop, Count: 1},
		Group{Spec: SpecAtom, Count: 3},
	)
	if got := c.NumTypes(); got != 2 {
		t.Fatalf("NumTypes() = %d, want 2", got)
	}
	atoms := c.ByType("Atom")
	if len(atoms) != 5 {
		t.Fatalf("ByType(Atom) = %d machines, want 5", len(atoms))
	}
	first := atoms[0].Type()
	for _, m := range atoms {
		if m.Type() != first {
			t.Errorf("machine %d: TypeID %d, want %d", m.ID(), m.Type(), first)
		}
		if m.Spec() != SpecAtom {
			t.Errorf("machine %d: Spec() is not the interned SpecAtom pointer", m.ID())
		}
	}
}

func TestInternRejectsDuplicateNameDistinctSpec(t *testing.T) {
	other := *SpecAtom // same name, different pointer
	_, err := New(
		Group{Spec: SpecAtom, Count: 1},
		Group{Spec: &other, Count: 1},
	)
	if err == nil {
		t.Fatal("New accepted two distinct specs sharing a name")
	}
	if !strings.Contains(err.Error(), "duplicate registration") {
		t.Errorf("error %q does not mention duplicate registration", err)
	}
}

func TestTypeIDOfLookupAndMiss(t *testing.T) {
	c := CaseStudyPair()
	id, ok := c.TypeIDOf("XeonE5")
	if !ok {
		t.Fatal("TypeIDOf(XeonE5) missed on a fleet that has Xeons")
	}
	if got := c.TypeSpecByID(id); got != SpecXeonE5 {
		t.Errorf("TypeSpecByID(%d) = %v, want SpecXeonE5", id, got)
	}
	if _, ok := c.TypeIDOf("Atom"); ok {
		t.Error("TypeIDOf(Atom) hit on a fleet with no Atoms")
	}
	if _, ok := c.TypeIDOf(""); ok {
		t.Error("TypeIDOf(\"\") hit")
	}
}

func TestTypeSpecByIDOutOfRangePanics(t *testing.T) {
	c := XeonOnly(2)
	defer func() {
		if recover() == nil {
			t.Error("TypeSpecByID past the table did not panic")
		}
	}()
	c.TypeSpecByID(TypeID(c.NumTypes()))
}

func TestCloneSharesInternedTable(t *testing.T) {
	c := Testbed()
	clone := c.Clone()
	if clone.NumTypes() != c.NumTypes() {
		t.Fatalf("clone NumTypes %d, want %d", clone.NumTypes(), c.NumTypes())
	}
	for i := 0; i < c.NumTypes(); i++ {
		id := TypeID(i)
		if clone.TypeSpecByID(id) != c.TypeSpecByID(id) {
			t.Errorf("type %d: clone interned a different spec pointer", i)
		}
	}
}

func TestTestbedTypeTable(t *testing.T) {
	c := Testbed()
	if got := c.NumTypes(); got != 6 {
		t.Fatalf("testbed NumTypes = %d, want 6", got)
	}
	for _, name := range c.TypeNames() {
		id, ok := c.TypeIDOf(name)
		if !ok {
			t.Errorf("TypeIDOf(%s) missed", name)
			continue
		}
		if got := c.TypeSpecByID(id).Name; got != name {
			t.Errorf("TypeSpecByID(TypeIDOf(%s)).Name = %s", name, got)
		}
	}
	// Every machine's typeOf entry resolves to the spec ByType groups it
	// under.
	for _, m := range c.Machines() {
		if c.TypeSpecByID(m.Type()) != m.Spec() {
			t.Errorf("machine %d: type table and Spec() disagree", m.ID())
		}
	}
}

func TestCapabilityScalesSlotsToCores(t *testing.T) {
	cap := Capability(SpecXeonE5) // 24 cores → 15 map, 7 reduce
	if cap.MapSlots != 15 || cap.ReduceSlots != 7 {
		t.Errorf("Capability(XeonE5) slots = %d+%d, want 15+7", cap.MapSlots, cap.ReduceSlots)
	}
	small := Capability(SpecAtom) // 4 cores → 2 map, 1 reduce
	if small.MapSlots != 2 || small.ReduceSlots != 1 {
		t.Errorf("Capability(Atom) slots = %d+%d, want 2+1", small.MapSlots, small.ReduceSlots)
	}
	one := Capability(&TypeSpec{Name: "tiny", Cores: 1, SpeedFactor: 1, DiskMBps: 1, NetMBps: 1, MapSlots: 1})
	if one.MapSlots != 1 || one.ReduceSlots != 1 {
		t.Errorf("Capability floor = %d+%d, want 1+1", one.MapSlots, one.ReduceSlots)
	}
	if SpecXeonE5.MapSlots != 12 {
		t.Error("Capability mutated its input spec")
	}
}
