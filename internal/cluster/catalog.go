package cluster

import "fmt"

// Machine catalog reproducing the paper's testbed (Table I and §V-B).
//
// Calibration notes. The paper never publishes the fitted (P_idle, α)
// pairs, so the values below are chosen to land the published *behaviour*:
//
//   - The i7 desktop draws little at idle but has a steep utilization
//     slope; the Xeon servers draw more at idle with a shallow slope. This
//     yields the Fig. 1a throughput/watt crossover in the low-teens
//     task/min range and the Fig. 1b idle-dominated Xeon power split.
//   - Slot counts follow §V-B literally: "Each slave node is configured
//     with four map slots and two reduce slots", regardless of core count
//     (the Atom, with 4 cores, gets 2+1). Uniform slots leave the 24-core
//     Xeons structurally underloaded — exactly Fig. 8b's 20 % T420
//     utilization under Fair — which is the capacity slack E-Ant's
//     affinity matching exploits.
//   - A Hadoop task occupies ≈ 1.6 cores while computing (the JVM runs
//     the mapper plus GC/spill threads; mapreduce.TaskThreads), so a
//     desktop running four CPU-bound maps sits near 80 % utilization
//     while the same four maps leave a 24-core Xeon near 25 %.
//   - Per-core speed factors approximate measured single-thread ratios
//     (E5-class Xeons ≈ 0.8 of the 3.4 GHz i7; the in-order Atom ≈ 0.35).
//   - Disk bandwidth is the effective per-node scan bandwidth under
//     concurrent access; with uniform slots every node lands near
//     30 MB/s per slot, so IO work is placement-neutral and the *energy*
//     axis is what differentiates the fleet.
//
// The resulting per-task energy estimates (Eq. 2) rank machines per
// application as Fig. 9a reports: Wordcount is cheapest on the
// T420-class Xeons, while Grep and Terasort are cheapest on the Atom and
// the desktops.
//
// The §I anecdote also reproduces in ratio form: a 50 GB Wordcount on the
// desktop finishes ~2.5× faster than on the Atom but burns more energy
// (paper: 63 vs 178 min, 183 vs 136 KJ).

// SpecDesktop is the Dell desktop: Core i7, 8×3.4 GHz, 16 GB (Table I).
var SpecDesktop = &TypeSpec{
	Name:        "Desktop",
	Cores:       8,
	SpeedFactor: 1.0,
	MemoryGB:    16,
	DiskMBps:    120,
	NetMBps:     117,
	IdleWatts:   40,
	AlphaWatts:  120,
	MapSlots:    4,
	ReduceSlots: 2,
}

// SpecXeonE5 is the PowerEdge of Table I: Xeon E5, 24×1.9 GHz, 32 GB.
// Hardware-identical to the fleet's T420 (§V-B lists the same core count
// and memory); the separate name keeps case-study output readable.
var SpecXeonE5 = &TypeSpec{
	Name:        "XeonE5",
	Cores:       24,
	SpeedFactor: 0.8,
	MemoryGB:    32,
	DiskMBps:    144,
	NetMBps:     117,
	IdleWatts:   90,
	AlphaWatts:  100,
	MapSlots:    12,
	ReduceSlots: 6,
}

// SpecT420 is the PowerEdge T420: 24-core Xeon, 32 GB (§V-B).
var SpecT420 = &TypeSpec{
	Name:        "T420",
	Cores:       24,
	SpeedFactor: 0.8,
	MemoryGB:    32,
	DiskMBps:    144,
	NetMBps:     117,
	IdleWatts:   90,
	AlphaWatts:  100,
	MapSlots:    12,
	ReduceSlots: 6,
}

// SpecT110 is the PowerEdge T110: 8-core Xeon, 16 GB.
var SpecT110 = &TypeSpec{
	Name:        "T110",
	Cores:       8,
	SpeedFactor: 0.8,
	MemoryGB:    16,
	DiskMBps:    120,
	NetMBps:     117,
	IdleWatts:   45,
	AlphaWatts:  70,
	MapSlots:    4,
	ReduceSlots: 2,
}

// SpecT320 is the PowerEdge T320: 12-core Xeon, 24 GB.
var SpecT320 = &TypeSpec{
	Name:        "T320",
	Cores:       12,
	SpeedFactor: 0.8,
	MemoryGB:    24,
	DiskMBps:    144,
	NetMBps:     117,
	IdleWatts:   60,
	AlphaWatts:  75,
	MapSlots:    6,
	ReduceSlots: 3,
}

// SpecT620 is the PowerEdge T620: 24-core Xeon, 16 GB.
var SpecT620 = &TypeSpec{
	Name:        "T620",
	Cores:       24,
	SpeedFactor: 0.85,
	MemoryGB:    16,
	DiskMBps:    144,
	NetMBps:     117,
	IdleWatts:   100,
	AlphaWatts:  110,
	MapSlots:    12,
	ReduceSlots: 6,
}

// SpecAtom is the Atom micro-server: 4 low-power cores, 8 GB. Two map
// slots: four 1.6-thread tasks would oversubscribe its 4 cores.
var SpecAtom = &TypeSpec{
	Name:        "Atom",
	Cores:       4,
	SpeedFactor: 0.35,
	MemoryGB:    8,
	DiskMBps:    100,
	NetMBps:     117,
	IdleWatts:   10,
	AlphaWatts:  12,
	MapSlots:    2,
	ReduceSlots: 1,
}

// AllSpecs lists every catalogued machine type.
func AllSpecs() []*TypeSpec {
	return []*TypeSpec{
		SpecDesktop, SpecXeonE5, SpecT420, SpecT110, SpecT320, SpecT620, SpecAtom,
	}
}

// Capability returns a copy of spec with slot counts scaled to cores (one
// slot per ~1.6-thread task). The §II motivation experiments measure raw
// machine capability — tasks submitted to the box, not to a slot-capped
// TaskTracker — so Fig. 1's open-loop studies use this variant while the
// Hadoop evaluation keeps the §V-B uniform slots.
func Capability(spec *TypeSpec) *TypeSpec {
	c := *spec
	c.MapSlots = int(float64(spec.Cores) / 1.6)
	if c.MapSlots < 1 {
		c.MapSlots = 1
	}
	c.ReduceSlots = c.MapSlots / 2
	if c.ReduceSlots < 1 {
		c.ReduceSlots = 1
	}
	return &c
}

// internSpec registers spec in the cluster's type table and returns its
// TypeID. Interning is by pointer: re-registering the same spec yields the
// same TypeID, while a distinct spec that reuses an existing name is a
// configuration error (names must identify types uniquely — ByType, probe
// samples, and the per-type pheromone trails are all keyed by name).
func (c *Cluster) internSpec(spec *TypeSpec) (TypeID, error) {
	for i, s := range c.specs {
		if s == spec {
			return TypeID(i), nil
		}
		if s.Name == spec.Name {
			return 0, fmt.Errorf("cluster: duplicate registration of type %q with a different spec", spec.Name)
		}
	}
	if len(c.specs) > int(^TypeID(0)) {
		return 0, fmt.Errorf("cluster: more than %d machine types", int(^TypeID(0))+1)
	}
	c.specs = append(c.specs, spec)
	return TypeID(len(c.specs) - 1), nil
}

// NumTypes returns the number of distinct machine types in the fleet.
func (c *Cluster) NumTypes() int { return len(c.specs) }

// TypeSpecByID returns the interned spec for id, panicking on an id that
// was never interned.
func (c *Cluster) TypeSpecByID(id TypeID) *TypeSpec {
	if int(id) >= len(c.specs) {
		panic(fmt.Sprintf("cluster: no type %d in table of %d", id, len(c.specs)))
	}
	return c.specs[id]
}

// TypeIDOf looks up the interned id for a type name; ok is false when the
// fleet has no machines of that type.
func (c *Cluster) TypeIDOf(name string) (TypeID, bool) {
	for i, s := range c.specs {
		if s.Name == name {
			return TypeID(i), true
		}
	}
	return 0, false
}

// Testbed returns the paper's §V-B slave fleet: 8 Dell desktops, 3 T110,
// 2 T420, 1 T320, 1 T620, 1 Atom (the master rides on a desktop and is
// not simulated).
func Testbed() *Cluster {
	return MustNew(
		Group{Spec: SpecDesktop, Count: 8},
		Group{Spec: SpecT110, Count: 3},
		Group{Spec: SpecT420, Count: 2},
		Group{Spec: SpecT320, Count: 1},
		Group{Spec: SpecT620, Count: 1},
		Group{Spec: SpecAtom, Count: 1},
	)
}

// CaseStudyPair returns the Table I two-machine cluster used by the §II
// motivation experiments: one i7 desktop and one Xeon E5 PowerEdge.
func CaseStudyPair() *Cluster {
	return MustNew(
		Group{Spec: SpecDesktop, Count: 1},
		Group{Spec: SpecXeonE5, Count: 1},
	)
}

// XeonOnly returns a homogeneous Xeon E5 cluster of n machines (the
// Fig. 1c heterogeneous-workload study).
func XeonOnly(n int) *Cluster {
	return MustNew(Group{Spec: SpecXeonE5, Count: n})
}
