package experiments

import (
	"fmt"
	"time"

	"eant/internal/cluster"
	"eant/internal/mapreduce"
	"eant/internal/metrics"
	"eant/internal/noise"
	"eant/internal/parallel"
	"eant/internal/tabwrite"
	"eant/internal/workload"
)

// Fig4Row is the energy-model accuracy of one (machine, application)
// pair: the recorded (true marginal) energy vs the Eq. 2 estimate summed
// over the job's tasks, with the per-task NRMSE.
type Fig4Row struct {
	Machine     string
	App         workload.App
	Tasks       int
	RecordedKJ  float64
	EstimatedKJ float64
	NRMSE       float64
}

// Fig4Result holds the model-validation grid. The paper reports NRMSE of
// 7.9 % (Wordcount), 10.5 % (Terasort) and 11.6 % (Grep).
type Fig4Result struct{ Rows []Fig4Row }

// Fig4 reproduces the energy-model validation: run each benchmark on a
// desktop and on a Xeon E5 server with system noise active, and compare
// per-task recorded energy against the Eq. 2 estimates the TaskTrackers
// report.
func Fig4() (*Fig4Result, error) {
	specs := []*cluster.TypeSpec{cluster.SpecDesktop, cluster.SpecXeonE5}
	apps := workload.Apps()
	rows, err := parallel.Map(len(specs)*len(apps), 0, func(i int) (Fig4Row, error) {
		spec := specs[i/len(apps)]
		app := apps[i%len(apps)]
		c := cluster.MustNew(cluster.Group{Spec: spec, Count: 1})
		cfg := defaultDriverConfig()
		cfg.Noise = noise.Default()
		cfg.KeepTaskRecords = true
		cfg.ForcedLocalFraction = 1
		// ~3 GB input: enough tasks for a stable error estimate.
		jobs := []workload.JobSpec{workload.NewJobSpec(0, app, 3072, 2, 0)}
		stats, err := Campaign{
			Cluster: c, Sched: SchedFIFO, Jobs: jobs, Config: cfg,
		}.Run()
		if err != nil {
			return Fig4Row{}, fmt.Errorf("fig4: %s/%v: %w", spec.Name, app, err)
		}
		var rec, est []float64
		var recSum, estSum float64
		for _, t := range stats.Tasks {
			rec = append(rec, t.TrueJoules)
			est = append(est, t.EstJoules)
			recSum += t.TrueJoules
			estSum += t.EstJoules
		}
		nrmse, err := metrics.NRMSE(rec, est)
		if err != nil {
			return Fig4Row{}, fmt.Errorf("fig4: %w", err)
		}
		return Fig4Row{
			Machine:     spec.Name,
			App:         app,
			Tasks:       len(rec),
			RecordedKJ:  recSum / 1000,
			EstimatedKJ: estSum / 1000,
			NRMSE:       nrmse,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Rows: rows}, nil
}

// MaxNRMSE returns the worst error across the grid.
func (r *Fig4Result) MaxNRMSE() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if row.NRMSE > worst {
			worst = row.NRMSE
		}
	}
	return worst
}

// Table renders the Fig. 4 validation grid.
func (r *Fig4Result) Table() *tabwrite.Table {
	t := tabwrite.New("Fig 4 — energy model accuracy (paper NRMSE: WC 7.9%, TS 10.5%, Grep 11.6%)",
		"machine", "app", "tasks", "recorded KJ", "estimated KJ", "NRMSE %")
	for _, row := range r.Rows {
		t.AddRow(row.Machine, row.App.String(), row.Tasks,
			tabwrite.Cell(row.RecordedKJ, 1), tabwrite.Cell(row.EstimatedKJ, 1),
			tabwrite.Cell(100*row.NRMSE, 1))
	}
	return t
}

// Fig7Point is one completed task's estimated energy, in completion order.
type Fig7Point struct {
	TaskID    int
	EstJoules float64
}

// Fig7Result is the per-task energy scatter under system noise.
type Fig7Result struct {
	Points []Fig7Point
	Median float64
	Max    float64
}

// Fig7 reproduces the system-noise scatter: per-task energy estimates of a
// Wordcount job on one Xeon server (the paper uses a T420), noise active.
// The paper's plot shows a ~1 KJ median with transient spikes near 3 KJ.
func Fig7() (*Fig7Result, error) {
	c := cluster.MustNew(cluster.Group{Spec: cluster.SpecT420, Count: 1})
	cfg := defaultDriverConfig()
	cfg.Noise = noise.Default()
	cfg.KeepTaskRecords = true
	cfg.ForcedLocalFraction = 1
	// ~200 map tasks, matching the paper's task-ID axis.
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 200*workload.BlockMB, 2, 0)}
	stats, err := Campaign{Cluster: c, Sched: SchedFIFO, Jobs: jobs, Config: cfg}.Run()
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	res := &Fig7Result{}
	var vals []float64
	for i, t := range stats.Tasks {
		if t.Kind != mapreduce.MapTask {
			continue
		}
		res.Points = append(res.Points, Fig7Point{TaskID: i, EstJoules: t.EstJoules})
		vals = append(vals, t.EstJoules)
		if t.EstJoules > res.Max {
			res.Max = t.EstJoules
		}
	}
	res.Median = median(vals)
	return res, nil
}

// SpikeRatio returns max/median — how far stragglers push estimates away
// from the bulk (≈ 3 in the paper's plot).
func (r *Fig7Result) SpikeRatio() float64 {
	if r.Median == 0 {
		return 0
	}
	return r.Max / r.Median
}

// Table renders summary statistics plus the first points of the scatter.
func (r *Fig7Result) Table() *tabwrite.Table {
	t := tabwrite.New(
		fmt.Sprintf("Fig 7 — per-task energy under system noise (median %.0f J, max %.0f J, spike ratio %.1f×; paper ≈ 3×)",
			r.Median, r.Max, r.SpikeRatio()),
		"task", "estimated J")
	for _, p := range r.Points {
		t.AddRow(p.TaskID, tabwrite.Cell(p.EstJoules, 0))
	}
	return t
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

var _ = time.Second
