package experiments

import (
	"fmt"
	"time"

	"eant/internal/cluster"
	"eant/internal/power"
	"eant/internal/tabwrite"
	"eant/internal/workload"
)

// TableI renders the machine catalog (the paper's Table I plus the §V-B
// fleet types), including the calibrated power envelopes.
func TableI() *tabwrite.Table {
	t := tabwrite.New("Table I — machine types",
		"model", "cores", "speed", "mem GB", "disk MB/s", "idle W", "alpha W", "map+reduce slots")
	for _, s := range cluster.AllSpecs() {
		t.AddRow(s.Name, s.Cores, s.SpeedFactor, s.MemoryGB, s.DiskMBps,
			s.IdleWatts, s.AlphaWatts, fmt.Sprintf("%d+%d", s.MapSlots, s.ReduceSlots))
	}
	return t
}

// TableII renders the construction graph of the task-assignment problem
// (the paper's Table II): the Eq. 2 energy estimate E(T(m)) of one
// block-sized task of each application on each machine type — the values
// the ants' paths are scored with.
func TableII() *tabwrite.Table {
	t := tabwrite.New("Table II — construction graph: Eq. 2 energy estimate per 64 MB map task (J)",
		"machine \\ task", "Wordcount", "Grep", "Terasort")
	for _, spec := range cluster.AllSpecs() {
		if spec == cluster.SpecXeonE5 {
			continue // hardware-identical to T420
		}
		row := []any{spec.Name}
		for _, app := range workload.Apps() {
			prof := workload.ProfileOf(app)
			cpuWall := prof.MapCPUPerMB * workload.BlockMB / (spec.SpeedFactor * 1.6)
			ioSecs := prof.MapIOPerMB * workload.BlockMB / (spec.DiskMBps / float64(spec.MapSlots))
			dur := cpuWall + ioSecs
			util := 1.6 * (cpuWall / dur) / float64(spec.Cores)
			joules := power.EstimateTaskJoulesUniform(spec, util, time.Duration(dur*float64(time.Second)))
			row = append(row, tabwrite.Cell(joules, 0))
		}
		t.AddRow(row...)
	}
	return t
}

// TableIII renders the MSD workload characteristics (the paper's Table
// III) alongside a generated instance's realized statistics.
func TableIII(jobs int, seed int64) (*tabwrite.Table, error) {
	generated, err := workload.GenerateMSD(workload.MSDConfig{
		Jobs: jobs, Scale: ScaleDown, MeanInterarrival: 30 * time.Second,
	}, newRNG(seed))
	if err != nil {
		return nil, err
	}
	counts := workload.ClassCounts(generated)
	type agg struct {
		minIn, maxIn   float64
		minMap, maxMap int
		minRed, maxRed int
	}
	stats := map[workload.SizeClass]*agg{}
	for _, j := range generated {
		a := stats[j.Class]
		if a == nil {
			a = &agg{minIn: j.InputMB, maxIn: j.InputMB, minMap: j.NumMaps, maxMap: j.NumMaps, minRed: j.NumReduces, maxRed: j.NumReduces}
			stats[j.Class] = a
			continue
		}
		if j.InputMB < a.minIn {
			a.minIn = j.InputMB
		}
		if j.InputMB > a.maxIn {
			a.maxIn = j.InputMB
		}
		if j.NumMaps < a.minMap {
			a.minMap = j.NumMaps
		}
		if j.NumMaps > a.maxMap {
			a.maxMap = j.NumMaps
		}
		if j.NumReduces < a.minRed {
			a.minRed = j.NumReduces
		}
		if j.NumReduces > a.maxRed {
			a.maxRed = j.NumReduces
		}
	}
	t := tabwrite.New(
		fmt.Sprintf("Table III — MSD workload (%d jobs at 1/%d scale; paper: S 40%% 1-100GB, M 20%% 0.1-1TB, L 10%% 1-10TB)", jobs, ScaleDown),
		"class", "jobs", "input range MB", "#maps", "#reduces")
	for _, class := range []workload.SizeClass{workload.Small, workload.Medium, workload.Large} {
		a := stats[class]
		if a == nil {
			continue
		}
		t.AddRow(class.String(), counts[class],
			fmt.Sprintf("%.0f-%.0f", a.minIn, a.maxIn),
			fmt.Sprintf("%d-%d", a.minMap, a.maxMap),
			fmt.Sprintf("%d-%d", a.minRed, a.maxRed))
	}
	return t, nil
}
