package experiments

import (
	"fmt"
	"time"

	"eant/internal/cluster"
	"eant/internal/mapreduce"
	"eant/internal/metrics"
	"eant/internal/noise"
	"eant/internal/tabwrite"
	"eant/internal/workload"
)

// EfficiencyPoint is one (machine or app, arrival rate) sample of the
// motivation study: throughput per watt plus its power decomposition.
type EfficiencyPoint struct {
	Series      string  // machine type (1a) or application (1c)
	RatePerMin  float64 // task arrival rate
	TasksDone   int
	Elapsed     time.Duration
	Joules      float64
	IdleJoules  float64
	TputPerWatt float64
}

// Fig1aResult holds the heterogeneous-hardware efficiency curves.
type Fig1aResult struct {
	Points []EfficiencyPoint
	// Crossover is the lowest sampled rate at which the Xeon's
	// efficiency meets or exceeds the desktop's (the paper reports
	// ≈ 12 task/min).
	Crossover float64
}

// runOpenLoop drives one machine type with single-block map tasks of app
// at the given rate and measures its energy efficiency.
func runOpenLoop(spec *cluster.TypeSpec, app workload.App, perMinute float64, span time.Duration) (EfficiencyPoint, error) {
	// §II measures machine capability, not a slot-capped TaskTracker:
	// concurrency scales with cores.
	cap := cluster.Capability(spec)
	c := cluster.MustNew(cluster.Group{Spec: cap, Count: 1})
	cfg := defaultDriverConfig()
	cfg.Noise = noise.Off()
	// The §II study measures machine capability; input locality is not
	// the variable, so every read is local.
	cfg.ForcedLocalFraction = 1

	jobs := openLoopTasks(app, perMinute, span)
	stats, err := Campaign{
		Cluster: c, Sched: SchedFIFO, Jobs: jobs, Config: cfg,
		// Cut off shortly after the arrival span: under overload the
		// backlog is unbounded and the steady-state rates are what the
		// paper measures.
		Horizon: span + 30*time.Second,
	}.Run()
	if err != nil {
		return EfficiencyPoint{}, err
	}
	p := EfficiencyPoint{
		Series:      cap.Name,
		RatePerMin:  perMinute,
		TasksDone:   stats.TasksDone(),
		Elapsed:     stats.Horizon,
		Joules:      stats.TotalJoules,
		IdleJoules:  spec.IdleWatts * stats.Horizon.Seconds(),
		TputPerWatt: metrics.ThroughputPerWatt(stats.TasksDone(), stats.Horizon, stats.TotalJoules),
	}
	return p, nil
}

// Fig1a reproduces the heterogeneous-platform study: Wordcount tasks at
// 5–25 task/min on the Core i7 desktop vs the Xeon E5 server.
func Fig1a() (*Fig1aResult, error) {
	rates := []float64{5, 8, 10, 12, 13, 14, 15, 20, 25}
	const span = 30 * time.Minute
	res := &Fig1aResult{}
	byRate := make(map[float64]map[string]float64)
	for _, spec := range []*cluster.TypeSpec{cluster.SpecDesktop, cluster.SpecXeonE5} {
		for _, rate := range rates {
			p, err := runOpenLoop(spec, workload.Wordcount, rate, span)
			if err != nil {
				return nil, fmt.Errorf("fig1a: %w", err)
			}
			res.Points = append(res.Points, p)
			if byRate[rate] == nil {
				byRate[rate] = make(map[string]float64)
			}
			byRate[rate][spec.Name] = p.TputPerWatt
		}
	}
	for _, rate := range rates {
		m := byRate[rate]
		if m["XeonE5"] >= m["Desktop"] {
			res.Crossover = rate
			break
		}
	}
	return res, nil
}

// Table renders the Fig. 1a series.
func (r *Fig1aResult) Table() *tabwrite.Table {
	t := tabwrite.New(
		fmt.Sprintf("Fig 1a — throughput/watt vs arrival rate (crossover ≈ %.0f task/min; paper: 12)", r.Crossover),
		"machine", "rate/min", "tasks", "tput/watt (task/s/W)")
	for _, p := range r.Points {
		t.AddRow(p.Series, p.RatePerMin, p.TasksDone, fmt.Sprintf("%.5f", p.TputPerWatt))
	}
	return t
}

// Fig1bRow decomposes one machine's power under light or heavy load into
// idle and workload-used parts (the paper's stacked bars).
type Fig1bRow struct {
	Machine       string
	Load          string // "light" (10/min) or "heavy" (20/min)
	IdleWatts     float64
	WorkloadWatts float64
}

// Fig1bResult holds the power-decomposition bars.
type Fig1bResult struct{ Rows []Fig1bRow }

// Fig1b reproduces the power-consumption breakdown at 10 and 20 task/min.
func Fig1b() (*Fig1bResult, error) {
	res := &Fig1bResult{}
	const span = 30 * time.Minute
	for _, load := range []struct {
		name string
		rate float64
	}{{"light", 10}, {"heavy", 20}} {
		for _, spec := range []*cluster.TypeSpec{cluster.SpecDesktop, cluster.SpecXeonE5} {
			p, err := runOpenLoop(spec, workload.Wordcount, load.rate, span)
			if err != nil {
				return nil, fmt.Errorf("fig1b: %w", err)
			}
			secs := p.Elapsed.Seconds()
			res.Rows = append(res.Rows, Fig1bRow{
				Machine:       spec.Name,
				Load:          load.name,
				IdleWatts:     p.IdleJoules / secs,
				WorkloadWatts: (p.Joules - p.IdleJoules) / secs,
			})
		}
	}
	return res, nil
}

// Table renders the Fig. 1b bars.
func (r *Fig1bResult) Table() *tabwrite.Table {
	t := tabwrite.New("Fig 1b — power decomposition (idle vs workload)",
		"machine", "load", "idle W", "workload W")
	for _, row := range r.Rows {
		t.AddRow(row.Machine, row.Load, tabwrite.Cell(row.IdleWatts, 1), tabwrite.Cell(row.WorkloadWatts, 1))
	}
	return t
}

// Fig1cResult holds the heterogeneous-workload efficiency curves on the
// Xeon server, and each application's peak-efficiency arrival rate.
type Fig1cResult struct {
	Points   []EfficiencyPoint
	PeakRate map[workload.App]float64
}

// Fig1c reproduces the heterogeneous-workload study: Wordcount, Terasort
// and Grep at 10–50 task/min on Xeon E5 hardware. The paper's peaks land
// at 20, 35 and 25 task/min respectively.
func Fig1c() (*Fig1cResult, error) {
	rates := []float64{10, 15, 20, 25, 30, 35, 40, 45, 50}
	const span = 20 * time.Minute
	res := &Fig1cResult{PeakRate: make(map[workload.App]float64)}
	for _, app := range workload.Apps() {
		var series []EfficiencyPoint
		best := 0.0
		for _, rate := range rates {
			p, err := runOpenLoop(cluster.SpecXeonE5, app, rate, span)
			if err != nil {
				return nil, fmt.Errorf("fig1c: %w", err)
			}
			p.Series = app.String()
			series = append(series, p)
			if p.TputPerWatt > best {
				best = p.TputPerWatt
			}
		}
		// The "peak" rate is the knee: the lowest rate reaching 98% of
		// the series maximum (the curves flatten at machine saturation).
		for _, p := range series {
			if p.TputPerWatt >= 0.98*best {
				res.PeakRate[app] = p.RatePerMin
				break
			}
		}
		res.Points = append(res.Points, series...)
	}
	return res, nil
}

// Table renders the Fig. 1c series.
func (r *Fig1cResult) Table() *tabwrite.Table {
	t := tabwrite.New(
		fmt.Sprintf("Fig 1c — per-app efficiency on Xeon (peaks: WC %.0f, Grep %.0f, TS %.0f task/min; paper: 20/25/35)",
			r.PeakRate[workload.Wordcount], r.PeakRate[workload.Grep], r.PeakRate[workload.Terasort]),
		"app", "rate/min", "tasks", "tput/watt (task/s/W)")
	for _, p := range r.Points {
		t.AddRow(p.Series, p.RatePerMin, p.TasksDone, fmt.Sprintf("%.5f", p.TputPerWatt))
	}
	return t
}

// Fig1dRow is one application's normalized job-completion-time breakdown.
type Fig1dRow struct {
	App     workload.App
	Map     float64
	Shuffle float64
	Reduce  float64
}

// Fig1dResult holds the phase breakdowns.
type Fig1dResult struct{ Rows []Fig1dRow }

// Fig1d reproduces the resource-preference breakdown: each application's
// job completion time split into map, shuffle and reduce phases,
// normalized to sum to 1. Wordcount is map-dominated; Grep and Terasort
// are shuffle/reduce-heavy.
func Fig1d() (*Fig1dResult, error) {
	res := &Fig1dResult{}
	for _, app := range workload.Apps() {
		cfg := defaultDriverConfig()
		cfg.Noise = noise.Off()
		// 300 GB in the paper; ScaleDown shrinks it to ~4.7 GB.
		inputMB := 300.0 * 1024 / ScaleDown
		jobs := []workload.JobSpec{workload.NewJobSpec(0, app, inputMB, 8, 0)}
		stats, err := Campaign{
			Cluster: cluster.Testbed(), Sched: SchedFIFO, Jobs: jobs, Config: cfg,
		}.Run()
		if err != nil {
			return nil, fmt.Errorf("fig1d: %w", err)
		}
		r := stats.Jobs[0]
		total := r.MapSeconds() + r.ShuffleSeconds() + r.ReduceSeconds()
		if total <= 0 {
			return nil, fmt.Errorf("fig1d: %v job has zero phase time", app)
		}
		res.Rows = append(res.Rows, Fig1dRow{
			App:     app,
			Map:     r.MapSeconds() / total,
			Shuffle: r.ShuffleSeconds() / total,
			Reduce:  r.ReduceSeconds() / total,
		})
	}
	return res, nil
}

// MapDominated reports whether app's breakdown is map-heavy (>50%).
func (r *Fig1dResult) MapDominated(app workload.App) bool {
	for _, row := range r.Rows {
		if row.App == app {
			return row.Map > 0.5
		}
	}
	return false
}

// Table renders the Fig. 1d breakdown.
func (r *Fig1dResult) Table() *tabwrite.Table {
	t := tabwrite.New("Fig 1d — normalized JCT breakdown by phase",
		"app", "map", "shuffle", "reduce")
	for _, row := range r.Rows {
		t.AddRow(row.App.String(), tabwrite.Cell(row.Map, 3), tabwrite.Cell(row.Shuffle, 3), tabwrite.Cell(row.Reduce, 3))
	}
	return t
}

var _ = mapreduce.MapTask // keep import while harnesses grow
