package experiments

import (
	"fmt"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/mapreduce"
	"eant/internal/metrics"
	"eant/internal/parallel"
	"eant/internal/tabwrite"
	"eant/internal/workload"
)

// TrailTolerance is the stability criterion for the search-speed studies:
// a colony's assignment policy has converged once its (mean-1 normalized)
// pheromone row changes by less than this mean absolute amount per
// machine between consecutive control intervals. It is the trail-level
// equivalent of the paper's "80 % of tasks revisit the same machines".
const TrailTolerance = 0.08

// convergenceInterval is the control interval for the search-speed
// studies — shorter than the default so jobs span many policy updates.
const convergenceInterval = 20 * time.Second

// Fig11Row is one homogeneity level and the measured convergence time.
type Fig11Row struct {
	Count       int // homogeneous machines (11a) or jobs (11b)
	Convergence time.Duration
	Converged   int // how many seeds produced a converged probe
}

// Fig11Result holds a search-speed series.
type Fig11Result struct {
	Label string
	Rows  []Fig11Row
}

// trailTimes splits a snapshot history into aligned time/row slices.
func trailTimes(history []core.TrailSnapshot) ([]time.Duration, [][]float64) {
	times := make([]time.Duration, len(history))
	rows := make([][]float64, len(history))
	for i, s := range history {
		times[i] = s.At
		rows[i] = s.Row
	}
	return times, rows
}

// Fig11a reproduces the machine-heterogeneity impact on search speed: a
// single long Wordcount job on clusters with 1, 2, 3 and 8 desktops
// (plus a fixed heterogeneous background), measuring the time until the
// job's map-assignment policy stabilizes. More homogeneous machines give
// the machine-level exchange more samples per interval, so the trails
// settle sooner despite system noise.
func Fig11a() (*Fig11Result, error) {
	res := &Fig11Result{Label: "homogeneous machines"}
	levels := []int{1, 2, 3, 8}
	const seeds = 5
	// Each (level, seed) cell builds its own cluster and scheduler and runs
	// independently; aggregation below preserves the sequential seed order.
	cells, err := parallel.Map(len(levels)*seeds, 0, func(i int) (convProbe, error) {
		k := levels[i/seeds]
		seed := int64(i%seeds) + 1
		c := cluster.MustNew(
			cluster.Group{Spec: cluster.SpecDesktop, Count: k},
			cluster.Group{Spec: cluster.SpecT420, Count: 2},
			cluster.Group{Spec: cluster.SpecT110, Count: 2},
			cluster.Group{Spec: cluster.SpecAtom, Count: 1},
		)
		// The homogeneous group under study is the desktops (IDs 0..k-1 by
		// construction order); stability is measured on their trail
		// entries — the question is how fast the policy for *that* group
		// settles as the machine-level exchange gains samples.
		group := make([]int, k)
		for g := range group {
			group[g] = g
		}
		eant := core.MustNewEAnt(core.DefaultParams())
		eant.TrackTrails()
		cfg := defaultDriverConfig()
		cfg.Seed = seed
		cfg.ControlInterval = convergenceInterval
		// 800 map tasks: many waves across every fleet size.
		jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 800*workload.BlockMB, 8, 0)}
		if _, err := (Campaign{Cluster: c, Instance: eant, Jobs: jobs, Config: cfg}).Run(); err != nil {
			return convProbe{}, fmt.Errorf("fig11a: k=%d: %w", k, err)
		}
		key := core.ColonyKey{JobID: 0, App: workload.Wordcount, Kind: mapreduce.MapTask}
		times, rows := trailTimes(eant.TrailHistory(key))
		var p convProbe
		p.At, p.OK = metrics.TrailConvergenceOn(times, rows, group, TrailTolerance)
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	for li, k := range levels {
		res.Rows = append(res.Rows, convRow(k, cells[li*seeds:(li+1)*seeds]))
	}
	return res, nil
}

// convProbe is one seed's convergence measurement.
type convProbe struct {
	At time.Duration
	OK bool
}

// convRow averages the converged probes of one homogeneity level.
func convRow(count int, probes []convProbe) Fig11Row {
	var sum time.Duration
	converged := 0
	for _, p := range probes {
		if p.OK {
			sum += p.At
			converged++
		}
	}
	row := Fig11Row{Count: count, Converged: converged}
	if converged > 0 {
		row.Convergence = sum / time.Duration(converged)
	}
	return row
}

// Fig11b reproduces the workload-homogeneity impact on search speed: n
// identical Grep jobs competing inside a fixed heterogeneous background
// (Wordcount and Terasort jobs). The job-level exchange pools the Grep
// colonies' experiences, and as n grows the group's share of the
// cluster's completed-task feedback grows with it, so the pooled trail
// settles sooner.
func Fig11b() (*Fig11Result, error) {
	res := &Fig11Result{Label: "homogeneous jobs"}
	levels := []int{10, 20, 30, 40}
	const seeds = 5
	cells, err := parallel.Map(len(levels)*seeds, 0, func(i int) (convProbe, error) {
		n := levels[i/seeds]
		seed := int64(i%seeds) + 1
		eant := core.MustNewEAnt(core.DefaultParams())
		eant.TrackTrails()
		cfg := defaultDriverConfig()
		cfg.Seed = seed
		cfg.ControlInterval = convergenceInterval
		// n Grep probes (IDs 0..n-1) against a fixed 30-job mixed
		// background that keeps the cluster contended.
		jobs := workload.Batch(workload.Grep, n, 50*workload.BlockMB, 2, 0)
		for b := 0; b < 30; b++ {
			app := workload.Wordcount
			if b%2 == 1 {
				app = workload.Terasort
			}
			jobs = append(jobs, workload.NewJobSpec(n+b, app, 50*workload.BlockMB, 2, 0))
		}
		if _, err := (Campaign{Cluster: cluster.Testbed(), Instance: eant, Jobs: jobs, Config: cfg}).Run(); err != nil {
			return convProbe{}, fmt.Errorf("fig11b: n=%d: %w", n, err)
		}
		// Probe job 0's map colony; with job-level exchange its trail
		// pools all n Grep jobs' experiences.
		key := core.ColonyKey{JobID: 0, App: workload.Grep, Kind: mapreduce.MapTask}
		times, rows := trailTimes(eant.TrailHistory(key))
		var p convProbe
		p.At, p.OK = metrics.TrailConvergence(times, rows, TrailTolerance)
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	for li, n := range levels {
		res.Rows = append(res.Rows, convRow(n, cells[li*seeds:(li+1)*seeds]))
	}
	return res, nil
}

// Decreasing reports whether convergence time improves from the first to
// the last homogeneity level (the figures' claim).
func (r *Fig11Result) Decreasing() bool {
	if len(r.Rows) < 2 {
		return false
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.Converged == 0 || last.Converged == 0 {
		return false
	}
	return last.Convergence <= first.Convergence
}

// Table renders the series.
func (r *Fig11Result) Table() *tabwrite.Table {
	t := tabwrite.New(
		fmt.Sprintf("Fig 11 — convergence time vs number of %s", r.Label),
		fmt.Sprintf("# %s", r.Label), "convergence", "runs converged")
	for _, row := range r.Rows {
		conv := "-"
		if row.Converged > 0 {
			conv = row.Convergence.Round(time.Second).String()
		}
		t.AddRow(row.Count, conv, row.Converged)
	}
	return t
}
