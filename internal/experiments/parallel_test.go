package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"eant/internal/parallel"
	"eant/internal/tabwrite"
)

// withWorkers runs fn under a process-wide worker cap, restoring the
// default afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	parallel.SetDefaultWorkers(n)
	defer parallel.SetDefaultWorkers(0)
	fn()
}

func render(t *testing.T, tables ...*tabwrite.Table) string {
	t.Helper()
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.Write(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// goldenFig8Config is a reduced Fig. 8 setup: enough cells (4 schedulers
// × 2 seeds) to exercise the pool with a meaningful fan-out while keeping
// the double run fast.
func goldenFig8Config() Fig8Config {
	return Fig8Config{Jobs: 20, Seeds: 2, MeanInterarrival: 30 * time.Second}
}

// TestFig8ParallelMatchesSequential is the golden equivalence test: the
// same sweep run fully sequentially (workers = 1) and on a many-worker
// pool must produce bit-identical results — same structs under
// reflect.DeepEqual and byte-identical rendered tables.
func TestFig8ParallelMatchesSequential(t *testing.T) {
	var seq, par *Fig8Result
	withWorkers(t, 1, func() {
		r, err := Fig8(goldenFig8Config())
		if err != nil {
			t.Fatal(err)
		}
		seq = r
	})
	withWorkers(t, 8, func() {
		r, err := Fig8(goldenFig8Config())
		if err != nil {
			t.Fatal(err)
		}
		par = r
	})
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel Fig8 result differs from sequential run")
	}
	seqText := render(t, seq.TableA(), seq.TableB(), seq.TableC())
	parText := render(t, par.TableA(), par.TableB(), par.TableC())
	if seqText != parText {
		t.Errorf("rendered tables differ:\n--- sequential ---\n%s--- parallel ---\n%s", seqText, parText)
	}
}

// TestFig11ParallelMatchesSequential repeats the golden check on the
// Fig. 11b convergence sweep, whose per-cell result flows through trail
// snapshots and the convergence detector rather than plain energy sums.
func TestFig11ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("double Fig11b run in -short mode")
	}
	var seq, par *Fig11Result
	withWorkers(t, 1, func() {
		r, err := Fig11b()
		if err != nil {
			t.Fatal(err)
		}
		seq = r
	})
	withWorkers(t, 8, func() {
		r, err := Fig11b()
		if err != nil {
			t.Fatal(err)
		}
		par = r
	})
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel Fig11b result differs from sequential run:\nseq: %+v\npar: %+v", seq, par)
	}
	if got, want := render(t, par.Table()), render(t, seq.Table()); got != want {
		t.Errorf("rendered tables differ:\n--- sequential ---\n%s--- parallel ---\n%s", want, got)
	}
}

// TestSweepsConcurrently drives several experiment sweeps at once on a
// many-worker pool. Run with -race this is the proof that independent
// simulation cells share no mutable state; each sweep's own output is
// additionally sanity-checked.
func TestSweepsConcurrently(t *testing.T) {
	withWorkers(t, 4, func() {
		type sweep struct {
			name string
			run  func() error
		}
		sweeps := []sweep{
			{"fig4", func() error {
				r, err := Fig4()
				if err == nil && len(r.Rows) != 6 {
					t.Errorf("fig4: %d rows, want 6", len(r.Rows))
				}
				return err
			}},
			{"fig8", func() error {
				r, err := Fig8(goldenFig8Config())
				if err == nil && len(r.Results) != 4 {
					t.Errorf("fig8: %d results, want 4", len(r.Results))
				}
				return err
			}},
			{"consolidation", func() error {
				r, err := Consolidation()
				if err == nil && len(r.Rows) != 4 {
					t.Errorf("consolidation: %d rows, want 4", len(r.Rows))
				}
				return err
			}},
			{"failures", func() error {
				cfg := DefaultFailureSweepConfig()
				cfg.Jobs = 8
				cfg.MTBFs = cfg.MTBFs[:2]
				cfg.Schedulers = cfg.Schedulers[:2]
				r, err := FailureSweepRun(cfg)
				if err == nil && len(r.Points) != 4 {
					t.Errorf("failures: %d points, want 4", len(r.Points))
				}
				return err
			}},
		}
		if !testing.Short() {
			sweeps = append(sweeps,
				sweep{"fig11a", func() error { _, err := Fig11a(); return err }},
				sweep{"fig11b", func() error { _, err := Fig11b(); return err }},
				sweep{"fig12a", func() error { _, err := Fig12a(); return err }},
				sweep{"fig12b", func() error { _, err := Fig12b(); return err }},
			)
		}
		// The sweeps themselves fan out on the shared default pool; running
		// them through ForEach stacks sweep-level on top of cell-level
		// concurrency.
		if err := parallel.ForEach(len(sweeps), len(sweeps), func(i int) error {
			if err := sweeps[i].run(); err != nil {
				t.Errorf("%s: %v", sweeps[i].name, err)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}
