package experiments

import (
	"fmt"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/mapreduce"
	"eant/internal/parallel"
	"eant/internal/tabwrite"
	"eant/internal/workload"
)

// ConsolidationRow is one (scheduler, consolidation) cell of the
// future-work study.
type ConsolidationRow struct {
	Sched        SchedulerName
	Consolidated bool
	TotalJoules  float64
	Makespan     time.Duration
	Sleeps       int
	Wakes        int
}

// ConsolidationResult holds the §VIII future-work experiment: E-Ant
// combined with server consolidation.
type ConsolidationResult struct {
	Rows []ConsolidationRow
}

// Consolidation runs the paper's stated future work — "the integration of
// E-Ant with cluster resource provisioning and server consolidation
// techniques" — by pairing each scheduler with a covering-subset
// power-down policy (Leverich & Kozyrakis, the paper's [13]) on a
// light-load MSD campaign, where idle machines actually get the chance to
// sleep. E-Ant's steering concentrates work on the machines it favors,
// letting the rest sleep longer than under Fair's spreading assignment.
func Consolidation() (*ConsolidationResult, error) {
	const jobCount = 50
	const seeds = 3
	modes := []bool{false, true}
	scheds := []SchedulerName{SchedFair, SchedEAnt}
	res := &ConsolidationResult{}
	cells, err := parallel.Map(len(modes)*len(scheds)*seeds, 0, func(i int) (*mapreduce.Stats, error) {
		consolidated := modes[i/(len(scheds)*seeds)]
		name := scheds[(i/seeds)%len(scheds)]
		seed := int64(i%seeds) + 1
		jobs, err := workload.GenerateMSD(workload.MSDConfig{
			Jobs: jobCount, Scale: ScaleDown,
			// Light load: lulls between arrivals are where
			// machines can sleep.
			MeanInterarrival: 90 * time.Second,
		}, newRNG(seed))
		if err != nil {
			return nil, fmt.Errorf("consolidation: %w", err)
		}
		cfg := defaultDriverConfig()
		cfg.Seed = seed
		if consolidated {
			cfg.Power = mapreduce.PowerMgmt{Enabled: true}
		}
		stats, err := Campaign{
			Cluster: cluster.Testbed(), Sched: name,
			Params: core.DefaultParams(), Jobs: jobs, Config: cfg,
		}.Run()
		if err != nil {
			return nil, fmt.Errorf("consolidation: %s: %w", name, err)
		}
		return stats, nil
	})
	if err != nil {
		return nil, err
	}
	i := 0
	for _, consolidated := range modes {
		for _, name := range scheds {
			agg := ConsolidationRow{Sched: name, Consolidated: consolidated}
			for s := 0; s < seeds; s++ {
				stats := cells[i]
				i++
				agg.TotalJoules += stats.TotalJoules / seeds
				agg.Makespan += stats.Horizon / seeds
				agg.Sleeps += stats.Sleeps
				agg.Wakes += stats.Wakes
			}
			res.Rows = append(res.Rows, agg)
		}
	}
	return res, nil
}

// row returns the cell for (sched, consolidated), or nil.
func (r *ConsolidationResult) row(name SchedulerName, consolidated bool) *ConsolidationRow {
	for i := range r.Rows {
		if r.Rows[i].Sched == name && r.Rows[i].Consolidated == consolidated {
			return &r.Rows[i]
		}
	}
	return nil
}

// ConsolidationGain returns how much energy consolidation saves for the
// given scheduler, in percent.
func (r *ConsolidationResult) ConsolidationGain(name SchedulerName) float64 {
	on := r.row(name, true)
	off := r.row(name, false)
	if on == nil || off == nil || off.TotalJoules <= 0 {
		return 0
	}
	return 100 * (off.TotalJoules - on.TotalJoules) / off.TotalJoules
}

// EAntAdvantage returns E-Ant's saving over Fair with consolidation
// active, in percent.
func (r *ConsolidationResult) EAntAdvantage() float64 {
	eant := r.row(SchedEAnt, true)
	fair := r.row(SchedFair, true)
	if eant == nil || fair == nil || fair.TotalJoules <= 0 {
		return 0
	}
	return 100 * (fair.TotalJoules - eant.TotalJoules) / fair.TotalJoules
}

// Table renders the consolidation grid.
func (r *ConsolidationResult) Table() *tabwrite.Table {
	t := tabwrite.New(
		fmt.Sprintf("Consolidation (§VIII future work) — gains: Fair %.1f%%, E-Ant %.1f%%; E-Ant vs Fair with consolidation: %.1f%%",
			r.ConsolidationGain(SchedFair), r.ConsolidationGain(SchedEAnt), r.EAntAdvantage()),
		"scheduler", "consolidation", "total KJ", "makespan", "sleeps", "wakes")
	for _, row := range r.Rows {
		mode := "off"
		if row.Consolidated {
			mode = "on"
		}
		t.AddRow(string(row.Sched), mode, tabwrite.Cell(row.TotalJoules/1000, 0),
			row.Makespan.Round(time.Second).String(), row.Sleeps, row.Wakes)
	}
	return t
}
