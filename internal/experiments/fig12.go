package experiments

import (
	"fmt"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/mapreduce"
	"eant/internal/metrics"
	"eant/internal/noise"
	"eant/internal/parallel"
	"eant/internal/tabwrite"
	"eant/internal/workload"
)

// Fig12aRow is one β setting with its energy saving and job fairness.
type Fig12aRow struct {
	Beta     float64
	SavingKJ float64
	Fairness float64
}

// Fig12aResult holds the weighting-parameter sensitivity study.
type Fig12aResult struct{ Rows []Fig12aRow }

// sensitivityWorkload builds the workload used by both sensitivity
// sweeps: a moderate MSD slice.
func sensitivityWorkload(seed int64) ([]workload.JobSpec, error) {
	return workload.GenerateMSD(workload.MSDConfig{
		Jobs: 40, Scale: ScaleDown, MeanInterarrival: 30 * time.Second,
	}, newRNG(seed))
}

// sensitivityConfig is the driver setup for the sensitivity sweeps: system
// noise off, so the small per-setting differences are not drowned by
// straggler-induced makespan variance (the paper averages long physical
// runs instead).
func sensitivityConfig(seed int64) mapreduce.Config {
	cfg := defaultDriverConfig()
	cfg.Seed = seed
	cfg.Noise = noise.Off()
	return cfg
}

// standaloneTimes runs each job alone on the testbed and returns its
// baseline completion time, for slowdown normalization [18].
func standaloneTimes(jobs []workload.JobSpec) (map[int]time.Duration, error) {
	out := make(map[int]time.Duration, len(jobs))
	for _, j := range jobs {
		solo := j
		solo.Submit = 0
		cfg := defaultDriverConfig()
		stats, err := Campaign{
			Cluster: cluster.Testbed(), Sched: SchedFIFO,
			Jobs: []workload.JobSpec{solo}, Config: cfg,
		}.Run()
		if err != nil {
			return nil, fmt.Errorf("standalone job %d: %w", j.ID, err)
		}
		if len(stats.Jobs) != 1 {
			return nil, fmt.Errorf("standalone job %d did not finish", j.ID)
		}
		out[j.ID] = stats.Jobs[0].CompletionTime()
	}
	return out, nil
}

// Fig12a reproduces the β sensitivity study: energy saving over default
// Hadoop and job fairness (inverse slowdown variance) for β from 0 to
// 0.4. The paper's saving peaks at β ≈ 0.1 (β = 0 also abandons data
// locality); fairness rises monotonically with β.
func Fig12a() (*Fig12aResult, error) {
	const seeds = 8
	betas := []float64{0, 0.1, 0.2, 0.3, 0.4}
	res := &Fig12aResult{}
	// Per-seed prep: the workload, the standalone baselines and the FIFO
	// reference run depend only on the seed, never on β, so each is
	// computed once and shared read-only across the β cells. (The earlier
	// sequential code recomputed them per β with identical results — this
	// alone cuts the sweep's work ~5×.)
	type prep struct {
		jobs       []workload.JobSpec
		standalone map[int]time.Duration
		baseJoules float64
	}
	preps, err := parallel.Map(seeds, 0, func(s int) (prep, error) {
		seed := int64(s) + 1
		jobs, err := sensitivityWorkload(seed)
		if err != nil {
			return prep{}, fmt.Errorf("fig12a: %w", err)
		}
		standalone, err := standaloneTimes(jobs)
		if err != nil {
			return prep{}, fmt.Errorf("fig12a: %w", err)
		}
		base, err := Campaign{
			Cluster: cluster.Testbed(), Sched: SchedFIFO, Jobs: jobs,
			Config: sensitivityConfig(seed),
		}.Run()
		if err != nil {
			return prep{}, fmt.Errorf("fig12a: baseline: %w", err)
		}
		return prep{jobs: jobs, standalone: standalone, baseJoules: base.TotalJoules}, nil
	})
	if err != nil {
		return nil, err
	}
	type cell struct{ saving, fairness float64 }
	cells, err := parallel.Map(len(betas)*seeds, 0, func(i int) (cell, error) {
		beta := betas[i/seeds]
		s := i % seeds
		p := preps[s]
		params := core.DefaultParams()
		params.Beta = beta
		stats, err := Campaign{
			Cluster: cluster.Testbed(), Sched: SchedEAnt, Params: params,
			Jobs: p.jobs, Config: sensitivityConfig(int64(s) + 1),
		}.Run()
		if err != nil {
			return cell{}, fmt.Errorf("fig12a: beta %v: %w", beta, err)
		}
		slowdowns, err := metrics.Slowdowns(stats.Jobs, func(r mapreduce.JobResult) time.Duration {
			return p.standalone[r.Spec.ID]
		})
		if err != nil {
			return cell{}, fmt.Errorf("fig12a: %w", err)
		}
		return cell{
			saving:   (p.baseJoules - stats.TotalJoules) / 1000,
			fairness: metrics.Fairness(slowdowns),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for bi, beta := range betas {
		var savingSum, fairSum float64
		for s := 0; s < seeds; s++ {
			savingSum += cells[bi*seeds+s].saving
			fairSum += cells[bi*seeds+s].fairness
		}
		res.Rows = append(res.Rows, Fig12aRow{
			Beta:     beta,
			SavingKJ: savingSum / seeds,
			Fairness: fairSum / seeds,
		})
	}
	return res, nil
}

// Table renders the Fig. 12a sweep.
func (r *Fig12aResult) Table() *tabwrite.Table {
	t := tabwrite.New("Fig 12a — β sensitivity: energy saving vs job fairness",
		"beta", "energy saving KJ", "fairness (1/var slowdown)")
	for _, row := range r.Rows {
		t.AddRow(row.Beta, tabwrite.Cell(row.SavingKJ, 1), tabwrite.Cell(row.Fairness, 2))
	}
	return t
}

// Fig12bRow is one control-interval setting and its energy saving.
type Fig12bRow struct {
	Interval time.Duration
	SavingKJ float64
}

// Fig12bResult holds the control-interval sensitivity study.
type Fig12bResult struct{ Rows []Fig12bRow }

// Fig12b reproduces the control-interval sensitivity study. The paper
// sweeps 2–8 minutes and peaks at 5; with task durations scaled down
// ~10×, the sweep covers 10–90 s and the same too-few-samples /
// too-stale-policy tradeoff shapes the curve.
func Fig12b() (*Fig12bResult, error) {
	const seeds = 8
	intervals := []time.Duration{
		10 * time.Second, 20 * time.Second, 30 * time.Second,
		45 * time.Second, 60 * time.Second, 90 * time.Second,
	}
	res := &Fig12bResult{}
	savings, err := parallel.Map(len(intervals)*seeds, 0, func(i int) (float64, error) {
		interval := intervals[i/seeds]
		seed := int64(i%seeds) + 1
		jobs, err := sensitivityWorkload(seed)
		if err != nil {
			return 0, fmt.Errorf("fig12b: %w", err)
		}
		cfg := sensitivityConfig(seed)
		cfg.ControlInterval = interval
		base, err := Campaign{
			Cluster: cluster.Testbed(), Sched: SchedFIFO, Jobs: jobs, Config: cfg,
		}.Run()
		if err != nil {
			return 0, fmt.Errorf("fig12b: baseline: %w", err)
		}
		stats, err := Campaign{
			Cluster: cluster.Testbed(), Sched: SchedEAnt, Params: core.DefaultParams(),
			Jobs: jobs, Config: cfg,
		}.Run()
		if err != nil {
			return 0, fmt.Errorf("fig12b: interval %v: %w", interval, err)
		}
		return (base.TotalJoules - stats.TotalJoules) / 1000, nil
	})
	if err != nil {
		return nil, err
	}
	for ii, interval := range intervals {
		var savingSum float64
		for s := 0; s < seeds; s++ {
			savingSum += savings[ii*seeds+s]
		}
		res.Rows = append(res.Rows, Fig12bRow{Interval: interval, SavingKJ: savingSum / seeds})
	}
	return res, nil
}

// PeakInterval returns the interval with the highest saving.
func (r *Fig12bResult) PeakInterval() time.Duration {
	best := time.Duration(0)
	bestSaving := 0.0
	for i, row := range r.Rows {
		if i == 0 || row.SavingKJ > bestSaving {
			best = row.Interval
			bestSaving = row.SavingKJ
		}
	}
	return best
}

// Table renders the Fig. 12b sweep.
func (r *Fig12bResult) Table() *tabwrite.Table {
	t := tabwrite.New(
		fmt.Sprintf("Fig 12b — control-interval sensitivity (peak at %v; paper peaks at 5 min unscaled)", r.PeakInterval()),
		"interval", "energy saving KJ")
	for _, row := range r.Rows {
		t.AddRow(row.Interval.String(), tabwrite.Cell(row.SavingKJ, 1))
	}
	return t
}
