package experiments

import (
	"fmt"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/tabwrite"
	"eant/internal/workload"
)

// ExchangeVariant names one §IV-D information-exchange configuration.
type ExchangeVariant string

// The four variants of Fig. 10.
const (
	ExchangeNone    ExchangeVariant = "Non-exchange"
	ExchangeMachine ExchangeVariant = "+Machine-level"
	ExchangeJob     ExchangeVariant = "+Job-level"
	ExchangeBoth    ExchangeVariant = "+Both"
)

func (v ExchangeVariant) params() core.Params {
	p := core.DefaultParams()
	p.MachineExchange = v == ExchangeMachine || v == ExchangeBoth
	p.JobExchange = v == ExchangeJob || v == ExchangeBoth
	return p
}

// Fig10Point is the cumulative energy saving of one variant over the
// heterogeneity-agnostic baseline at one control tick.
type Fig10Point struct {
	At       time.Duration
	SavingKJ float64
}

// Fig10Result holds the savings-over-time series per exchange variant.
type Fig10Result struct {
	Series map[ExchangeVariant][]Fig10Point
	// FinalSaving is each variant's saving at the end of the common
	// timeline.
	FinalSaving map[ExchangeVariant]float64
}

// Fig10 reproduces the exchange-strategy study: E-Ant with each exchange
// configuration against default heterogeneity-agnostic Hadoop (FIFO),
// measuring cumulative energy savings at each control tick while the
// noisy MSD workload progresses. The paper reports machine-level exchange
// improving savings by ~7 %, job-level by ~10 %, both by ~15 % over
// no-exchange.
func Fig10() (*Fig10Result, error) {
	const jobs = 40
	const seeds = 2
	variants := []ExchangeVariant{ExchangeNone, ExchangeMachine, ExchangeJob, ExchangeBoth}

	// timelines[variant][tick] accumulates joules across seeds; baseline
	// likewise. Different seeds share tick spacing (same control
	// interval), truncated to the shortest run.
	type series = []float64
	baseline := series{}
	varSeries := make(map[ExchangeVariant]series)
	var tickSpan time.Duration

	accumulate := func(dst series, src []float64) series {
		if len(dst) == 0 {
			return append(series{}, src...)
		}
		n := len(dst)
		if len(src) < n {
			n = len(src)
		}
		out := make(series, n)
		for i := 0; i < n; i++ {
			out[i] = dst[i] + src[i]
		}
		return out
	}

	for seed := int64(1); seed <= seeds; seed++ {
		msd, err := workload.GenerateMSD(workload.MSDConfig{
			Jobs: jobs, Scale: ScaleDown, MeanInterarrival: 30 * time.Second,
		}, newRNG(seed))
		if err != nil {
			return nil, fmt.Errorf("fig10: %w", err)
		}
		run := func(sched SchedulerName, p core.Params) ([]float64, error) {
			cfg := defaultDriverConfig()
			cfg.Seed = seed
			// The exchange strategies exist to defeat estimator noise;
			// stress them with heavier fluctuation than the default
			// evaluation noise (cf. the Fig. 7 scatter).
			cfg.Noise.MeasurementCV = 0.35
			cfg.Noise.DurationCV = 0.25
			stats, err := Campaign{
				Cluster: cluster.Testbed(), Sched: sched, Params: p,
				Jobs: msd, Config: cfg,
			}.Run()
			if err != nil {
				return nil, err
			}
			joules := make([]float64, len(stats.Timeline))
			for i, pt := range stats.Timeline {
				joules[i] = pt.TotalJoules
			}
			if tickSpan == 0 && len(stats.Timeline) > 0 {
				tickSpan = stats.Timeline[0].At
			}
			return joules, nil
		}
		base, err := run(SchedFIFO, core.Params{})
		if err != nil {
			return nil, fmt.Errorf("fig10: baseline: %w", err)
		}
		baseline = accumulate(baseline, base)
		for _, v := range variants {
			j, err := run(SchedEAnt, v.params())
			if err != nil {
				return nil, fmt.Errorf("fig10: %s: %w", v, err)
			}
			varSeries[v] = accumulate(varSeries[v], j)
		}
	}

	res := &Fig10Result{
		Series:      make(map[ExchangeVariant][]Fig10Point),
		FinalSaving: make(map[ExchangeVariant]float64),
	}
	for _, v := range variants {
		vs := varSeries[v]
		n := len(vs)
		if len(baseline) < n {
			n = len(baseline)
		}
		for i := 0; i < n; i++ {
			res.Series[v] = append(res.Series[v], Fig10Point{
				At:       time.Duration(i+1) * tickSpan,
				SavingKJ: (baseline[i] - vs[i]) / 1000 / seeds,
			})
		}
		if n > 0 {
			res.FinalSaving[v] = res.Series[v][n-1].SavingKJ
		}
	}
	return res, nil
}

// Table renders the Fig. 10 series.
func (r *Fig10Result) Table() *tabwrite.Table {
	order := []ExchangeVariant{ExchangeNone, ExchangeMachine, ExchangeJob, ExchangeBoth}
	t := tabwrite.New(
		fmt.Sprintf("Fig 10 — energy saving over default Hadoop by exchange strategy (final KJ: none %.0f, machine %.0f, job %.0f, both %.0f)",
			r.FinalSaving[ExchangeNone], r.FinalSaving[ExchangeMachine],
			r.FinalSaving[ExchangeJob], r.FinalSaving[ExchangeBoth]),
		"time", "none KJ", "+machine KJ", "+job KJ", "+both KJ")
	n := len(r.Series[ExchangeNone])
	for _, v := range order {
		if len(r.Series[v]) < n {
			n = len(r.Series[v])
		}
	}
	for i := 0; i < n; i++ {
		row := []any{r.Series[ExchangeNone][i].At.Round(time.Second).String()}
		for _, v := range order {
			row = append(row, tabwrite.Cell(r.Series[v][i].SavingKJ, 1))
		}
		t.AddRow(row...)
	}
	return t
}
