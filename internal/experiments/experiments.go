// Package experiments reproduces every table and figure of the paper's
// motivation and evaluation sections. Each FigNN/TableNN function is a
// self-contained harness that builds the cluster, generates the workload,
// runs the simulation, and returns typed rows with a Table() renderer that
// prints the same series the paper plots.
//
// Scaling. The paper's testbed ran 300 GB inputs and a 5-minute control
// interval for hours; the default configurations here shrink inputs by
// ScaleDown (64×) and the control interval proportionally, so the full
// suite runs in seconds while preserving the quantities the paper reports
// as *shapes* (orderings, crossovers, ratios). EXPERIMENTS.md records
// paper-vs-measured for every experiment.
package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/mapreduce"
	"eant/internal/noise"
	"eant/internal/probe"
	"eant/internal/sched"
	"eant/internal/sim"
	"eant/internal/workload"
)

// ScaleDown is the default input-size divisor relative to the paper's
// testbed workloads.
const ScaleDown = 64

// DefaultControlInterval is the paper's 5-minute control interval scaled
// to the shrunken task durations (tasks shrink ~10×, intervals likewise).
const DefaultControlInterval = 30 * time.Second

// DefaultSeed keeps every experiment reproducible by default.
const DefaultSeed = 1

// SchedulerName selects a task-assignment policy.
type SchedulerName string

// Scheduler choices used across the evaluation.
const (
	SchedFIFO   SchedulerName = "FIFO"
	SchedFair   SchedulerName = "Fair"
	SchedTarazu SchedulerName = "Tarazu"
	SchedLATE   SchedulerName = "LATE"
	SchedCap    SchedulerName = "Capacity"
	SchedEAnt   SchedulerName = "E-Ant"
)

// NewScheduler builds a fresh scheduler instance. E-Ant takes params; the
// baselines ignore them.
func NewScheduler(name SchedulerName, params core.Params) (mapreduce.Scheduler, error) {
	switch name {
	case SchedFIFO:
		return sched.NewFIFO(), nil
	case SchedFair:
		return sched.NewFair(), nil
	case SchedTarazu:
		return sched.NewTarazu(), nil
	case SchedLATE:
		return sched.NewLATE(), nil
	case SchedCap:
		return sched.NewCapacity(nil, nil)
	case SchedEAnt:
		return core.NewEAnt(params)
	default:
		return nil, fmt.Errorf("experiments: unknown scheduler %q", name)
	}
}

// Campaign describes one simulated cluster run.
type Campaign struct {
	Cluster *cluster.Cluster
	Sched   SchedulerName
	Params  core.Params
	// Instance, when non-nil, is used instead of constructing a scheduler
	// from Sched/Params — for experiments that need to inspect scheduler
	// state (e.g. pheromone trails) after the run.
	Instance mapreduce.Scheduler
	Jobs     []workload.JobSpec
	Config   mapreduce.Config
	Horizon  time.Duration
}

// defaultDriverConfig is the experiment-wide driver configuration: paper
// heartbeat, scaled control interval, evaluation noise.
func defaultDriverConfig() mapreduce.Config {
	cfg := mapreduce.DefaultConfig()
	cfg.ControlInterval = DefaultControlInterval
	cfg.Seed = DefaultSeed
	cfg.Noise = noise.Default()
	return cfg
}

// campaignProbe, when set, attaches a freshly-built probe to every
// campaign that does not already carry one. Per-campaign instances keep
// parallel sweeps race-free: a probe is single-threaded by contract.
var campaignProbe atomic.Pointer[probe.Config]

// SetCampaignProbe installs an observability-probe template applied to
// every subsequently started Campaign (nil uninstalls it). Each campaign
// gets its own probe instance built from the template; the Stream sink is
// dropped because experiment sweeps fan campaigns out across workers,
// where interleaved per-run streams would be nondeterministic. A probe set
// explicitly on Campaign.Config.Probe always wins. The probes are pure
// observers, so experiment output is byte-identical with or without them
// (golden-enforced).
func SetCampaignProbe(cfg *probe.Config) {
	if cfg == nil {
		campaignProbe.Store(nil)
		return
	}
	cp := *cfg
	cp.Stream = nil
	campaignProbe.Store(&cp)
}

// Run executes the campaign and returns its statistics.
func (c Campaign) Run() (*mapreduce.Stats, error) {
	s := c.Instance
	if s == nil {
		var err error
		s, err = NewScheduler(c.Sched, c.Params)
		if err != nil {
			return nil, err
		}
	}
	cfg := c.Config
	if cfg.Probe == nil {
		if tmpl := campaignProbe.Load(); tmpl != nil {
			p, err := probe.New(*tmpl)
			if err != nil {
				return nil, fmt.Errorf("experiments: campaign probe: %w", err)
			}
			cfg.Probe = p
		}
	}
	d, err := mapreduce.NewDriver(c.Cluster, s, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	horizon := c.Horizon
	if horizon == 0 {
		horizon = 48 * time.Hour
	}
	stats, err := d.Run(c.Jobs, horizon)
	if err != nil {
		return nil, fmt.Errorf("experiments: campaign %s: %w", c.Sched, err)
	}
	return stats, nil
}

// openLoopTasks builds the §II motivation workload: single-block map-only
// jobs of one application arriving at a fixed rate for the given span.
// Each "task" of the paper's task-arrival-rate studies is one such job.
func openLoopTasks(app workload.App, perMinute float64, span time.Duration) []workload.JobSpec {
	if perMinute <= 0 {
		return nil
	}
	spacing := time.Duration(float64(time.Minute) / perMinute)
	var jobs []workload.JobSpec
	id := 0
	for at := time.Duration(0); at < span; at += spacing {
		jobs = append(jobs, workload.NewJobSpec(id, app, workload.BlockMB, 0, at))
		id++
	}
	return jobs
}

// msdJobs generates the §V-C Microsoft-derived workload at the default
// evaluation scale.
func msdJobs(jobs int, seed int64) ([]workload.JobSpec, error) {
	cfg := workload.MSDConfig{
		Jobs:             jobs,
		Scale:            ScaleDown,
		MeanInterarrival: 30 * time.Second,
	}
	return workload.GenerateMSD(cfg, newRNG(seed))
}

// newRNG builds a workload-generation stream independent of driver seeds.
func newRNG(seed int64) *sim.RNG { return sim.NewRNG(seed).Fork("experiments") }
