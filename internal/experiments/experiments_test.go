package experiments

import (
	"strings"
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/tabwrite"
	"eant/internal/workload"
)

func TestNewScheduler(t *testing.T) {
	for _, name := range []SchedulerName{SchedFIFO, SchedFair, SchedTarazu, SchedEAnt} {
		s, err := NewScheduler(name, core.DefaultParams())
		if err != nil {
			t.Fatalf("NewScheduler(%s): %v", name, err)
		}
		if s.Name() != string(name) {
			t.Errorf("scheduler %s reports name %s", name, s.Name())
		}
	}
	if _, err := NewScheduler("Mystery", core.DefaultParams()); err == nil {
		t.Error("unknown scheduler accepted")
	}
	bad := core.DefaultParams()
	bad.Rho = 9
	if _, err := NewScheduler(SchedEAnt, bad); err == nil {
		t.Error("invalid E-Ant params accepted")
	}
}

func TestOpenLoopTasks(t *testing.T) {
	jobs := openLoopTasks(workload.Grep, 10, time.Minute)
	if len(jobs) != 10 {
		t.Fatalf("10 task/min over 1 min = %d jobs, want 10", len(jobs))
	}
	for i, j := range jobs {
		if j.NumMaps != 1 || j.NumReduces != 0 {
			t.Fatalf("open-loop job %d has %d maps, %d reduces", i, j.NumMaps, j.NumReduces)
		}
	}
	if got := openLoopTasks(workload.Grep, 0, time.Minute); got != nil {
		t.Error("zero rate should yield no jobs")
	}
}

func TestCampaignRunsInstance(t *testing.T) {
	eant := core.MustNewEAnt(core.DefaultParams())
	eant.TrackTrails()
	cfg := defaultDriverConfig()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Grep, 640, 2, 0)}
	stats, err := Campaign{
		Cluster:  cluster.Testbed(),
		Instance: eant,
		Jobs:     jobs,
		Config:   cfg,
	}.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Scheduler != "E-Ant" {
		t.Errorf("ran %s, want E-Ant instance", stats.Scheduler)
	}
}

func TestFig1aCrossoverExists(t *testing.T) {
	r, err := Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	if r.Crossover == 0 {
		t.Fatal("no crossover found: Xeon never overtakes desktop")
	}
	// The paper's crossover is ≈ 12 task/min; require low-to-mid teens.
	if r.Crossover < 10 || r.Crossover > 25 {
		t.Errorf("crossover at %.0f task/min, want 10-25 (paper: 12)", r.Crossover)
	}
	// Desktop must win clearly at light load.
	var deskLight, xeonLight float64
	for _, p := range r.Points {
		if p.RatePerMin == 5 {
			if p.Series == "Desktop" {
				deskLight = p.TputPerWatt
			} else {
				xeonLight = p.TputPerWatt
			}
		}
	}
	if deskLight <= xeonLight {
		t.Errorf("at 5 task/min desktop %.5f not above xeon %.5f", deskLight, xeonLight)
	}
}

func TestFig1bXeonIdleDominated(t *testing.T) {
	r, err := Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		switch row.Machine {
		case "XeonE5":
			if row.IdleWatts <= row.WorkloadWatts {
				t.Errorf("Xeon %s load: idle %.0f W not dominant over workload %.0f W",
					row.Load, row.IdleWatts, row.WorkloadWatts)
			}
		case "Desktop":
			if row.Load == "heavy" && row.WorkloadWatts <= row.IdleWatts {
				t.Errorf("desktop heavy load: workload %.0f W not above idle %.0f W",
					row.WorkloadWatts, row.IdleWatts)
			}
		}
	}
}

func TestFig1cPeakOrdering(t *testing.T) {
	r, err := Fig1c()
	if err != nil {
		t.Fatal(err)
	}
	wc := r.PeakRate[workload.Wordcount]
	grep := r.PeakRate[workload.Grep]
	ts := r.PeakRate[workload.Terasort]
	// Paper: WC 20 < Grep 25 < TS 35. Require WC lowest and distinct.
	if !(wc < grep && wc < ts) {
		t.Errorf("peak ordering WC=%v Grep=%v TS=%v, want Wordcount lowest", wc, grep, ts)
	}
}

func TestFig1dPhasePreferences(t *testing.T) {
	r, err := Fig1d()
	if err != nil {
		t.Fatal(err)
	}
	if !r.MapDominated(workload.Wordcount) {
		t.Error("Wordcount not map-dominated")
	}
	if r.MapDominated(workload.Grep) || r.MapDominated(workload.Terasort) {
		t.Error("Grep/Terasort should be shuffle/reduce-dominated")
	}
	for _, row := range r.Rows {
		sum := row.Map + row.Shuffle + row.Reduce
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%v breakdown sums to %v", row.App, sum)
		}
	}
}

func TestFig4ModelAccuracy(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("got %d rows, want 2 machines × 3 apps", len(r.Rows))
	}
	// Paper reports ≈ 8-12 % NRMSE; require the same order of magnitude.
	if worst := r.MaxNRMSE(); worst > 0.25 {
		t.Errorf("max NRMSE %.1f%%, want ≤ 25%%", 100*worst)
	}
	for _, row := range r.Rows {
		if row.RecordedKJ <= 0 || row.EstimatedKJ <= 0 {
			t.Errorf("%s/%v has empty energy", row.Machine, row.App)
		}
	}
}

func TestFig6LocalityMonotone(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Monotone() {
		t.Errorf("JCT not monotone in locality: %+v", r.Rows)
	}
}

func TestFig7NoiseSpikes(t *testing.T) {
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 150 {
		t.Fatalf("only %d task points", len(r.Points))
	}
	// Paper's scatter spikes to ≈ 3× the bulk.
	if r.SpikeRatio() < 1.5 {
		t.Errorf("spike ratio %.2f, want ≥ 1.5", r.SpikeRatio())
	}
}

func TestFig8HeadlineOrdering(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Seeds = 2 // keep the test fast; the bench runs the full config
	r, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if saving := r.SavingVs(SchedFair); saving <= 0 {
		t.Errorf("E-Ant saving vs Fair = %.1f%%, want positive", saving)
	}
	eantRes := r.Result(SchedEAnt)
	fair := r.Result(SchedFair)
	// Fig. 8b: E-Ant shifts utilization toward the T420s and off the
	// desktops.
	if eantRes.TypeUtil["T420"] <= fair.TypeUtil["T420"] {
		t.Errorf("T420 util: E-Ant %.3f not above Fair %.3f",
			eantRes.TypeUtil["T420"], fair.TypeUtil["T420"])
	}
	if eantRes.TypeUtil["Desktop"] >= fair.TypeUtil["Desktop"] {
		t.Errorf("Desktop util: E-Ant %.3f not below Fair %.3f",
			eantRes.TypeUtil["Desktop"], fair.TypeUtil["Desktop"])
	}
}

func TestFig9Affinity(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Seeds = 1
	cfg.Schedulers = []SchedulerName{SchedFair, SchedEAnt}
	f8, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fig9(f8)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 9a: compute-dense machines attract Wordcount; the Atom and
	// desktops host proportionally more IO-bound work.
	if r.WordcountShare("T420") <= r.WordcountShare("Desktop") {
		t.Errorf("T420 WC share %.2f not above Desktop %.2f",
			r.WordcountShare("T420"), r.WordcountShare("Desktop"))
	}
	if r.WordcountShare("Atom") >= r.WordcountShare("T420") {
		t.Errorf("Atom WC share %.2f not below T420 %.2f",
			r.WordcountShare("Atom"), r.WordcountShare("T420"))
	}
}

func TestFig10ExchangeHelps(t *testing.T) {
	r, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []ExchangeVariant{ExchangeNone, ExchangeMachine, ExchangeJob, ExchangeBoth} {
		if len(r.Series[v]) == 0 {
			t.Fatalf("no series for %s", v)
		}
	}
	// The paper's claim: exchange strategies improve savings under noise.
	best := r.FinalSaving[ExchangeMachine]
	if r.FinalSaving[ExchangeJob] > best {
		best = r.FinalSaving[ExchangeJob]
	}
	if r.FinalSaving[ExchangeBoth] > best {
		best = r.FinalSaving[ExchangeBoth]
	}
	if best <= r.FinalSaving[ExchangeNone] {
		t.Errorf("no exchange variant beats no-exchange: none=%.0f machine=%.0f job=%.0f both=%.0f",
			r.FinalSaving[ExchangeNone], r.FinalSaving[ExchangeMachine],
			r.FinalSaving[ExchangeJob], r.FinalSaving[ExchangeBoth])
	}
}

func TestFig11ConvergenceDetected(t *testing.T) {
	a, err := Fig11a()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range a.Rows {
		if row.Converged == 0 {
			t.Errorf("fig11a: no convergence at %d machines", row.Count)
		}
	}
	b, err := Fig11b()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range b.Rows {
		if row.Converged == 0 {
			t.Errorf("fig11b: no convergence at %d jobs", row.Count)
		}
	}
}

func TestFig12bShape(t *testing.T) {
	r, err := Fig12b()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 4 {
		t.Fatalf("only %d interval samples", len(r.Rows))
	}
	// The paper's curve rises then falls; require an interior or
	// late-interior peak (not the shortest interval).
	if r.PeakInterval() == r.Rows[0].Interval {
		t.Errorf("saving peaks at the shortest interval %v; paper's curve rises first", r.PeakInterval())
	}
}

func TestTables(t *testing.T) {
	if got := experimentsTableString(TableI()); !strings.Contains(got, "T420") {
		t.Error("Table I missing T420")
	}
	if got := experimentsTableString(TableII()); !strings.Contains(got, "Wordcount") {
		t.Error("Table II missing Wordcount column")
	}
	t3, err := TableIII(87, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := experimentsTableString(t3)
	for _, class := range []string{"S", "M", "L"} {
		if !strings.Contains(got, class) {
			t.Errorf("Table III missing class %s", class)
		}
	}
}

func experimentsTableString(t *tabwrite.Table) string { return t.String() }
