package experiments

import (
	"fmt"
	"time"

	"eant/internal/cluster"
	"eant/internal/noise"
	"eant/internal/tabwrite"
	"eant/internal/workload"
)

// Fig6Row is one data-locality level and the resulting completion time.
type Fig6Row struct {
	LocalPercent int
	JCT          time.Duration
}

// Fig6Result holds the locality study. The paper shows JCT falling from
// ~45 min at 10 % locality to ~25 min at 80 %.
type Fig6Result struct{ Rows []Fig6Row }

// Fig6 reproduces the data-locality impact study: the same Wordcount job
// run with 10 %, 40 % and 80 % of its map tasks reading local data.
func Fig6() (*Fig6Result, error) {
	res := &Fig6Result{}
	for _, pct := range []int{10, 40, 80} {
		cfg := defaultDriverConfig()
		cfg.Noise = noise.Off()
		cfg.ForcedLocalFraction = float64(pct) / 100
		// The paper measures "job completion times of multiple Wordcount
		// jobs with the same size input data but different data
		// locality"; averaging several jobs keeps one job's
		// heartbeat-quantized tail wave from masking the phase
		// difference. The map phase is where locality acts, so the jobs
		// are map-only.
		const jobCount = 6
		inputMB := 300.0 * 1024 / ScaleDown
		jobs := workload.Batch(workload.Wordcount, jobCount, inputMB, 0, 0)
		stats, err := Campaign{
			Cluster: cluster.Testbed(), Sched: SchedFIFO, Jobs: jobs, Config: cfg,
		}.Run()
		if err != nil {
			return nil, fmt.Errorf("fig6: %d%%: %w", pct, err)
		}
		if len(stats.Jobs) != jobCount {
			return nil, fmt.Errorf("fig6: %d/%d jobs finished at %d%% locality", len(stats.Jobs), jobCount, pct)
		}
		var sum time.Duration
		for _, jr := range stats.Jobs {
			sum += jr.Finished - jr.FirstStart
		}
		res.Rows = append(res.Rows, Fig6Row{LocalPercent: pct, JCT: sum / jobCount})
	}
	return res, nil
}

// Monotone reports whether completion time strictly improves with
// locality — the figure's claim.
func (r *Fig6Result) Monotone() bool {
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].JCT >= r.Rows[i-1].JCT {
			return false
		}
	}
	return len(r.Rows) > 1
}

// Table renders the Fig. 6 rows.
func (r *Fig6Result) Table() *tabwrite.Table {
	t := tabwrite.New("Fig 6 — impact of data locality on job completion time",
		"% local data", "JCT")
	for _, row := range r.Rows {
		t.AddRow(row.LocalPercent, row.JCT.Round(time.Second).String())
	}
	return t
}
