package experiments

import (
	"fmt"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/fault"
	"eant/internal/metrics"
	"eant/internal/parallel"
	"eant/internal/tabwrite"
)

// FailureSweep measures scheduler resilience to machine churn, a study the
// paper leaves open (§VIII): the same MSD workload runs under increasing
// crash rates (decreasing per-machine MTBF) plus a small per-attempt
// failure probability, and each cell reports total energy, makespan, the
// fault tallies, and — via the interval-assignment stability detector —
// how long the assignment policy took to settle. Energy and makespan grow
// with the crash rate for every policy (killed attempts and re-executed
// map outputs are paid for twice); the question is how much of E-Ant's
// saving over the baselines survives the churn, given that every crash
// both shrinks the slot pool and invalidates learned trails.

// FailureSweepConfig parameterizes the sweep.
type FailureSweepConfig struct {
	// Jobs and Seed shape the MSD workload (shared across every cell).
	Jobs int
	Seed int64
	// MTBFs is the per-machine mean-time-between-failures axis; 0 disables
	// fault injection entirely for that point (the healthy baseline).
	MTBFs []time.Duration
	// MTTR is the mean repair time applied whenever faults are on.
	MTTR time.Duration
	// TaskFailProb is the per-attempt failure probability applied whenever
	// faults are on.
	TaskFailProb float64
	// Schedulers lists the policies to compare.
	Schedulers []SchedulerName
}

// DefaultFailureSweepConfig is the evaluation-scale sweep: a healthy
// point plus three churn levels, E-Ant against the strongest baselines.
func DefaultFailureSweepConfig() FailureSweepConfig {
	return FailureSweepConfig{
		Jobs:         24,
		Seed:         DefaultSeed,
		MTBFs:        []time.Duration{0, 40 * time.Minute, 20 * time.Minute, 10 * time.Minute},
		MTTR:         2 * time.Minute,
		TaskFailProb: 0.02,
		Schedulers:   []SchedulerName{SchedEAnt, SchedFair, SchedFIFO, SchedLATE},
	}
}

// FailurePoint is one (scheduler, MTBF) cell of the sweep.
type FailurePoint struct {
	Sched SchedulerName
	MTBF  time.Duration // 0 = faults disabled

	TotalJoules float64
	Makespan    time.Duration

	Crashes            int
	TaskFailures       int
	TasksKilledByCrash int
	MapOutputsLost     int
	JobsFailed         int

	// Convergence is the mean time for a job's per-interval assignment
	// distribution to stabilize (80 % overlap between consecutive
	// intervals); ConvergedJobs is how many jobs stabilized at all.
	Convergence   time.Duration
	ConvergedJobs int
}

// FailureSweepResult holds the sweep grid.
type FailureSweepResult struct {
	Cfg    FailureSweepConfig
	Points []FailurePoint
}

// FailureSweepRun executes the sweep.
func FailureSweepRun(cfg FailureSweepConfig) (*FailureSweepResult, error) {
	if len(cfg.MTBFs) == 0 || len(cfg.Schedulers) == 0 {
		return nil, fmt.Errorf("failure sweep: empty MTBF or scheduler axis")
	}
	jobs, err := msdJobs(cfg.Jobs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	jobIDs := make([]int, len(jobs))
	for i := range jobs {
		jobIDs[i] = jobs[i].ID
	}
	res := &FailureSweepResult{Cfg: cfg}
	// The jobs slice is shared read-only across cells: JobSpec is a pure
	// value and Driver.Run copies each spec.
	points, err := parallel.Map(len(cfg.Schedulers)*len(cfg.MTBFs), 0, func(i int) (FailurePoint, error) {
		schedName := cfg.Schedulers[i/len(cfg.MTBFs)]
		mtbf := cfg.MTBFs[i%len(cfg.MTBFs)]
		dcfg := defaultDriverConfig()
		dcfg.Seed = cfg.Seed
		dcfg.KeepAssignmentHistory = true
		if mtbf > 0 {
			dcfg.Fault = fault.Config{
				MachineMTBF:  mtbf,
				MachineMTTR:  cfg.MTTR,
				TaskFailProb: cfg.TaskFailProb,
			}
		}
		stats, err := Campaign{
			Cluster: cluster.Testbed(),
			Sched:   schedName,
			Params:  core.DefaultParams(),
			Jobs:    jobs,
			Config:  dcfg,
		}.Run()
		if err != nil {
			return FailurePoint{}, fmt.Errorf("failure sweep: %s mtbf=%v: %w", schedName, mtbf, err)
		}
		p := FailurePoint{
			Sched:              schedName,
			MTBF:               mtbf,
			TotalJoules:        stats.TotalJoules,
			Makespan:           stats.Horizon,
			Crashes:            stats.Crashes,
			TaskFailures:       stats.TaskFailures,
			TasksKilledByCrash: stats.TasksKilledByCrash,
			MapOutputsLost:     stats.MapOutputsLost,
			JobsFailed:         stats.JobsFailed,
		}
		p.Convergence, p.ConvergedJobs = metrics.MeanConvergenceTime(stats.Assignments, jobIDs, 0.8)
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// Point returns the cell for one (scheduler, MTBF) pair, or nil.
func (r *FailureSweepResult) Point(s SchedulerName, mtbf time.Duration) *FailurePoint {
	for i := range r.Points {
		if r.Points[i].Sched == s && r.Points[i].MTBF == mtbf {
			return &r.Points[i]
		}
	}
	return nil
}

// Table renders the sweep grid.
func (r *FailureSweepResult) Table() *tabwrite.Table {
	t := tabwrite.New(
		fmt.Sprintf("Failure sweep — %d MSD jobs, seed %d, MTTR %v, p_fail %.2f",
			r.Cfg.Jobs, r.Cfg.Seed, r.Cfg.MTTR, r.Cfg.TaskFailProb),
		"scheduler", "MTBF", "total KJ", "makespan", "crashes",
		"task fails", "killed by crash", "map out lost", "jobs failed", "convergence")
	for _, p := range r.Points {
		mtbf := "off"
		if p.MTBF > 0 {
			mtbf = p.MTBF.String()
		}
		conv := "-"
		if p.ConvergedJobs > 0 {
			conv = p.Convergence.Round(time.Second).String()
		}
		t.AddRow(string(p.Sched), mtbf,
			tabwrite.Cell(p.TotalJoules/1000, 0),
			p.Makespan.Round(time.Second).String(),
			p.Crashes, p.TaskFailures, p.TasksKilledByCrash,
			p.MapOutputsLost, p.JobsFailed, conv)
	}
	return t
}
