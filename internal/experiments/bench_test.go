package experiments

import (
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/mapreduce"
	"eant/internal/sched"
	"eant/internal/workload"
)

// benchCampaign runs one full MSD campaign per iteration and reports
// allocations, so hot-path allocation fixes (the eantlint hotalloc
// analyzer's targets) show up as allocs/op deltas end to end rather than
// in microbenchmarks that miss cross-layer effects.
func benchCampaign(b *testing.B, mk func() mapreduce.Scheduler) {
	b.Helper()
	jobs, err := msdJobs(30, DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Campaign{
			Cluster:  cluster.Testbed(),
			Instance: mk(),
			Jobs:     jobs,
			Config:   defaultDriverConfig(),
		}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignFairDelay(b *testing.B) {
	benchCampaign(b, func() mapreduce.Scheduler { return sched.NewFairWithDelay(3) })
}

// BenchmarkWideFairDelay stresses the delay-scheduling walk with 32
// concurrent jobs: the per-offer considered set then outgrows the
// stack-map threshold, so a freshly-literal map forces heap bucket
// allocations on every slot offer.
func BenchmarkWideFairDelay(b *testing.B) {
	jobs := workload.Batch(workload.Grep, 32, 3200, 2, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := mapreduce.DefaultConfig()
		cfg.Replication = 1
		d, err := mapreduce.NewDriver(cluster.Testbed(), sched.NewFairWithDelay(5), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Run(jobs, 48*time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignEAnt(b *testing.B) {
	benchCampaign(b, func() mapreduce.Scheduler {
		s, err := core.NewEAnt(core.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		return s
	})
}
