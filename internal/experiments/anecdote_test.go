package experiments

import (
	"testing"

	"eant/internal/cluster"
	"eant/internal/noise"
	"eant/internal/workload"
)

// TestSection1Anecdote reproduces the paper's §I motivating measurement
// in ratio form: a 50 GB Wordcount on a Core i7 desktop versus an Atom
// server. The paper reports 63 min / 183 KJ on the desktop against
// 178 min / 136 KJ on the Atom — the desktop is ~2.8× faster yet burns
// ~1.35× the energy. Absolute values are testbed-specific; the ratios are
// the calibration target.
func TestSection1Anecdote(t *testing.T) {
	run := func(spec *cluster.TypeSpec) (secs, joules float64) {
		// Machine-capability study like Fig. 1: concurrency scales with
		// cores, input scaled 1/64 like the rest of the suite.
		c := cluster.MustNew(cluster.Group{Spec: cluster.Capability(spec), Count: 1})
		cfg := defaultDriverConfig()
		cfg.Noise = noise.Off()
		cfg.ForcedLocalFraction = 1
		inputMB := 50.0 * 1024 / ScaleDown
		jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, inputMB, 2, 0)}
		stats, err := Campaign{Cluster: c, Sched: SchedFIFO, Jobs: jobs, Config: cfg}.Run()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(stats.Jobs) != 1 {
			t.Fatalf("%s: job did not finish", spec.Name)
		}
		return stats.Jobs[0].CompletionTime().Seconds(), stats.TotalJoules
	}

	deskSecs, deskJ := run(cluster.SpecDesktop)
	atomSecs, atomJ := run(cluster.SpecAtom)

	timeRatio := atomSecs / deskSecs
	energyRatio := deskJ / atomJ
	t.Logf("desktop %.0fs/%.0fJ vs Atom %.0fs/%.0fJ — Atom %.2fx slower, desktop %.2fx more energy",
		deskSecs, deskJ, atomSecs, atomJ, timeRatio, energyRatio)

	// Paper ratios: time 178/63 ≈ 2.8, energy 183/136 ≈ 1.35. Accept the
	// same direction with generous bounds.
	if timeRatio < 1.5 {
		t.Errorf("Atom/desktop time ratio %.2f, want ≥ 1.5 (paper ≈ 2.8)", timeRatio)
	}
	if energyRatio < 1.05 {
		t.Errorf("desktop/Atom energy ratio %.2f, want > 1 (paper ≈ 1.35)", energyRatio)
	}
}
