package experiments

import (
	"fmt"
	"sort"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/mapreduce"
	"eant/internal/metrics"
	"eant/internal/parallel"
	"eant/internal/tabwrite"
	"eant/internal/workload"
)

// Fig8Config parameterizes the MSD evaluation campaign.
type Fig8Config struct {
	// Jobs is the MSD job count (paper: 87).
	Jobs int
	// Seeds is how many independent campaigns to average; per-seed
	// makespans are straggler-noisy.
	Seeds int
	// MeanInterarrival spaces job submissions (Poisson).
	MeanInterarrival time.Duration
	// Schedulers to compare; defaults to FIFO, Fair, Tarazu, E-Ant.
	Schedulers []SchedulerName
}

// DefaultFig8Config returns the evaluation setup: the full 87-job MSD
// workload averaged over 3 seeds at a sustained-load submission rate.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Jobs:             87,
		Seeds:            3,
		MeanInterarrival: 30 * time.Second,
	}
}

// SchedResult aggregates one scheduler's campaigns.
type SchedResult struct {
	Sched       SchedulerName
	TotalJoules float64            // mean across seeds
	Makespan    time.Duration      // mean across seeds
	TypeJoules  map[string]float64 // mean across seeds
	TypeUtil    map[string]float64 // mean across seeds
	// ClassJCT is the mean completion time per "App-Class" label.
	ClassJCT map[string]time.Duration
	// Stats of the last seed's run, for task-distribution views (Fig. 9).
	Last *mapreduce.Stats
}

// Fig8Result holds the cross-scheduler comparison.
type Fig8Result struct {
	Config  Fig8Config
	Results []SchedResult
}

// Fig8 runs the §VI-A comparison: the MSD workload on the 16-node testbed
// under each scheduler, reporting per-machine-type energy (8a), CPU
// utilization (8b) and per-class completion times (8c).
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	if cfg.Jobs <= 0 || cfg.Seeds <= 0 {
		return nil, fmt.Errorf("fig8: jobs %d and seeds %d must be positive", cfg.Jobs, cfg.Seeds)
	}
	scheds := cfg.Schedulers
	if len(scheds) == 0 {
		scheds = []SchedulerName{SchedFIFO, SchedFair, SchedTarazu, SchedEAnt}
	}
	res := &Fig8Result{Config: cfg}
	// Fan the (scheduler, seed) cells out over the worker pool: every cell
	// owns its engine, RNG forks and scheduler. Aggregation below walks the
	// cells in the exact order the sequential loops did, so the float sums
	// are bit-identical regardless of worker count.
	cells, err := parallel.Map(len(scheds)*cfg.Seeds, 0, func(i int) (*mapreduce.Stats, error) {
		name := scheds[i/cfg.Seeds]
		seed := int64(i%cfg.Seeds) + 1
		jobs, err := workload.GenerateMSD(workload.MSDConfig{
			Jobs:             cfg.Jobs,
			Scale:            ScaleDown,
			MeanInterarrival: cfg.MeanInterarrival,
		}, newRNG(seed))
		if err != nil {
			return nil, fmt.Errorf("fig8: %w", err)
		}
		dcfg := defaultDriverConfig()
		dcfg.Seed = seed
		stats, err := Campaign{
			Cluster: cluster.Testbed(), Sched: name,
			Params: core.DefaultParams(), Jobs: jobs, Config: dcfg,
		}.Run()
		if err != nil {
			return nil, fmt.Errorf("fig8: %w", err)
		}
		return stats, nil
	})
	if err != nil {
		return nil, err
	}
	for si, name := range scheds {
		agg := SchedResult{
			Sched:      name,
			TypeJoules: make(map[string]float64),
			TypeUtil:   make(map[string]float64),
			ClassJCT:   make(map[string]time.Duration),
		}
		classSums := make(map[string]time.Duration)
		classCounts := make(map[string]int)
		for s := 0; s < cfg.Seeds; s++ {
			stats := cells[si*cfg.Seeds+s]
			agg.TotalJoules += stats.TotalJoules
			agg.Makespan += stats.Horizon
			for k, v := range stats.TypeJoules {
				agg.TypeJoules[k] += v
			}
			for k, v := range stats.TypeAvgUtil {
				agg.TypeUtil[k] += v
			}
			for _, jr := range stats.Jobs {
				label := jr.Spec.ClassLabel()
				classSums[label] += jr.CompletionTime()
				classCounts[label]++
			}
			agg.Last = stats
		}
		n := float64(cfg.Seeds)
		agg.TotalJoules /= n
		agg.Makespan /= time.Duration(cfg.Seeds)
		for k := range agg.TypeJoules {
			agg.TypeJoules[k] /= n
		}
		for k := range agg.TypeUtil {
			agg.TypeUtil[k] /= n
		}
		for label, sum := range classSums {
			agg.ClassJCT[label] = sum / time.Duration(classCounts[label])
		}
		res.Results = append(res.Results, agg)
	}
	return res, nil
}

// Result returns the aggregate for one scheduler, or nil.
func (r *Fig8Result) Result(name SchedulerName) *SchedResult {
	for i := range r.Results {
		if r.Results[i].Sched == name {
			return &r.Results[i]
		}
	}
	return nil
}

// SavingVs returns E-Ant's energy saving over the named baseline, in
// percent (the paper's headline: 17 % vs Fair, 12 % vs Tarazu).
func (r *Fig8Result) SavingVs(baseline SchedulerName) float64 {
	eant := r.Result(SchedEAnt)
	base := r.Result(baseline)
	if eant == nil || base == nil {
		return 0
	}
	return metrics.EnergySavingPercent(base.TotalJoules, eant.TotalJoules)
}

// machineTypes returns the type names present, stable order.
func (r *Fig8Result) machineTypes() []string {
	seen := map[string]bool{}
	var names []string
	for _, sr := range r.Results {
		for k := range sr.TypeJoules {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	sort.Strings(names)
	return names
}

// TableA renders Fig. 8a: energy per machine type per scheduler.
func (r *Fig8Result) TableA() *tabwrite.Table {
	t := tabwrite.New(
		fmt.Sprintf("Fig 8a — energy by machine type, KJ (E-Ant saves %.1f%% vs Fair, %.1f%% vs Tarazu; paper: 17%% / 12%%)",
			r.SavingVs(SchedFair), r.SavingVs(SchedTarazu)),
		append([]string{"machine"}, schedHeaders(r.Results)...)...)
	for _, name := range r.machineTypes() {
		row := []any{name}
		for _, sr := range r.Results {
			row = append(row, tabwrite.Cell(sr.TypeJoules[name]/1000, 0))
		}
		t.AddRow(row...)
	}
	total := []any{"TOTAL"}
	for _, sr := range r.Results {
		total = append(total, tabwrite.Cell(sr.TotalJoules/1000, 0))
	}
	t.AddRow(total...)
	return t
}

// TableB renders Fig. 8b: mean CPU utilization per machine type.
func (r *Fig8Result) TableB() *tabwrite.Table {
	t := tabwrite.New("Fig 8b — CPU utilization by machine type (%)",
		append([]string{"machine"}, schedHeaders(r.Results)...)...)
	for _, name := range r.machineTypes() {
		row := []any{name}
		for _, sr := range r.Results {
			row = append(row, tabwrite.Cell(100*sr.TypeUtil[name], 1))
		}
		t.AddRow(row...)
	}
	return t
}

// TableC renders Fig. 8c: per-class completion times normalized to Fair.
func (r *Fig8Result) TableC() *tabwrite.Table {
	t := tabwrite.New("Fig 8c — job completion time by class, normalized to Fair",
		append([]string{"class"}, schedHeaders(r.Results)...)...)
	fair := r.Result(SchedFair)
	var labels []string
	for label := range fair.ClassJCT {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		base := fair.ClassJCT[label]
		row := []any{label}
		for _, sr := range r.Results {
			if base > 0 {
				row = append(row, tabwrite.Cell(float64(sr.ClassJCT[label])/float64(base), 2))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

func schedHeaders(results []SchedResult) []string {
	out := make([]string, len(results))
	for i, sr := range results {
		out[i] = string(sr.Sched)
	}
	return out
}

// Fig9Result holds E-Ant's task-distribution views: completed tasks per
// machine type split by application (9a) and by task kind (9b).
type Fig9Result struct {
	// ByApp[machineType][app] and ByKind[machineType][kind] count
	// completed tasks from the E-Ant campaign.
	ByApp  map[string]map[workload.App]int
	ByKind map[string]map[mapreduce.TaskKind]int
}

// Fig9 derives the §VI-B adaptiveness views from a Fig. 8 run (it uses
// the E-Ant campaign's completed-task tallies).
func Fig9(r *Fig8Result) (*Fig9Result, error) {
	eant := r.Result(SchedEAnt)
	if eant == nil || eant.Last == nil {
		return nil, fmt.Errorf("fig9: fig8 result has no E-Ant campaign")
	}
	stats := eant.Last
	res := &Fig9Result{
		ByApp:  make(map[string]map[workload.App]int),
		ByKind: make(map[string]map[mapreduce.TaskKind]int),
	}
	for _, name := range r.machineTypes() {
		res.ByApp[name] = make(map[workload.App]int)
		res.ByKind[name] = make(map[mapreduce.TaskKind]int)
		for _, app := range workload.Apps() {
			res.ByApp[name][app] = stats.CompletedByTypeApp(name, app)
		}
		for _, kind := range []mapreduce.TaskKind{mapreduce.MapTask, mapreduce.ReduceTask} {
			res.ByKind[name][kind] = stats.CompletedByTypeKind(name, kind)
		}
	}
	return res, nil
}

// WordcountShare returns the fraction of a machine type's completed tasks
// that were Wordcount — the Fig. 9a adaptiveness measure.
func (r *Fig9Result) WordcountShare(machineType string) float64 {
	byApp := r.ByApp[machineType]
	total := 0
	for _, n := range byApp {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(byApp[workload.Wordcount]) / float64(total)
}

// TableA renders Fig. 9a: per-type completed tasks by application.
func (r *Fig9Result) TableA() *tabwrite.Table {
	t := tabwrite.New("Fig 9a — E-Ant task distribution by workload type",
		"machine", "Wordcount", "Grep", "Terasort", "WC share")
	var names []string
	for name := range r.ByApp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		byApp := r.ByApp[name]
		t.AddRow(name, byApp[workload.Wordcount], byApp[workload.Grep], byApp[workload.Terasort],
			tabwrite.Cell(r.WordcountShare(name), 2))
	}
	return t
}

// TableB renders Fig. 9b: per-type completed tasks by kind.
func (r *Fig9Result) TableB() *tabwrite.Table {
	t := tabwrite.New("Fig 9b — E-Ant task distribution by task type",
		"machine", "map", "reduce")
	var names []string
	for name := range r.ByKind {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.AddRow(name, r.ByKind[name][mapreduce.MapTask], r.ByKind[name][mapreduce.ReduceTask])
	}
	return t
}
