package trace_test

import (
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"eant/internal/mapreduce"
	"eant/internal/trace"
)

// failAfter is an io.Writer that fails once n bytes have gone through, so
// write errors surface mid-stream rather than on the first byte.
type failAfter struct{ n int }

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("pipe closed")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestErrorPathsTable sweeps every exporter over its error inputs and
// checks each failure is wrapped with the package prefix and keeps its
// cause — the contract callers match on.
func TestErrorPathsTable(t *testing.T) {
	full := runStats(t, true)
	noTasks := runStats(t, false)
	cases := []struct {
		name     string
		run      func() error
		wantErr  bool
		contains string
	}{
		{
			name:    "jsonl nil stats",
			run:     func() error { return trace.WriteJSONL(io.Discard, nil) },
			wantErr: true, contains: "trace: nil stats",
		},
		{
			name:    "jsonl write error",
			run:     func() error { return trace.WriteJSONL(&failAfter{}, full) },
			wantErr: true, contains: "trace:",
		},
		{
			name:    "csv nil stats",
			run:     func() error { return trace.WriteTasksCSV(io.Discard, nil) },
			wantErr: true, contains: "trace: nil stats",
		},
		{
			name:    "csv empty task records",
			run:     func() error { return trace.WriteTasksCSV(io.Discard, noTasks) },
			wantErr: true, contains: "KeepTaskRecords",
		},
		{
			name:    "csv header write error",
			run:     func() error { return trace.WriteTasksCSV(&failAfter{}, full) },
			wantErr: true, contains: "trace:",
		},
		{
			name:    "csv row write error",
			run:     func() error { return trace.WriteTasksCSV(&failAfter{n: 120}, full) },
			wantErr: true, contains: "trace:",
		},
		{
			name:    "summary nil stats",
			run:     func() error { return trace.WriteSummary(io.Discard, nil) },
			wantErr: true, contains: "trace: nil stats",
		},
		{
			name:    "summary write error",
			run:     func() error { return trace.WriteSummary(&failAfter{}, full) },
			wantErr: true, contains: "trace:",
		},
		{
			name: "jsonl empty stats ok",
			run:  func() error { return trace.WriteJSONL(io.Discard, &mapreduce.Stats{}) },
		},
		{
			name: "summary empty stats ok",
			run:  func() error { return trace.WriteSummary(io.Discard, &mapreduce.Stats{}) },
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.run()
			if (err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, c.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), c.contains) {
				t.Errorf("error %q does not contain %q", err, c.contains)
			}
		})
	}
}

// TestSummarizeNilStats: a nil stats yields the zero Summary, not a panic
// (callers batching many runs shouldn't crash on one missing result).
func TestSummarizeNilStats(t *testing.T) {
	s := trace.Summarize(nil)
	if !reflect.DeepEqual(s, trace.Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero Summary", s)
	}
}

// TestSummarizeEmptyStats: no jobs means MeanJCTSec stays zero instead of
// dividing by zero.
func TestSummarizeEmptyStats(t *testing.T) {
	s := trace.Summarize(&mapreduce.Stats{Scheduler: "X"})
	if s.Scheduler != "X" || s.MeanJCTSec != 0 || s.JobsCompleted != 0 {
		t.Errorf("empty-stats summary = %+v", s)
	}
}
