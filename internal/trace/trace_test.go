package trace_test

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"eant/internal/cluster"
	"eant/internal/mapreduce"
	"eant/internal/sched"
	"eant/internal/trace"
	"eant/internal/workload"
)

func runStats(t *testing.T, keepTasks bool) *mapreduce.Stats {
	t.Helper()
	cfg := mapreduce.DefaultConfig()
	cfg.ControlInterval = 30_000_000_000 // 30 s
	cfg.KeepTaskRecords = keepTasks
	c := cluster.MustNew(
		cluster.Group{Spec: cluster.SpecDesktop, Count: 2},
		cluster.Group{Spec: cluster.SpecT420, Count: 1},
	)
	d, err := mapreduce.NewDriver(c, sched.NewFair(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []workload.JobSpec{
		workload.NewJobSpec(0, workload.Wordcount, 1280, 2, 0),
		workload.NewJobSpec(1, workload.Grep, 640, 1, 0),
	}
	stats, err := d.Run(jobs, -1)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestWriteJSONLWellFormedAndOrdered(t *testing.T) {
	stats := runStats(t, true)
	var sb strings.Builder
	if err := trace.WriteJSONL(&sb, stats); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(strings.NewReader(sb.String()))
	var last float64
	kinds := map[string]int{}
	lines := 0
	for scanner.Scan() {
		var ev trace.Event
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if ev.At < last {
			t.Fatalf("events out of order: %v after %v", ev.At, last)
		}
		last = ev.At
		kinds[ev.Kind]++
		lines++
	}
	wantTasks := 20 + 2 + 10 + 1
	if kinds["task"] != wantTasks {
		t.Errorf("task events = %d, want %d", kinds["task"], wantTasks)
	}
	if kinds["job"] != 2 {
		t.Errorf("job events = %d, want 2", kinds["job"])
	}
}

func TestWriteJSONLNilStats(t *testing.T) {
	if err := trace.WriteJSONL(&strings.Builder{}, nil); err == nil {
		t.Error("nil stats accepted")
	}
}

func TestWriteTasksCSV(t *testing.T) {
	stats := runStats(t, true)
	var sb strings.Builder
	if err := trace.WriteTasksCSV(&sb, stats); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+33 {
		t.Errorf("CSV lines = %d, want header + 33 tasks", len(lines))
	}
	if !strings.HasPrefix(lines[0], "job_id,app,class,kind") {
		t.Errorf("bad header: %s", lines[0])
	}
	for i, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 10 {
			t.Fatalf("row %d has %d commas, want 10: %s", i, got, line)
		}
	}
}

func TestWriteTasksCSVWithoutRecords(t *testing.T) {
	stats := runStats(t, false)
	if err := trace.WriteTasksCSV(&strings.Builder{}, stats); err == nil {
		t.Error("missing task records accepted")
	}
}

func TestSummarize(t *testing.T) {
	stats := runStats(t, false)
	s := trace.Summarize(stats)
	if s.Scheduler != "Fair" {
		t.Errorf("scheduler = %q", s.Scheduler)
	}
	if s.JobsCompleted != 2 || s.TasksDone != 33 {
		t.Errorf("jobs=%d tasks=%d, want 2/33", s.JobsCompleted, s.TasksDone)
	}
	if s.TotalJoules <= 0 || s.MakespanSec <= 0 || s.MeanJCTSec <= 0 {
		t.Error("empty summary quantities")
	}
	if len(s.TypeJoules) != 2 {
		t.Errorf("type joules entries = %d, want 2", len(s.TypeJoules))
	}
}

func TestWriteSummaryJSON(t *testing.T) {
	stats := runStats(t, false)
	var sb strings.Builder
	if err := trace.WriteSummary(&sb, stats); err != nil {
		t.Fatal(err)
	}
	var decoded trace.Summary
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("summary not valid JSON: %v", err)
	}
	if decoded.Scheduler != "Fair" {
		t.Errorf("round-tripped scheduler = %q", decoded.Scheduler)
	}
}
