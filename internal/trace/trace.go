// Package trace exports simulation results as machine-readable event
// streams for external analysis (plotting the paper's figures with other
// tools, diffing runs, feeding notebooks). Two formats:
//
//   - JSON Lines: one event object per line, schema below.
//   - CSV: the same task records as a flat table.
//
// The stream interleaves three event kinds ordered by virtual time:
// "job" (completion of a job with its phase timeline), "task" (completion
// of a task attempt, when the run kept task records), and "energy" (the
// per-control-tick fleet snapshot).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"eant/internal/mapreduce"
)

// Event is one line of a JSONL trace.
type Event struct {
	// Kind is "job", "task" or "energy".
	Kind string `json:"kind"`
	// At is the event's virtual time in seconds.
	At float64 `json:"at"`

	// Task fields (kind == "task").
	JobID       int     `json:"job_id,omitempty"`
	App         string  `json:"app,omitempty"`
	Class       string  `json:"class,omitempty"`
	TaskKind    string  `json:"task_kind,omitempty"`
	MachineID   int     `json:"machine_id,omitempty"`
	MachineType string  `json:"machine_type,omitempty"`
	StartSec    float64 `json:"start_sec,omitempty"`
	EstJoules   float64 `json:"est_joules,omitempty"`
	TrueJoules  float64 `json:"true_joules,omitempty"`
	Local       bool    `json:"local,omitempty"`

	// Job fields (kind == "job").
	SubmittedSec  float64 `json:"submitted_sec,omitempty"`
	MapsDoneSec   float64 `json:"maps_done_sec,omitempty"`
	ShuffleEndSec float64 `json:"shuffle_end_sec,omitempty"`

	// Energy fields (kind == "energy").
	TotalJoules float64 `json:"total_joules,omitempty"`
	TasksDone   int     `json:"tasks_done,omitempty"`
}

// WriteJSONL streams the run's events in virtual-time order as JSON Lines.
func WriteJSONL(w io.Writer, stats *mapreduce.Stats) error {
	if stats == nil {
		return fmt.Errorf("trace: nil stats")
	}
	events := collect(stats)
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// collect flattens stats into time-ordered events.
func collect(stats *mapreduce.Stats) []Event {
	var events []Event
	for _, t := range stats.Tasks {
		events = append(events, Event{
			Kind:        "task",
			At:          t.Finish.Seconds(),
			JobID:       t.JobID,
			App:         t.App.String(),
			Class:       t.Class.String(),
			TaskKind:    t.Kind.String(),
			MachineID:   t.MachineID,
			MachineType: t.MachineType,
			StartSec:    t.Start.Seconds(),
			EstJoules:   t.EstJoules,
			TrueJoules:  t.TrueJoules,
			Local:       t.Local,
		})
	}
	for _, j := range stats.Jobs {
		events = append(events, Event{
			Kind:          "job",
			At:            j.Finished.Seconds(),
			JobID:         j.Spec.ID,
			App:           j.Spec.App.String(),
			Class:         j.Spec.Class.String(),
			SubmittedSec:  j.Submitted.Seconds(),
			StartSec:      j.FirstStart.Seconds(),
			MapsDoneSec:   j.MapsDoneAt.Seconds(),
			ShuffleEndSec: j.LastShuffleEnd.Seconds(),
		})
	}
	for _, p := range stats.Timeline {
		events = append(events, Event{
			Kind:        "energy",
			At:          p.At.Seconds(),
			TotalJoules: p.TotalJoules,
			TasksDone:   p.TasksDone,
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// WriteTasksCSV writes the per-task records as CSV. The run must have
// been configured with KeepTaskRecords.
func WriteTasksCSV(w io.Writer, stats *mapreduce.Stats) error {
	if stats == nil {
		return fmt.Errorf("trace: nil stats")
	}
	if len(stats.Tasks) == 0 {
		return fmt.Errorf("trace: no task records (run with KeepTaskRecords)")
	}
	if _, err := fmt.Fprintln(w, "job_id,app,class,kind,machine_id,machine_type,start_sec,finish_sec,est_joules,true_joules,local"); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, t := range stats.Tasks {
		_, err := fmt.Fprintf(w, "%d,%s,%s,%s,%d,%s,%.3f,%.3f,%.3f,%.3f,%t\n",
			t.JobID, t.App, t.Class, t.Kind, t.MachineID, t.MachineType,
			t.Start.Seconds(), t.Finish.Seconds(), t.EstJoules, t.TrueJoules, t.Local)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// Summary condenses a run into the quantities most analyses start from.
type Summary struct {
	Scheduler     string             `json:"scheduler"`
	MakespanSec   float64            `json:"makespan_sec"`
	TotalJoules   float64            `json:"total_joules"`
	JobsCompleted int                `json:"jobs_completed"`
	TasksDone     int                `json:"tasks_done"`
	Locality      float64            `json:"locality"`
	TypeJoules    map[string]float64 `json:"type_joules"`
	TypeAvgUtil   map[string]float64 `json:"type_avg_util"`
	MeanJCTSec    float64            `json:"mean_jct_sec"`
}

// Summarize extracts a Summary from run statistics. A nil stats yields
// the zero Summary rather than a panic: callers batching many runs
// shouldn't crash on one missing result.
func Summarize(stats *mapreduce.Stats) Summary {
	if stats == nil {
		return Summary{}
	}
	s := Summary{
		Scheduler:     stats.Scheduler,
		MakespanSec:   stats.Horizon.Seconds(),
		TotalJoules:   stats.TotalJoules,
		JobsCompleted: len(stats.Jobs),
		TasksDone:     stats.TasksDone(),
		Locality:      stats.LocalityFraction(),
		TypeJoules:    stats.TypeJoules,
		TypeAvgUtil:   stats.TypeAvgUtil,
	}
	if len(stats.Jobs) > 0 {
		var sum time.Duration
		for _, j := range stats.Jobs {
			sum += j.CompletionTime()
		}
		s.MeanJCTSec = (sum / time.Duration(len(stats.Jobs))).Seconds()
	}
	return s
}

// WriteSummary emits the summary as a single JSON object.
func WriteSummary(w io.Writer, stats *mapreduce.Stats) error {
	if stats == nil {
		return fmt.Errorf("trace: nil stats")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Summarize(stats)); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}
