package noise

import (
	"math"
	"testing"

	"eant/internal/sim"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := Off().Validate(); err != nil {
		t.Errorf("off config invalid: %v", err)
	}
	bad := []Config{
		{DurationCV: -1},
		{MeasurementCV: -0.1},
		{StragglerProb: 1.5},
		{StragglerProb: 0.1, StragglerMin: 0.5, StragglerMax: 2},
		{StragglerProb: 0.1, StragglerMin: 3, StragglerMax: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEnabled(t *testing.T) {
	if Off().Enabled() {
		t.Error("Off() reports enabled")
	}
	if !Default().Enabled() {
		t.Error("Default() reports disabled")
	}
	if !(Config{MeasurementCV: 0.1}).Enabled() {
		t.Error("measurement-only config reports disabled")
	}
}

func TestNewModelRejectsInvalid(t *testing.T) {
	if _, err := NewModel(Config{DurationCV: -1}, sim.NewRNG(1)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestOffModelIsDeterministic(t *testing.T) {
	m := MustNewModel(Off(), sim.NewRNG(1))
	for i := 0; i < 100; i++ {
		if f := m.DurationFactor(); f != 1 {
			t.Fatalf("DurationFactor = %v with noise off", f)
		}
		if f := m.MeasurementFactor(); f != 1 {
			t.Fatalf("MeasurementFactor = %v with noise off", f)
		}
	}
}

func TestDurationFactorStatistics(t *testing.T) {
	m := MustNewModel(Default(), sim.NewRNG(2))
	const n = 100000
	var sum float64
	stragglers := 0
	for i := 0; i < n; i++ {
		f := m.DurationFactor()
		if f <= 0 {
			t.Fatalf("non-positive duration factor %v", f)
		}
		if f > 1.7 {
			stragglers++
		}
		sum += f
	}
	mean := sum / n
	// Mean ≈ 1 + stragglerProb·(midpoint−1) ≈ 1 + 0.05·1.5 = 1.075.
	if mean < 1.0 || mean > 1.2 {
		t.Errorf("duration factor mean = %.3f, want ≈ 1.075", mean)
	}
	frac := float64(stragglers) / n
	if math.Abs(frac-0.05) > 0.02 {
		t.Errorf("straggler fraction = %.3f, want ≈ 0.05", frac)
	}
}

func TestMeasurementFactorMeanOne(t *testing.T) {
	m := MustNewModel(Default(), sim.NewRNG(3))
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		f := m.MeasurementFactor()
		if f <= 0 {
			t.Fatalf("non-positive measurement factor %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Errorf("measurement factor mean = %.4f, want ≈ 1", mean)
	}
}

func TestModelsWithSameSeedAgree(t *testing.T) {
	a := MustNewModel(Default(), sim.NewRNG(7))
	b := MustNewModel(Default(), sim.NewRNG(7))
	for i := 0; i < 1000; i++ {
		if a.DurationFactor() != b.DurationFactor() {
			t.Fatal("identically-seeded models diverged")
		}
	}
}
