// Package noise injects the "system noise" the paper defines in §IV-D:
// transient, anomalous task behaviour attributed to data skew, network
// congestion and similar effects. It manifests as (a) multiplicative jitter
// on task duration, (b) straggler tasks running several times slower than
// expected, and (c) fluctuation in the CPU-utilization samples the
// TaskTracker reports, which corrupts the Eq. 2 energy estimate. The
// exchange strategies (machine-level, job-level) exist to average this
// noise away; Figs. 7, 10 and 11 quantify it.
package noise

import (
	"fmt"

	"eant/internal/sim"
)

// Config parameterizes the noise model. The zero value disables all noise.
type Config struct {
	// DurationCV is the coefficient of variation of the mean-1 lognormal
	// factor applied to every task's service time (data skew).
	DurationCV float64
	// StragglerProb is the probability that a task becomes a straggler.
	StragglerProb float64
	// StragglerMin/Max bound the uniform slowdown factor of stragglers.
	// The paper's Fig. 7 shows spikes around 2–3× the median energy.
	StragglerMin float64
	StragglerMax float64
	// MeasurementCV is the coefficient of variation of the mean-1
	// lognormal factor applied to reported CPU-utilization samples
	// (metering/heartbeat fluctuation). It corrupts estimates only, never
	// true power draw.
	MeasurementCV float64
}

// Default is the calibration used by the evaluation experiments: enough
// noise that per-task energy estimates scatter like Fig. 7 (occasional
// ≈ 3× spikes) and single-interval feedback is unreliable, but the
// underlying machine ordering stays recoverable by averaging.
func Default() Config {
	return Config{
		DurationCV:    0.15,
		StragglerProb: 0.05,
		StragglerMin:  1.8,
		StragglerMax:  3.2,
		MeasurementCV: 0.10,
	}
}

// Off returns the no-noise configuration.
func Off() Config { return Config{} }

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.DurationCV < 0 || c.MeasurementCV < 0:
		return fmt.Errorf("noise: negative coefficient of variation")
	case c.StragglerProb < 0 || c.StragglerProb > 1:
		return fmt.Errorf("noise: straggler probability %v outside [0,1]", c.StragglerProb)
	case c.StragglerProb > 0 && (c.StragglerMin < 1 || c.StragglerMax < c.StragglerMin):
		return fmt.Errorf("noise: straggler factor bounds [%v,%v] invalid", c.StragglerMin, c.StragglerMax)
	}
	return nil
}

// Enabled reports whether any noise source is active.
func (c Config) Enabled() bool {
	return c.DurationCV > 0 || c.StragglerProb > 0 || c.MeasurementCV > 0
}

// Model draws noise factors from a dedicated RNG stream.
type Model struct {
	cfg Config
	rng *sim.RNG
}

// NewModel returns a noise model; cfg must validate.
func NewModel(cfg Config, rng *sim.RNG) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, rng: rng}, nil
}

// MustNewModel is NewModel for static configurations.
func MustNewModel(cfg Config, rng *sim.RNG) *Model {
	m, err := NewModel(cfg, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Reset reconfigures the model in place and rewinds its RNG stream to the
// given seed, exactly reproducing a fresh NewModel(cfg, NewRNG(seed)).
func (m *Model) Reset(cfg Config, seed int64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m.cfg = cfg
	m.rng.Reseed(seed)
	return nil
}

// StragglerCapSeconds bounds the absolute extra delay a straggler adds.
// Hadoop's speculative execution re-runs tasks that fall far behind, so a
// straggler can never stretch a long task unboundedly; 300 s of added
// delay models the window before a speculative copy would overtake it.
const StragglerCapSeconds = 300

// DurationFactor draws the service-time multiplier for one task: mean-1
// jitter, stretched further if the task straggles. Always ≥ a small
// positive bound so durations stay positive. Equivalent to
// DurationFactorFor with a short base duration.
func (m *Model) DurationFactor() float64 {
	return m.DurationFactorFor(1)
}

// DurationFactorFor draws the service-time multiplier for a task whose
// noise-free duration is baseSecs. Straggler stretch is multiplicative for
// short tasks but capped at StragglerCapSeconds of absolute delay, the
// effect speculative execution has on long-running stragglers.
func (m *Model) DurationFactorFor(baseSecs float64) float64 {
	f := m.rng.NoiseFactor(m.cfg.DurationCV)
	if m.rng.Bernoulli(m.cfg.StragglerProb) {
		stretch := m.rng.Uniform(m.cfg.StragglerMin, m.cfg.StragglerMax)
		extra := (stretch - 1) * baseSecs
		if baseSecs > 0 && extra > StragglerCapSeconds {
			stretch = 1 + StragglerCapSeconds/baseSecs
		}
		f *= stretch
	}
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// MeasurementFactor draws the multiplier applied to one reported
// CPU-utilization sample.
func (m *Model) MeasurementFactor() float64 {
	return m.rng.NoiseFactor(m.cfg.MeasurementCV)
}
