// Package mapreduce simulates the Hadoop 1.x execution substrate the paper
// modifies: jobs split into map and reduce tasks, TaskTracker slots,
// 3-second heartbeats, multi-wave task execution, the shuffle barrier, and
// task-level CPU/energy reporting. The Driver plays the JobTracker: it owns
// the virtual clock, submits jobs, serves heartbeats through a pluggable
// Scheduler, and accounts energy through the power meter.
package mapreduce

import (
	"fmt"
	"sort"
	"time"

	"eant/internal/cluster"
	"eant/internal/sim"
	"eant/internal/workload"
)

// simEventHandle aliases the engine's cancellable-event handle.
type simEventHandle = sim.EventHandle

// TaskKind distinguishes map from reduce tasks.
type TaskKind int

// Task kinds.
const (
	MapTask TaskKind = iota + 1
	ReduceTask
)

// String returns "map" or "reduce".
func (k TaskKind) String() string {
	switch k {
	case MapTask:
		return "map"
	case ReduceTask:
		return "reduce"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// TaskState is the lifecycle of a task.
type TaskState int

// Task states. Reduce tasks pass through Shuffling before Running when they
// are assigned ahead of the job's map barrier. TaskKilled marks the losing
// attempt of a speculative pair.
const (
	TaskPending TaskState = iota + 1
	TaskShuffling
	TaskRunning
	TaskDone
	TaskKilled
)

// Task is one map or reduce attempt. Speculative execution (the LATE
// scheduler) clones a straggling attempt; the original and the clone are
// linked, the first to finish wins, and the driver kills the other.
type Task struct {
	Job   *Job
	Index int
	Kind  TaskKind

	// InputMB is split input for maps, shuffle volume for reduces.
	InputMB float64

	State   TaskState
	Machine cluster.Machine
	Local   bool // map read its block from local disk

	Start  time.Duration
	Finish time.Duration
	// computeStart is when the compute phase began: Start for maps, the
	// shuffle→compute transition for reduces. Straggler detection
	// measures from here so barrier waits don't look like slowness.
	computeStart time.Duration

	// shuffleSecs/computeSecs decompose a reduce's service time; maps use
	// computeSecs only. Set at assignment.
	shuffleSecs float64
	computeSecs float64

	// trueUtil is the whole-machine CPU share the task occupies while in
	// its compute phase; shuffleUtil during the shuffle phase.
	trueUtil    float64
	shuffleUtil float64

	// EstJoules is the Eq. 2 energy estimate reported on completion.
	// TrueJoules is the noise-free marginal energy (idle share + dynamic),
	// kept for accuracy experiments.
	EstJoules  float64
	TrueJoules float64

	// original links a speculative clone back to the straggling attempt
	// it races; clone links the original forward. pendingEvent is the
	// task's next scheduled event (phase change or completion), cancelled
	// when the task loses the race.
	original     *Task
	clone        *Task
	pendingEvent simEventHandle

	// failures counts this logical task's failed attempts (fault
	// injection); kept on the canonical task, never on clones. doomed
	// marks an attempt the fault model has decided will fail mid-flight.
	failures int
	doomed   bool
}

// ComputeStart returns when the attempt's compute phase began.
func (t *Task) ComputeStart() time.Duration { return t.computeStart }

// Speculative reports whether the task is a speculative clone.
func (t *Task) Speculative() bool { return t.original != nil }

// HasClone reports whether a speculative copy of this task is in flight.
func (t *Task) HasClone() bool { return t.clone != nil }

// Failures returns how many attempts of this logical task have failed.
func (t *Task) Failures() int { return t.failures }

// resetForRetry returns a finished, killed or crashed task to the pending
// state so it can be assigned again. Race links must be dissolved first.
func (t *Task) resetForRetry() {
	if t.clone != nil || t.original != nil {
		panic(fmt.Sprintf("mapreduce: retry of %s with live race link", t.ID()))
	}
	t.State = TaskPending
	t.Machine = cluster.Machine{}
	t.Local = false
	t.Start = 0
	t.Finish = 0
	t.computeStart = 0
	t.shuffleSecs = 0
	t.computeSecs = 0
	t.trueUtil = 0
	t.shuffleUtil = 0
	t.EstJoules = 0
	t.TrueJoules = 0
	t.doomed = false
	t.pendingEvent = simEventHandle{}
}

// ID returns a stable task identifier: "job3/map/17".
func (t *Task) ID() string {
	return fmt.Sprintf("job%d/%s/%d", t.Job.Spec.ID, t.Kind, t.Index) //eant:alloc-ok diagnostic identifier, built on retry/trace paths only
}

// Duration returns the task's total service time; valid once done.
func (t *Task) Duration() time.Duration { return t.Finish - t.Start }

// currentUtil returns the machine share the task contributes in the given
// state.
func (t *Task) currentUtil(st TaskState) float64 {
	if st == TaskShuffling {
		return t.shuffleUtil
	}
	return t.trueUtil
}

// Job is a submitted MapReduce job with its task lists and progress
// counters.
type Job struct {
	Spec workload.JobSpec

	Maps    []*Task
	Reduces []*Task

	Submitted time.Duration
	// FirstStart is when the first task began executing.
	FirstStart time.Duration
	// MapsDoneAt is when the last map finished (the shuffle barrier).
	MapsDoneAt time.Duration
	// LastShuffleEnd is when the last reduce finished its shuffle phase.
	LastShuffleEnd time.Duration
	// Finished is when the last task completed.
	Finished time.Duration

	mapsDone    int
	reducesDone int
	started     bool
	done        bool
	failed      bool

	// pendingMaps is a FIFO of map indices not yet assigned; head advances
	// past assigned entries lazily.
	pendingMaps []int
	pendingHead int
	// localPending indexes pending map tasks by machine holding a replica.
	// Entries go stale when a task is assigned elsewhere; consumers skip
	// non-pending tasks when popping.
	localPending map[int][]int
	// pendingReduces is a FIFO of reduce indices not yet assigned.
	pendingReduces []int
	reduceHead     int
	// mapReplicas retains each map's block replica locations so retried
	// tasks re-enter the locality index (the data survives a TaskTracker
	// crash on the other replicas).
	mapReplicas [][]int

	// runningByMachine counts this job's running tasks per machine,
	// maintained for slot-fairness heuristics.
	runningByMachine map[int]int
	running          int
	// runningSet tracks in-flight attempts (originals and speculative
	// clones) for the speculation scan.
	runningSet map[*Task]struct{}

	// reduceGateOpen caches whether MapProgress has passed the slowstart
	// threshold, so the ready-pending-reduce aggregate knows which jobs'
	// pending reduces count as schedulable. Synced by Driver.syncReduceGate
	// at submit, map completion, and lost-map re-execution (progress can
	// move backwards).
	reduceGateOpen bool
	// reduceEst memoizes EstimateReduceSeconds per machine type: shuffle
	// volume and profile are fixed at submission, so the estimate is static
	// per (job, type). Allocated lazily on first estimate.
	reduceEst map[*cluster.TypeSpec]float64
}

// newJob materializes tasks for a spec. Block replica locations are
// supplied per map index via replicasOf (from the HDFS namespace).
func newJob(spec workload.JobSpec, replicasOf func(block int) []int) *Job {
	j := &Job{
		Spec:             spec,
		localPending:     make(map[int][]int),
		runningByMachine: make(map[int]int),
		runningSet:       make(map[*Task]struct{}),
	}
	// Tasks are batch-allocated: one backing array per kind instead of one
	// heap object per task. The arrays are never resized, so the *Task
	// pointers handed out below stay valid for the job's lifetime
	// (speculative clones are separate allocations made at clone time).
	j.Maps = make([]*Task, spec.NumMaps)
	j.pendingMaps = make([]int, spec.NumMaps)
	j.mapReplicas = make([][]int, spec.NumMaps)
	maps := make([]Task, spec.NumMaps)
	for i := 0; i < spec.NumMaps; i++ {
		maps[i] = Task{
			Job:     j,
			Index:   i,
			Kind:    MapTask,
			InputMB: spec.MapInputMB(i),
			State:   TaskPending,
		}
		j.Maps[i] = &maps[i] //eant:retain-ok batch array sized to NumMaps above and never appended to
		j.pendingMaps[i] = i
		j.mapReplicas[i] = replicasOf(i)
		for _, machineID := range j.mapReplicas[i] {
			j.localPending[machineID] = append(j.localPending[machineID], i)
		}
	}
	j.Reduces = make([]*Task, spec.NumReduces)
	j.pendingReduces = make([]int, spec.NumReduces)
	reduces := make([]Task, spec.NumReduces)
	for i := 0; i < spec.NumReduces; i++ {
		reduces[i] = Task{
			Job:     j,
			Index:   i,
			Kind:    ReduceTask,
			InputMB: spec.ShuffleMBPerReduce(),
			State:   TaskPending,
		}
		j.Reduces[i] = &reduces[i] //eant:retain-ok batch array sized to NumReduces above and never appended to
		j.pendingReduces[i] = i
	}
	return j
}

// Done reports whether every task has completed.
func (j *Job) Done() bool { return j.done }

// Failed reports whether the job was failed (a task exhausted its retry
// budget under fault injection).
func (j *Job) Failed() bool { return j.failed }

// MapsDone reports whether the map phase is complete (shuffle barrier
// lifted).
func (j *Job) MapsDone() bool { return j.mapsDone == len(j.Maps) }

// MapProgress returns the completed-map fraction in [0, 1].
func (j *Job) MapProgress() float64 {
	if len(j.Maps) == 0 {
		return 1
	}
	return float64(j.mapsDone) / float64(len(j.Maps))
}

// PendingMaps returns the number of unassigned map tasks.
func (j *Job) PendingMaps() int { return len(j.pendingMaps) - j.pendingHead }

// PendingReduces returns the number of unassigned reduce tasks.
func (j *Job) PendingReduces() int { return len(j.pendingReduces) - j.reduceHead }

// Running returns the number of currently executing tasks.
func (j *Job) Running() int { return j.running }

// RunningOn returns the number of this job's tasks executing on machine id.
func (j *Job) RunningOn(machineID int) int { return j.runningByMachine[machineID] }

// popLocalMap removes and returns a pending map task with a replica on
// machineID, or nil.
func (j *Job) popLocalMap(machineID int) *Task {
	queue := j.localPending[machineID]
	for len(queue) > 0 {
		idx := queue[0]
		queue = queue[1:]
		if t := j.Maps[idx]; t.State == TaskPending {
			j.localPending[machineID] = queue
			return t
		}
	}
	j.localPending[machineID] = nil
	return nil
}

// popAnyMap removes and returns the oldest pending map task, or nil.
func (j *Job) popAnyMap() *Task {
	for j.pendingHead < len(j.pendingMaps) {
		idx := j.pendingMaps[j.pendingHead]
		j.pendingHead++
		if t := j.Maps[idx]; t.State == TaskPending {
			return t
		}
	}
	return nil
}

// peekPendingLocalMap reports whether a pending map task has a replica on
// machineID, without consuming it.
func (j *Job) peekPendingLocalMap(machineID int) bool {
	queue := j.localPending[machineID]
	for _, idx := range queue {
		if j.Maps[idx].State == TaskPending {
			return true
		}
	}
	return false
}

// popReduce removes and returns the next pending reduce task, or nil.
func (j *Job) popReduce() *Task {
	for j.reduceHead < len(j.pendingReduces) {
		idx := j.pendingReduces[j.reduceHead]
		j.reduceHead++
		if t := j.Reduces[idx]; t.State == TaskPending {
			return t
		}
	}
	return nil
}

// RunningAttempts returns the job's in-flight attempts of one kind,
// ordered by (task index, speculative flag) for deterministic iteration.
func (j *Job) RunningAttempts(kind TaskKind) []*Task {
	out := make([]*Task, 0, len(j.runningSet)) //eant:alloc-ok speculation/recovery scan, per control tick at most
	for t := range j.runningSet {
		if t.Kind == kind {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(a, b int) bool { //eant:alloc-ok speculation/recovery scan, per control tick at most
		if out[a].Index != out[b].Index {
			return out[a].Index < out[b].Index
		}
		return !out[a].Speculative() && out[b].Speculative()
	})
	return out
}

// requeueRetry returns a reset task to the pending pools after an attempt
// failure, machine crash, or lost map output. Unlike requeue (which undoes
// a same-heartbeat pop), retried maps also re-enter the locality index:
// their input block still has replicas on the surviving machines.
func (j *Job) requeueRetry(t *Task) {
	if t.State != TaskPending {
		panic(fmt.Sprintf("mapreduce: retry requeue of %s in state %d", t.ID(), t.State))
	}
	if t.Kind == MapTask {
		j.pendingMaps = append(j.pendingMaps, t.Index)
		for _, machineID := range j.mapReplicas[t.Index] {
			j.localPending[machineID] = append(j.localPending[machineID], t.Index)
		}
	} else {
		j.pendingReduces = append(j.pendingReduces, t.Index)
	}
}

// requeue returns a popped task to its pending pool (a scheduler chose a
// job but then declined the assignment).
func (j *Job) requeue(t *Task) {
	if t.State != TaskPending {
		panic(fmt.Sprintf("mapreduce: requeue of %s in state %d", t.ID(), t.State))
	}
	if t.Kind == MapTask {
		// Prepend by resetting head if possible, else append.
		if j.pendingHead > 0 {
			j.pendingHead--
			j.pendingMaps[j.pendingHead] = t.Index
		} else {
			j.pendingMaps = append(j.pendingMaps, t.Index)
		}
	} else {
		if j.reduceHead > 0 {
			j.reduceHead--
			j.pendingReduces[j.reduceHead] = t.Index
		} else {
			j.pendingReduces = append(j.pendingReduces, t.Index)
		}
	}
}
