package mapreduce_test

import (
	"reflect"
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/fault"
	"eant/internal/mapreduce"
	"eant/internal/sched"
	"eant/internal/workload"
)

// eagerCloner is a pathological speculation policy for race/fault
// interaction tests: before assigning fresh work it clones any running
// map attempt hosted on a different machine, forcing the driver to
// resolve a speculation race for nearly every map — including races whose
// members die to attempt failures or machine crashes mid-flight.
type eagerCloner struct {
	inner mapreduce.Scheduler
}

func (s *eagerCloner) Name() string { return "eager-clone" }

func (s *eagerCloner) AssignMap(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	for _, j := range ctx.ActiveJobs() {
		for _, t := range j.RunningAttempts(mapreduce.MapTask) {
			if t.Machine.Valid() && t.Machine.ID() != m.ID() {
				if c := ctx.CloneForSpeculation(t); c != nil {
					return c
				}
			}
		}
	}
	return s.inner.AssignMap(ctx, m)
}

func (s *eagerCloner) AssignReduce(ctx *mapreduce.Context, m cluster.Machine) *mapreduce.Task {
	return s.inner.AssignReduce(ctx, m)
}

func (s *eagerCloner) OnTaskComplete(ctx *mapreduce.Context, t *mapreduce.Task) {
	s.inner.OnTaskComplete(ctx, t)
}

func (s *eagerCloner) OnControlTick(ctx *mapreduce.Context) { s.inner.OnControlTick(ctx) }

// TestSpeculationSurvivesAttemptFailures kills race members with attempt
// failures: an original may die while its clone runs (the clone must
// finish the task alone) and a clone may die while the original runs. The
// job must complete every logical task exactly once with no slot leaks.
func TestSpeculationSurvivesAttemptFailures(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.Seed = 9
	cfg.Fault = fault.Config{TaskFailProb: 0.25, MaxAttempts: 100}
	c := smallCluster()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Terasort, 3200, 2, 0)}
	stats := run(t, c, &eagerCloner{inner: sched.NewFair()}, cfg, jobs)

	if stats.SpeculativeStarted == 0 || stats.TaskFailures == 0 {
		t.Fatalf("test inert: %d clones, %d failures", stats.SpeculativeStarted, stats.TaskFailures)
	}
	if len(stats.Jobs) != 1 || stats.Jobs[0].Failed {
		t.Fatalf("job did not complete: %+v", stats.Jobs)
	}
	if got, want := stats.TasksDone(), 50+2; got != want {
		t.Errorf("TasksDone = %d, want %d — a race member double-counted or a task was dropped", got, want)
	}
	checkClusterQuiescent(t, c)
}

// TestSpeculationSurvivesCrashes crashes machines under heavy speculation:
// crashes can kill an original while its clone runs elsewhere, kill a
// clone, or sweep both race members at one instant. Everything must
// resolve without leaking slots or dropping tasks.
func TestSpeculationSurvivesCrashes(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.Seed = 13
	cfg.Fault = fault.Config{
		MachineMTBF: 90 * time.Second,
		MachineMTTR: 30 * time.Second,
	}
	c := smallCluster()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Terasort, 3200, 2, 0)}
	stats := run(t, c, &eagerCloner{inner: sched.NewFair()}, cfg, jobs)

	if stats.SpeculativeStarted == 0 || stats.Crashes == 0 {
		t.Fatalf("test inert: %d clones, %d crashes", stats.SpeculativeStarted, stats.Crashes)
	}
	if len(stats.Jobs) != 1 || stats.Jobs[0].Failed {
		t.Fatalf("job did not complete: %+v", stats.Jobs)
	}
	// Map outputs may legitimately be re-executed after crashes, so the
	// completion tally is the task count plus re-executions, never less.
	if got, min := stats.TasksDone(), 50+2; got < min {
		t.Errorf("TasksDone = %d, want >= %d", got, min)
	}
	checkClusterQuiescent(t, c)
}

// TestSpeculationWithFaultsIsDeterministic runs the full pathological mix
// — eager cloning, attempt failures, and machine churn — twice and demands
// bit-identical statistics.
func TestSpeculationWithFaultsIsDeterministic(t *testing.T) {
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Terasort, 3200, 2, 0)}
	mk := func() *mapreduce.Stats {
		cfg := mapreduce.DefaultConfig()
		cfg.Seed = 21
		cfg.KeepTaskRecords = true
		cfg.Fault = fault.Config{
			MachineMTBF:  2 * time.Minute,
			MachineMTTR:  30 * time.Second,
			TaskFailProb: 0.1,
			MaxAttempts:  100,
		}
		return run(t, smallCluster(), &eagerCloner{inner: sched.NewFair()}, cfg, jobs)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("speculation+faults nondeterministic: joules %v vs %v, horizon %v vs %v",
			a.TotalJoules, b.TotalJoules, a.Horizon, b.Horizon)
	}
}
