package mapreduce_test

import (
	"testing"
	"time"

	"eant/internal/fault"
	"eant/internal/mapreduce"
	"eant/internal/noise"
	"eant/internal/sched"
)

// FuzzConfigValidate throws arbitrary knob combinations at the driver
// configuration: Validate must never panic, and any configuration it
// accepts must construct a driver without panicking (setDefaults has to
// repair every degenerate-but-valid value Validate lets through).
func FuzzConfigValidate(f *testing.F) {
	f.Add(int64(3_000_000_000), int64(300_000_000_000), 1.0, -1.0, 0.0, 0.0, int64(0), int64(0), 0.0, 0, 0, int64(0), int64(1), int64(30_000_000_000), 1)
	f.Add(int64(-5), int64(0), 1.5, 2.0, 0.5, 2.0, int64(60_000_000_000), int64(-1), 1.1, -4, 2, int64(-1), int64(7), int64(0), -3)
	f.Add(int64(1), int64(1), 0.0, 0.0, -0.1, 0.9, int64(600_000_000_000), int64(120_000_000_000), 0.02, 4, 3, int64(600_000_000_000), int64(42), int64(1), 1)
	f.Fuzz(func(t *testing.T,
		heartbeat, controlInterval int64,
		slowstart, forcedLocal, durationCV, stragglerProb float64,
		mtbf, mttr int64, taskFailProb float64,
		maxAttempts, blacklistThreshold int, blacklistCooldown int64,
		seed, idleTimeout int64, coveringPerType int,
	) {
		cfg := mapreduce.Config{
			Heartbeat:           time.Duration(heartbeat),
			ControlInterval:     time.Duration(controlInterval),
			Slowstart:           slowstart,
			ForcedLocalFraction: forcedLocal,
			Seed:                seed,
			Noise: noise.Config{
				DurationCV:    durationCV,
				StragglerProb: stragglerProb,
				StragglerMin:  1,
				StragglerMax:  2,
			},
			Power: mapreduce.PowerMgmt{
				Enabled:         coveringPerType >= 0,
				IdleTimeout:     time.Duration(idleTimeout),
				CoveringPerType: coveringPerType,
			},
			Fault: fault.Config{
				MachineMTBF:        time.Duration(mtbf),
				MachineMTTR:        time.Duration(mttr),
				TaskFailProb:       taskFailProb,
				MaxAttempts:        maxAttempts,
				BlacklistThreshold: blacklistThreshold,
				BlacklistCooldown:  time.Duration(blacklistCooldown),
			},
		}
		if err := cfg.Validate(); err != nil {
			return // rejected configurations need no further guarantees
		}
		if _, err := mapreduce.NewDriver(smallCluster(), sched.NewFIFO(), cfg); err != nil {
			t.Fatalf("Validate accepted a config NewDriver rejects: %v (%+v)", err, cfg)
		}
	})
}
