package mapreduce

import (
	"testing"

	"eant/internal/workload"
)

func replicasAll(machines int) func(int) []int {
	ids := make([]int, machines)
	for i := range ids {
		ids[i] = i
	}
	return func(int) []int { return ids }
}

func TestTaskKindString(t *testing.T) {
	if MapTask.String() != "map" || ReduceTask.String() != "reduce" {
		t.Error("TaskKind.String mismatch")
	}
	if TaskKind(9).String() != "TaskKind(9)" {
		t.Error("unknown kind string mismatch")
	}
}

func TestNewJobMaterializesTasks(t *testing.T) {
	spec := workload.NewJobSpec(1, workload.Wordcount, 320, 3, 0) // 5 maps
	j := newJob(spec, replicasAll(2))
	if len(j.Maps) != 5 || len(j.Reduces) != 3 {
		t.Fatalf("tasks = %d maps, %d reduces; want 5, 3", len(j.Maps), len(j.Reduces))
	}
	if j.PendingMaps() != 5 || j.PendingReduces() != 3 {
		t.Error("pending counts wrong at creation")
	}
	if j.MapProgress() != 0 {
		t.Error("map progress should start at 0")
	}
	for i, task := range j.Maps {
		if task.Index != i || task.Kind != MapTask || task.State != TaskPending {
			t.Fatalf("map %d misconstructed: %+v", i, task)
		}
	}
	if j.Maps[0].InputMB != 64 {
		t.Errorf("map input = %v, want 64", j.Maps[0].InputMB)
	}
}

func TestPopLocalMapSkipsStaleEntries(t *testing.T) {
	spec := workload.NewJobSpec(1, workload.Grep, 192, 0, 0) // 3 maps
	j := newJob(spec, replicasAll(1))
	// Assign task 0 via popAnyMap, making machine 0's local entry stale.
	first := j.popAnyMap()
	first.State = TaskRunning
	local := j.popLocalMap(0)
	if local == nil || local.Index == first.Index {
		t.Fatalf("popLocalMap returned %v, want a fresh pending task", local)
	}
}

func TestPopAnyMapExhausts(t *testing.T) {
	spec := workload.NewJobSpec(1, workload.Grep, 128, 0, 0) // 2 maps
	j := newJob(spec, replicasAll(1))
	a, b := j.popAnyMap(), j.popAnyMap()
	if a == nil || b == nil || a == b {
		t.Fatal("popAnyMap did not return distinct tasks")
	}
	if j.popAnyMap() != nil {
		t.Error("popAnyMap returned task from empty queue")
	}
	if j.PendingMaps() != 0 {
		t.Errorf("PendingMaps = %d after exhausting", j.PendingMaps())
	}
}

func TestPeekPendingLocalMap(t *testing.T) {
	spec := workload.NewJobSpec(1, workload.Grep, 64, 0, 0)
	j := newJob(spec, func(int) []int { return []int{2} })
	if !j.peekPendingLocalMap(2) {
		t.Error("peek missed local pending task")
	}
	if j.peekPendingLocalMap(0) {
		t.Error("peek found local task on machine without replica")
	}
	j.Maps[0].State = TaskRunning
	if j.peekPendingLocalMap(2) {
		t.Error("peek found task that is no longer pending")
	}
}

func TestRequeueRestoresTask(t *testing.T) {
	spec := workload.NewJobSpec(1, workload.Terasort, 128, 2, 0)
	j := newJob(spec, replicasAll(1))
	task := j.popAnyMap()
	if j.PendingMaps() != 1 {
		t.Fatal("pop did not consume")
	}
	j.requeue(task)
	if j.PendingMaps() != 2 {
		t.Error("requeue did not restore map")
	}
	r := j.popReduce()
	j.requeue(r)
	if j.PendingReduces() != 2 {
		t.Error("requeue did not restore reduce")
	}
}

func TestRequeueNonPendingPanics(t *testing.T) {
	spec := workload.NewJobSpec(1, workload.Grep, 64, 0, 0)
	j := newJob(spec, replicasAll(1))
	task := j.popAnyMap()
	task.State = TaskRunning
	defer func() {
		if recover() == nil {
			t.Error("requeue of running task did not panic")
		}
	}()
	j.requeue(task)
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Slowstart = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("slowstart > 1 accepted")
	}
	bad = DefaultConfig()
	bad.ForcedLocalFraction = 2
	if err := bad.Validate(); err == nil {
		t.Error("forced local fraction > 1 accepted")
	}
}

func TestJobResultPhaseSpans(t *testing.T) {
	r := JobResult{
		Submitted:      0,
		FirstStart:     10e9,
		MapsDoneAt:     70e9,
		LastShuffleEnd: 100e9,
		Finished:       130e9,
	}
	if got := r.MapSeconds(); got != 60 {
		t.Errorf("MapSeconds = %v, want 60", got)
	}
	if got := r.ShuffleSeconds(); got != 30 {
		t.Errorf("ShuffleSeconds = %v, want 30", got)
	}
	if got := r.ReduceSeconds(); got != 30 {
		t.Errorf("ReduceSeconds = %v, want 30", got)
	}
	if got := r.CompletionTime(); got.Seconds() != 130 {
		t.Errorf("CompletionTime = %v, want 130s", got)
	}
}
