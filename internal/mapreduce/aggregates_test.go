package mapreduce_test

import (
	"testing"
	"time"

	"eant/internal/core"
	"eant/internal/fault"
	"eant/internal/mapreduce"
	"eant/internal/workload"
)

// TestAggregateInvariantsUnderCombinedStress is the dedicated invariant
// campaign for the driver's incremental aggregates: consolidation
// (sleep/wake), random machine crashes and recoveries, attempt failures
// with blacklisting, and E-Ant assignment (which exercises the
// slot-observer and awake-slot paths) all in one run. The run() helper
// enables Driver.EnableInvariantChecks, so every mutating event — task
// start/finish, kill, crash, recover, blacklist, sleep, wake, requeue,
// job completion — is followed by a full recompute-and-compare of the
// pending counters and per-availability-class slot buckets.
func TestAggregateInvariantsUnderCombinedStress(t *testing.T) {
	eant, err := core.NewEAnt(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mapreduce.DefaultConfig()
	cfg.Seed = 17
	cfg.Power = mapreduce.PowerMgmt{
		Enabled:     true,
		IdleTimeout: 20 * time.Second,
	}
	cfg.Fault = fault.Config{
		MachineMTBF:        4 * time.Minute,
		MachineMTTR:        45 * time.Second,
		TaskFailProb:       0.15,
		MaxAttempts:        100,
		BlacklistThreshold: 2,
		BlacklistCooldown:  time.Minute,
	}
	c := smallCluster()
	jobs := []workload.JobSpec{
		workload.NewJobSpec(0, workload.Terasort, 3200, 3, 0),
		workload.NewJobSpec(1, workload.Wordcount, 1920, 2, 30*time.Second),
		workload.NewJobSpec(2, workload.Grep, 1280, 0, time.Minute),
	}
	stats := run(t, c, eant, cfg, jobs)

	// The campaign must actually have exercised the transitions it claims
	// to cover; a quiet run would make the invariant sweep vacuous.
	if stats.Crashes == 0 || stats.Recoveries == 0 {
		t.Errorf("no machine churn: %d crashes, %d recoveries", stats.Crashes, stats.Recoveries)
	}
	if stats.TaskFailures == 0 {
		t.Error("no attempt failures fired")
	}
	if stats.Sleeps == 0 {
		t.Error("consolidation never put a machine to sleep")
	}
	if len(stats.Jobs) != len(jobs) {
		t.Fatalf("finished %d/%d jobs", len(stats.Jobs), len(jobs))
	}
	checkClusterQuiescent(t, c)
}
