package mapreduce

import (
	"fmt"
	"math"
	"time"

	"eant/internal/cluster"
	"eant/internal/fault"
	"eant/internal/hdfs"
	"eant/internal/noise"
	"eant/internal/power"
	"eant/internal/probe"
	"eant/internal/sim"
	"eant/internal/workload"
)

// Config parameterizes a simulated cluster run.
type Config struct {
	// Heartbeat is the TaskTracker reporting period and the granularity
	// Δt of the Eq. 2 energy estimator. Hadoop's default is 3 s (§IV-B).
	Heartbeat time.Duration
	// ControlInterval is E-Ant's policy-refresh period (§V-B: 5 min).
	ControlInterval time.Duration
	// Slowstart is the completed-map fraction after which a job's reduces
	// become schedulable. 1.0 (default) waits for the full map barrier.
	Slowstart float64
	// Noise configures system-noise injection.
	Noise noise.Config
	// Replication is the HDFS replica count (default 3).
	Replication int
	// Seed drives every random stream in the run.
	Seed int64
	// KeepTaskRecords retains a TaskRecord per completed task.
	KeepTaskRecords bool
	// KeepAssignmentHistory retains per-interval assignment snapshots.
	KeepAssignmentHistory bool
	// ForcedLocalFraction, when in [0, 1], overrides HDFS lookups: each
	// map task is local with this probability. Used by the Fig. 6
	// data-locality study. Negative (default) uses real placement.
	ForcedLocalFraction float64
	// NetShareDivisor models NIC and switch sharing: a task's transfer
	// bandwidth is NetMBps/NetShareDivisor. The default 16 reflects a
	// busy GbE fabric where remote map reads roughly double a task's
	// service time — the regime behind the paper's Fig. 6 (10 % → 80 %
	// locality nearly halves completion time).
	NetShareDivisor float64
	// ComputeOnlyTypes lists machine types that run no DataNode: HDFS
	// never places replicas there, so all their map input is remote.
	ComputeOnlyTypes []string
	// Power enables server consolidation (the paper's §VIII future
	// work): idle machines outside the covering subset power down.
	Power PowerMgmt
	// Fault configures machine-crash and task-failure injection. The zero
	// value is a strict no-op: nothing is scheduled and no random draws
	// are made, so disabled runs are byte-identical to pre-fault builds.
	Fault fault.Config
	// Probe, when non-nil, receives live observability events (offers,
	// draws, assignments, completions, control ticks, machine samples).
	// The probe is a pure observer: it draws no randomness, schedules no
	// events and never syncs the power meter, so instrumented runs produce
	// bit-identical Stats to uninstrumented ones (golden-enforced). Nil
	// disables all instrumentation at zero cost.
	Probe *probe.Probe
}

// PowerMgmt configures server consolidation, modeled after the covering-
// subset scheme of Leverich & Kozyrakis (the paper's [13]): a subset of
// machines holding one replica of every block stays always on; any other
// machine that sits fully idle for IdleTimeout powers down to SleepWatts
// and wakes — paying WakeLatency before its next task starts — when the
// scheduler assigns to it again.
type PowerMgmt struct {
	// Enabled turns consolidation on.
	Enabled bool
	// IdleTimeout is how long a machine must be fully idle before it
	// sleeps. Default 30 s.
	IdleTimeout time.Duration
	// WakeLatency delays the first task after a wake (resume from
	// suspend). Default 10 s.
	WakeLatency time.Duration
	// SleepWatts is the standby draw. Default 3 W.
	SleepWatts float64
	// CoveringPerType is how many machines of each hardware type stay
	// always on and hold the covering replicas. Default 1.
	CoveringPerType int
}

func (p *PowerMgmt) setDefaults() {
	if p.IdleTimeout <= 0 {
		p.IdleTimeout = 30 * time.Second
	}
	if p.WakeLatency <= 0 {
		p.WakeLatency = 10 * time.Second
	}
	if p.SleepWatts <= 0 {
		p.SleepWatts = 3
	}
	if p.CoveringPerType <= 0 {
		p.CoveringPerType = 1
	}
}

// DefaultConfig returns the paper's setup: 3 s heartbeats, 5 min control
// interval, full map barrier, replication 3, no noise.
func DefaultConfig() Config {
	return Config{
		Heartbeat:           3 * time.Second,
		ControlInterval:     5 * time.Minute,
		Slowstart:           1.0,
		Replication:         hdfs.DefaultReplication,
		ForcedLocalFraction: -1,
		NetShareDivisor:     16,
	}
}

func (c *Config) setDefaults() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 3 * time.Second
	}
	if c.ControlInterval <= 0 {
		c.ControlInterval = 5 * time.Minute
	}
	if c.Slowstart <= 0 {
		c.Slowstart = 1.0
	}
	if c.Replication <= 0 {
		c.Replication = hdfs.DefaultReplication
	}
	if c.NetShareDivisor <= 0 {
		c.NetShareDivisor = 16
	}
	if c.Power.Enabled {
		c.Power.setDefaults()
	}
	if c.Fault.Enabled() {
		c.Fault.SetDefaults()
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.Slowstart > 1 {
		return fmt.Errorf("mapreduce: slowstart %v > 1", c.Slowstart)
	}
	if c.ForcedLocalFraction > 1 {
		return fmt.Errorf("mapreduce: forced local fraction %v > 1", c.ForcedLocalFraction)
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	return c.Noise.Validate()
}

// Driver is the simulated JobTracker: it owns the event loop, submits
// jobs, serves TaskTracker heartbeats through the plugged Scheduler, runs
// tasks to completion, and accounts energy.
type Driver struct {
	cfg     Config
	engine  *sim.Engine
	cluster *cluster.Cluster
	ns      *hdfs.Namespace
	meter   *power.Meter
	sched   Scheduler
	noise   *noise.Model
	local   *sim.RNG // locality-forcing stream
	ctx     *Context
	// probe is the optional observability recorder; nil when disabled.
	// Call sites guard with an explicit nil check so the disabled hot
	// path computes no event arguments and allocates nothing.
	probe *probe.Probe

	jobs             []*Job //eant:reset-keep reused by Run's warm gate when the new specs match
	active           []*Job
	unsubmit         int
	totalSlots       int
	totalMapSlots    int
	totalReduceSlots int
	tickOffset       int

	stats *Stats
	// intervalAssign accumulates task starts per (job, machine) within
	// the current control interval.
	intervalAssign map[int]map[int]int

	// covering marks always-on machines; lastBusy is when each machine
	// last ran a task (consolidation policy state).
	covering []bool
	lastBusy []time.Duration

	// faults injects machine crashes and attempt failures; blacklistUntil
	// and failCount implement the JobTracker's per-machine failure
	// blacklist (allocated only when fault injection is enabled).
	faults         *fault.Injector
	blacklistUntil []time.Duration
	failCount      []int

	// sampleBuf backs estimateJoules' per-completion sample slice (at most
	// shuffle + compute), keeping the completion path allocation-free.
	//eant:reset-keep per-completion scratch, fully overwritten before every read
	sampleBuf [2]power.TaskSample

	// agg is the incremental-statistics layer serving the scheduler hot
	// path (see aggregates.go); typeReps is one representative spec per
	// machine type in sorted type-name order; mapEst memoizes the
	// (app, spec) map-service estimates — both inputs are static.
	agg      aggregates
	typeReps []*cluster.TypeSpec //eant:reset-keep pure function of the cluster, which a driver never swaps
	mapEst   map[mapEstKey]float64

	// slotObs receives free-slot change notifications when the scheduler
	// implements SlotObserver; onMutation is the test-only invariant hook
	// (EnableInvariantChecks).
	slotObs    SlotObserver
	onMutation func(where string) //eant:reset-keep test-only hook installed for the driver's lifetime

	// staleEstimates is set by Reset when the new config invalidates the
	// memoized service estimates (NetShareDivisor changed); Run's warm job
	// reuse then drops each job's reduce-estimate memo.
	staleEstimates bool

	// Typed event kinds (sim.RegisterKind jump table). The hot scheduling
	// paths — heartbeat sweeps, control ticks, submissions, completion/
	// failure timers, the reduce shuffle→compute transition — carry at
	// most a task or job pointer, so scheduling one allocates no closure.
	evHeartbeat     sim.EventKind //eant:reset-keep kind registration is per-driver-lifetime; Engine.Reset keeps the table
	evControl       sim.EventKind //eant:reset-keep kind registration is per-driver-lifetime; Engine.Reset keeps the table
	evSubmit        sim.EventKind //eant:reset-keep kind registration is per-driver-lifetime; Engine.Reset keeps the table
	evComplete      sim.EventKind //eant:reset-keep kind registration is per-driver-lifetime; Engine.Reset keeps the table
	evFail          sim.EventKind //eant:reset-keep kind registration is per-driver-lifetime; Engine.Reset keeps the table
	evReduceCompute sim.EventKind //eant:reset-keep kind registration is per-driver-lifetime; Engine.Reset keeps the table
}

// NewDriver wires a driver for one run. The scheduler must not be shared
// across drivers.
func NewDriver(c *cluster.Cluster, sched Scheduler, cfg Config) (*Driver, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil {
		return nil, fmt.Errorf("mapreduce: nil scheduler")
	}
	root := sim.NewRNG(cfg.Seed)
	engine := sim.NewEngine()
	// Calendar buckets sized to the dominant event period: heartbeats,
	// completions and shuffle transitions land in the O(1) ring; control
	// ticks and far-future submissions take the overflow band.
	engine.SetBucketWidth(cfg.Heartbeat)
	nm, err := noise.NewModel(cfg.Noise, root.Fork("noise"))
	if err != nil {
		return nil, err
	}
	inj, err := fault.NewInjector(cfg.Fault, root.Fork("fault"))
	if err != nil {
		return nil, err
	}
	d := &Driver{
		cfg:              cfg,
		engine:           engine,
		cluster:          c,
		ns:               hdfs.NewNamespace(c, cfg.Replication, root.Fork("hdfs")),
		meter:            power.NewMeter(c),
		sched:            sched,
		noise:            nm,
		local:            root.Fork("locality"),
		totalSlots:       c.TotalSlots(),
		totalMapSlots:    c.TotalMapSlots(),
		totalReduceSlots: c.TotalReduceSlots(),
		stats:            newStats(sched.Name()),
		intervalAssign:   make(map[int]map[int]int),
		faults:           inj,
		probe:            cfg.Probe,
	}
	if obs, ok := sched.(SlotObserver); ok {
		d.slotObs = obs
	}
	d.evHeartbeat = engine.RegisterKind(func(int, any) { d.heartbeatTick() })
	d.evControl = engine.RegisterKind(func(int, any) { d.controlTickEvent() })
	d.evSubmit = engine.RegisterKind(func(_ int, arg any) { d.submit(arg.(*Job)) })
	d.evComplete = engine.RegisterKind(func(_ int, arg any) { d.completeTask(arg.(*Task)) })
	d.evFail = engine.RegisterKind(func(_ int, arg any) { d.failAttempt(arg.(*Task)) })
	d.evReduceCompute = engine.RegisterKind(func(_ int, arg any) { d.beginReduceCompute(arg.(*Task)) })
	d.initAggregates()
	if inj.Enabled() {
		d.blacklistUntil = make([]time.Duration, c.Size())
		d.failCount = make([]int, c.Size())
	}
	for _, typeName := range cfg.ComputeOnlyTypes {
		for _, m := range c.ByType(typeName) {
			d.ns.ExcludeFromPlacement(m.ID())
		}
	}
	if cfg.Power.Enabled {
		d.covering = make([]bool, c.Size())
		d.lastBusy = make([]time.Duration, c.Size())
		var coveringIDs []int
		for _, name := range c.TypeNames() {
			machines := c.ByType(name)
			n := cfg.Power.CoveringPerType
			if n > len(machines) {
				n = len(machines)
			}
			for i := 0; i < n; i++ {
				d.covering[machines[i].ID()] = true
				coveringIDs = append(coveringIDs, machines[i].ID())
			}
		}
		d.ns.PreferFirstReplicaOn(coveringIDs)
	}
	d.ctx = &Context{
		Cluster: c,
		HDFS:    d.ns,
		Rng:     root.Fork("sched"),
		driver:  d,
	}
	return d, nil
}

// Meter exposes the run's power meter (read-only use).
func (d *Driver) Meter() *power.Meter { return d.meter }

// Engine exposes the run's event engine (read-only use).
func (d *Driver) Engine() *sim.Engine { return d.engine }

// Run executes the given jobs to completion (or until horizon, if
// non-negative) and returns the collected statistics.
func (d *Driver) Run(specs []workload.JobSpec, horizon time.Duration) (*Stats, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("mapreduce: no jobs to run")
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}

	// Place inputs and schedule submissions. A warm driver (Reset) whose
	// retained job list matches the new specs exactly reuses the Job and
	// Task structures in place; any mismatch rebuilds from scratch. Inputs
	// are re-placed either way — the namespace reset rewound the HDFS
	// stream, so the replica draws replay bit-identically.
	warm := len(d.jobs) == len(specs)
	if warm {
		for i := range specs {
			if d.jobs[i].Spec != specs[i] {
				warm = false
				break
			}
		}
	}
	if !warm {
		for i := range d.jobs {
			d.jobs[i] = nil
		}
		d.jobs = d.jobs[:0]
	}
	d.unsubmit = len(specs)
	for i, spec := range specs {
		file, err := d.ns.Place(spec.ID, spec.NumMaps)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: placing job %d: %w", spec.ID, err)
		}
		replicasOf := func(block int) []int { return file.Blocks[block] }
		var job *Job
		if warm {
			job = d.jobs[i]
			job.resetForRun(replicasOf, d.staleEstimates)
		} else {
			job = newJob(spec, replicasOf)
			d.jobs = append(d.jobs, job)
		}
		d.engine.ScheduleKind(spec.Submit, d.evSubmit, 0, job)
	}

	// Heartbeat and control loops: typed self-rescheduling sweep events
	// (see heartbeatTick/controlTickEvent), so the periodic hot path
	// allocates nothing per tick.
	d.engine.ScheduleKind(0, d.evHeartbeat, 0, nil)
	d.engine.ScheduleKind(d.cfg.ControlInterval, d.evControl, 0, nil)

	// Fault process: stochastic machine crashes/recoveries plus any
	// scripted scenario. Start is a strict no-op when faults are disabled.
	d.faults.Start(d.engine, d.cluster.Size(), fault.Hooks{
		Crash:   d.crashMachine,
		Recover: d.recoverMachine,
	})

	// completeJob stops the engine at the instant the campaign finishes,
	// so the makespan (and the energy-integration window) ends at the
	// last task rather than at a dangling ticker event.
	if err := d.engine.RunUntil(horizon); err != nil && err != sim.ErrStopped {
		return nil, fmt.Errorf("mapreduce: run: %w", err)
	}
	d.finalizeStats()
	return d.stats, nil
}

func (d *Driver) finished() bool { return d.unsubmit == 0 && len(d.active) == 0 }

// heartbeatTick is the per-tick heartbeat sweep event: it serves every
// machine's free slots in one pass, then reschedules itself one heartbeat
// out — mirroring Every's fn-then-reschedule order so the (at, seq)
// event stream is unchanged. The self-chain ends when the run finishes.
func (d *Driver) heartbeatTick() {
	if d.finished() {
		return
	}
	d.serveHeartbeats()
	d.engine.ScheduleKindAfter(d.cfg.Heartbeat, d.evHeartbeat, 0, nil)
}

// controlTickEvent is the periodic control-interval event, typed for the
// same zero-allocation reason as heartbeatTick.
func (d *Driver) controlTickEvent() {
	if d.finished() {
		return
	}
	d.controlTick()
	d.engine.ScheduleKindAfter(d.cfg.ControlInterval, d.evControl, 0, nil)
}

func (d *Driver) submit(j *Job) {
	j.Submitted = d.engine.Now()
	d.active = append(d.active, j)
	d.unsubmit--
	if d.probe != nil {
		d.probe.JobSubmit(j.Submitted, j.Spec.ID, j.Spec.App.String(), len(j.Maps), len(j.Reduces))
	}
	d.notePending(j, MapTask, j.PendingMaps())
	d.notePending(j, ReduceTask, j.PendingReduces())
	d.syncReduceGate(j)
	// Degenerate jobs with zero tasks complete immediately.
	if len(j.Maps) == 0 && len(j.Reduces) == 0 {
		d.completeJob(j)
	}
	d.mutated("submit")
}

// serveHeartbeats walks machines in rotating order, filling free slots via
// the scheduler. Rotation prevents machine 0 from perpetually seeing the
// freshest task queues. The rotation is two contiguous passes over the
// machine slice rather than a modulo walk: at 1024 machines the per-tick
// index arithmetic is itself measurable.
func (d *Driver) serveHeartbeats() {
	machines := d.cluster.Machines()
	n := len(machines)
	d.tickOffset = (d.tickOffset + 1) % n
	d.sweep(machines[d.tickOffset:])
	d.sweep(machines[:d.tickOffset])
	// Machine sampling piggybacks on the heartbeat sweep: no extra engine
	// events, so the (at, seq) order of the run is untouched.
	if d.probe != nil && d.probe.ShouldSample() {
		d.sampleMachines()
	}
}

// sweep offers every free slot of the given machines to the scheduler, in
// slice order. Per-tick invariants (power management off, no blacklist,
// probes disabled) are hoisted out of the per-machine body.
func (d *Driver) sweep(machines []cluster.Machine) {
	powerOn := d.cfg.Power.Enabled
	blacklistOn := d.blacklistUntil != nil
	probe := d.probe
	for _, m := range machines {
		if !m.Available() {
			continue
		}
		if blacklistOn {
			// Blacklist expiry is a time-based transition with no event
			// attached; reconcile the availability class at the heartbeat.
			if d.agg.class[m.ID()] == classBlacklisted && !d.blacklisted(m.ID()) {
				d.reclassify(m)
			}
		}
		if powerOn {
			d.maybeSleep(m)
		}
		if blacklistOn && d.blacklisted(m.ID()) {
			continue
		}
		for m.FreeMapSlots() > 0 {
			d.stats.MapOffers++
			if probe != nil {
				probe.Offer(d.engine.Now(), m.ID(), int8(MapTask), d.agg.pendingMaps)
			}
			t := d.sched.AssignMap(d.ctx, m)
			if t == nil {
				break
			}
			d.startMap(t, m)
		}
		for m.FreeReduceSlots() > 0 {
			d.stats.ReduceOffers++
			if probe != nil {
				probe.Offer(d.engine.Now(), m.ID(), int8(ReduceTask), d.agg.readyPendingReduces)
			}
			t := d.sched.AssignReduce(d.ctx, m)
			if t == nil {
				break
			}
			d.startReduce(t, m)
		}
	}
}

// sampleMachines records one utilization/energy/slot sample per machine,
// in machine-ID order. Energy is read up to each machine's last meter
// sync — the probe must never force a sync, because splitting the meter's
// float-integration intervals would drift TotalJoules' low bits and break
// the bit-identical-Stats contract.
func (d *Driver) sampleMachines() {
	now := d.engine.Now()
	for _, m := range d.cluster.Machines() {
		d.probe.Sample(now, m.ID(), m.Spec().Name, m.Utilization(),
			d.meter.MachineJoules(m.ID()), m.FreeMapSlots(), m.FreeReduceSlots())
	}
}

// maybeSleep powers m down when consolidation is on, it has been fully
// idle past the timeout, and it is not a covering machine.
func (d *Driver) maybeSleep(m cluster.Machine) {
	if !d.cfg.Power.Enabled || m.Asleep() || m.Running() > 0 || d.covering[m.ID()] {
		return
	}
	if d.engine.Now()-d.lastBusy[m.ID()] < d.cfg.Power.IdleTimeout {
		return
	}
	d.meter.Sync(m, d.engine.Now())
	m.Sleep(d.cfg.Power.SleepWatts)
	d.stats.Sleeps++
	if d.probe != nil {
		d.probe.MachineState(d.engine.Now(), m.ID(), "sleep")
	}
	d.reclassify(m)
	d.mutated("sleep")
}

// wakeIfNeeded powers m up for an incoming task, returning the wake
// latency to prepend to the task's service time.
func (d *Driver) wakeIfNeeded(m cluster.Machine) float64 {
	if !m.Asleep() {
		return 0
	}
	d.meter.Sync(m, d.engine.Now())
	m.Wake()
	d.stats.Wakes++
	if d.probe != nil {
		d.probe.MachineState(d.engine.Now(), m.ID(), "wake")
	}
	d.reclassify(m)
	d.mutated("wake")
	return d.cfg.Power.WakeLatency.Seconds()
}

func (d *Driver) controlTick() {
	d.meter.SyncAll(d.engine.Now())
	d.stats.Timeline = append(d.stats.Timeline, EnergyPoint{
		At:          d.engine.Now(),
		TotalJoules: d.meter.TotalJoules(),
		TasksDone:   d.stats.TasksDone(),
	})
	if d.cfg.KeepAssignmentHistory {
		snap := IntervalAssignments{At: d.engine.Now(), Counts: d.intervalAssign}
		d.stats.Assignments = append(d.stats.Assignments, snap)
		d.intervalAssign = make(map[int]map[int]int) //eant:alloc-ok KeepAssignmentHistory opt-in, once per control tick
	}
	if d.probe != nil {
		d.probe.ControlTick(d.engine.Now(), d.meter.TotalJoules(), d.stats.TasksDone())
	}
	d.sched.OnControlTick(d.ctx)
}

// isLocal resolves a map task's data locality, honoring the forced
// fraction when configured.
func (d *Driver) isLocal(t *Task, m cluster.Machine) bool {
	if f := d.cfg.ForcedLocalFraction; f >= 0 {
		return d.local.Bernoulli(f)
	}
	return d.ns.IsLocal(t.Job.Spec.ID, t.Index, m.ID())
}

// TaskThreads is how many cores a Hadoop task's JVM occupies while its
// CPU phase runs (the mapper/reducer thread plus GC, spill and protocol
// threads). Profiles express CPU demand in reference core-seconds; the
// wall-clock CPU phase is that work spread over TaskThreads cores.
const TaskThreads = 1.6

// mapService returns the noise-free wall-clock CPU seconds and total
// service seconds of a map task with the given input on a machine of the
// given spec.
func mapService(prof workload.Profile, inputMB float64, spec *cluster.TypeSpec, local bool, netDivisor float64) (cpuWallSecs, totalSecs float64) {
	cpuWallSecs = prof.MapCPUPerMB * inputMB / (spec.SpeedFactor * TaskThreads)
	diskShare := spec.DiskMBps / float64(spec.MapSlots)
	ioSecs := prof.MapIOPerMB * inputMB / diskShare
	netSecs := 0.0
	if !local {
		netSecs = inputMB / (spec.NetMBps / netDivisor)
	}
	return cpuWallSecs, cpuWallSecs + ioSecs + netSecs
}

// reduceService returns the noise-free shuffle seconds, wall-clock compute
// CPU seconds, and total compute seconds of a reduce task pulling
// shuffleMB.
func reduceService(prof workload.Profile, shuffleMB float64, spec *cluster.TypeSpec, netDivisor float64) (shuffleSecs, cpuWallSecs, computeSecs float64) {
	shuffleSecs = shuffleMB / (spec.NetMBps / netDivisor)
	cpuWallSecs = prof.ReduceCPUPerMB * shuffleMB / (spec.SpeedFactor * TaskThreads)
	diskShare := spec.DiskMBps / float64(spec.MapSlots)
	ioSecs := prof.ReduceIOPerMB * shuffleMB / diskShare
	return shuffleSecs, cpuWallSecs, cpuWallSecs + ioSecs
}

// taskUtil converts a task's CPU-phase occupancy into its whole-machine
// utilization share: TaskThreads cores busy for cpuWall of dur wall time.
func taskUtil(cpuWallSecs, durSecs float64, spec *cluster.TypeSpec) float64 {
	if durSecs <= 0 {
		return 0
	}
	u := TaskThreads * (cpuWallSecs / durSecs) / float64(spec.Cores)
	if u > 1 {
		u = 1
	}
	return u
}

// startMap computes the task's service time on m and schedules completion.
func (d *Driver) startMap(t *Task, m cluster.Machine) {
	if t.State != TaskPending {
		panic(fmt.Sprintf("mapreduce: starting %s in state %d", t.ID(), t.State))
	}
	spec := m.Spec()
	prof := workload.ProfileOf(t.Job.Spec.App)
	t.Local = d.isLocal(t, m)

	wake := d.wakeIfNeeded(m)
	cpuWall, base := mapService(prof, t.InputMB, spec, t.Local, d.cfg.NetShareDivisor)
	dur := base*d.noise.DurationFactorFor(base) + wake
	t.computeSecs = dur
	t.trueUtil = taskUtil(cpuWall, dur, spec)

	now := d.engine.Now()
	d.meter.Sync(m, now)
	if !m.AcquireMap(t.trueUtil) {
		panic(fmt.Sprintf("mapreduce: %s assigned map with no free slot", m))
	}
	d.noteSlotChange(m, MapTask, -1)
	t.State = TaskRunning
	t.Machine = m
	t.Start = now
	t.computeStart = now
	d.noteStart(t, m)
	d.stats.TotalMaps++
	if t.Local {
		d.stats.LocalMaps++
	}
	if d.probe != nil {
		d.probe.Assign(now, t.Job.Spec.ID, t.Index, m.ID(), int8(MapTask),
			t.Job.Spec.App.String(), t.Local, dur, (now - t.Job.Submitted).Seconds())
	}
	d.mutated("startMap")
	if d.faults.AttemptFails() {
		t.doomed = true
		t.pendingEvent = d.engine.ScheduleKindAfter(secsToDur(dur*d.faults.FailurePoint()), d.evFail, 0, t)
		return
	}
	t.pendingEvent = d.engine.ScheduleKindAfter(secsToDur(dur), d.evComplete, 0, t)
}

// startReduce begins a reduce's shuffle phase; the compute phase is
// finalized once the job's map barrier has passed.
func (d *Driver) startReduce(t *Task, m cluster.Machine) {
	if t.State != TaskPending {
		panic(fmt.Sprintf("mapreduce: starting %s in state %d", t.ID(), t.State))
	}
	spec := m.Spec()
	prof := workload.ProfileOf(t.Job.Spec.App)
	wake := d.wakeIfNeeded(m)
	shuffleSecs, cpuWall, computeSecs := reduceService(prof, t.InputMB, spec, d.cfg.NetShareDivisor)

	factor := d.noise.DurationFactorFor(shuffleSecs + computeSecs)
	t.shuffleSecs = shuffleSecs*factor + wake
	t.computeSecs = computeSecs * factor
	if t.computeSecs <= 0 {
		t.computeSecs = 0.001
	}
	t.trueUtil = taskUtil(cpuWall*factor, t.computeSecs, spec)
	// Shuffle is copy/merge work: charge a modest fraction of one core.
	t.shuffleUtil = 0.25 / float64(spec.Cores)

	now := d.engine.Now()
	d.meter.Sync(m, now)
	if !m.AcquireReduce(t.shuffleUtil) {
		panic(fmt.Sprintf("mapreduce: %s assigned reduce with no free slot", m))
	}
	d.noteSlotChange(m, ReduceTask, -1)
	t.State = TaskShuffling
	t.Machine = m
	t.Start = now
	d.noteStart(t, m)
	// Reduce failures strike the compute phase (shuffle errors just retry
	// fetches in Hadoop); the doom draw happens at assignment so the fault
	// stream is consumed in scheduling order.
	t.doomed = d.faults.AttemptFails()

	if d.probe != nil {
		d.probe.Assign(now, t.Job.Spec.ID, t.Index, m.ID(), int8(ReduceTask),
			t.Job.Spec.App.String(), false, t.shuffleSecs+t.computeSecs, (now - t.Job.Submitted).Seconds())
	}
	if t.Job.MapsDone() {
		d.finalizeReduce(t)
	}
	// Otherwise the map-barrier completion will finalize it.
	d.mutated("startReduce")
}

// finalizeReduce schedules the shuffle→compute transition and completion,
// callable only once the job's map output is fully available.
func (d *Driver) finalizeReduce(t *Task) {
	now := d.engine.Now()
	shuffleEnd := t.Start + secsToDur(t.shuffleSecs)
	if shuffleEnd < now {
		// Transfers could not complete before the map barrier.
		shuffleEnd = now
	}
	t.pendingEvent = d.engine.ScheduleKind(shuffleEnd, d.evReduceCompute, 0, t)
}

func (d *Driver) beginReduceCompute(t *Task) {
	m := t.Machine
	now := d.engine.Now()
	d.meter.Sync(m, now)
	// Swap the shuffle-phase CPU share for the compute-phase share.
	m.ReleaseReduce(t.shuffleUtil)
	if !m.AcquireReduce(t.trueUtil) {
		panic(fmt.Sprintf("mapreduce: %s lost reduce slot across phase change", m))
	}
	t.State = TaskRunning
	t.computeStart = now
	if end := now; end > t.Job.LastShuffleEnd {
		t.Job.LastShuffleEnd = end
	}
	if t.doomed {
		t.pendingEvent = d.engine.ScheduleKindAfter(secsToDur(t.computeSecs*d.faults.FailurePoint()), d.evFail, 0, t)
		return
	}
	t.pendingEvent = d.engine.ScheduleKindAfter(secsToDur(t.computeSecs), d.evComplete, 0, t)
}

// completeTask finishes t: frees the slot, computes the Eq. 2 energy
// estimate, updates job progress, and feeds the scheduler.
func (d *Driver) completeTask(t *Task) {
	m := t.Machine
	now := d.engine.Now()
	d.meter.Sync(m, now)
	switch t.Kind {
	case MapTask:
		m.ReleaseMap(t.trueUtil)
	case ReduceTask:
		m.ReleaseReduce(t.trueUtil)
	}
	d.noteSlotChange(m, t.Kind, 1)
	t.State = TaskDone
	t.Finish = now
	if d.lastBusy != nil {
		d.lastBusy[m.ID()] = now
	}

	t.EstJoules = d.estimateJoules(t)
	t.TrueJoules = d.trueJoules(t)
	if d.probe != nil {
		d.probe.Complete(now, t.Job.Spec.ID, t.Index, m.ID(), int8(t.Kind),
			t.EstJoules, t.TrueJoules, t.Duration().Seconds())
	}

	j := t.Job
	j.running--
	j.runningByMachine[m.ID()]--
	delete(j.runningSet, t)

	// Resolve a speculation race: the first attempt to finish wins, the
	// sibling is killed and never counted toward job progress.
	if loser := t.clone; loser != nil {
		d.killTask(loser)
		t.clone = nil
	}
	if orig := t.original; orig != nil {
		d.killTask(orig)
		orig.clone = nil
		t.original = nil
		d.stats.SpeculativeWon++
		// Mirror the clone's completion onto the canonical attempt: barrier
		// and lost-map-output scans walk j.Maps, so the canonical must
		// record where the winning output actually lives.
		orig.State = TaskDone
		orig.Machine = t.Machine
		orig.Start, orig.Finish = t.Start, t.Finish
	}
	switch t.Kind {
	case MapTask:
		j.mapsDone++
		d.syncReduceGate(j)
		if j.MapsDone() {
			j.MapsDoneAt = now
			if j.LastShuffleEnd < now {
				j.LastShuffleEnd = now
			}
			// Release reduces that were shuffling against the barrier.
			for _, r := range j.Reduces {
				if r.State == TaskShuffling {
					d.finalizeReduce(r)
				}
			}
		}
	case ReduceTask:
		j.reducesDone++
	}

	d.recordTask(t)
	d.sched.OnTaskComplete(d.ctx, t)

	if j.mapsDone == len(j.Maps) && j.reducesDone == len(j.Reduces) && !j.done {
		d.completeJob(j)
	}
	d.mutated("completeTask")
}

// killTask terminates the losing attempt of a speculative pair: its next
// event is cancelled, its slot and CPU share released, and it is excluded
// from job progress and task records.
func (d *Driver) killTask(t *Task) {
	if t.State == TaskDone || t.State == TaskKilled {
		return
	}
	t.pendingEvent.Cancel()
	d.detachRunning(t)
	t.State = TaskKilled
	t.Finish = d.engine.Now()
	d.stats.SpeculativeKilled++
}

// detachRunning removes an in-flight attempt from its machine and job
// bookkeeping: its next event is cancelled, the power meter is synced, and
// the slot plus the phase's CPU share are released. Reports whether the
// attempt was actually in flight.
func (d *Driver) detachRunning(t *Task) bool {
	if t.State != TaskRunning && t.State != TaskShuffling {
		return false
	}
	t.pendingEvent.Cancel()
	m := t.Machine
	d.meter.Sync(m, d.engine.Now())
	util := t.currentUtil(t.State)
	if t.Kind == MapTask {
		m.ReleaseMap(util)
	} else {
		m.ReleaseReduce(util)
	}
	d.noteSlotChange(m, t.Kind, 1)
	j := t.Job
	j.running--
	j.runningByMachine[m.ID()]--
	delete(j.runningSet, t)
	return true
}

func (d *Driver) completeJob(j *Job) {
	j.done = true
	j.Finished = d.engine.Now()
	if d.probe != nil {
		d.probe.JobDone(j.Finished, j.Spec.ID, false)
	}
	d.dropJobAggregates(j)
	if len(j.Maps) == 0 {
		j.MapsDoneAt = j.Finished
	}
	d.stats.Jobs = append(d.stats.Jobs, JobResult{
		Spec:           j.Spec,
		Submitted:      j.Submitted,
		FirstStart:     j.FirstStart,
		MapsDoneAt:     j.MapsDoneAt,
		LastShuffleEnd: j.LastShuffleEnd,
		Finished:       j.Finished,
	})
	for i, a := range d.active {
		if a == j {
			d.active = append(d.active[:i], d.active[i+1:]...)
			break
		}
	}
	d.mutated("completeJob")
	if d.finished() {
		d.engine.Stop()
	}
}

// estimateJoules evaluates Eq. 2 with heartbeat quantization and
// measurement noise — the value a real TaskTracker would report.
func (d *Driver) estimateJoules(t *Task) float64 {
	spec := t.Machine.Spec()
	dt := d.cfg.Heartbeat
	// A real TaskTracker samples at heartbeats: a task alive for k
	// intervals reports k samples, so the reconstructed duration is the
	// actual one rounded to the nearest heartbeat multiple (unbiased for
	// short tasks, unlike rounding up).
	quantize := func(secs float64) time.Duration { //eant:alloc-ok non-escaping local closure, stack-allocated
		n := math.Round(secs / dt.Seconds())
		if n < 1 {
			n = 1
		}
		return time.Duration(n) * dt
	}
	samples := d.sampleBuf[:0]
	if t.Kind == ReduceTask && t.shuffleSecs > 0 {
		samples = append(samples, power.TaskSample{
			Util: t.shuffleUtil * d.noise.MeasurementFactor(),
			Dt:   quantize(t.shuffleSecs),
		})
	}
	samples = append(samples, power.TaskSample{
		Util: t.trueUtil * d.noise.MeasurementFactor(),
		Dt:   quantize(t.computeSecs),
	})
	return power.EstimateTaskJoules(spec, samples)
}

// trueJoules is the noise-free marginal energy of the task: its idle-power
// share plus its dynamic draw over its actual phases.
func (d *Driver) trueJoules(t *Task) float64 {
	spec := t.Machine.Spec()
	idleShare := spec.IdleWatts / float64(spec.Slots())
	joules := (idleShare + spec.AlphaWatts*t.trueUtil) * t.computeSecs
	if t.Kind == ReduceTask {
		// The shuffle phase actually spans Start→compute-begin, which the
		// map barrier may stretch beyond shuffleSecs.
		shuffleSpan := t.Duration().Seconds() - t.computeSecs
		if shuffleSpan < 0 {
			shuffleSpan = 0
		}
		joules += (idleShare + spec.AlphaWatts*t.shuffleUtil) * shuffleSpan
	}
	return joules
}

func (d *Driver) noteStart(t *Task, m cluster.Machine) {
	j := t.Job
	if !j.started {
		j.started = true
		j.FirstStart = d.engine.Now()
	}
	j.running++
	j.runningByMachine[m.ID()]++
	j.runningSet[t] = struct{}{}
	if d.lastBusy != nil {
		d.lastBusy[m.ID()] = d.engine.Now()
	}
	if d.cfg.KeepAssignmentHistory {
		byMachine := d.intervalAssign[j.Spec.ID]
		if byMachine == nil {
			byMachine = make(map[int]int) //eant:alloc-ok KeepAssignmentHistory opt-in, once per (job, interval)
			d.intervalAssign[j.Spec.ID] = byMachine
		}
		byMachine[m.ID()]++
	}
}

func (d *Driver) recordTask(t *Task) {
	key := AppKindKey{
		MachineType: t.Machine.Spec().Name,
		App:         t.Job.Spec.App,
		Kind:        t.Kind,
	}
	d.stats.Completed[key]++
	d.stats.CompletedByMachine[t.Machine.ID()]++
	pair := d.stats.Energy[key]
	pair.EstJoules += t.EstJoules
	pair.TrueJoules += t.TrueJoules
	pair.Tasks++
	d.stats.Energy[key] = pair

	if d.cfg.KeepTaskRecords {
		d.stats.Tasks = append(d.stats.Tasks, TaskRecord{
			JobID:       t.Job.Spec.ID,
			App:         t.Job.Spec.App,
			Class:       t.Job.Spec.Class,
			Kind:        t.Kind,
			MachineID:   t.Machine.ID(),
			MachineType: t.Machine.Spec().Name,
			Start:       t.Start,
			Finish:      t.Finish,
			EstJoules:   t.EstJoules,
			TrueJoules:  t.TrueJoules,
			Local:       t.Local,
		})
	}
}

func (d *Driver) finalizeStats() {
	now := d.engine.Now()
	d.meter.SyncAll(now)
	s := d.stats
	s.Horizon = now
	size := d.cluster.Size()
	s.MachineJoules = make([]float64, size)
	s.MachineAvgUtil = make([]float64, size)
	for id := 0; id < size; id++ {
		s.MachineJoules[id] = d.meter.MachineJoules(id)
		s.MachineAvgUtil[id] = d.meter.AvgUtilization(id, now)
	}
	s.TypeJoules = d.meter.TypeJoules()
	s.TypeAvgUtil = d.meter.TypeAvgUtilization(now)
	s.TotalJoules = d.meter.TotalJoules()
}

// secsToDur converts fractional seconds to a time.Duration, guarding
// against negative values from float drift.
func secsToDur(secs float64) time.Duration {
	if secs < 0 {
		secs = 0
	}
	return time.Duration(secs * float64(time.Second))
}
