package mapreduce

import (
	"fmt"
	"time"

	"eant/internal/sim"
)

// This file is the driver's warm-run path: Reset returns an already-built
// driver to the state NewDriver(cluster, sched, cfg) leaves it in, reusing
// every long-lived allocation — the engine's calendar queue and event pool,
// the cluster and meter arrays, the HDFS namespace (with retired files
// recycled by job ID), the aggregate buffers, and (via Run's warm gate) the
// Job/Task structures themselves. A warm run must be byte-identical to a
// cold one: every RNG stream is rewound to the label-derived seed NewDriver
// would fork, and every piece of state either reproduces its freshly
// constructed value exactly or is re-derived by the same code path.

// Reset rewires the driver for another run with the given scheduler and
// configuration. The cluster is kept (machines reset in place); the job
// list is kept too and reused by the next Run when its specs match. The
// scheduler must itself be reset (or fresh) — the driver cannot see policy
// state. On error the driver is left partially reset and must not be run.
func (d *Driver) Reset(sched Scheduler, cfg Config) error {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if sched == nil {
		return fmt.Errorf("mapreduce: nil scheduler")
	}
	// A changed divisor invalidates the memoized service estimates; exact
	// comparison is right here — any difference, however small, changes them.
	//eant:float-eq-ok config identity check, not a tolerance comparison
	staleEst := cfg.NetShareDivisor != d.cfg.NetShareDivisor
	d.cfg = cfg

	// ForkSeed(seed, label) is exactly the seed NewRNG(seed).Fork(label)
	// produces, and is independent of fork order, so rewinding each stream
	// reproduces NewDriver's root-fork tree without a root RNG.
	d.engine.Reset()
	d.engine.SetBucketWidth(cfg.Heartbeat)
	d.cluster.Reset()
	d.meter.Reset()
	if err := d.noise.Reset(cfg.Noise, sim.ForkSeed(cfg.Seed, "noise")); err != nil {
		return err
	}
	if err := d.faults.Reset(cfg.Fault, sim.ForkSeed(cfg.Seed, "fault")); err != nil {
		return err
	}
	d.ns.Reset(sim.ForkSeed(cfg.Seed, "hdfs"))
	d.local.Reseed(sim.ForkSeed(cfg.Seed, "locality"))
	d.ctx.Rng.Reseed(sim.ForkSeed(cfg.Seed, "sched"))

	d.sched = sched
	d.probe = cfg.Probe
	d.slotObs = nil
	if obs, ok := sched.(SlotObserver); ok {
		d.slotObs = obs
	}
	d.totalSlots = d.cluster.TotalSlots()
	d.totalMapSlots = d.cluster.TotalMapSlots()
	d.totalReduceSlots = d.cluster.TotalReduceSlots()
	d.stats = newStats(sched.Name())
	clear(d.intervalAssign)
	d.unsubmit = 0
	d.tickOffset = 0
	for i := range d.active {
		d.active[i] = nil
	}
	d.active = d.active[:0]

	if d.faults.Enabled() {
		if d.blacklistUntil == nil {
			d.blacklistUntil = make([]time.Duration, d.cluster.Size())
			d.failCount = make([]int, d.cluster.Size())
		} else {
			for i := range d.blacklistUntil {
				d.blacklistUntil[i] = 0
				d.failCount[i] = 0
			}
		}
	} else {
		d.blacklistUntil = nil
		d.failCount = nil
	}

	// Placement constraints were dropped by ns.Reset; re-derive them in
	// NewDriver's order (exclusions, then the covering subset).
	for _, typeName := range cfg.ComputeOnlyTypes {
		for _, m := range d.cluster.ByType(typeName) {
			d.ns.ExcludeFromPlacement(m.ID())
		}
	}
	if cfg.Power.Enabled {
		if d.covering == nil {
			d.covering = make([]bool, d.cluster.Size())
			d.lastBusy = make([]time.Duration, d.cluster.Size())
		} else {
			for i := range d.covering {
				d.covering[i] = false
				d.lastBusy[i] = 0
			}
		}
		var coveringIDs []int
		for _, name := range d.cluster.TypeNames() {
			machines := d.cluster.ByType(name)
			n := cfg.Power.CoveringPerType
			if n > len(machines) {
				n = len(machines)
			}
			for i := 0; i < n; i++ {
				d.covering[machines[i].ID()] = true
				coveringIDs = append(coveringIDs, machines[i].ID())
			}
		}
		d.ns.PreferFirstReplicaOn(coveringIDs)
	} else {
		d.covering = nil
		d.lastBusy = nil
	}

	d.staleEstimates = staleEst
	if staleEst {
		clear(d.mapEst)
	}
	d.resetAggregates()
	return nil
}

// resetAggregates re-seeds the aggregate state for the fully-awake fleet,
// reproducing initAggregates over the kept buffers. The type table
// (typeReps, typeIdx) is a pure function of the cluster and stays.
func (d *Driver) resetAggregates() {
	a := &d.agg
	for i := range a.class {
		a.class[i] = classAwake
	}
	a.byClass = [numClasses]classSlots{}
	a.pendingMaps = 0
	a.pendingReduces = 0
	a.readyPendingReduces = 0
	a.epoch = 0
	for i := range a.freeReduceByType {
		a.freeReduceByType[i] = 0
	}
	awake := &a.byClass[classAwake]
	for _, m := range d.cluster.Machines() {
		spec := m.Spec()
		a.freeMap[m.ID()] = spec.MapSlots
		a.freeReduce[m.ID()] = spec.ReduceSlots
		awake.mapSlots += spec.MapSlots
		awake.reduceSlots += spec.ReduceSlots
		awake.freeMap += spec.MapSlots
		awake.freeReduce += spec.ReduceSlots
		a.freeReduceByType[a.typeIdx[m.ID()]] += spec.ReduceSlots
	}
}

// resetForRun rebuilds j's run state in place for a warm rerun of the same
// spec: every Task is overwritten with its newJob initial value (stale
// pendingEvent handles are inert — the engine reset bumped their
// generation), the pending FIFOs and locality index are rebuilt by
// overwrite in newJob's exact order, and speculative clones (separate
// allocations) are dropped with the cleared runningSet. replicasOf
// supplies the re-placed block locations; staleEst drops the memoized
// reduce estimates when the run config changed their inputs.
func (j *Job) resetForRun(replicasOf func(block int) []int, staleEst bool) {
	j.Submitted, j.FirstStart, j.MapsDoneAt, j.LastShuffleEnd, j.Finished = 0, 0, 0, 0, 0
	j.mapsDone, j.reducesDone = 0, 0
	j.started, j.done, j.failed = false, false, false
	j.reduceGateOpen = false
	j.running = 0
	clear(j.runningByMachine)
	clear(j.runningSet)
	if staleEst {
		clear(j.reduceEst)
	}
	// Truncate each locality queue in place. failJob replaces the whole map
	// and popLocalMap nils drained entries; q[:0] of nil is nil, and the
	// append below re-allocates only those queues.
	//eant:unordered-ok each entry is truncated independently; nothing observes the key order
	for id, q := range j.localPending {
		j.localPending[id] = q[:0]
	}
	j.pendingMaps = j.pendingMaps[:0]
	j.pendingHead = 0
	for i, t := range j.Maps {
		*t = Task{
			Job:     j,
			Index:   i,
			Kind:    MapTask,
			InputMB: j.Spec.MapInputMB(i),
			State:   TaskPending,
		}
		j.pendingMaps = append(j.pendingMaps, i)
		j.mapReplicas[i] = replicasOf(i)
		for _, machineID := range j.mapReplicas[i] {
			j.localPending[machineID] = append(j.localPending[machineID], i)
		}
	}
	j.pendingReduces = j.pendingReduces[:0]
	j.reduceHead = 0
	for i, t := range j.Reduces {
		*t = Task{
			Job:     j,
			Index:   i,
			Kind:    ReduceTask,
			InputMB: j.Spec.ShuffleMBPerReduce(),
			State:   TaskPending,
		}
		j.pendingReduces = append(j.pendingReduces, i)
	}
}
