package mapreduce

import (
	"sort"

	"eant/internal/cluster"
)

// This file is the driver's failure-recovery half: the JobTracker reactions
// to the fault injector's events. Attempt failures retry the logical task
// up to the configured budget; machine crashes kill in-flight attempts,
// re-execute completed map outputs lost with the machine's local disk
// (Hadoop 1.x keeps map output outside HDFS), and bench the machine until
// repair; repeated failures blacklist a machine for a cooldown.

// failAttempt terminates a doomed attempt mid-flight: its slot and CPU
// share are released, the failure is charged to the logical task and to
// the machine's blacklist record, and the task is retried — or its job is
// failed once the retry budget (mapred.map.max.attempts) is exhausted.
func (d *Driver) failAttempt(t *Task) {
	m := t.Machine
	d.detachRunning(t)
	if d.lastBusy != nil {
		d.lastBusy[m.ID()] = d.engine.Now()
	}
	d.stats.TaskFailures++
	d.noteMachineFailure(m)

	canonical := t
	if t.original != nil {
		canonical = t.original
	}
	canonical.failures++
	if canonical.failures >= d.faults.MaxAttempts() {
		t.State = TaskKilled
		t.Finish = d.engine.Now()
		d.failJob(t.Job)
		return
	}
	d.rescheduleAttempt(t)
	d.mutated("failAttempt")
}

// rescheduleAttempt returns a dead attempt's logical task to the pending
// pools, honoring speculation race links so that at most one live attempt
// (or one pending entry) represents the logical task at any time:
//
//   - The attempt has a live clone: the clone keeps racing alone. The dead
//     original stays linked so the clone's completion resolves the race
//     against it (killTask is idempotent on killed tasks).
//   - The attempt is a clone: the link is dissolved. The original keeps
//     running if it is still in flight; if it too is dead (one crash can
//     sweep both), it is revived and requeued.
//   - No race: the task itself is reset and requeued.
func (d *Driver) rescheduleAttempt(t *Task) {
	now := d.engine.Now()
	if t.clone != nil {
		t.State = TaskKilled
		t.Finish = now
		return
	}
	if o := t.original; o != nil {
		t.original = nil
		o.clone = nil
		t.State = TaskKilled
		t.Finish = now
		if o.State == TaskRunning || o.State == TaskShuffling {
			return
		}
		o.resetForRetry()
		d.requeuePending(o)
		return
	}
	t.resetForRetry()
	d.requeuePending(t)
}

// crashMachine is the fault injector's crash hook. Every in-flight attempt
// on the machine dies (without charging the retry budget — in Hadoop,
// tracker-death kills do not count against max attempts), completed map
// outputs stored there are re-executed for jobs that still need them, and
// the machine leaves the slot pool until repaired. Idempotent on a machine
// that is already down.
func (d *Driver) crashMachine(id int) {
	m := d.cluster.Machine(id)
	if !m.Available() {
		return
	}
	now := d.engine.Now()
	d.meter.Sync(m, now)

	// Collect and kill the machine's in-flight attempts in a deterministic
	// order; runningSet is a map, so sort before acting.
	var victims []*Task
	for _, j := range d.active {
		for t := range j.runningSet {
			if t.Machine == m {
				victims = append(victims, t)
			}
		}
	}
	sort.Slice(victims, func(a, b int) bool {
		va, vb := victims[a], victims[b]
		if va.Job.Spec.ID != vb.Job.Spec.ID {
			return va.Job.Spec.ID < vb.Job.Spec.ID
		}
		if va.Kind != vb.Kind {
			return va.Kind < vb.Kind
		}
		if va.Index != vb.Index {
			return va.Index < vb.Index
		}
		return !va.Speculative() && vb.Speculative()
	})
	for _, t := range victims {
		d.detachRunning(t)
		d.stats.TasksKilledByCrash++
		d.rescheduleAttempt(t)
	}
	for _, j := range d.active {
		d.reexecuteLostMaps(j, m)
	}

	m.Fail()
	if d.probe != nil {
		d.probe.MachineState(now, m.ID(), "crash")
	}
	d.noteAvailabilityChange(m)
	d.totalSlots -= m.Spec().Slots()
	d.totalMapSlots -= m.Spec().MapSlots
	d.totalReduceSlots -= m.Spec().ReduceSlots
	d.stats.Crashes++
	d.mutated("crash")
}

// reexecuteLostMaps requeues job j's completed map tasks whose output
// lived on crashed machine m. Map-only jobs are spared (their output is in
// replicated HDFS), as are jobs whose reduces have all finished fetching.
// Reopening the map barrier cancels the shuffle→compute transition of
// reduces still shuffling; they are re-finalized when the barrier passes
// again. Reduces already in their compute phase keep running — they have
// fetched their input.
func (d *Driver) reexecuteLostMaps(j *Job, m cluster.Machine) {
	if len(j.Reduces) == 0 || j.reducesDone == len(j.Reduces) {
		return
	}
	barrierWasDone := j.MapsDone()
	lost := 0
	for _, t := range j.Maps {
		if t.State == TaskDone && t.Machine == m {
			j.mapsDone--
			t.resetForRetry()
			d.requeuePending(t)
			d.stats.MapOutputsLost++
			lost++
		}
	}
	// Re-executed maps can drag progress back under the slowstart gate.
	d.syncReduceGate(j)
	if lost == 0 || !barrierWasDone {
		return
	}
	for _, r := range j.Reduces {
		if r.State == TaskShuffling {
			r.pendingEvent.Cancel()
		}
	}
}

// recoverMachine is the fault injector's repair hook: the machine rejoins
// the slot pool with a clean blacklist record. Idempotent on a machine
// that is already up.
func (d *Driver) recoverMachine(id int) {
	m := d.cluster.Machine(id)
	if m.Available() {
		return
	}
	now := d.engine.Now()
	d.meter.Sync(m, now)
	m.Repair()
	d.totalSlots += m.Spec().Slots()
	d.totalMapSlots += m.Spec().MapSlots
	d.totalReduceSlots += m.Spec().ReduceSlots
	if d.lastBusy != nil {
		d.lastBusy[id] = now
	}
	if d.failCount != nil {
		d.failCount[id] = 0
		d.blacklistUntil[id] = 0
	}
	if d.probe != nil {
		d.probe.MachineState(now, m.ID(), "recover")
	}
	d.noteAvailabilityChange(m)
	d.stats.Recoveries++
	d.mutated("recover")
}

// failJob terminates j after a task exhausted its retry budget: every
// in-flight attempt is killed, the pending queues are drained, and the job
// is recorded as failed at the current instant.
func (d *Driver) failJob(j *Job) {
	if j.done {
		return
	}
	j.done = true
	j.failed = true
	j.Finished = d.engine.Now()
	if d.probe != nil {
		d.probe.JobDone(j.Finished, j.Spec.ID, true)
	}

	attempts := append(j.RunningAttempts(MapTask), j.RunningAttempts(ReduceTask)...)
	for _, t := range attempts {
		d.detachRunning(t)
		t.State = TaskKilled
		t.Finish = j.Finished
	}
	d.dropJobAggregates(j)
	j.pendingHead = len(j.pendingMaps)
	j.reduceHead = len(j.pendingReduces)
	j.localPending = make(map[int][]int) //eant:alloc-ok job-failure path, rare by construction

	d.stats.JobsFailed++
	d.stats.Jobs = append(d.stats.Jobs, JobResult{
		Spec:           j.Spec,
		Submitted:      j.Submitted,
		FirstStart:     j.FirstStart,
		MapsDoneAt:     j.MapsDoneAt,
		LastShuffleEnd: j.LastShuffleEnd,
		Finished:       j.Finished,
		Failed:         true,
	})
	for i, a := range d.active {
		if a == j {
			d.active = append(d.active[:i], d.active[i+1:]...)
			break
		}
	}
	d.mutated("failJob")
	if d.finished() {
		d.engine.Stop()
	}
}

// noteMachineFailure charges one attempt failure against the machine;
// reaching the threshold benches it for the blacklist cooldown.
func (d *Driver) noteMachineFailure(m cluster.Machine) {
	cfg := d.faults.Config()
	if cfg.BlacklistThreshold <= 0 {
		return
	}
	d.failCount[m.ID()]++
	if d.failCount[m.ID()] >= cfg.BlacklistThreshold {
		d.blacklistUntil[m.ID()] = d.engine.Now() + cfg.BlacklistCooldown
		d.failCount[m.ID()] = 0
		d.stats.Blacklists++
		if d.probe != nil {
			d.probe.MachineState(d.engine.Now(), m.ID(), "blacklist")
		}
		d.reclassify(m)
	}
}

// blacklisted reports whether machine id is currently benched by the
// failure blacklist.
func (d *Driver) blacklisted(id int) bool {
	return d.blacklistUntil != nil && d.engine.Now() < d.blacklistUntil[id]
}
