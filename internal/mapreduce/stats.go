package mapreduce

import (
	"sort"
	"time"

	"eant/internal/workload"
)

// TaskRecord is the completion record of one task, the simulator's
// equivalent of a Hadoop TaskReport tagged with energy data.
type TaskRecord struct {
	JobID       int
	App         workload.App
	Class       workload.SizeClass
	Kind        TaskKind
	MachineID   int
	MachineType string
	Start       time.Duration
	Finish      time.Duration
	EstJoules   float64
	TrueJoules  float64
	Local       bool
}

// JobResult captures one finished job's phase timeline. Failed marks a
// job terminated because a task exhausted its retry budget (fault
// injection); its timeline fields stop at the failure instant.
type JobResult struct {
	Spec           workload.JobSpec
	Submitted      time.Duration
	FirstStart     time.Duration
	MapsDoneAt     time.Duration
	LastShuffleEnd time.Duration
	Finished       time.Duration
	Failed         bool
}

// CompletionTime returns submission-to-finish latency.
func (r JobResult) CompletionTime() time.Duration { return r.Finished - r.Submitted }

// MapSeconds returns the map-phase span of the job.
func (r JobResult) MapSeconds() float64 { return (r.MapsDoneAt - r.FirstStart).Seconds() }

// ShuffleSeconds returns the post-barrier shuffle span.
func (r JobResult) ShuffleSeconds() float64 {
	if r.LastShuffleEnd < r.MapsDoneAt {
		return 0
	}
	return (r.LastShuffleEnd - r.MapsDoneAt).Seconds()
}

// ReduceSeconds returns the reduce-compute span.
func (r JobResult) ReduceSeconds() float64 {
	end := r.LastShuffleEnd
	if end < r.MapsDoneAt {
		end = r.MapsDoneAt
	}
	if r.Finished < end {
		return 0
	}
	return (r.Finished - end).Seconds()
}

// EnergyPoint is a cluster-energy snapshot taken at a control tick,
// feeding the Fig. 10 savings-over-time series.
type EnergyPoint struct {
	At          time.Duration
	TotalJoules float64
	TasksDone   int
}

// IntervalAssignments snapshots, for one control interval, how many tasks
// of each job started on each machine: map[jobID]map[machineID]count.
// The Fig. 11 convergence detector consumes consecutive snapshots.
type IntervalAssignments struct {
	At     time.Duration
	Counts map[int]map[int]int
}

// AppKindKey groups completed-task tallies per machine type.
type AppKindKey struct {
	MachineType string
	App         workload.App
	Kind        TaskKind
}

// EnergyPair accumulates estimated vs true task energy for accuracy
// reporting (Fig. 4).
type EnergyPair struct {
	EstJoules  float64
	TrueJoules float64
	Tasks      int
}

// Stats aggregates everything the evaluation section reads out of a run.
// Aggregates are always maintained; full per-task records only when
// Config.KeepTaskRecords is set (they dominate memory on large workloads).
type Stats struct {
	Scheduler string
	Horizon   time.Duration

	Jobs  []JobResult
	Tasks []TaskRecord

	// Completed tallies completed tasks grouped by (machine type, app,
	// kind) — Figs. 9a/9b.
	Completed map[AppKindKey]int
	// CompletedByMachine counts completed tasks per machine ID.
	CompletedByMachine map[int]int
	// Energy accumulates est/true task energy per (machine type, app,
	// kind) — Fig. 4.
	Energy map[AppKindKey]EnergyPair

	// LocalMaps / TotalMaps track the data-locality hit rate.
	LocalMaps int
	TotalMaps int

	// MapOffers / ReduceOffers count scheduler slot offers (AssignMap /
	// AssignReduce calls) — the hot-path operation the scale benchmarks
	// divide by to report ns/offer.
	MapOffers    int
	ReduceOffers int

	// Speculation bookkeeping: clones launched, races won by the clone,
	// and attempts killed as race losers (original or clone).
	SpeculativeStarted int
	SpeculativeWon     int
	SpeculativeKilled  int

	// Consolidation bookkeeping: power-down and wake transitions.
	Sleeps int
	Wakes  int

	// Fault-injection bookkeeping. Crashes/Recoveries count machine
	// transitions; TaskFailures counts attempt failures (JVM death
	// mid-task); TasksKilledByCrash counts in-flight attempts lost to a
	// machine crash; MapOutputsLost counts completed maps re-executed
	// because their output machine died before the job's reduces fetched
	// it (Hadoop 1.x semantics); Blacklists counts machines benched after
	// repeated failures; JobsFailed counts jobs that exhausted a task's
	// retry budget.
	Crashes            int
	Recoveries         int
	TaskFailures       int
	TasksKilledByCrash int
	MapOutputsLost     int
	Blacklists         int
	JobsFailed         int

	// Timeline holds per-control-tick energy snapshots (Fig. 10).
	Timeline []EnergyPoint
	// Assignments holds per-interval assignment distributions (Fig. 11),
	// recorded only when Config.KeepAssignmentHistory is set.
	Assignments []IntervalAssignments

	// MachineJoules and MachineAvgUtil are filled from the power meter at
	// the end of the run.
	MachineJoules  []float64
	MachineAvgUtil []float64
	// TypeJoules and TypeAvgUtil group the same by machine type
	// (Figs. 8a/8b).
	TypeJoules  map[string]float64
	TypeAvgUtil map[string]float64
	// TotalJoules is fleet-wide energy over [0, Horizon].
	TotalJoules float64
}

func newStats(schedName string) *Stats {
	return &Stats{
		Scheduler:          schedName,
		Completed:          make(map[AppKindKey]int),
		CompletedByMachine: make(map[int]int),
		Energy:             make(map[AppKindKey]EnergyPair),
	}
}

// TasksDone returns the total number of completed tasks.
func (s *Stats) TasksDone() int {
	n := 0
	for _, c := range s.CompletedByMachine {
		n += c
	}
	return n
}

// CompletedByTypeApp returns completed-task counts per machine type for
// one app (both kinds), Fig. 9a's view.
func (s *Stats) CompletedByTypeApp(machineType string, app workload.App) int {
	n := 0
	for k, c := range s.Completed {
		if k.MachineType == machineType && k.App == app {
			n += c
		}
	}
	return n
}

// CompletedByTypeKind returns completed-task counts per machine type for
// one kind (all apps), Fig. 9b's view.
func (s *Stats) CompletedByTypeKind(machineType string, kind TaskKind) int {
	n := 0
	for k, c := range s.Completed {
		if k.MachineType == machineType && k.Kind == kind {
			n += c
		}
	}
	return n
}

// EnergyByApp sums est/true energy over machine types for one app. The
// keys are sorted before summing: float addition is not associative, so
// accumulating in map-hash order would perturb the low bits from run to
// run (exactly the class of nondeterminism eantlint's floatsum rule
// exists to catch).
func (s *Stats) EnergyByApp(app workload.App) EnergyPair {
	keys := make([]AppKindKey, 0, len(s.Energy))
	for k := range s.Energy {
		if k.App == app {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.MachineType != b.MachineType {
			return a.MachineType < b.MachineType
		}
		return a.Kind < b.Kind
	})
	var out EnergyPair
	for _, k := range keys {
		p := s.Energy[k]
		out.EstJoules += p.EstJoules
		out.TrueJoules += p.TrueJoules
		out.Tasks += p.Tasks
	}
	return out
}

// LocalityFraction returns the fraction of map tasks that read local data.
func (s *Stats) LocalityFraction() float64 {
	if s.TotalMaps == 0 {
		return 0
	}
	return float64(s.LocalMaps) / float64(s.TotalMaps)
}

// JobByID returns the result for the given job ID, or nil.
func (s *Stats) JobByID(id int) *JobResult {
	for i := range s.Jobs {
		if s.Jobs[i].Spec.ID == id {
			return &s.Jobs[i]
		}
	}
	return nil
}
