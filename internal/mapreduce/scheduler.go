package mapreduce

import (
	"time"

	"eant/internal/cluster"
	"eant/internal/hdfs"
	"eant/internal/sim"
	"eant/internal/workload"
)

// Scheduler is the task-assignment policy plugged into the JobTracker.
// AssignMap/AssignReduce are called once per free slot per heartbeat; a
// scheduler hands back a task popped from some job's pending queue, or nil
// to leave the slot idle until the next heartbeat (how E-Ant starves
// energy-inefficient machines). OnTaskComplete delivers the task-level
// energy feedback each TaskTracker reports; OnControlTick fires every
// control interval for policy refresh.
type Scheduler interface {
	// Name identifies the policy in reports ("Fair", "Tarazu", "E-Ant"...).
	Name() string
	// AssignMap selects a pending map task to run on m, or nil.
	AssignMap(ctx *Context, m *cluster.Machine) *Task
	// AssignReduce selects a ready reduce task to run on m, or nil.
	AssignReduce(ctx *Context, m *cluster.Machine) *Task
	// OnTaskComplete observes a finished task with its energy estimate.
	OnTaskComplete(ctx *Context, t *Task)
	// OnControlTick fires at every control-interval boundary.
	OnControlTick(ctx *Context)
}

// Context is the JobTracker state a scheduler may consult.
type Context struct {
	Cluster *cluster.Cluster
	HDFS    *hdfs.Namespace
	// Rng is the scheduler's dedicated random stream.
	Rng *sim.RNG

	driver *Driver
}

// Now returns the current virtual time.
func (c *Context) Now() time.Duration { return c.driver.engine.Now() }

// ActiveJobs returns submitted, unfinished jobs in submission order. The
// slice is shared; callers must not mutate it.
func (c *Context) ActiveJobs() []*Job { return c.driver.active }

// ControlInterval returns the configured policy-refresh period.
func (c *Context) ControlInterval() time.Duration { return c.driver.cfg.ControlInterval }

// ReduceReady reports whether j's reduces may be scheduled yet: the job's
// map progress has passed the slowstart threshold and reduces remain.
func (c *Context) ReduceReady(j *Job) bool {
	if j.PendingReduces() == 0 {
		return false
	}
	return j.MapProgress() >= c.driver.cfg.Slowstart
}

// TotalSlots returns S_pool, the fleet-wide slot count (Eq. 7).
func (c *Context) TotalSlots() int { return c.driver.totalSlots }

// QueuePressure reports how backlogged the cluster is for the given task
// kind: 0 when queues are empty, 1 when pending work is at least twice the
// fleet's slot capacity for that kind. Schedulers that deliberately idle
// slots (E-Ant) use it to stay work-conserving under heavy load.
func (c *Context) QueuePressure(kind TaskKind) float64 {
	pending := 0
	slots := 0
	if kind == MapTask {
		for _, j := range c.driver.active {
			pending += j.PendingMaps()
		}
		slots = c.driver.totalMapSlots
	} else {
		for _, j := range c.driver.active {
			if c.ReduceReady(j) {
				pending += j.PendingReduces()
			}
		}
		slots = c.driver.totalReduceSlots
	}
	if slots == 0 {
		return 1
	}
	p := float64(pending) / float64(2*slots)
	if p > 1 {
		p = 1
	}
	return p
}

// FairShare returns S_min for job j: an equal split of the slot pool among
// active jobs, as the Hadoop Fair Scheduler's single-pool default.
func (c *Context) FairShare(j *Job) float64 {
	n := len(c.driver.active)
	if n == 0 {
		return 0
	}
	return float64(c.driver.totalSlots) / float64(n)
}

// HasLocalMap reports whether job j still has a pending map task whose
// input block has a replica on machine m.
func (c *Context) HasLocalMap(j *Job, m *cluster.Machine) bool {
	return j.peekPendingLocalMap(m.ID)
}

// PopMapPreferLocal removes and returns a pending map of j, choosing a
// block-local task for m when one exists.
func (c *Context) PopMapPreferLocal(j *Job, m *cluster.Machine) *Task {
	if t := j.popLocalMap(m.ID); t != nil {
		return t
	}
	return j.popAnyMap()
}

// PopMapAny removes and returns the oldest pending map of j, ignoring
// locality.
func (c *Context) PopMapAny(j *Job) *Task { return j.popAnyMap() }

// PopReduce removes and returns the next pending reduce of j.
func (c *Context) PopReduce(j *Job) *Task { return j.popReduce() }

// Requeue returns an unstarted task popped this heartbeat back to its job
// (the scheduler declined the assignment after inspecting it).
func (c *Context) Requeue(t *Task) { t.Job.requeue(t) }

// CloneForSpeculation creates a speculative copy of a straggling running
// attempt, to be returned from AssignMap/AssignReduce like a pending
// task. The first of the pair to finish wins; the driver kills the
// other. It returns nil when the attempt cannot be speculated: not
// running, already part of a race, or a reduce whose job's map barrier
// has not passed (its shuffle data is not fully available to re-pull).
func (c *Context) CloneForSpeculation(orig *Task) *Task {
	if orig == nil || orig.State != TaskRunning || orig.clone != nil || orig.original != nil {
		return nil
	}
	if orig.Kind == ReduceTask && !orig.Job.MapsDone() {
		return nil
	}
	clone := &Task{
		Job:      orig.Job,
		Index:    orig.Index,
		Kind:     orig.Kind,
		InputMB:  orig.InputMB,
		State:    TaskPending,
		original: orig,
	}
	orig.clone = clone
	c.driver.stats.SpeculativeStarted++
	return clone
}

// EstimateMapSeconds predicts the noise-free service time of one of j's
// map tasks on machine spec, assuming data-local execution. Schedulers
// like Tarazu use it as the task-duration profile a real implementation
// would learn from completed waves.
func (c *Context) EstimateMapSeconds(j *Job, spec *cluster.TypeSpec) float64 {
	prof := workload.ProfileOf(j.Spec.App)
	_, total := mapService(prof, workload.BlockMB, spec, true, c.driver.cfg.NetShareDivisor)
	return total
}

// EstimateReduceSeconds predicts the noise-free compute time of one of j's
// reduce tasks on machine spec (shuffle excluded).
func (c *Context) EstimateReduceSeconds(j *Job, spec *cluster.TypeSpec) float64 {
	prof := workload.ProfileOf(j.Spec.App)
	_, _, compute := reduceService(prof, j.Spec.ShuffleMBPerReduce(), spec, c.driver.cfg.NetShareDivisor)
	return compute
}
