package mapreduce

import (
	"time"

	"eant/internal/cluster"
	"eant/internal/hdfs"
	"eant/internal/probe"
	"eant/internal/sim"
	"eant/internal/workload"
)

// Scheduler is the task-assignment policy plugged into the JobTracker.
// AssignMap/AssignReduce are called once per free slot per heartbeat; a
// scheduler hands back a task popped from some job's pending queue, or nil
// to leave the slot idle until the next heartbeat (how E-Ant starves
// energy-inefficient machines). OnTaskComplete delivers the task-level
// energy feedback each TaskTracker reports; OnControlTick fires every
// control interval for policy refresh.
type Scheduler interface {
	// Name identifies the policy in reports ("Fair", "Tarazu", "E-Ant"...).
	Name() string
	// AssignMap selects a pending map task to run on m, or nil.
	AssignMap(ctx *Context, m cluster.Machine) *Task
	// AssignReduce selects a ready reduce task to run on m, or nil.
	AssignReduce(ctx *Context, m cluster.Machine) *Task
	// OnTaskComplete observes a finished task with its energy estimate.
	OnTaskComplete(ctx *Context, t *Task)
	// OnControlTick fires at every control-interval boundary.
	OnControlTick(ctx *Context)
}

// SlotObserver is an optional Scheduler extension: the driver notifies it
// whenever a machine's free-slot count of one kind changes (task start,
// completion, kill). Schedulers use it to keep per-control-interval
// indices (E-Ant's trail-ranked free-slot counters) current without
// rescanning machines on every offer.
type SlotObserver interface {
	OnSlotFreeChange(ctx *Context, m cluster.Machine, kind TaskKind, delta int)
}

// mapEstKey keys the driver's memo of map-service estimates: workload
// profiles, block size, and machine specs are all static, so the estimate
// is a pure function of (app, spec).
type mapEstKey struct {
	app  workload.App
	spec *cluster.TypeSpec
}

// Context is the JobTracker state a scheduler may consult.
type Context struct {
	Cluster *cluster.Cluster
	HDFS    *hdfs.Namespace
	// Rng is the scheduler's dedicated random stream.
	Rng *sim.RNG

	driver *Driver
}

// Now returns the current virtual time.
func (c *Context) Now() time.Duration { return c.driver.engine.Now() }

// Probe returns the run's observability probe, or nil when disabled.
// Schedulers recording decision events must treat it as a pure sink:
// record-only, guarded by a nil check on the hot path.
func (c *Context) Probe() *probe.Probe { return c.driver.probe }

// ActiveJobs returns submitted, unfinished jobs in submission order. The
// slice is shared; callers must not mutate it.
func (c *Context) ActiveJobs() []*Job { return c.driver.active }

// ControlInterval returns the configured policy-refresh period.
func (c *Context) ControlInterval() time.Duration { return c.driver.cfg.ControlInterval }

// ReduceReady reports whether j's reduces may be scheduled yet: the job's
// map progress has passed the slowstart threshold and reduces remain. The
// gate reads the cached reduceGateOpen flag, which syncReduceGate
// re-derives whenever mapsDone changes (checkAggregates verifies the two
// never diverge), so the call is two integer reads per offer instead of a
// floating-point progress ratio.
func (c *Context) ReduceReady(j *Job) bool {
	return j.reduceGateOpen && j.PendingReduces() != 0
}

// ReadyReduceTasks returns the cluster-wide count of pending reduces on
// jobs whose slowstart gate is open — zero exactly when no job satisfies
// ReduceReady, letting schedulers skip the active-job scan on idle-reduce
// heartbeats.
func (c *Context) ReadyReduceTasks() int {
	return c.driver.agg.readyPendingReduces
}

// TotalSlots returns S_pool, the fleet-wide slot count (Eq. 7).
func (c *Context) TotalSlots() int { return c.driver.totalSlots }

// QueuePressure reports how backlogged the cluster is for the given task
// kind: 0 when queues are empty, 1 when pending work is at least twice the
// fleet's slot capacity for that kind. Schedulers that deliberately idle
// slots (E-Ant) use it to stay work-conserving under heavy load.
func (c *Context) QueuePressure(kind TaskKind) float64 {
	d := c.driver
	var pending, slots int
	if kind == MapTask {
		pending = d.agg.pendingMaps
		slots = d.totalMapSlots
	} else {
		pending = d.agg.readyPendingReduces
		slots = d.totalReduceSlots
	}
	if slots == 0 {
		return 1
	}
	p := float64(pending) / float64(2*slots)
	if p > 1 {
		p = 1
	}
	return p
}

// FairShare returns S_min for job j: an equal split of the slot pool among
// active jobs, as the Hadoop Fair Scheduler's single-pool default.
func (c *Context) FairShare(j *Job) float64 {
	n := len(c.driver.active)
	if n == 0 {
		return 0
	}
	return float64(c.driver.totalSlots) / float64(n)
}

// HasLocalMap reports whether job j still has a pending map task whose
// input block has a replica on machine m.
func (c *Context) HasLocalMap(j *Job, m cluster.Machine) bool {
	return j.peekPendingLocalMap(m.ID())
}

// PopMapPreferLocal removes and returns a pending map of j, choosing a
// block-local task for m when one exists. The pending aggregate is updated
// by the operation's observed delta: a local pop leaves its FIFO entry
// behind (delta 0), exactly reproducing the lazy-queue count.
func (c *Context) PopMapPreferLocal(j *Job, m cluster.Machine) *Task {
	before := j.PendingMaps()
	t := j.popLocalMap(m.ID())
	if t == nil {
		t = j.popAnyMap()
	}
	c.driver.notePending(j, MapTask, j.PendingMaps()-before)
	return t
}

// PopMapAny removes and returns the oldest pending map of j, ignoring
// locality.
func (c *Context) PopMapAny(j *Job) *Task {
	before := j.PendingMaps()
	t := j.popAnyMap()
	c.driver.notePending(j, MapTask, j.PendingMaps()-before)
	return t
}

// PopReduce removes and returns the next pending reduce of j.
func (c *Context) PopReduce(j *Job) *Task {
	before := j.PendingReduces()
	t := j.popReduce()
	c.driver.notePending(j, ReduceTask, j.PendingReduces()-before)
	return t
}

// Requeue returns an unstarted task popped this heartbeat back to its job
// (the scheduler declined the assignment after inspecting it). requeue
// always re-adds exactly one live entry, so the pending delta is +1.
func (c *Context) Requeue(t *Task) {
	t.Job.requeue(t)
	c.driver.notePending(t.Job, t.Kind, 1)
}

// CloneForSpeculation creates a speculative copy of a straggling running
// attempt, to be returned from AssignMap/AssignReduce like a pending
// task. The first of the pair to finish wins; the driver kills the
// other. It returns nil when the attempt cannot be speculated: not
// running, already part of a race, or a reduce whose job's map barrier
// has not passed (its shuffle data is not fully available to re-pull).
func (c *Context) CloneForSpeculation(orig *Task) *Task {
	if orig == nil || orig.State != TaskRunning || orig.clone != nil || orig.original != nil {
		return nil
	}
	if orig.Kind == ReduceTask && !orig.Job.MapsDone() {
		return nil
	}
	clone := &Task{
		Job:      orig.Job,
		Index:    orig.Index,
		Kind:     orig.Kind,
		InputMB:  orig.InputMB,
		State:    TaskPending,
		original: orig,
	}
	orig.clone = clone
	c.driver.stats.SpeculativeStarted++
	return clone
}

// EstimateMapSeconds predicts the noise-free service time of one of j's
// map tasks on machine spec, assuming data-local execution. Schedulers
// like Tarazu use it as the task-duration profile a real implementation
// would learn from completed waves. Every input is static, so the value
// is memoized per (app, spec) on the driver.
func (c *Context) EstimateMapSeconds(j *Job, spec *cluster.TypeSpec) float64 {
	key := mapEstKey{j.Spec.App, spec}
	if v, ok := c.driver.mapEst[key]; ok {
		return v
	}
	prof := workload.ProfileOf(j.Spec.App)
	_, total := mapService(prof, workload.BlockMB, spec, true, c.driver.cfg.NetShareDivisor)
	if c.driver.mapEst == nil {
		c.driver.mapEst = make(map[mapEstKey]float64, 32) //eant:alloc-ok lazy memo table, amortized across the run
	}
	c.driver.mapEst[key] = total
	return total
}

// EstimateReduceSeconds predicts the noise-free compute time of one of j's
// reduce tasks on machine spec (shuffle excluded). Shuffle volume is fixed
// at submission, so the value is memoized per spec on the job.
func (c *Context) EstimateReduceSeconds(j *Job, spec *cluster.TypeSpec) float64 {
	if v, ok := j.reduceEst[spec]; ok {
		return v
	}
	prof := workload.ProfileOf(j.Spec.App)
	_, _, compute := reduceService(prof, j.Spec.ShuffleMBPerReduce(), spec, c.driver.cfg.NetShareDivisor)
	if j.reduceEst == nil {
		j.reduceEst = make(map[*cluster.TypeSpec]float64, 8) //eant:alloc-ok lazy memo table, amortized per job
	}
	j.reduceEst[spec] = compute
	return compute
}

// PendingTasks returns the cluster-wide count of unassigned tasks of the
// given kind across active jobs, with the same lazy-queue semantics as a
// per-job PendingMaps/PendingReduces scan.
func (c *Context) PendingTasks(kind TaskKind) int {
	if kind == MapTask {
		return c.driver.agg.pendingMaps
	}
	return c.driver.agg.pendingReduces
}

// AwakeSlots returns the slot capacity and free slots of the given kind on
// powered-up machines. Blacklisted machines count (they hold slots and
// finish in-flight work); dead and sleeping machines do not.
func (c *Context) AwakeSlots(kind TaskKind) (slots, free int) {
	a := &c.driver.agg
	aw, bl := &a.byClass[classAwake], &a.byClass[classBlacklisted]
	if kind == MapTask {
		return aw.mapSlots + bl.mapSlots, aw.freeMap + bl.freeMap
	}
	return aw.reduceSlots + bl.reduceSlots, aw.freeReduce + bl.freeReduce
}

// AvailabilityEpoch counts machine crash/recover transitions. Schedulers
// stamp per-control-interval indices with it so a mid-interval
// availability change invalidates them.
func (c *Context) AvailabilityEpoch() uint64 { return c.driver.agg.epoch }

// TypeSpecs returns one representative spec per machine type in sorted
// type-name order. The slice is shared; callers must not mutate it.
func (c *Context) TypeSpecs() []*cluster.TypeSpec { return c.driver.typeReps }

// FreeReduceSlotsOfType returns the free reduce slots on machines of the
// i-th type (TypeSpecs order), excluding dead machines.
func (c *Context) FreeReduceSlotsOfType(i int) int { return c.driver.agg.freeReduceByType[i] }
