package mapreduce_test

import (
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/fault"
	"eant/internal/mapreduce"
	"eant/internal/sched"
	"eant/internal/workload"
)

// checkClusterQuiescent asserts no slot or utilization leaked through the
// crash/retry paths: after a run every machine must hold zero tasks and
// zero task CPU share. (Gross leaks panic inside Release*, but a missed
// release would only show up here.)
func checkClusterQuiescent(t *testing.T, c *cluster.Cluster) {
	t.Helper()
	for _, m := range c.Machines() {
		if m.Running() != 0 {
			t.Errorf("%s still holds %d tasks after the run", m, m.Running())
		}
		if m.Utilization() > 1e-9 {
			t.Errorf("%s still has utilization %v after the run", m, m.Utilization())
		}
	}
}

func TestScriptedCrashAndRecovery(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.Fault = fault.Config{Scenario: []fault.Event{
		{At: 30 * time.Second, Machine: 0, Kind: fault.Crash},
		{At: 3 * time.Minute, Machine: 0, Kind: fault.Recover},
	}}
	c := smallCluster()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 6400, 2, 0)}
	stats := run(t, c, sched.NewFIFO(), cfg, jobs)

	if stats.Crashes != 1 || stats.Recoveries != 1 {
		t.Errorf("crashes/recoveries = %d/%d, want 1/1", stats.Crashes, stats.Recoveries)
	}
	if len(stats.Jobs) != 1 || stats.Jobs[0].Failed {
		t.Fatalf("job did not survive the crash: %+v", stats.Jobs)
	}
	if !c.Machine(0).Available() {
		t.Error("machine 0 not repaired after scripted recovery")
	}
	checkClusterQuiescent(t, c)
}

func TestCrashOutsideFleetIsSkipped(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.Fault = fault.Config{Scenario: []fault.Event{
		{At: time.Second, Machine: 99, Kind: fault.Crash},
	}}
	c := smallCluster()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Grep, 640, 1, 0)}
	stats := run(t, c, sched.NewFIFO(), cfg, jobs)
	if stats.Crashes != 0 {
		t.Errorf("out-of-range scripted crash fired: %d crashes", stats.Crashes)
	}
}

func TestAttemptFailuresRetryToCompletion(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.Seed = 3
	cfg.Fault = fault.Config{TaskFailProb: 0.3, MaxAttempts: 50}
	c := smallCluster()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Terasort, 3200, 3, 0)}
	stats := run(t, c, sched.NewFIFO(), cfg, jobs)

	if stats.TaskFailures == 0 {
		t.Fatal("30% attempt-failure probability produced no failures")
	}
	if stats.JobsFailed != 0 || len(stats.Jobs) != 1 || stats.Jobs[0].Failed {
		t.Errorf("job should retry through failures: failed=%d results=%+v", stats.JobsFailed, stats.Jobs)
	}
	// Every logical task still completed exactly once.
	if got, want := stats.TasksDone(), 50+3; got != want {
		t.Errorf("TasksDone = %d, want %d", got, want)
	}
	checkClusterQuiescent(t, c)
}

func TestJobFailsWhenRetryBudgetExhausted(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.Fault = fault.Config{TaskFailProb: 1, MaxAttempts: 2}
	c := smallCluster()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 640, 1, 0)}
	stats := run(t, c, sched.NewFIFO(), cfg, jobs)

	if stats.JobsFailed != 1 {
		t.Fatalf("JobsFailed = %d, want 1", stats.JobsFailed)
	}
	if len(stats.Jobs) != 1 || !stats.Jobs[0].Failed {
		t.Fatalf("failed job not recorded: %+v", stats.Jobs)
	}
	if stats.Jobs[0].Finished <= 0 {
		t.Error("failed job has no failure instant")
	}
	// The driver must stop at the failure, not idle to the horizon.
	if stats.Horizon != stats.Jobs[0].Finished {
		t.Errorf("run horizon %v != failure instant %v", stats.Horizon, stats.Jobs[0].Finished)
	}
	checkClusterQuiescent(t, c)
}

func TestLostMapOutputsAreReexecuted(t *testing.T) {
	// First run a healthy reference to learn when the map barrier passes,
	// then crash a machine mid-reduce: completed maps hosted there must be
	// re-executed (Hadoop 1.x keeps map output on the mapper's local disk)
	// and the job must still finish, later than the reference.
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Terasort, 6400, 2, 0)}
	ref := run(t, smallCluster(), sched.NewFIFO(), mapreduce.DefaultConfig(), jobs)
	r := ref.Jobs[0]
	crashAt := r.MapsDoneAt + (r.Finished-r.MapsDoneAt)/4
	if crashAt <= r.MapsDoneAt {
		t.Fatalf("degenerate reference timeline: %+v", r)
	}

	cfg := mapreduce.DefaultConfig()
	cfg.Fault = fault.Config{Scenario: []fault.Event{
		{At: crashAt, Machine: 0, Kind: fault.Crash},
		{At: crashAt + 2*time.Minute, Machine: 0, Kind: fault.Recover},
	}}
	c := smallCluster()
	stats := run(t, c, sched.NewFIFO(), cfg, jobs)

	if stats.MapOutputsLost == 0 {
		t.Fatal("crash after the map barrier lost no map outputs")
	}
	if len(stats.Jobs) != 1 || stats.Jobs[0].Failed {
		t.Fatalf("job did not survive the output loss: %+v", stats.Jobs)
	}
	// Compute-phase reduces keep running through the barrier reopening, so
	// the faulty run can tie the healthy one — but never beat it.
	if stats.Jobs[0].Finished < r.Finished {
		t.Errorf("faulty run finished early: %v < healthy %v", stats.Jobs[0].Finished, r.Finished)
	}
	// Re-executed maps complete again, so the tally exceeds the task count.
	if want := 100 + 2 + stats.MapOutputsLost; stats.TasksDone() != want {
		t.Errorf("TasksDone = %d, want %d (incl. %d re-executed maps)",
			stats.TasksDone(), want, stats.MapOutputsLost)
	}
	checkClusterQuiescent(t, c)
}

func TestMapOnlyJobIgnoresOutputLoss(t *testing.T) {
	// A map-only job writes straight to replicated HDFS: crashing a machine
	// after its maps completed must not re-execute anything.
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Grep, 1280, 0, 0)}
	ref := run(t, smallCluster(), sched.NewFIFO(), mapreduce.DefaultConfig(), jobs)

	cfg := mapreduce.DefaultConfig()
	cfg.Fault = fault.Config{Scenario: []fault.Event{
		{At: ref.Jobs[0].Finished / 2, Machine: 1, Kind: fault.Crash},
	}}
	stats := run(t, smallCluster(), sched.NewFIFO(), cfg, jobs)
	if stats.MapOutputsLost != 0 {
		t.Errorf("map-only job re-executed %d outputs", stats.MapOutputsLost)
	}
	if len(stats.Jobs) != 1 {
		t.Fatal("map-only job did not finish")
	}
}

func TestBlacklistBenchesFailingMachine(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.Seed = 5
	cfg.Fault = fault.Config{
		TaskFailProb:       0.4,
		MaxAttempts:        100,
		BlacklistThreshold: 3,
		BlacklistCooldown:  time.Minute,
	}
	c := smallCluster()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Terasort, 6400, 2, 0)}
	stats := run(t, c, sched.NewFIFO(), cfg, jobs)

	if stats.Blacklists == 0 {
		t.Fatal("40% failure probability never tripped the blacklist")
	}
	if len(stats.Jobs) != 1 || stats.Jobs[0].Failed {
		t.Fatalf("job did not complete around blacklisting: %+v", stats.Jobs)
	}
	checkClusterQuiescent(t, c)
}

func TestCrashedMachineDrawsNoPower(t *testing.T) {
	// While a machine is down it draws no power and offers no slots: crash
	// machine 0 early in a long map-only job (no recovery) and its metered
	// energy must fall well below the healthy run's, while the survivors
	// shoulder its share and stretch the makespan.
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 3200, 0, 0)}
	healthy := run(t, smallCluster(), sched.NewFIFO(), mapreduce.DefaultConfig(), jobs)

	cfg := mapreduce.DefaultConfig()
	cfg.Fault = fault.Config{Scenario: []fault.Event{
		{At: 30 * time.Second, Machine: 0, Kind: fault.Crash},
	}}
	outage := run(t, smallCluster(), sched.NewFIFO(), cfg, jobs)

	if outage.Crashes != 1 {
		t.Fatalf("scripted crash did not fire: %d crashes", outage.Crashes)
	}
	if len(outage.Jobs) != 1 || outage.Jobs[0].Failed {
		t.Fatalf("job did not survive the permanent outage: %+v", outage.Jobs)
	}
	if outage.MachineJoules[0] >= healthy.MachineJoules[0] {
		t.Errorf("dead machine still drawing power: %v J >= healthy %v J",
			outage.MachineJoules[0], healthy.MachineJoules[0])
	}
	if outage.Horizon <= healthy.Horizon {
		t.Errorf("losing a machine was free: outage makespan %v <= healthy %v",
			outage.Horizon, healthy.Horizon)
	}
}

func TestFaultConfigValidationSurfaces(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.Fault = fault.Config{TaskFailProb: 1.5}
	if _, err := mapreduce.NewDriver(smallCluster(), sched.NewFIFO(), cfg); err == nil {
		t.Error("invalid fault config accepted by NewDriver")
	}
}
