package mapreduce_test

import (
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/mapreduce"
	"eant/internal/sched"
	"eant/internal/workload"
)

func consolidatedConfig() mapreduce.Config {
	cfg := mapreduce.DefaultConfig()
	cfg.Power = mapreduce.PowerMgmt{
		Enabled:     true,
		IdleTimeout: 15 * time.Second,
	}
	return cfg
}

func TestConsolidationSleepsIdleMachines(t *testing.T) {
	// One small job followed by a long lull, then another job: machines
	// must sleep during the lull and wake for the second job.
	cfg := consolidatedConfig()
	jobs := []workload.JobSpec{
		workload.NewJobSpec(0, workload.Grep, 640, 1, 0),
		workload.NewJobSpec(1, workload.Grep, 640, 1, 10*time.Minute),
	}
	stats := run(t, smallCluster(), sched.NewFair(), cfg, jobs)
	if len(stats.Jobs) != 2 {
		t.Fatalf("finished %d/2 jobs", len(stats.Jobs))
	}
	if stats.Sleeps == 0 {
		t.Error("no machines slept through a 10-minute lull")
	}
	if stats.Wakes == 0 {
		t.Error("no wakes despite a second job after the lull")
	}
}

func TestConsolidationSavesEnergyOverLull(t *testing.T) {
	jobs := []workload.JobSpec{
		workload.NewJobSpec(0, workload.Grep, 640, 1, 0),
		workload.NewJobSpec(1, workload.Grep, 640, 1, 10*time.Minute),
	}
	plain := run(t, smallCluster(), sched.NewFair(), mapreduce.DefaultConfig(), jobs)
	cons := run(t, smallCluster(), sched.NewFair(), consolidatedConfig(), jobs)
	if cons.TotalJoules >= plain.TotalJoules {
		t.Errorf("consolidated %v J not below always-on %v J",
			cons.TotalJoules, plain.TotalJoules)
	}
	// During a ~9.5-minute lull, 2 of 3 machines (the covering subset
	// keeps one per type awake) sleep at ~3 W instead of 40-85 W idle:
	// the saving must be substantial, not marginal.
	saving := 1 - cons.TotalJoules/plain.TotalJoules
	if saving < 0.2 {
		t.Errorf("consolidation saving = %.1f%%, want ≥ 20%%", 100*saving)
	}
}

func TestConsolidationCoveringSubsetStaysAwake(t *testing.T) {
	// With nothing to do at all after a single tiny job, covering
	// machines (one per type here) must never sleep; the fleet must
	// still finish later work.
	cfg := consolidatedConfig()
	cfg.KeepTaskRecords = true
	c := smallCluster() // 2 desktops + 1 T420
	jobs := []workload.JobSpec{
		workload.NewJobSpec(0, workload.Wordcount, 320, 1, 0),
		workload.NewJobSpec(1, workload.Wordcount, 320, 1, 20*time.Minute),
	}
	stats := run(t, c, sched.NewFair(), cfg, jobs)
	if len(stats.Jobs) != 2 {
		t.Fatalf("finished %d/2 jobs", len(stats.Jobs))
	}
	// At most one desktop can sleep (the other is covering) plus zero
	// T420s (single instance is covering): sleeps bounded accordingly.
	if stats.Sleeps > 4 {
		t.Errorf("sleeps = %d, expected at most a few transitions", stats.Sleeps)
	}
}

func TestConsolidationWakeLatencyDelaysTasks(t *testing.T) {
	// The same single job run cold (everything except covering asleep
	// after a lull) must take longer than with an all-awake fleet.
	mkJobs := func() []workload.JobSpec {
		return []workload.JobSpec{
			workload.NewJobSpec(0, workload.Grep, 320, 0, 0),
			workload.NewJobSpec(1, workload.Wordcount, 1280, 0, 10*time.Minute),
		}
	}
	plain := run(t, smallCluster(), sched.NewFair(), mapreduce.DefaultConfig(), mkJobs())
	cons := run(t, smallCluster(), sched.NewFair(), consolidatedConfig(), mkJobs())
	jct := func(s *mapreduce.Stats) time.Duration {
		r := s.JobByID(1)
		if r == nil {
			t.Fatal("job 1 missing")
		}
		return r.CompletionTime()
	}
	if jct(cons) <= jct(plain) {
		t.Errorf("cold-start JCT %v not above warm JCT %v", jct(cons), jct(plain))
	}
}

func TestMachineSleepWakeSemantics(t *testing.T) {
	m := cluster.MustNew(cluster.Group{Spec: cluster.SpecDesktop, Count: 1}).Machine(0)
	m.Sleep(3)
	if !m.Asleep() {
		t.Fatal("machine not asleep")
	}
	if got := m.Power(); got != 3 {
		t.Errorf("sleeping power = %v, want 3", got)
	}
	m.Wake()
	if m.Asleep() || m.Power() != cluster.SpecDesktop.IdleWatts {
		t.Error("wake did not restore idle draw")
	}
	m.Sleep(-5)
	if m.Power() != 0 {
		t.Error("negative standby watts not clamped to 0")
	}
	m.Wake()
	m.AcquireMap(0.1)
	defer func() {
		if recover() == nil {
			t.Error("sleeping a busy machine did not panic")
		}
	}()
	m.Sleep(3)
}
