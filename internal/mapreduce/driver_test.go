package mapreduce_test

import (
	"math"
	"reflect"
	"testing"
	"time"

	"eant/internal/cluster"
	"eant/internal/core"
	"eant/internal/fault"
	"eant/internal/mapreduce"
	"eant/internal/noise"
	"eant/internal/sched"
	"eant/internal/workload"
)

func smallCluster() *cluster.Cluster {
	return cluster.MustNew(
		cluster.Group{Spec: cluster.SpecDesktop, Count: 2},
		cluster.Group{Spec: cluster.SpecT420, Count: 1},
	)
}

func run(t *testing.T, c *cluster.Cluster, s mapreduce.Scheduler, cfg mapreduce.Config, jobs []workload.JobSpec) *mapreduce.Stats {
	t.Helper()
	d, err := mapreduce.NewDriver(c, s, cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	// Every driver test doubles as an aggregate-invariant test: after each
	// mutating event the incremental statistics must equal a recompute.
	d.EnableInvariantChecks(func(err error) { t.Fatal(err) })
	stats, err := d.Run(jobs, -1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats
}

func TestSingleJobCompletes(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.KeepTaskRecords = true
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 640, 2, 0)}
	stats := run(t, smallCluster(), sched.NewFIFO(), cfg, jobs)

	if len(stats.Jobs) != 1 {
		t.Fatalf("finished %d jobs, want 1", len(stats.Jobs))
	}
	r := stats.Jobs[0]
	if r.Finished <= r.FirstStart {
		t.Error("job finished before it started")
	}
	if r.MapsDoneAt > r.Finished || r.MapsDoneAt < r.FirstStart {
		t.Error("map barrier outside job lifetime")
	}
	wantTasks := 10 + 2
	if got := stats.TasksDone(); got != wantTasks {
		t.Errorf("TasksDone = %d, want %d", got, wantTasks)
	}
	if len(stats.Tasks) != wantTasks {
		t.Errorf("task records = %d, want %d", len(stats.Tasks), wantTasks)
	}
	if stats.TotalJoules <= 0 {
		t.Error("no energy accounted")
	}
}

func TestTaskRecordsConsistent(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.KeepTaskRecords = true
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Terasort, 1280, 4, 0)}
	stats := run(t, smallCluster(), sched.NewFIFO(), cfg, jobs)

	maps, reduces := 0, 0
	for _, rec := range stats.Tasks {
		if rec.Finish <= rec.Start {
			t.Errorf("task %v finished at/before start", rec)
		}
		if rec.EstJoules <= 0 || rec.TrueJoules <= 0 {
			t.Errorf("task has non-positive energy: %+v", rec)
		}
		switch rec.Kind {
		case mapreduce.MapTask:
			maps++
		case mapreduce.ReduceTask:
			reduces++
		}
	}
	if maps != 20 || reduces != 4 {
		t.Errorf("completed %d maps, %d reduces; want 20, 4", maps, reduces)
	}
}

func TestReducesWaitForMapBarrier(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.KeepTaskRecords = true
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Terasort, 2560, 4, 0)}
	stats := run(t, smallCluster(), sched.NewFIFO(), cfg, jobs)

	r := stats.Jobs[0]
	for _, rec := range stats.Tasks {
		if rec.Kind == mapreduce.ReduceTask && rec.Finish < r.MapsDoneAt {
			t.Errorf("reduce finished at %v before map barrier %v", rec.Finish, r.MapsDoneAt)
		}
	}
	if r.LastShuffleEnd < r.MapsDoneAt {
		t.Error("shuffle ended before map barrier")
	}
}

func TestEnergyConservation(t *testing.T) {
	// Metered energy must be ≥ idle floor and ≥ the true marginal task
	// energy attributed to tasks (meter includes unattributed idle time).
	cfg := mapreduce.DefaultConfig()
	cfg.KeepTaskRecords = true
	c := smallCluster()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Grep, 1280, 2, 0)}
	stats := run(t, c, sched.NewFIFO(), cfg, jobs)

	var idleFloor float64
	for _, m := range c.Machines() {
		idleFloor += m.Spec().IdleWatts * stats.Horizon.Seconds()
	}
	if stats.TotalJoules < idleFloor {
		t.Errorf("metered %v J below idle floor %v J", stats.TotalJoules, idleFloor)
	}
	var taskTrue float64
	for _, rec := range stats.Tasks {
		taskTrue += rec.TrueJoules
	}
	var dynamic float64 = stats.TotalJoules - idleFloor
	var taskDynamicMax float64 = taskTrue // true joules include idle share, so this is loose
	if dynamic < 0 {
		t.Errorf("negative dynamic energy %v", dynamic)
	}
	_ = taskDynamicMax
}

func TestEstimateTracksTruthWithoutNoise(t *testing.T) {
	// With noise off, per-task estimate differs from truth only by
	// heartbeat quantization: Est ≥ True, within one Δt of power.
	cfg := mapreduce.DefaultConfig()
	cfg.KeepTaskRecords = true
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 640, 2, 0)}
	stats := run(t, smallCluster(), sched.NewFIFO(), cfg, jobs)

	for _, rec := range stats.Tasks {
		if rec.EstJoules < rec.TrueJoules*0.8 {
			t.Errorf("estimate %v far below truth %v", rec.EstJoules, rec.TrueJoules)
		}
		if rec.EstJoules > rec.TrueJoules*1.6+60 {
			t.Errorf("estimate %v far above truth %v", rec.EstJoules, rec.TrueJoules)
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.Noise = noise.Default()
	cfg.Seed = 42
	jobs := workload.Batch(workload.Grep, 4, 640, 2, 30*time.Second)

	a := run(t, smallCluster(), sched.NewFair(), cfg, jobs)
	b := run(t, smallCluster(), sched.NewFair(), cfg, jobs)
	if a.TotalJoules != b.TotalJoules {
		t.Errorf("energy differs across identical runs: %v vs %v", a.TotalJoules, b.TotalJoules)
	}
	if a.Horizon != b.Horizon {
		t.Errorf("horizon differs: %v vs %v", a.Horizon, b.Horizon)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i].Finished != b.Jobs[i].Finished {
			t.Errorf("job %d finish differs", i)
		}
	}
}

// faultyConfig is the shared fault-injection setup of the determinism
// tests: stochastic crashes, quick repairs, and a tangible per-attempt
// failure probability, on top of the default noise model.
func faultyConfig(seed int64) mapreduce.Config {
	cfg := mapreduce.DefaultConfig()
	cfg.Noise = noise.Default()
	cfg.Seed = seed
	cfg.KeepTaskRecords = true
	cfg.KeepAssignmentHistory = true
	cfg.ControlInterval = time.Minute
	cfg.Fault = fault.Config{
		MachineMTBF:  4 * time.Minute,
		MachineMTTR:  time.Minute,
		TaskFailProb: 0.05,
		MaxAttempts:  8,
	}
	return cfg
}

// TestGoldenDeterminismWithFaults is the golden determinism harness: two
// runs with the same seed and fault injection ON must agree on every
// collected statistic — job timelines, task records, interval assignment
// distributions, per-machine joules, and the fault tallies themselves.
// reflect.DeepEqual over the whole Stats struct is deliberately brutal:
// any unsorted map iteration on the crash/recovery paths shows up here.
func TestGoldenDeterminismWithFaults(t *testing.T) {
	jobs := workload.Batch(workload.Terasort, 6, 1280, 2, 20*time.Second)

	a := run(t, smallCluster(), sched.NewFair(), faultyConfig(7), jobs)
	b := run(t, smallCluster(), sched.NewFair(), faultyConfig(7), jobs)

	if a.Crashes == 0 || a.TaskFailures == 0 {
		t.Fatalf("fault injection inert: %d crashes, %d task failures — the test is not exercising recovery",
			a.Crashes, a.TaskFailures)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("stats differ across identical faulty runs:\n a: joules=%v horizon=%v crashes=%d fails=%d lost=%d\n b: joules=%v horizon=%v crashes=%d fails=%d lost=%d",
			a.TotalJoules, a.Horizon, a.Crashes, a.TaskFailures, a.MapOutputsLost,
			b.TotalJoules, b.Horizon, b.Crashes, b.TaskFailures, b.MapOutputsLost)
	}
}

// TestGoldenDeterminismAcrossSchedulers repeats the golden harness for
// every scheduler family — the recovery paths thread through scheduler
// callbacks (OnTaskComplete, OnControlTick), so each policy gets its own
// bit-identity check.
func TestGoldenDeterminismAcrossSchedulers(t *testing.T) {
	jobs := workload.Batch(workload.Grep, 5, 1280, 2, 30*time.Second)
	makers := map[string]func() mapreduce.Scheduler{
		"FIFO": func() mapreduce.Scheduler { return sched.NewFIFO() },
		"Fair": func() mapreduce.Scheduler { return sched.NewFair() },
		"LATE": func() mapreduce.Scheduler { return sched.NewLATE() },
		"E-Ant": func() mapreduce.Scheduler {
			return core.MustNewEAnt(core.DefaultParams())
		},
	}
	for name, mk := range makers {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			a := run(t, smallCluster(), mk(), faultyConfig(11), jobs)
			b := run(t, smallCluster(), mk(), faultyConfig(11), jobs)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s: stats differ across identical faulty runs (joules %v vs %v, horizon %v vs %v)",
					name, a.TotalJoules, b.TotalJoules, a.Horizon, b.Horizon)
			}
		})
	}
}

func TestSeedChangesOutcomeWithNoise(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.Noise = noise.Default()
	jobs := workload.Batch(workload.Grep, 4, 640, 2, 30*time.Second)

	cfg.Seed = 1
	a := run(t, smallCluster(), sched.NewFair(), cfg, jobs)
	cfg.Seed = 2
	b := run(t, smallCluster(), sched.NewFair(), cfg, jobs)
	if a.TotalJoules == b.TotalJoules {
		t.Error("different seeds produced identical energy under noise")
	}
}

func TestMultiJobFairSharing(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	jobs := []workload.JobSpec{
		workload.NewJobSpec(0, workload.Wordcount, 3200, 2, 0),
		workload.NewJobSpec(1, workload.Grep, 3200, 2, 0),
	}
	stats := run(t, smallCluster(), sched.NewFair(), cfg, jobs)
	if len(stats.Jobs) != 2 {
		t.Fatalf("finished %d jobs, want 2", len(stats.Jobs))
	}
}

func TestHorizonCutsRunShort(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	c := smallCluster()
	d, err := mapreduce.NewDriver(c, sched.NewFIFO(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 64000, 8, 0)}
	stats, err := d.Run(jobs, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Horizon != 2*time.Minute {
		t.Errorf("horizon = %v, want 2m", stats.Horizon)
	}
	if len(stats.Jobs) != 0 {
		t.Error("huge job reported finished within tiny horizon")
	}
	if stats.TotalJoules <= 0 {
		t.Error("no energy metered up to horizon")
	}
}

func TestForcedLocalFraction(t *testing.T) {
	for _, frac := range []float64{0, 1} {
		cfg := mapreduce.DefaultConfig()
		cfg.ForcedLocalFraction = frac
		jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 6400, 2, 0)}
		stats := run(t, smallCluster(), sched.NewFIFO(), cfg, jobs)
		if got := stats.LocalityFraction(); math.Abs(got-frac) > 1e-9 {
			t.Errorf("forced %v, measured locality %v", frac, got)
		}
	}
}

func TestLocalityAffectsJobTime(t *testing.T) {
	// Map-only job: reduce start times are heartbeat-quantized and would
	// mask small map-phase differences.
	mk := func(frac float64) time.Duration {
		cfg := mapreduce.DefaultConfig()
		cfg.ForcedLocalFraction = frac
		jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 6400, 0, 0)}
		stats := run(t, smallCluster(), sched.NewFIFO(), cfg, jobs)
		return stats.Jobs[0].CompletionTime()
	}
	local, remote := mk(1), mk(0)
	if local >= remote {
		t.Errorf("fully-local job (%v) not faster than fully-remote (%v)", local, remote)
	}
}

func TestMapOnlyJob(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Grep, 640, 0, 0)}
	stats := run(t, smallCluster(), sched.NewFIFO(), cfg, jobs)
	if len(stats.Jobs) != 1 {
		t.Fatal("map-only job did not finish")
	}
	if got := stats.Jobs[0].ReduceSeconds(); got != 0 {
		t.Errorf("map-only job has reduce span %v", got)
	}
}

func TestSingleMachineDegenerateCluster(t *testing.T) {
	c := cluster.MustNew(cluster.Group{Spec: cluster.SpecAtom, Count: 1})
	cfg := mapreduce.DefaultConfig()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 320, 1, 0)}
	stats := run(t, c, sched.NewFair(), cfg, jobs)
	if len(stats.Jobs) != 1 {
		t.Fatal("job did not finish on single-machine cluster")
	}
	if got := stats.LocalityFraction(); got != 1 {
		t.Errorf("single machine locality = %v, want 1", got)
	}
}

func TestStragglerNoiseStretchesRuntime(t *testing.T) {
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 3200, 2, 0)}
	quiet := mapreduce.DefaultConfig()
	base := run(t, smallCluster(), sched.NewFIFO(), quiet, jobs)

	noisy := mapreduce.DefaultConfig()
	noisy.Noise = noise.Config{StragglerProb: 1, StragglerMin: 3, StragglerMax: 3}
	slow := run(t, smallCluster(), sched.NewFIFO(), noisy, jobs)

	if slow.Jobs[0].CompletionTime() < base.Jobs[0].CompletionTime()*2 {
		t.Errorf("3× stragglers: completion %v vs base %v, want ≥ 2× slower",
			slow.Jobs[0].CompletionTime(), base.Jobs[0].CompletionTime())
	}
}

func TestRunValidation(t *testing.T) {
	d, err := mapreduce.NewDriver(smallCluster(), sched.NewFIFO(), mapreduce.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(nil, -1); err == nil {
		t.Error("empty job list accepted")
	}
	bad := []workload.JobSpec{{ID: 0, App: workload.Wordcount, InputMB: -1}}
	if _, err := d.Run(bad, -1); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestNewDriverValidation(t *testing.T) {
	if _, err := mapreduce.NewDriver(smallCluster(), nil, mapreduce.DefaultConfig()); err == nil {
		t.Error("nil scheduler accepted")
	}
	cfg := mapreduce.DefaultConfig()
	cfg.Noise = noise.Config{DurationCV: -1}
	if _, err := mapreduce.NewDriver(smallCluster(), sched.NewFIFO(), cfg); err == nil {
		t.Error("invalid noise config accepted")
	}
}

func TestTimelineRecordsControlTicks(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.ControlInterval = time.Minute
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 12800, 4, 0)}
	stats := run(t, smallCluster(), sched.NewFair(), cfg, jobs)
	if len(stats.Timeline) == 0 {
		t.Fatal("no timeline snapshots recorded")
	}
	for i := 1; i < len(stats.Timeline); i++ {
		if stats.Timeline[i].TotalJoules < stats.Timeline[i-1].TotalJoules {
			t.Error("timeline energy not monotone")
		}
		if stats.Timeline[i].At <= stats.Timeline[i-1].At {
			t.Error("timeline times not increasing")
		}
	}
}

func TestAssignmentHistoryRecorded(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	cfg.ControlInterval = 30 * time.Second
	cfg.KeepAssignmentHistory = true
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Wordcount, 12800, 4, 0)}
	stats := run(t, smallCluster(), sched.NewFair(), cfg, jobs)
	if len(stats.Assignments) == 0 {
		t.Fatal("no assignment snapshots recorded")
	}
	total := 0
	for _, snap := range stats.Assignments {
		for _, byMachine := range snap.Counts {
			for _, n := range byMachine {
				total += n
			}
		}
	}
	if total == 0 {
		t.Error("assignment snapshots are all empty")
	}
}

func TestCompletedTallies(t *testing.T) {
	cfg := mapreduce.DefaultConfig()
	jobs := []workload.JobSpec{workload.NewJobSpec(0, workload.Grep, 640, 2, 0)}
	stats := run(t, smallCluster(), sched.NewFIFO(), cfg, jobs)

	totalByType := 0
	for _, name := range []string{"Desktop", "T420"} {
		totalByType += stats.CompletedByTypeApp(name, workload.Grep)
	}
	if totalByType != 12 {
		t.Errorf("type/app tally = %d, want 12", totalByType)
	}
	maps := stats.CompletedByTypeKind("Desktop", mapreduce.MapTask) +
		stats.CompletedByTypeKind("T420", mapreduce.MapTask)
	if maps != 10 {
		t.Errorf("map tally = %d, want 10", maps)
	}
	pair := stats.EnergyByApp(workload.Grep)
	if pair.Tasks != 12 || pair.EstJoules <= 0 {
		t.Errorf("energy pair = %+v", pair)
	}
}
