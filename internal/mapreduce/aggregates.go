package mapreduce

import (
	"fmt"

	"eant/internal/cluster"
)

// This file is the driver's incremental-statistics layer. The scheduler
// hot path (one call per free slot per heartbeat) used to recompute
// cluster-wide facts — pending work per task kind, awake slot capacity,
// per-type free reduce slots — by scanning every active job or every
// machine on each offer. The driver instead maintains those facts as live
// aggregates, updated at the O(1) events that change them: queue
// pops/requeues, job arrival/departure, task start/finish, and machine
// availability transitions (sleep/wake, crash/recover, blacklist).
//
// Invariants (checkAggregates verifies them after every mutating event):
//
//   - pendingMaps    == Σ over active jobs of Job.PendingMaps()
//   - pendingReduces == Σ over active jobs of Job.PendingReduces()
//   - readyPendingReduces restricts pendingReduces to jobs whose map
//     progress has passed the slowstart gate (Job.reduceGateOpen caches
//     the gate; it is re-derived whenever mapsDone changes, including the
//     decrease in reexecuteLostMaps).
//   - class[id] is the machine's availability class with precedence
//     dead > asleep > blacklisted > awake. A blacklist expiry is a
//     time-based transition with no event attached, so class may lag as
//     blacklisted past the cooldown until the next heartbeat reconciles
//     it — harmless, because every consumer reads awake+blacklisted
//     summed (a blacklisted machine still holds slots and finishes work).
//   - freeMap[id]/freeReduce[id] mirror Machine.FreeXSlots() (0 while
//     dead); byClass buckets sum capacity and accounted free slots over
//     the machines currently in each class.
//   - freeReduceByType[t] == Σ FreeReduceSlots() over machines of type t
//     (dead machines contribute 0), in sorted type-name order.
//
// Note the pending counters deliberately reproduce the lazy-queue
// semantics of Job.PendingMaps(): popping a map through the locality
// index leaves its FIFO entry behind, so the count overcounts until
// popAnyMap skips the stale entries. The aggregates track the same
// quantity by applying before/after deltas around each queue operation,
// keeping every consumer bit-identical to the scan it replaced.

// machineClass is a machine's availability bucket.
type machineClass uint8

const (
	classAwake machineClass = iota
	classAsleep
	classBlacklisted
	classDead
	numClasses
)

// classSlots aggregates slot capacity and free slots over one class.
type classSlots struct {
	mapSlots    int
	reduceSlots int
	freeMap     int
	freeReduce  int
}

// aggregates is the driver's incremental-statistics state.
type aggregates struct {
	pendingMaps         int
	pendingReduces      int
	readyPendingReduces int

	class   []machineClass
	byClass [numClasses]classSlots
	// freeMap/freeReduce are the per-machine free slots accounted into
	// the class buckets (zeroed while a machine is dead).
	freeMap    []int
	freeReduce []int

	// typeIdx maps machine ID to its index in the driver's typeReps
	// (sorted type-name order); freeReduceByType aggregates free reduce
	// slots per type for the straggler guard.
	typeIdx          []int
	freeReduceByType []int

	// epoch counts machine crash/recover transitions; schedulers stamp
	// derived per-interval indices with it so a mid-interval availability
	// change invalidates them.
	epoch uint64
}

// initAggregates seeds the aggregate state for a fresh, fully-awake fleet.
func (d *Driver) initAggregates() {
	c := d.cluster
	n := c.Size()
	a := &d.agg
	a.class = make([]machineClass, n)

	names := c.TypeNames()
	d.typeReps = make([]*cluster.TypeSpec, len(names))
	for i, name := range names {
		d.typeReps[i] = c.ByType(name)[0].Spec()
	}

	// One backing array for the per-machine and per-type int aggregates:
	// this runs once per driver, so setup allocations stay negligible next
	// to a run's steady-state footprint.
	buf := make([]int, 3*n+len(names))
	a.freeMap, buf = buf[:n:n], buf[n:]
	a.freeReduce, buf = buf[:n:n], buf[n:]
	a.typeIdx, buf = buf[:n:n], buf[n:]
	a.freeReduceByType = buf

	awake := &a.byClass[classAwake]
	for _, m := range c.Machines() {
		spec := m.Spec()
		for i, rep := range d.typeReps {
			if rep.Name == spec.Name {
				a.typeIdx[m.ID()] = i
				break
			}
		}
		a.freeMap[m.ID()] = spec.MapSlots
		a.freeReduce[m.ID()] = spec.ReduceSlots
		awake.mapSlots += spec.MapSlots
		awake.reduceSlots += spec.ReduceSlots
		awake.freeMap += spec.MapSlots
		awake.freeReduce += spec.ReduceSlots
		a.freeReduceByType[a.typeIdx[m.ID()]] += spec.ReduceSlots
	}
}

// classOf derives a machine's availability class from its live state.
func (d *Driver) classOf(m cluster.Machine) machineClass {
	switch {
	case !m.Available():
		return classDead
	case m.Asleep():
		return classAsleep
	case d.blacklisted(m.ID()):
		return classBlacklisted
	default:
		return classAwake
	}
}

// reclassify moves m's capacity and free-slot contributions into its
// current availability class. Call after any transition: sleep/wake,
// crash/recover, blacklisting. Entering the dead class zeroes the
// machine's accounted free slots (a crashed machine holds none — the
// driver detaches every running attempt before Machine.Fail, so at that
// point free == capacity); leaving it restores them to full capacity.
func (d *Driver) reclassify(m cluster.Machine) {
	a := &d.agg
	old := a.class[m.ID()]
	now := d.classOf(m)
	if now == old {
		return
	}
	spec := m.Spec()
	from := &a.byClass[old]
	from.mapSlots -= spec.MapSlots
	from.reduceSlots -= spec.ReduceSlots
	from.freeMap -= a.freeMap[m.ID()]
	from.freeReduce -= a.freeReduce[m.ID()]
	if now == classDead {
		a.freeReduceByType[a.typeIdx[m.ID()]] -= a.freeReduce[m.ID()]
		a.freeMap[m.ID()] = 0
		a.freeReduce[m.ID()] = 0
	} else if old == classDead {
		a.freeMap[m.ID()] = spec.MapSlots
		a.freeReduce[m.ID()] = spec.ReduceSlots
		a.freeReduceByType[a.typeIdx[m.ID()]] += spec.ReduceSlots
	}
	to := &a.byClass[now]
	to.mapSlots += spec.MapSlots
	to.reduceSlots += spec.ReduceSlots
	to.freeMap += a.freeMap[m.ID()]
	to.freeReduce += a.freeReduce[m.ID()]
	a.class[m.ID()] = now
}

// noteAvailabilityChange records a crash/recover: reclassifies the
// machine and bumps the epoch that invalidates scheduler-side indices.
func (d *Driver) noteAvailabilityChange(m cluster.Machine) {
	d.reclassify(m)
	d.agg.epoch++
}

// noteSlotChange records a ±1 change in m's free slots of one kind and
// forwards it to the scheduler's slot observer, if any.
func (d *Driver) noteSlotChange(m cluster.Machine, kind TaskKind, delta int) {
	a := &d.agg
	cl := &a.byClass[a.class[m.ID()]]
	if kind == MapTask {
		a.freeMap[m.ID()] += delta
		cl.freeMap += delta
	} else {
		a.freeReduce[m.ID()] += delta
		cl.freeReduce += delta
		a.freeReduceByType[a.typeIdx[m.ID()]] += delta
	}
	if d.slotObs != nil {
		d.slotObs.OnSlotFreeChange(d.ctx, m, kind, delta)
	}
}

// notePending applies a delta to the pending-task aggregates for one of
// job j's kinds. Callers compute delta as after-minus-before around the
// queue operation, which reproduces the lazy-queue overcounting exactly.
func (d *Driver) notePending(j *Job, kind TaskKind, delta int) {
	if delta == 0 {
		return
	}
	a := &d.agg
	if kind == MapTask {
		a.pendingMaps += delta
	} else {
		a.pendingReduces += delta
		if j.reduceGateOpen {
			a.readyPendingReduces += delta
		}
	}
}

// syncReduceGate re-derives j's slowstart gate after mapsDone changed,
// moving its pending reduces in or out of the ready aggregate on a flip.
// The gate can close again: reexecuteLostMaps decrements mapsDone when a
// crash loses completed map output.
func (d *Driver) syncReduceGate(j *Job) {
	open := j.MapProgress() >= d.cfg.Slowstart
	if open == j.reduceGateOpen {
		return
	}
	j.reduceGateOpen = open
	if open {
		d.agg.readyPendingReduces += j.PendingReduces()
	} else {
		d.agg.readyPendingReduces -= j.PendingReduces()
	}
}

// dropJobAggregates removes a departing job's remaining pending
// contributions (including stale queue entries). Call before the job
// leaves the active list or its queues are drained.
func (d *Driver) dropJobAggregates(j *Job) {
	d.notePending(j, MapTask, -j.PendingMaps())
	d.notePending(j, ReduceTask, -j.PendingReduces())
}

// requeuePending returns a reset task to its job's pending pools after an
// attempt failure or lost map output, keeping the aggregates in step
// (requeueRetry always appends exactly one live entry).
func (d *Driver) requeuePending(t *Task) {
	t.Job.requeueRetry(t)
	d.notePending(t.Job, t.Kind, 1)
}

// mutated runs the test-only invariant hook, if installed.
func (d *Driver) mutated(where string) {
	if d.onMutation != nil {
		d.onMutation(where)
	}
}

// EnableInvariantChecks installs a self-check that recomputes every
// aggregate from scratch after each mutating event and reports the first
// divergence through fail. Test-only: the recompute is O(jobs + machines)
// per event and would defeat the incremental layer in real runs.
func (d *Driver) EnableInvariantChecks(fail func(error)) {
	d.onMutation = func(where string) {
		if err := d.checkAggregates(); err != nil {
			fail(fmt.Errorf("after %s: %w", where, err))
		}
	}
}

// checkAggregates recomputes the aggregate state from first principles
// and returns the first divergence from the incremental counters.
func (d *Driver) checkAggregates() error {
	a := &d.agg

	pm, pr, rpr := 0, 0, 0
	for _, j := range d.active {
		pm += j.PendingMaps()
		pr += j.PendingReduces()
		open := j.MapProgress() >= d.cfg.Slowstart
		if open != j.reduceGateOpen {
			return fmt.Errorf("job %d reduce gate cached %v, derived %v", j.Spec.ID, j.reduceGateOpen, open)
		}
		if open {
			rpr += j.PendingReduces()
		}
	}
	if pm != a.pendingMaps {
		return fmt.Errorf("pendingMaps %d, recomputed %d", a.pendingMaps, pm)
	}
	if pr != a.pendingReduces {
		return fmt.Errorf("pendingReduces %d, recomputed %d", a.pendingReduces, pr)
	}
	if rpr != a.readyPendingReduces {
		return fmt.Errorf("readyPendingReduces %d, recomputed %d", a.readyPendingReduces, rpr)
	}

	var byClass [numClasses]classSlots
	freeByType := make([]int, len(a.freeReduceByType))
	for _, m := range d.cluster.Machines() {
		want := d.classOf(m)
		got := a.class[m.ID()]
		// A blacklist expiry has no event; the class may lag until the
		// next heartbeat reconciles it. Only that one direction may lag.
		if got != want && !(got == classBlacklisted && want == classAwake) {
			return fmt.Errorf("%s class %d, derived %d", m, got, want)
		}
		if a.freeMap[m.ID()] != m.FreeMapSlots() {
			return fmt.Errorf("%s accounted free map slots %d, actual %d", m, a.freeMap[m.ID()], m.FreeMapSlots())
		}
		if a.freeReduce[m.ID()] != m.FreeReduceSlots() {
			return fmt.Errorf("%s accounted free reduce slots %d, actual %d", m, a.freeReduce[m.ID()], m.FreeReduceSlots())
		}
		cl := &byClass[got]
		cl.mapSlots += m.Spec().MapSlots
		cl.reduceSlots += m.Spec().ReduceSlots
		cl.freeMap += a.freeMap[m.ID()]
		cl.freeReduce += a.freeReduce[m.ID()]
		freeByType[a.typeIdx[m.ID()]] += m.FreeReduceSlots()
	}
	for c := machineClass(0); c < numClasses; c++ {
		if byClass[c] != a.byClass[c] {
			return fmt.Errorf("class %d slots %+v, recomputed %+v", c, a.byClass[c], byClass[c])
		}
	}
	for t, free := range freeByType {
		if free != a.freeReduceByType[t] {
			return fmt.Errorf("type %d free reduce slots %d, recomputed %d", t, a.freeReduceByType[t], free)
		}
	}
	return nil
}
