package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministicAcrossRuns(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGForkIndependentOfSiblingConsumption(t *testing.T) {
	// Consuming one fork must not perturb another fork's stream.
	g1 := NewRNG(7)
	g2 := NewRNG(7)
	a1 := g1.Fork("noise")
	_ = g1.Fork("workload").Float64() // consume sibling
	a2 := g2.Fork("noise")
	for i := 0; i < 50; i++ {
		if a1.Float64() != a2.Float64() {
			t.Fatal("fork stream perturbed by sibling consumption")
		}
	}
}

func TestRNGForkLabelsDiffer(t *testing.T) {
	g := NewRNG(7)
	a, b := g.Fork("a"), g.Fork("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("differently-labelled forks produced identical streams")
	}
}

func TestNoiseFactorMeanApproxOne(t *testing.T) {
	g := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.NoiseFactor(0.3)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("NoiseFactor mean = %.4f, want ≈ 1", mean)
	}
}

func TestNoiseFactorZeroCV(t *testing.T) {
	g := NewRNG(1)
	if f := g.NoiseFactor(0); f != 1 {
		t.Errorf("NoiseFactor(0) = %v, want 1", f)
	}
}

func TestNoiseFactorAlwaysPositive(t *testing.T) {
	g := NewRNG(3)
	f := func(cv float64) bool {
		cv = math.Mod(math.Abs(cv), 2)
		return g.NoiseFactor(cv) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouletteRespectsWeights(t *testing.T) {
	g := NewRNG(5)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[g.Roulette(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.02 {
		t.Errorf("index 0 drawn with frequency %.3f, want ≈ 0.25", frac0)
	}
}

func TestRouletteAllZeroFallsBackToUniform(t *testing.T) {
	g := NewRNG(9)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[g.Roulette([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		frac := float64(c) / 40000
		if math.Abs(frac-0.25) > 0.03 {
			t.Errorf("uniform fallback index %d frequency %.3f, want ≈ 0.25", i, frac)
		}
	}
}

func TestRouletteNegativeWeightsTreatedAsZero(t *testing.T) {
	g := NewRNG(13)
	for i := 0; i < 1000; i++ {
		if idx := g.Roulette([]float64{-5, 2, -1}); idx != 1 {
			t.Fatalf("drew index %d, want only index 1", idx)
		}
	}
}

func TestRouletteEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty roulette did not panic")
		}
	}()
	NewRNG(1).Roulette(nil)
}

func TestRouletteInRangeProperty(t *testing.T) {
	g := NewRNG(17)
	f := func(ws []float64) bool {
		if len(ws) == 0 {
			return true
		}
		i := g.Roulette(ws)
		return i >= 0 && i < len(ws)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformInRange(t *testing.T) {
	g := NewRNG(19)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform(3,7) = %v out of range", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	g := NewRNG(23)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(29)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exp(4)
	}
	if mean := sum / n; math.Abs(mean-4) > 0.05 {
		t.Errorf("Exp(4) sample mean = %.3f, want ≈ 4", mean)
	}
}
