package sim

import (
	"testing"
	"time"
)

// BenchmarkEngine measures the event queue itself, isolated from any
// simulation model: schedule/fire throughput for both event flavors, the
// periodic-heavy mix that dominates driver runs, a uniform-random mix that
// defeats the calendar's bucket locality, and a cancel-heavy mix that
// stresses lazy collection. ReportAllocs on every cell: the typed paths
// must stay allocation-free once the event pool is warm.

// benchTick is the self-rescheduling typed handler used by the periodic
// cells; package-level so the closure the benchmark registers captures
// only the engine and count.
func BenchmarkEngine(b *testing.B) {
	const width = 3 * time.Second

	b.Run("schedule-fire/closure", func(b *testing.B) {
		e := NewEngine()
		e.SetBucketWidth(width)
		n := 0
		fn := func() { n++ }
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Schedule(e.Now()+time.Duration(i%64)*time.Second, fn)
			if e.Pending() >= 1024 {
				_ = e.Run()
			}
		}
		_ = e.Run()
		if n != b.N {
			b.Fatalf("fired %d, want %d", n, b.N)
		}
	})

	b.Run("schedule-fire/typed", func(b *testing.B) {
		e := NewEngine()
		e.SetBucketWidth(width)
		n := 0
		kind := e.RegisterKind(func(int, any) { n++ })
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.ScheduleKind(e.Now()+time.Duration(i%64)*time.Second, kind, i, nil)
			if e.Pending() >= 1024 {
				_ = e.Run()
			}
		}
		_ = e.Run()
		if n != b.N {
			b.Fatalf("fired %d, want %d", n, b.N)
		}
	})

	// 1024 concurrent periodic chains on one heartbeat period — the shape
	// of a driver heartbeat/completion mix, and the calendar's best case:
	// every reschedule lands in a near ring bucket.
	b.Run("periodic-heavy", func(b *testing.B) {
		e := NewEngine()
		e.SetBucketWidth(width)
		remaining := b.N
		var kind EventKind
		kind = e.RegisterKind(func(i int, _ any) {
			if remaining--; remaining > 0 {
				e.ScheduleKindAfter(width, kind, i, nil)
			} else {
				e.Stop()
			}
		})
		chains := 1024
		if chains > b.N {
			chains = b.N
		}
		for i := 0; i < chains; i++ {
			e.ScheduleKind(time.Duration(i)*time.Millisecond, kind, i, nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		_ = e.Run()
		if remaining > 0 {
			b.Fatalf("fired %d, want %d", b.N-remaining, b.N)
		}
	})

	// Uniform-random arrival times across a wide horizon: events scatter
	// over ring and overflow bands with no bucket locality to exploit.
	b.Run("uniform-random", func(b *testing.B) {
		e := NewEngine()
		e.SetBucketWidth(width)
		rng := NewRNG(42)
		span := int(width) * numBuckets * 8
		n := 0
		kind := e.RegisterKind(func(int, any) { n++ })
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.ScheduleKind(e.Now()+time.Duration(rng.Intn(span)), kind, i, nil)
			if e.Pending() >= 4096 {
				_ = e.Run()
			}
		}
		_ = e.Run()
		if n != b.N {
			b.Fatalf("fired %d, want %d", n, b.N)
		}
	})

	// Cancel-heavy: half the scheduled events are cancelled before they
	// fire, exercising lazy collection and handle bookkeeping.
	b.Run("cancel-heavy", func(b *testing.B) {
		e := NewEngine()
		e.SetBucketWidth(width)
		n := 0
		kind := e.RegisterKind(func(int, any) { n++ })
		handles := make([]EventHandle, 0, 512)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := e.ScheduleKind(e.Now()+time.Duration(i%96)*time.Second, kind, i, nil)
			if i%2 == 0 {
				handles = append(handles, h)
			}
			if len(handles) == cap(handles) || e.Pending() >= 1024 {
				for _, h := range handles {
					h.Cancel()
				}
				handles = handles[:0]
				_ = e.Run()
			}
		}
		for _, h := range handles {
			h.Cancel()
		}
		_ = e.Run()
		if n > b.N {
			b.Fatalf("fired %d, scheduled %d", n, b.N)
		}
	})
}

// TestTypedPeriodicZeroAlloc pins the tentpole's allocation contract: once
// the event pool is warm, scheduling and firing a typed periodic event —
// the driver's heartbeat/control/completion shape — allocates nothing.
func TestTypedPeriodicZeroAlloc(t *testing.T) {
	e := NewEngine()
	e.SetBucketWidth(3 * time.Second)
	var kind EventKind
	stop := time.Duration(0)
	kind = e.RegisterKind(func(i int, _ any) {
		if e.Now() < stop {
			e.ScheduleKindAfter(3*time.Second, kind, i, nil)
		}
	})
	// Warm the pool and the bucket slices.
	stop = 5 * time.Minute
	e.ScheduleKind(0, kind, 0, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		stop = e.Now() + 5*time.Minute
		e.ScheduleKind(e.Now(), kind, 0, nil)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("typed periodic schedule/fire allocated %v per run, want 0", allocs)
	}
}
