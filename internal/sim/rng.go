package sim

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distributions the simulator needs and a
// deterministic fork mechanism, so each subsystem (noise, workload
// generation, scheduling) draws from an independent stream derived from one
// master seed. Forked streams are stable across runs and insensitive to the
// order in which *other* streams are consumed.
type RNG struct {
	r *rand.Rand
	// seed retained so Fork can derive child seeds deterministically.
	seed int64
}

// NewRNG returns a source seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Fork derives an independent stream for the named subsystem. The child
// seed mixes the parent seed with a hash of the label, so adding a new
// consumer does not perturb existing streams.
func (g *RNG) Fork(label string) *RNG {
	return NewRNG(ForkSeed(g.seed, label))
}

// ForkSeed returns the child seed Fork(label) would derive from a stream
// seeded with parent. Warm-run reuse calls it to Reseed an existing child
// stream in place instead of allocating a fresh fork.
func ForkSeed(parent int64, label string) int64 {
	return int64(splitmix64(uint64(parent) ^ fnv64(label)))
}

// Reseed rewinds the stream to the state NewRNG(seed) starts in, reusing
// the underlying generator. After Reseed the draw sequence is identical to
// a freshly constructed stream's.
func (g *RNG) Reseed(seed int64) {
	g.r.Seed(seed)
	g.seed = seed
}

// fnv64 is the FNV-1a hash of s.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 is the finalizer from the SplitMix64 generator; it decorrelates
// nearby seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential sample with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Normal returns a normal sample with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns a sample whose logarithm is Normal(mu, sigma). With
// mu = -sigma²/2 the sample has mean 1, which is how multiplicative noise
// factors are drawn.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// NoiseFactor returns a mean-1 multiplicative lognormal jitter with the
// given coefficient of variation cv. cv = 0 returns exactly 1.
func (g *RNG) NoiseFactor(cv float64) float64 {
	if cv <= 0 {
		return 1
	}
	sigma2 := math.Log(1 + cv*cv)
	return g.LogNormal(-sigma2/2, math.Sqrt(sigma2))
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Roulette draws index i with probability weights[i]/Σweights. Non-positive
// weights are treated as zero. If all weights are non-positive it falls back
// to a uniform draw, which keeps the ACO assigner alive when pheromones
// collapse. It panics on an empty slice.
func (g *RNG) Roulette(weights []float64) int {
	if len(weights) == 0 {
		panic("sim: Roulette over empty weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return g.r.Intn(len(weights))
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n indices, calling swap as rand.Shuffle does.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
