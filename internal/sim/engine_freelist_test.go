package sim

import (
	"testing"
	"time"
)

// TestEngineCancelAfterFireIsInert pins the free-list reuse rule: once an
// event has fired, its handle must be a no-op — Cancel must not mark the
// (possibly recycled) struct cancelled, and Cancelled must report false.
func TestEngineCancelAfterFireIsInert(t *testing.T) {
	e := NewEngine()
	fired := 0
	h := e.Schedule(time.Second, func() { fired++ })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	h.Cancel() // must not poison the recycled struct
	if h.Cancelled() {
		t.Error("handle of a fired event reports Cancelled")
	}
	// The struct h pointed at is now on the free list; the next Schedule
	// reuses it. The stale cancel above must not have touched it.
	fired = 0
	e.Schedule(2*time.Second, func() { fired++ })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Errorf("recycled event fired %d times, want 1 (stale Cancel leaked through)", fired)
	}
}

// TestEngineCancelAfterReuseDoesNotResurrect is the adversarial version:
// a handle whose event struct has been recycled for a NEW event must not
// be able to cancel that new event, and must not report its state.
func TestEngineCancelAfterReuseDoesNotResurrect(t *testing.T) {
	e := NewEngine()
	old := e.Schedule(time.Second, func() {})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	fired := 0
	fresh := e.Schedule(2*time.Second, func() { fired++ })
	if old.ev != fresh.ev {
		t.Fatalf("free list did not recycle the struct; test premise broken")
	}
	old.Cancel() // stale handle, same struct, older generation
	if fresh.Cancelled() {
		t.Error("stale Cancel leaked onto the recycled event")
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Errorf("recycled event fired %d times, want 1", fired)
	}

	// And the converse: cancelling the fresh handle works, and the stale
	// handle still reports nothing.
	fired = 0
	again := e.Schedule(3*time.Second, func() { fired++ })
	again.Cancel()
	if !again.Cancelled() {
		t.Error("live handle does not report Cancelled")
	}
	if old.Cancelled() || fresh.Cancelled() {
		t.Error("stale handles report Cancelled for a generation they do not own")
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 0 {
		t.Errorf("cancelled recycled event fired %d times, want 0", fired)
	}
}

// TestEngineCancelledPopRecycles verifies that cancelled events are also
// returned to the free list when the run loop collects them.
func TestEngineCancelledPopRecycles(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(time.Second, func() { t.Error("cancelled event fired") })
	h.Cancel()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	reused := e.Schedule(2*time.Second, func() {})
	if reused.ev != h.ev {
		t.Error("cancelled event struct was not recycled")
	}
	if reused.Cancelled() {
		t.Error("recycled struct inherited the cancelled flag")
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestEngineFreeListReusesAcrossManyEvents drives enough schedule/fire
// cycles that a steady-state run allocates no new event structs: the free
// list must cap the pool at the peak number of simultaneously pending
// events.
func TestEngineFreeListReusesAcrossManyEvents(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Every(0, time.Second, func() bool {
		n++
		return n < 1000
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 1000 {
		t.Fatalf("ticked %d times, want 1000", n)
	}
	// One ticker event pending at a time: pool size must stay tiny.
	if len(e.free) > 2 {
		t.Errorf("free list holds %d structs after a 1-pending-event run, want <= 2", len(e.free))
	}
}
