package sim

import (
	"testing"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", e.Now())
	}
}

func TestEngineTiesFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestEngineScheduleDuringRun(t *testing.T) {
	e := NewEngine()
	var fired int
	e.Schedule(time.Second, func() {
		e.ScheduleAfter(time.Second, func() { fired++ })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Errorf("nested event fired %d times, want 1", fired)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", e.Now())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(time.Second, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEngineNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	NewEngine().Schedule(0, nil)
}

func TestEngineRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := e.RunUntil(3 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events before horizon, want 3", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want horizon 3s", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	// Resuming runs the remainder.
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 5 {
		t.Errorf("fired %d events total, want 5", len(fired))
	}
}

func TestEngineRunUntilLeavesClockAtLastEventWhenDrained(t *testing.T) {
	e := NewEngine()
	e.Schedule(4*time.Second, func() {})
	if err := e.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if e.Now() != 4*time.Second {
		t.Errorf("Now() = %v, want 4s (makespan, not horizon)", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	var fired int
	e.Schedule(time.Second, func() { fired++; e.Stop() })
	e.Schedule(2*time.Second, func() { fired++ })
	if err := e.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine()
	var ticks []time.Duration
	e.Every(time.Second, 2*time.Second, func() bool {
		ticks = append(ticks, e.Now())
		return len(ticks) < 4
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []time.Duration{1 * time.Second, 3 * time.Second, 5 * time.Second, 7 * time.Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestEngineEveryBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive period did not panic")
		}
	}()
	NewEngine().Every(0, 0, func() bool { return false })
}

func TestEngineCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := 0
	h := e.Schedule(time.Second, func() { fired++ })
	e.Schedule(2*time.Second, func() { fired++ })
	h.Cancel()
	if !h.Cancelled() {
		t.Error("handle does not report cancelled")
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (cancelled event ran?)", fired)
	}
}

func TestEngineCancelDuringRun(t *testing.T) {
	e := NewEngine()
	fired := 0
	var h EventHandle
	e.Schedule(time.Second, func() { h.Cancel() })
	h = e.Schedule(2*time.Second, func() { fired++ })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 0 {
		t.Error("event fired despite in-run cancellation")
	}
}

func TestEngineCancelIdempotentAndZeroValue(t *testing.T) {
	var zero EventHandle
	zero.Cancel() // must not panic
	if zero.Cancelled() {
		t.Error("zero handle reports cancelled")
	}
	e := NewEngine()
	h := e.Schedule(time.Second, func() {})
	h.Cancel()
	h.Cancel()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Fired() != 7 {
		t.Errorf("Fired() = %d, want 7", e.Fired())
	}
}
