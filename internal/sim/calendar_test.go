package sim

import (
	"fmt"
	"testing"
	"time"
)

// This file checks the calendar queue against a reference implementation:
// the plain (at, seq) binary min-heap the engine used before the calendar
// rewrite. The property under test is that the calendar changes only where
// events wait, never when or in what order they fire — so on any event
// program (same-instant ties, cancellations, horizon cuts, events
// scheduled from inside handlers, far-future overflow) the fired sequence,
// clock, and counters must be identical to the heap's.

// oracleEngine is the pre-calendar engine, reduced to its semantics: one
// global (at, seq) min-heap, lazy cancellation collected at pop, horizon
// clamp, and a live count that excludes cancelled events.
type oracleEngine struct {
	now    time.Duration
	heap   []*oracleEvent
	seq    uint64
	fired  uint64
	live   int
	events map[int]*oracleEvent // program event ID → scheduled occurrence
}

type oracleEvent struct {
	at        time.Duration
	seq       uint64
	id        int
	cancelled bool
}

func newOracle() *oracleEngine {
	return &oracleEngine{events: map[int]*oracleEvent{}}
}

func (o *oracleEngine) schedule(at time.Duration, id int) {
	o.seq++
	ev := &oracleEvent{at: at, seq: o.seq, id: id}
	o.events[id] = ev
	o.live++
	// Push with the same ordering as the engine's heaps.
	o.heap = append(o.heap, ev)
	i := len(o.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !o.less(i, p) {
			break
		}
		o.heap[i], o.heap[p] = o.heap[p], o.heap[i]
		i = p
	}
}

func (o *oracleEngine) less(a, b int) bool {
	if o.heap[a].at != o.heap[b].at {
		return o.heap[a].at < o.heap[b].at
	}
	return o.heap[a].seq < o.heap[b].seq
}

func (o *oracleEngine) cancel(id int) {
	if ev, ok := o.events[id]; ok && !ev.cancelled {
		ev.cancelled = true
		o.live--
	}
}

func (o *oracleEngine) pop() *oracleEvent {
	top := o.heap[0]
	n := len(o.heap) - 1
	o.heap[0] = o.heap[n]
	o.heap = o.heap[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && o.less(r, l) {
			c = r
		}
		if !o.less(c, i) {
			break
		}
		o.heap[i], o.heap[c] = o.heap[c], o.heap[i]
		i = c
	}
	return top
}

// runUntil mirrors Engine.RunUntil: fire in (at, seq) order up to horizon
// (negative = drain), collecting cancelled events at the head — including
// immediately before a horizon cut — and calls fire for each live event.
func (o *oracleEngine) runUntil(horizon time.Duration, fire func(id int)) {
	for len(o.heap) > 0 {
		top := o.heap[0]
		if top.cancelled {
			o.pop()
			delete(o.events, top.id)
			continue
		}
		if horizon >= 0 && top.at > horizon {
			o.now = horizon
			return
		}
		o.pop()
		delete(o.events, top.id)
		o.live--
		o.now = top.at
		o.fired++
		fire(top.id)
	}
}

// program holds the per-engine replay state: the next fresh event ID and
// the real engine's handles (the oracle cancels by ID directly).
type program struct {
	nextID  int
	handles map[int]EventHandle
	ids     []int // every ID ever scheduled, in schedule order
}

// fireAction is what one event does when it fires, drawn from an RNG that
// both engines consume in fired order: schedule children at relative
// delays and/or cancel an earlier event. Delays are drawn from a mix that
// exercises every calendar band — same-instant ties, same-bucket,
// in-window ring buckets, and far overflow.
type fireAction struct {
	childDelays []time.Duration
	cancelIdx   int // index into program.ids, or -1
}

func drawAction(rng *RNG, width time.Duration) fireAction {
	var a fireAction
	// Subcritical branching (mean < 1 child per firing) so every program
	// terminates: 0 children half the time, else 1 or 2.
	n := 0
	if rng.Intn(2) == 0 {
		n = 1 + rng.Intn(2)
	}
	for ; n > 0; n-- {
		var d time.Duration
		switch rng.Intn(5) {
		case 0:
			d = 0 // same-instant tie: must fire in seq order
		case 1:
			d = time.Duration(rng.Intn(int(width))) // same/adjacent bucket
		case 2:
			d = time.Duration(rng.Intn(int(width) * (numBuckets - 2)))
		case 3:
			// Beyond the ring window: overflow band.
			d = time.Duration(int(width)*numBuckets + rng.Intn(int(width)*numBuckets*4))
		case 4:
			d = time.Duration(rng.Intn(int(width) * 3))
		}
		a.childDelays = append(a.childDelays, d)
	}
	a.cancelIdx = -1
	if rng.Intn(3) == 0 {
		a.cancelIdx = rng.Intn(1 << 20) // bound applied modulo len(ids) at use
	}
	return a
}

// TestCalendarMatchesHeapOracle replays randomized event programs on the
// calendar engine and the heap oracle and requires identical fired
// sequences, clocks, and counters — across horizon cuts and a final drain.
func TestCalendarMatchesHeapOracle(t *testing.T) {
	widths := []time.Duration{3 * time.Second, time.Second, 7 * time.Millisecond}
	for seed := int64(1); seed <= 8; seed++ {
		for _, width := range widths {
			t.Run(fmt.Sprintf("seed=%d/width=%v", seed, width), func(t *testing.T) {
				checkProgram(t, seed, width)
			})
		}
	}
}

func checkProgram(t *testing.T, seed int64, width time.Duration) {
	t.Helper()

	eng := NewEngine()
	eng.SetBucketWidth(width)
	engRng := NewRNG(seed)
	engProg := &program{handles: map[int]EventHandle{}}
	var engLog []string

	orc := newOracle()
	orcRng := NewRNG(seed)
	orcProg := &program{handles: map[int]EventHandle{}}
	var orcLog []string

	// fire handles one event on the real engine: log it, then replay the
	// RNG-drawn action (children + cancellation).
	var engFire func(id int)
	engFire = func(id int) {
		engLog = append(engLog, fmt.Sprintf("%d@%v", id, eng.Now()))
		act := drawAction(engRng, width)
		for _, d := range act.childDelays {
			cid := engProg.nextID
			engProg.nextID++
			engProg.ids = append(engProg.ids, cid)
			engProg.handles[cid] = eng.ScheduleAfter(d, func() { engFire(cid) })
		}
		if act.cancelIdx >= 0 && len(engProg.ids) > 0 {
			victim := engProg.ids[act.cancelIdx%len(engProg.ids)]
			engProg.handles[victim].Cancel()
		}
	}
	var orcFire func(id int)
	orcFire = func(id int) {
		orcLog = append(orcLog, fmt.Sprintf("%d@%v", id, orc.now))
		act := drawAction(orcRng, width)
		for _, d := range act.childDelays {
			cid := orcProg.nextID
			orcProg.nextID++
			orcProg.ids = append(orcProg.ids, cid)
			orc.schedule(orc.now+d, cid)
		}
		if act.cancelIdx >= 0 && len(orcProg.ids) > 0 {
			orc.cancel(orcProg.ids[act.cancelIdx%len(orcProg.ids)])
		}
	}

	// Seed both engines with the same initial batch, with deliberate ties.
	seedRng := NewRNG(seed + 1000)
	horizonSpan := width * numBuckets * 6
	for i := 0; i < 40; i++ {
		at := time.Duration(seedRng.Intn(int(horizonSpan)))
		if i%5 == 0 && i > 0 {
			at = time.Duration(seedRng.Intn(6)) * width // clustered ties
		}
		id := engProg.nextID
		engProg.nextID++
		engProg.ids = append(engProg.ids, id)
		engProg.handles[id] = eng.Schedule(at, func() { engFire(id) })

		oid := orcProg.nextID
		orcProg.nextID++
		orcProg.ids = append(orcProg.ids, oid)
		orc.schedule(at, oid)
	}
	// Cancel a few before running at all.
	for i := 0; i < 5; i++ {
		victim := seedRng.Intn(len(engProg.ids))
		engProg.handles[engProg.ids[victim]].Cancel()
		orc.cancel(orcProg.ids[victim])
	}

	compare := func(stage string) {
		t.Helper()
		if eng.Now() != orc.now {
			t.Fatalf("%s: Now = %v, oracle %v", stage, eng.Now(), orc.now)
		}
		if eng.Fired() != orc.fired {
			t.Fatalf("%s: Fired = %d, oracle %d", stage, eng.Fired(), orc.fired)
		}
		if eng.Pending() != orc.live {
			t.Fatalf("%s: Pending = %d, oracle %d", stage, eng.Pending(), orc.live)
		}
		if len(engLog) != len(orcLog) {
			t.Fatalf("%s: fired %d events, oracle %d", stage, len(engLog), len(orcLog))
		}
		for i := range engLog {
			if engLog[i] != orcLog[i] {
				t.Fatalf("%s: firing %d = %s, oracle %s", stage, i, engLog[i], orcLog[i])
			}
		}
	}

	// Horizon-cut runs at two intermediate points, then a full drain.
	for _, h := range []time.Duration{horizonSpan / 7, horizonSpan / 2} {
		if err := eng.RunUntil(h); err != nil {
			t.Fatalf("RunUntil(%v): %v", h, err)
		}
		orc.runUntil(h, orcFire)
		compare(fmt.Sprintf("horizon %v", h))
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	orc.runUntil(-1, orcFire)
	compare("drain")
	if eng.Pending() != 0 {
		t.Fatalf("drained Pending = %d, want 0", eng.Pending())
	}
}
