// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a calendar queue of timestamped
// events. Events scheduled for the same instant fire in the order they were
// scheduled, which keeps runs bit-for-bit reproducible under a fixed seed.
// All simulated Hadoop machinery (heartbeats, task completions, control
// intervals) is driven by this engine.
//
// Two event flavors share one totally ordered (at, seq) stream:
//
//   - Closure events (Schedule/ScheduleAfter/Every) carry an arbitrary
//     func(). They are the convenient general-purpose API, at the cost of
//     one closure allocation per distinct callback.
//   - Typed events (RegisterKind + ScheduleKind/ScheduleKindAfter) carry a
//     small payload — an int index and a pointer — dispatched through a
//     per-engine jump table. Scheduling one performs no allocation once
//     the event pool is warm, which is what the driver's hot periodic
//     paths (heartbeat sweeps, task completions) use.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained or the horizon was reached.
var ErrStopped = errors.New("sim: stopped")

// Handler is a callback fired when an event's time arrives. The engine's
// clock is already advanced to the event time when the handler runs.
type Handler func()

// TypedHandler is the jump-table callback of a registered event kind. It
// receives the payload stored at schedule time: a small integer (machine
// index, slot number) and a pointer-shaped argument (task, job). Neither
// is boxed per event, so a typed schedule is allocation-free.
type TypedHandler func(i int, arg any)

// EventKind names one registered typed handler. The zero value is the
// closure kind and cannot be scheduled directly.
type EventKind uint16

// kindClosure marks events carrying a Handler closure rather than a
// registered kind; it occupies jump-table slot 0.
const kindClosure EventKind = 0

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same virtual instant so execution order is deterministic.
//
// Event structs are pooled: once an event fires (or a cancelled event is
// popped), its struct goes onto the engine's free list and is reused by a
// later Schedule. gen counts reuses; an EventHandle captures the gen at
// schedule time, so a stale handle whose event has been recycled can
// never cancel the struct's new occupant.
type event struct {
	at  time.Duration
	seq uint64
	gen uint64
	// eng backs EventHandle.Cancel's live-count bookkeeping.
	eng *Engine
	// fn is the closure payload (kind == kindClosure only).
	fn Handler
	// arg and i are the typed payload (kind != kindClosure).
	arg       any
	i         int32
	kind      EventKind
	cancelled bool
}

// EventHandle cancels a scheduled event. The zero value is a no-op.
//
// Reuse rule: a handle is bound to one scheduled occurrence, not to the
// underlying struct. After the event fires (or its cancellation is
// collected), the struct may be recycled for a future Schedule; the old
// handle then goes inert — Cancel is a no-op and Cancelled reports
// false. It is always safe to Cancel a handle "late".
type EventHandle struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Safe to call multiple times and
// after the event has fired (then it has no effect, even if the event
// struct has since been recycled for an unrelated event).
func (h EventHandle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen && !h.ev.cancelled {
		h.ev.cancelled = true
		h.ev.eng.live--
	}
}

// Cancelled reports whether Cancel was called before the event fired or
// was collected. A handle whose event already fired reports false.
func (h EventHandle) Cancelled() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.cancelled
}

// numBuckets is the calendar window: events within numBuckets×width of
// the active bucket live in the ring; anything farther sits in the
// overflow heap until the window reaches it. 64 buckets of the default
// 3 s heartbeat width give a 192 s window — heartbeats, completions and
// shuffle transitions land in the ring, while control ticks (5 min) and
// far-future job submissions take the overflow path.
const numBuckets = 64

// maxFreeEvents is the free list's high-water mark, sized to cover the
// in-flight event population of a 1024-machine fleet (one completion
// timer per occupied slot). Recycled structs past the cap are dropped to
// the garbage collector, so a campaign that briefly peaks far above the
// steady state does not retain a peak-size struct pool (and, for closure
// events, their captured graphs) for the rest of the run.
const maxFreeEvents = 8192

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewEngine. Engine is not safe for concurrent
// use: the simulation model is a single logical process. Concurrency
// lives one level up — independent runs, each with its own Engine, fan
// out through internal/parallel.
//
// The queue is a bucketed calendar: fixed-width time buckets (width
// defaults to 3 s, the Hadoop heartbeat; see SetBucketWidth) arranged in
// a ring of numBuckets, an (at, seq) min-heap for the active bucket, and
// an (at, seq) min-heap overflow band for events beyond the ring window.
// Scheduling into a future ring bucket is an O(1) append; heap work is
// confined to the handful of events sharing the active bucket and to the
// rare far-future overflow, so the per-event cost is amortized O(1)
// instead of the O(log n) of a global heap. Because every pop compares
// the full (at, seq) key, the firing order is identical to a single
// min-heap's — the calendar changes only where events wait, never when
// they fire.
type Engine struct {
	now     time.Duration
	width   time.Duration //eant:reset-keep bucket width is configuration; the driver re-asserts it via SetBucketWidth
	curBi   int64         // absolute index of the active bucket
	buckets [numBuckets][]*event
	ringN   int            // events (incl. cancelled) in ring buckets
	active  []*event       // min-heap: active bucket + pulled overflow
	over    []*event       // min-heap: events at or beyond the ring window
	free    []*event       // recycled event structs
	kinds   []TypedHandler //eant:reset-keep registered kind table lives as long as its driver
	seq     uint64
	fired   uint64
	queued  int // events in the queue, including cancelled ones
	live    int // queued minus cancelled — what Pending reports
	stopped bool
}

// NewEngine returns an engine with its clock at zero and the default 3 s
// bucket width.
func NewEngine() *Engine {
	return &Engine{
		width: 3 * time.Second,
		kinds: make([]TypedHandler, 1), // slot 0 is the closure kind
	}
}

// SetBucketWidth sizes the calendar buckets, typically to the dominant
// event period (the driver uses its heartbeat). It may only be called
// while the queue is empty; non-positive widths panic.
func (e *Engine) SetBucketWidth(w time.Duration) {
	if w <= 0 {
		panic(fmt.Sprintf("sim: SetBucketWidth(%v) non-positive", w))
	}
	if e.queued != 0 {
		panic("sim: SetBucketWidth with events queued")
	}
	e.width = w
	e.curBi = int64(e.now / w)
}

// Reset returns the engine to the state NewEngine leaves it in — clock at
// zero, queue empty, counters cleared — while keeping the registered kind
// table, the bucket width, and the recycled event pool, so a warm rerun
// schedules from a hot free list instead of reallocating event structs.
// Any still-queued events (a horizon-cut run leaves some behind) are
// drained into the pool; their handles go inert via the generation bump.
func (e *Engine) Reset() {
	for i := range e.buckets {
		for _, ev := range e.buckets[i] {
			e.recycle(ev)
		}
		clearEvents(e.buckets[i])
		e.buckets[i] = e.buckets[i][:0]
	}
	for _, ev := range e.active {
		e.recycle(ev)
	}
	clearEvents(e.active)
	e.active = e.active[:0]
	for _, ev := range e.over {
		e.recycle(ev)
	}
	clearEvents(e.over)
	e.over = e.over[:0]
	e.ringN, e.queued, e.live = 0, 0, 0
	e.now, e.curBi = 0, 0
	e.seq, e.fired = 0, 0
	e.stopped = false
}

// RegisterKind adds h to the engine's typed-event jump table and returns
// its kind for ScheduleKind. Kinds are registered once per run (per
// handler, not per event); a nil handler panics.
func (e *Engine) RegisterKind(h TypedHandler) EventKind {
	if h == nil {
		panic("sim: RegisterKind called with nil handler")
	}
	e.kinds = append(e.kinds, h)
	return EventKind(len(e.kinds) - 1)
}

// Now returns the current virtual time, measured from simulation start.
func (e *Engine) Now() time.Duration { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet executed,
// excluding cancelled events awaiting collection.
func (e *Engine) Pending() int { return e.live }

// alloc takes a struct from the free list (or the heap) and stamps it
// with the next sequence number.
func (e *Engine) alloc(at time.Duration) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule(%v) is before Now()=%v", at, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{eng: e}
	}
	ev.at, ev.seq, ev.cancelled = at, e.seq, false
	return ev
}

// Schedule registers fn to run at absolute virtual time at, returning a
// handle that can cancel it. Scheduling in the past (before Now) is a
// programming error and panics, because it would silently corrupt
// causality in the model.
func (e *Engine) Schedule(at time.Duration, fn Handler) EventHandle {
	if fn == nil {
		panic("sim: Schedule called with nil handler")
	}
	ev := e.alloc(at)
	ev.kind, ev.fn = kindClosure, fn
	e.insert(ev)
	return EventHandle{ev: ev, gen: ev.gen}
}

// ScheduleAfter registers fn to run d after the current virtual time.
// Negative d panics.
func (e *Engine) ScheduleAfter(d time.Duration, fn Handler) EventHandle {
	if d < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter(%v) with negative delay", d))
	}
	return e.Schedule(e.now+d, fn)
}

// ScheduleKind registers a typed event at absolute virtual time at. The
// payload (i, arg) is delivered to the kind's registered handler; arg
// should be a pointer (or nil) so storing it does not box. Unregistered
// kinds — including the zero EventKind — panic.
func (e *Engine) ScheduleKind(at time.Duration, kind EventKind, i int, arg any) EventHandle {
	if kind == kindClosure || int(kind) >= len(e.kinds) {
		panic(fmt.Sprintf("sim: ScheduleKind with unregistered kind %d", kind))
	}
	ev := e.alloc(at)
	ev.kind, ev.i, ev.arg = kind, int32(i), arg
	e.insert(ev)
	return EventHandle{ev: ev, gen: ev.gen}
}

// ScheduleKindAfter registers a typed event d after the current virtual
// time. Negative d panics.
func (e *Engine) ScheduleKindAfter(d time.Duration, kind EventKind, i int, arg any) EventHandle {
	if d < 0 {
		panic(fmt.Sprintf("sim: ScheduleKindAfter(%v) with negative delay", d))
	}
	return e.ScheduleKind(e.now+d, kind, i, arg)
}

// Every schedules fn at start and then every period thereafter, until the
// simulation ends or until fn's returned false. It is the closure-based
// building block for periodic processes; hot loops use a typed kind that
// reschedules itself instead.
func (e *Engine) Every(start, period time.Duration, fn func() bool) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive period %v", period))
	}
	var tick Handler
	tick = func() {
		if !fn() {
			return
		}
		e.ScheduleAfter(period, tick)
	}
	e.Schedule(start, tick)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty.
// It returns ErrStopped if Stop was called.
func (e *Engine) Run() error {
	return e.RunUntil(-1)
}

// RunUntil executes events in timestamp order until the queue is empty or
// the clock would pass horizon (exclusive of events strictly later than
// horizon). A negative horizon means no limit. When the horizon cuts the
// run short, the clock is left at the horizon so energy integration over
// [0, horizon] is exact; when the queue drains first, the clock stays at
// the last event (the makespan), not the horizon.
//
// Cancelled events sitting at the head of the queue are collected (and
// their structs recycled) before a horizon cut returns, so Pending and
// Fired read the same whether a run was horizon-limited or drained.
func (e *Engine) RunUntil(horizon time.Duration) error {
	e.stopped = false
	for e.queued > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.peekLive()
		if next == nil {
			return nil
		}
		if horizon >= 0 && next.at > horizon {
			e.now = horizon
			return nil
		}
		e.popActive()
		e.queued--
		e.live--
		e.now = next.at
		e.fired++
		kind, i, arg, fn := next.kind, next.i, next.arg, next.fn
		// Recycle before firing: the handler may Schedule new events that
		// reuse this struct. The generation bump makes any handle still
		// pointing at this occurrence inert (see EventHandle).
		e.recycle(next)
		if kind == kindClosure {
			fn()
		} else {
			e.kinds[kind](int(i), arg)
		}
	}
	return nil
}

// peekLive returns the earliest non-cancelled event without removing it,
// draining (and recycling) any cancelled events encountered at the head
// of the queue. Returns nil when the queue holds no live events.
func (e *Engine) peekLive() *event {
	for {
		for len(e.active) == 0 {
			if e.queued == 0 {
				return nil
			}
			e.advance()
		}
		top := e.active[0]
		if !top.cancelled {
			return top
		}
		e.popActive()
		e.queued--
		e.recycle(top)
	}
}

// advance moves the calendar to the next populated bucket: the active
// bucket's ring slice is pushed onto the active heap together with any
// overflow events whose bucket the window has reached. When the ring is
// empty the window jumps straight to the overflow head's bucket.
func (e *Engine) advance() {
	if e.ringN == 0 {
		if len(e.over) == 0 {
			return // queue truly empty; caller rechecks queued
		}
		bi := int64(e.over[0].at / e.width)
		if bi > e.curBi {
			e.curBi = bi
		}
	} else {
		e.curBi++
	}
	// Pull overflow events whose bucket is now active. Events farther out
	// stay put; they are pulled when the window reaches their bucket, so
	// they can never fire out of order with ring events.
	for len(e.over) > 0 && int64(e.over[0].at/e.width) <= e.curBi {
		e.active = heapPush(e.active, heapPop(&e.over))
	}
	slot := &e.buckets[e.curBi%numBuckets]
	if len(*slot) > 0 {
		for _, ev := range *slot {
			e.active = heapPush(e.active, ev)
		}
		e.ringN -= len(*slot)
		clearEvents(*slot)
		*slot = (*slot)[:0]
	}
}

// insert files ev into the calendar: the active heap for the current
// bucket (or anything already reachable), a ring bucket inside the
// window, or the overflow heap beyond it.
func (e *Engine) insert(ev *event) {
	e.queued++
	e.live++
	bi := int64(ev.at / e.width)
	switch {
	case bi <= e.curBi:
		e.active = heapPush(e.active, ev)
	case bi < e.curBi+numBuckets:
		e.buckets[bi%numBuckets] = append(e.buckets[bi%numBuckets], ev)
		e.ringN++
	default:
		e.over = heapPush(e.over, ev)
	}
}

// popActive removes the minimum event from the active heap.
func (e *Engine) popActive() { heapPop(&e.active) }

// recycle retires a popped event struct onto the free list, bumping its
// generation so outstanding handles cannot touch its next occupant. Past
// the high-water mark the struct is dropped to the garbage collector
// instead (see maxFreeEvents).
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil  // release the closure
	ev.arg = nil // release the typed payload
	if len(e.free) < maxFreeEvents {
		e.free = append(e.free, ev)
	}
}

// less orders events by (time, sequence): earlier first; among same-time
// events, schedule order.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// clearEvents nils a drained bucket slice so the retained capacity holds
// no stale pointers.
func clearEvents(s []*event) {
	for i := range s {
		s[i] = nil
	}
}

// heapPush inserts ev into the (at, seq) min-heap q.
func heapPush(q []*event, ev *event) []*event {
	q = append(q, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	return q
}

// heapPop removes and returns the minimum event of *qp.
func heapPop(qp *[]*event) *event {
	q := *qp
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && less(q[right], q[left]) {
			child = right
		}
		if !less(q[child], q[i]) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	*qp = q
	return top
}
