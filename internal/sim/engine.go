// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of timestamped
// events. Events scheduled for the same instant fire in the order they were
// scheduled, which keeps runs bit-for-bit reproducible under a fixed seed.
// All simulated Hadoop machinery (heartbeats, task completions, control
// intervals) is driven by this engine.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained or the horizon was reached.
var ErrStopped = errors.New("sim: stopped")

// Handler is a callback fired when an event's time arrives. The engine's
// clock is already advanced to the event time when the handler runs.
type Handler func()

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same virtual instant so execution order is deterministic.
//
// Event structs are pooled: once an event fires (or a cancelled event is
// popped), its struct goes onto the engine's free list and is reused by a
// later Schedule. gen counts reuses; an EventHandle captures the gen at
// schedule time, so a stale handle whose event has been recycled can
// never cancel the struct's new occupant.
type event struct {
	at        time.Duration
	seq       uint64
	gen       uint64
	fn        Handler
	cancelled bool
}

// EventHandle cancels a scheduled event. The zero value is a no-op.
//
// Reuse rule: a handle is bound to one scheduled occurrence, not to the
// underlying struct. After the event fires (or its cancellation is
// collected), the struct may be recycled for a future Schedule; the old
// handle then goes inert — Cancel is a no-op and Cancelled reports
// false. It is always safe to Cancel a handle "late".
type EventHandle struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Safe to call multiple times and
// after the event has fired (then it has no effect, even if the event
// struct has since been recycled for an unrelated event).
func (h EventHandle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen {
		h.ev.cancelled = true
	}
}

// Cancelled reports whether Cancel was called before the event fired or
// was collected. A handle whose event already fired reports false.
func (h EventHandle) Cancelled() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.cancelled
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewEngine. Engine is not safe for concurrent
// use: the simulation model is a single logical process. Concurrency
// lives one level up — independent runs, each with its own Engine, fan
// out through internal/parallel.
type Engine struct {
	now     time.Duration
	queue   []*event // binary min-heap on (at, seq)
	free    []*event // recycled event structs
	seq     uint64
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time, measured from simulation start.
func (e *Engine) Now() time.Duration { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule registers fn to run at absolute virtual time at, returning a
// handle that can cancel it. Scheduling in the past (before Now) is a
// programming error and panics, because it would silently corrupt
// causality in the model.
func (e *Engine) Schedule(at time.Duration, fn Handler) EventHandle {
	if fn == nil {
		panic("sim: Schedule called with nil handler")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule(%v) is before Now()=%v", at, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.cancelled = at, e.seq, fn, false
	} else {
		ev = &event{at: at, seq: e.seq, fn: fn}
	}
	e.push(ev)
	return EventHandle{ev: ev, gen: ev.gen}
}

// ScheduleAfter registers fn to run d after the current virtual time.
// Negative d panics.
func (e *Engine) ScheduleAfter(d time.Duration, fn Handler) EventHandle {
	if d < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter(%v) with negative delay", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Every schedules fn at start and then every period thereafter, until the
// simulation ends or until fn's returned false. It is the building block
// for heartbeats and control intervals.
func (e *Engine) Every(start, period time.Duration, fn func() bool) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive period %v", period))
	}
	var tick Handler
	tick = func() {
		if !fn() {
			return
		}
		e.ScheduleAfter(period, tick)
	}
	e.Schedule(start, tick)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty.
// It returns ErrStopped if Stop was called.
func (e *Engine) Run() error {
	return e.RunUntil(-1)
}

// RunUntil executes events in timestamp order until the queue is empty or
// the clock would pass horizon (exclusive of events strictly later than
// horizon). A negative horizon means no limit. When the horizon cuts the
// run short, the clock is left at the horizon so energy integration over
// [0, horizon] is exact; when the queue drains first, the clock stays at
// the last event (the makespan), not the horizon.
func (e *Engine) RunUntil(horizon time.Duration) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if horizon >= 0 && next.at > horizon {
			e.now = horizon
			return nil
		}
		e.pop()
		if next.cancelled {
			e.recycle(next)
			continue
		}
		e.now = next.at
		e.fired++
		fn := next.fn
		// Recycle before firing: the handler may Schedule new events that
		// reuse this struct. The generation bump makes any handle still
		// pointing at this occurrence inert (see EventHandle).
		e.recycle(next)
		fn()
	}
	return nil
}

// recycle retires a popped event struct onto the free list, bumping its
// generation so outstanding handles cannot touch its next occupant.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil // release the closure
	e.free = append(e.free, ev)
}

// less orders events by (time, sequence): earlier first; among same-time
// events, schedule order.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev into the heap.
func (e *Engine) push(ev *event) {
	q := append(e.queue, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	e.queue = q
}

// pop removes the minimum event from the heap.
func (e *Engine) pop() {
	q := e.queue
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && less(q[right], q[left]) {
			child = right
		}
		if !less(q[child], q[i]) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	e.queue = q
}
