// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of timestamped
// events. Events scheduled for the same instant fire in the order they were
// scheduled, which keeps runs bit-for-bit reproducible under a fixed seed.
// All simulated Hadoop machinery (heartbeats, task completions, control
// intervals) is driven by this engine.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained or the horizon was reached.
var ErrStopped = errors.New("sim: stopped")

// Handler is a callback fired when an event's time arrives. The engine's
// clock is already advanced to the event time when the handler runs.
type Handler func()

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same virtual instant so execution order is deterministic.
type event struct {
	at        time.Duration
	seq       uint64
	fn        Handler
	ceiling   bool // horizon marker, fires after same-time regular events
	cancelled bool
}

// EventHandle cancels a scheduled event. The zero value is a no-op.
type EventHandle struct{ ev *event }

// Cancel prevents the event from firing. Safe to call multiple times and
// after the event has fired (then it has no effect).
func (h EventHandle) Cancel() {
	if h.ev != nil {
		h.ev.cancelled = true
	}
}

// Cancelled reports whether Cancel was called.
func (h EventHandle) Cancelled() bool { return h.ev != nil && h.ev.cancelled }

// eventHeap orders events by (time, ceiling, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].ceiling != h[j].ceiling {
		return !h[i].ceiling
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewEngine. Engine is not safe for concurrent
// use: the simulation model is a single logical process.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time, measured from simulation start.
func (e *Engine) Now() time.Duration { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule registers fn to run at absolute virtual time at, returning a
// handle that can cancel it. Scheduling in the past (before Now) is a
// programming error and panics, because it would silently corrupt
// causality in the model.
func (e *Engine) Schedule(at time.Duration, fn Handler) EventHandle {
	if fn == nil {
		panic("sim: Schedule called with nil handler")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule(%v) is before Now()=%v", at, e.now))
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return EventHandle{ev: ev}
}

// ScheduleAfter registers fn to run d after the current virtual time.
// Negative d panics.
func (e *Engine) ScheduleAfter(d time.Duration, fn Handler) EventHandle {
	if d < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter(%v) with negative delay", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Every schedules fn at start and then every period thereafter, until the
// simulation ends or until fn's returned false. It is the building block
// for heartbeats and control intervals.
func (e *Engine) Every(start, period time.Duration, fn func() bool) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive period %v", period))
	}
	var tick Handler
	tick = func() {
		if !fn() {
			return
		}
		e.ScheduleAfter(period, tick)
	}
	e.Schedule(start, tick)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty.
// It returns ErrStopped if Stop was called.
func (e *Engine) Run() error {
	return e.RunUntil(-1)
}

// RunUntil executes events in timestamp order until the queue is empty or
// the clock would pass horizon (exclusive of events strictly later than
// horizon). A negative horizon means no limit. When the horizon cuts the
// run short, the clock is left at the horizon so energy integration over
// [0, horizon] is exact; when the queue drains first, the clock stays at
// the last event (the makespan), not the horizon.
func (e *Engine) RunUntil(horizon time.Duration) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if horizon >= 0 && next.at > horizon {
			e.now = horizon
			return nil
		}
		heap.Pop(&e.queue)
		if next.cancelled {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	return nil
}
