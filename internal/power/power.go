// Package power provides the two energy views the paper contrasts:
//
//   - Meter: ground-truth wall power, integrating each machine's actual
//     draw P = P_idle + α·U over virtual time. It stands in for the WattsUp
//     Pro meter on the authors' testbed (§V-B).
//   - TaskEstimator: E-Ant's Eq. 2 task-level estimate, built from the
//     per-process CPU utilization samples a TaskTracker reports each
//     heartbeat. Sampling quantization and measurement noise make it
//     deviate from the meter, which is what Fig. 4 (NRMSE) and Fig. 7
//     (noise scatter) measure.
//
// It also implements the least-squares identification of (P_idle, α) the
// paper uses to fit each machine type's linear power model (§IV-B).
package power

import (
	"fmt"
	"time"

	"eant/internal/cluster"
)

// Meter integrates true machine power over virtual time. Integration is
// exact for piecewise-constant utilization: callers must Sync a machine
// immediately before changing its utilization.
type Meter struct {
	lastSync  []time.Duration
	joules    []float64
	utilSecs  []float64        // ∫U dt, for time-averaged CPU utilization (Fig. 8b)
	busySlots []float64        // ∫(occupied slots) dt — set via NoteSlots by the driver
	cluster   *cluster.Cluster //eant:reset-keep the meter covers one fixed fleet for its lifetime
}

// NewMeter returns a meter covering every machine in c, starting at time 0.
func NewMeter(c *cluster.Cluster) *Meter {
	return &Meter{
		lastSync:  make([]time.Duration, c.Size()),
		joules:    make([]float64, c.Size()),
		utilSecs:  make([]float64, c.Size()),
		busySlots: make([]float64, c.Size()),
		cluster:   c,
	}
}

// Reset zeroes every accumulator and rewinds the sync clock to time 0,
// returning the meter to the state NewMeter leaves it in while keeping the
// allocated per-machine slices.
func (mt *Meter) Reset() {
	for i := range mt.lastSync {
		mt.lastSync[i] = 0
		mt.joules[i] = 0
		mt.utilSecs[i] = 0
		mt.busySlots[i] = 0
	}
}

// Sync accrues energy for machine m at its current power draw from the last
// sync point up to now. Call it before every utilization change and before
// reading totals.
func (mt *Meter) Sync(m cluster.Machine, now time.Duration) {
	last := mt.lastSync[m.ID()]
	if now < last {
		panic(fmt.Sprintf("power: Sync(%s) at %v before last sync %v", m, now, last))
	}
	secs := (now - last).Seconds()
	mt.joules[m.ID()] += m.Power() * secs
	mt.utilSecs[m.ID()] += m.Utilization() * secs
	mt.busySlots[m.ID()] += float64(m.Running()) * secs
	mt.lastSync[m.ID()] = now
}

// AvgUtilization returns machine id's time-averaged CPU utilization over
// [0, horizon]. horizon must be at least the machine's last sync point.
func (mt *Meter) AvgUtilization(id int, horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	return mt.utilSecs[id] / horizon.Seconds()
}

// TypeAvgUtilization returns the time-averaged utilization per machine
// type over [0, horizon].
func (mt *Meter) TypeAvgUtilization(horizon time.Duration) map[string]float64 {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, m := range mt.cluster.Machines() {
		sums[m.Spec().Name] += mt.AvgUtilization(m.ID(), horizon)
		counts[m.Spec().Name]++
	}
	out := make(map[string]float64, len(sums))
	for name, s := range sums {
		out[name] = s / float64(counts[name])
	}
	return out
}

// SyncAll accrues energy for every machine up to now.
func (mt *Meter) SyncAll(now time.Duration) {
	for _, m := range mt.cluster.Machines() {
		mt.Sync(m, now)
	}
}

// MachineJoules returns the energy consumed by machine id so far, up to its
// last sync point.
func (mt *Meter) MachineJoules(id int) float64 { return mt.joules[id] }

// TotalJoules returns the fleet-wide energy up to each machine's last sync.
func (mt *Meter) TotalJoules() float64 {
	var total float64
	for _, j := range mt.joules {
		total += j
	}
	return total
}

// TypeJoules returns energy grouped by machine type name.
func (mt *Meter) TypeJoules() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range mt.cluster.Machines() {
		out[m.Spec().Name] += mt.joules[m.ID()]
	}
	return out
}

// TaskSample is one heartbeat-granularity CPU utilization observation for a
// running task: the task's process occupied Util of the whole machine for
// Dt of virtual time. This is what TaskTrackers attach to TaskReports.
type TaskSample struct {
	Util float64
	Dt   time.Duration
}

// EstimateTaskJoules evaluates Eq. 2 for one completed task on a machine of
// the given spec:
//
//	E = Σ_samples (P_idle/m_slot + α·u) · Δt
//
// The first term attributes an equal share of idle power to each occupied
// slot; the second charges the task its marginal dynamic power.
func EstimateTaskJoules(spec *cluster.TypeSpec, samples []TaskSample) float64 {
	idleShare := spec.IdleWatts / float64(spec.Slots())
	var joules float64
	for _, s := range samples {
		u := s.Util
		if u < 0 {
			u = 0
		}
		joules += (idleShare + spec.AlphaWatts*u) * s.Dt.Seconds()
	}
	return joules
}

// EstimateTaskJoulesUniform is the common case of a task whose sampled
// utilization is constant: n samples of identical (util, Δt).
func EstimateTaskJoulesUniform(spec *cluster.TypeSpec, util float64, total time.Duration) float64 {
	return EstimateTaskJoules(spec, []TaskSample{{Util: util, Dt: total}})
}

// FitLinear identifies (P_idle, α) from (utilization, watts) observations by
// ordinary least squares, the "standard system identification technique"
// of §IV-B. It needs at least two distinct utilization values.
func FitLinear(utils, watts []float64) (idle, alpha float64, err error) {
	if len(utils) != len(watts) {
		return 0, 0, fmt.Errorf("power: FitLinear got %d utils and %d watts", len(utils), len(watts))
	}
	n := float64(len(utils))
	if n < 2 {
		return 0, 0, fmt.Errorf("power: FitLinear needs ≥2 observations, got %d", len(utils))
	}
	var sumU, sumW, sumUU, sumUW float64
	for i := range utils {
		sumU += utils[i]
		sumW += watts[i]
		sumUU += utils[i] * utils[i]
		sumUW += utils[i] * watts[i]
	}
	den := n*sumUU - sumU*sumU
	//eant:float-eq-ok exact-zero guard before dividing; a tolerance would reject valid near-constant fits
	if den == 0 {
		return 0, 0, fmt.Errorf("power: FitLinear observations have no utilization variance")
	}
	alpha = (n*sumUW - sumU*sumW) / den
	idle = (sumW - alpha*sumU) / n
	return idle, alpha, nil
}
