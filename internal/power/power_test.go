package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"eant/internal/cluster"
)

func TestMeterIdleIntegration(t *testing.T) {
	c := cluster.MustNew(cluster.Group{Spec: cluster.SpecDesktop, Count: 1})
	mt := NewMeter(c)
	mt.SyncAll(100 * time.Second)
	want := cluster.SpecDesktop.IdleWatts * 100
	if got := mt.TotalJoules(); math.Abs(got-want) > 1e-6 {
		t.Errorf("idle energy = %v J, want %v J", got, want)
	}
}

func TestMeterPiecewiseIntegration(t *testing.T) {
	c := cluster.MustNew(cluster.Group{Spec: cluster.SpecDesktop, Count: 1})
	m := c.Machine(0)
	mt := NewMeter(c)

	// 10 s idle, then 20 s at util 0.25, then 5 s idle again.
	mt.Sync(m, 10*time.Second)
	m.AcquireMap(0.25)
	mt.Sync(m, 30*time.Second)
	m.ReleaseMap(0.25)
	mt.Sync(m, 35*time.Second)

	spec := cluster.SpecDesktop
	want := spec.IdleWatts*10 + spec.PowerAt(0.25)*20 + spec.IdleWatts*5
	if got := mt.MachineJoules(0); math.Abs(got-want) > 1e-6 {
		t.Errorf("energy = %v J, want %v J", got, want)
	}
}

func TestMeterSyncBackwardsPanics(t *testing.T) {
	c := cluster.MustNew(cluster.Group{Spec: cluster.SpecAtom, Count: 1})
	mt := NewMeter(c)
	mt.Sync(c.Machine(0), 10*time.Second)
	defer func() {
		if recover() == nil {
			t.Error("backwards sync did not panic")
		}
	}()
	mt.Sync(c.Machine(0), 5*time.Second)
}

func TestMeterTypeJoules(t *testing.T) {
	c := cluster.MustNew(
		cluster.Group{Spec: cluster.SpecDesktop, Count: 2},
		cluster.Group{Spec: cluster.SpecAtom, Count: 1},
	)
	mt := NewMeter(c)
	mt.SyncAll(10 * time.Second)
	byType := mt.TypeJoules()
	wantDesk := 2 * cluster.SpecDesktop.IdleWatts * 10
	wantAtom := cluster.SpecAtom.IdleWatts * 10
	if math.Abs(byType["Desktop"]-wantDesk) > 1e-6 {
		t.Errorf("Desktop energy = %v, want %v", byType["Desktop"], wantDesk)
	}
	if math.Abs(byType["Atom"]-wantAtom) > 1e-6 {
		t.Errorf("Atom energy = %v, want %v", byType["Atom"], wantAtom)
	}
	if math.Abs(mt.TotalJoules()-(wantDesk+wantAtom)) > 1e-6 {
		t.Error("TotalJoules does not equal sum of type energies")
	}
}

func TestEstimateTaskJoulesMatchesEq2(t *testing.T) {
	spec := cluster.SpecXeonE5
	samples := []TaskSample{
		{Util: 0.04, Dt: 3 * time.Second},
		{Util: 0.02, Dt: 3 * time.Second},
	}
	idleShare := spec.IdleWatts / float64(spec.Slots())
	want := (idleShare+spec.AlphaWatts*0.04)*3 + (idleShare+spec.AlphaWatts*0.02)*3
	if got := EstimateTaskJoules(spec, samples); math.Abs(got-want) > 1e-9 {
		t.Errorf("estimate = %v, want %v", got, want)
	}
}

func TestEstimateTaskJoulesNegativeUtilClamped(t *testing.T) {
	spec := cluster.SpecDesktop
	got := EstimateTaskJoules(spec, []TaskSample{{Util: -1, Dt: time.Second}})
	want := spec.IdleWatts / float64(spec.Slots())
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("estimate with negative util = %v, want idle share %v", got, want)
	}
}

func TestEstimateUniformEquivalence(t *testing.T) {
	spec := cluster.SpecT420
	a := EstimateTaskJoulesUniform(spec, 0.1, 30*time.Second)
	b := EstimateTaskJoules(spec, []TaskSample{
		{Util: 0.1, Dt: 10 * time.Second},
		{Util: 0.1, Dt: 20 * time.Second},
	})
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("uniform %v != sampled %v", a, b)
	}
}

func TestEstimateNonNegativeProperty(t *testing.T) {
	spec := cluster.SpecT110
	f := func(utils []float64, secs []uint8) bool {
		n := len(utils)
		if len(secs) < n {
			n = len(secs)
		}
		samples := make([]TaskSample, 0, n)
		for i := 0; i < n; i++ {
			u := utils[i]
			if !math.IsNaN(u) && !math.IsInf(u, 0) {
				u = math.Mod(u, 2) // keep within the model's domain, sign preserved
			} else {
				u = 0
			}
			samples = append(samples, TaskSample{
				Util: u,
				Dt:   time.Duration(secs[i]) * time.Second,
			})
		}
		return EstimateTaskJoules(spec, samples) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimateAdditivityProperty(t *testing.T) {
	// Energy of a concatenated sample list equals the sum of the parts.
	spec := cluster.SpecT620
	f := func(a, b []float64) bool {
		mk := func(us []float64) []TaskSample {
			out := make([]TaskSample, len(us))
			for i, u := range us {
				out[i] = TaskSample{Util: math.Abs(math.Mod(u, 1)), Dt: time.Second}
			}
			return out
		}
		sa, sb := mk(a), mk(b)
		whole := EstimateTaskJoules(spec, append(append([]TaskSample{}, sa...), sb...))
		parts := EstimateTaskJoules(spec, sa) + EstimateTaskJoules(spec, sb)
		return math.Abs(whole-parts) < 1e-6*(1+whole)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitLinearRecoversModel(t *testing.T) {
	// Synthesize observations from a known envelope and recover it.
	spec := cluster.SpecXeonE5
	var utils, watts []float64
	for u := 0.0; u <= 1.0; u += 0.1 {
		utils = append(utils, u)
		watts = append(watts, spec.PowerAt(u))
	}
	idle, alpha, err := FitLinear(utils, watts)
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if math.Abs(idle-spec.IdleWatts) > 1e-6 {
		t.Errorf("idle = %v, want %v", idle, spec.IdleWatts)
	}
	if math.Abs(alpha-spec.AlphaWatts) > 1e-6 {
		t.Errorf("alpha = %v, want %v", alpha, spec.AlphaWatts)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, _, err := FitLinear([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := FitLinear([]float64{1}, []float64{2}); err == nil {
		t.Error("single observation accepted")
	}
	if _, _, err := FitLinear([]float64{0.5, 0.5}, []float64{10, 20}); err == nil {
		t.Error("zero-variance utilizations accepted")
	}
}
