package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Trace-event process IDs: machines render as threads of the "cluster"
// process, jobs as threads of the "jobs" process.
const (
	pidCluster = 1
	pidJobs    = 2
)

// traceEvent is one element of the Chrome trace-event JSON array
// (the format Perfetto and chrome://tracing load). ts and dur are in
// microseconds of simulated time. Cat carries the originating probe
// Kind's wire name, so Perfetto's category filter can isolate one event
// stream (all completions, all machine-state flips) across threads;
// metadata records carry no category.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// finite maps NaN and ±Inf to zero: JSON has no encoding for them, and a
// counter sample must never be able to abort the whole document.
func finite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// WriteTimeline renders probe events as a Chrome trace-event JSON document
// for Perfetto (ui.perfetto.dev) or chrome://tracing: machines become
// threads of a "cluster" process, task attempts duration spans on their
// machine's thread (reconstructed from completion events, so spans survive
// ring overwrites of their start), control ticks instants plus fleet
// counters, machine samples per-machine counters, and jobs spans of a
// separate "jobs" process. Every string passes through encoding/json, so
// hostile job or machine names cannot corrupt the document.
func WriteTimeline(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return fmt.Errorf("probe: timeline: %w", err)
	}
	enc := emitter{w: bw}

	enc.emit(traceEvent{Name: "process_name", Ph: "M", Pid: pidCluster,
		Args: map[string]any{"name": "cluster"}})
	enc.emit(traceEvent{Name: "process_name", Ph: "M", Pid: pidJobs,
		Args: map[string]any{"name": "jobs"}})

	// Machine thread names: prefer the type label carried by samples;
	// fall back to the bare ID for machines that never got sampled.
	named := map[int32]bool{}
	for _, ev := range events {
		if ev.Kind == KindSample && !named[ev.MachineID] {
			named[ev.MachineID] = true
			enc.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pidCluster, Tid: int(ev.MachineID),
				Args: map[string]any{"name": fmt.Sprintf("m%d %s", ev.MachineID, ev.Label)}})
		}
	}
	jobStart := map[int32]time.Duration{}
	for _, ev := range events {
		switch ev.Kind {
		case KindComplete:
			dur := secsToDuration(ev.C)
			start := ev.At - dur
			if start < 0 {
				start = 0
			}
			if !named[ev.MachineID] {
				named[ev.MachineID] = true
				enc.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pidCluster, Tid: int(ev.MachineID),
					Args: map[string]any{"name": fmt.Sprintf("m%d", ev.MachineID)}})
			}
			enc.emit(traceEvent{
				Name: fmt.Sprintf("j%d/%s%d", ev.JobID, taskKindName(ev.TaskKind), ev.Index),
				Cat:  ev.Kind.String(),
				Ph:   "X", Ts: micros(start), Dur: micros(ev.At - start),
				Pid: pidCluster, Tid: int(ev.MachineID),
				Args: map[string]any{"est_joules": finite(ev.A), "true_joules": finite(ev.B)},
			})
		case KindControlTick:
			enc.emit(traceEvent{Name: "control tick", Cat: ev.Kind.String(), Ph: "i", Ts: micros(ev.At),
				Pid: pidCluster, Scope: "p"})
			enc.emit(traceEvent{Name: "fleet energy", Cat: ev.Kind.String(), Ph: "C", Ts: micros(ev.At), Pid: pidCluster,
				Args: map[string]any{"joules": finite(ev.A)}})
			enc.emit(traceEvent{Name: "tasks done", Cat: ev.Kind.String(), Ph: "C", Ts: micros(ev.At), Pid: pidCluster,
				Args: map[string]any{"done": ev.N}})
		case KindSample:
			enc.emit(traceEvent{Name: fmt.Sprintf("m%d util", ev.MachineID), Cat: ev.Kind.String(), Ph: "C",
				Ts: micros(ev.At), Pid: pidCluster,
				Args: map[string]any{"util": finite(ev.A)}})
		case KindMachineState:
			enc.emit(traceEvent{Name: ev.Label, Cat: ev.Kind.String(), Ph: "i", Ts: micros(ev.At),
				Pid: pidCluster, Tid: int(ev.MachineID), Scope: "t"})
		case KindJobSubmit:
			jobStart[ev.JobID] = ev.At
			enc.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pidJobs, Tid: int(ev.JobID),
				Args: map[string]any{"name": fmt.Sprintf("j%d %s", ev.JobID, ev.Label)}})
		case KindJobDone:
			name := "job"
			if ev.Flag {
				name = "job (failed)"
			}
			start, ok := jobStart[ev.JobID]
			if !ok {
				// The submit event was overwritten in the ring; record the
				// completion as an instant rather than inventing a span.
				enc.emit(traceEvent{Name: name, Cat: ev.Kind.String(), Ph: "i", Ts: micros(ev.At),
					Pid: pidJobs, Tid: int(ev.JobID), Scope: "t"})
				continue
			}
			enc.emit(traceEvent{Name: name, Cat: ev.Kind.String(), Ph: "X", Ts: micros(start), Dur: micros(ev.At - start),
				Pid: pidJobs, Tid: int(ev.JobID)})
		}
	}
	if enc.err != nil {
		return fmt.Errorf("probe: timeline: %w", enc.err)
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return fmt.Errorf("probe: timeline: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("probe: timeline: %w", err)
	}
	return nil
}

// emitter writes comma-separated JSON array elements, holding the first
// error.
type emitter struct {
	w     *bufio.Writer
	wrote bool
	err   error
}

func (e *emitter) emit(ev traceEvent) {
	if e.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		e.err = err
		return
	}
	if e.wrote {
		if err := e.w.WriteByte(','); err != nil {
			e.err = err
			return
		}
	}
	e.wrote = true
	if _, err := e.w.Write(b); err != nil {
		e.err = err
	}
}

// secsToDuration converts fractional seconds, guarding NaN and negatives
// (hostile fuzz inputs) to zero.
func secsToDuration(secs float64) time.Duration {
	if !(secs > 0) {
		return 0
	}
	const maxSecs = float64(1<<62) / float64(time.Second)
	if secs > maxSecs {
		secs = maxSecs
	}
	return time.Duration(secs * float64(time.Second))
}
