package probe

import "fmt"

// Histogram is a fixed-boundary counting histogram with exact,
// deterministic quantiles. Bucket i (0 ≤ i < len(Bounds)) counts
// observations v with v ≤ Bounds[i] (and v > Bounds[i-1] for i > 0); the
// final bucket Counts[len(Bounds)] is the overflow. Fixed boundaries make
// merging exact: histograms with identical bounds merge by adding counts,
// which is associative and order-independent for every field except the
// float Sum (addition order can perturb its last bits; Merge folds
// left-to-right, so merging in submission order is reproducible).
type Histogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1, last is overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	// Min and Max are the observed extremes; meaningful only when
	// Count > 0 (kept at 0 when empty so JSON marshaling never sees ±Inf).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// NewHistogram builds an empty histogram over the given bucket
// boundaries, which must be non-empty and strictly ascending (zero-width
// buckets are rejected).
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("probe: histogram needs at least one bucket boundary")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("probe: histogram bounds not strictly ascending: bounds[%d]=%v, bounds[%d]=%v (zero-width bucket)",
				i-1, bounds[i-1], i, bounds[i])
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		Bounds: b,
		Counts: make([]uint64, len(b)+1),
	}, nil
}

// Observe adds one value.
func (h *Histogram) Observe(v float64) {
	h.Counts[h.bucket(v)]++
	if h.Count == 0 {
		h.Min, h.Max = v, v
	} else {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	h.Count++
	h.Sum += v
}

// bucket returns the index of the bucket covering v: the first boundary
// ≥ v, or the overflow bucket.
func (h *Histogram) bucket(v float64) int {
	lo, hi := 0, len(h.Bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.Bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Merge folds o into h. Both histograms must share identical boundaries.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(h.Bounds) != len(o.Bounds) {
		return fmt.Errorf("probe: merging histograms with %d and %d bounds", len(h.Bounds), len(o.Bounds))
	}
	for i := range h.Bounds {
		//eant:float-eq-ok mergeability requires bitwise-identical boundaries, not approximate ones
		if h.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("probe: merging histograms with different bounds at %d: %v vs %v", i, h.Bounds[i], o.Bounds[i])
		}
	}
	if o.Count == 0 {
		return nil
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	if h.Count == 0 {
		h.Min, h.Max = o.Min, o.Max
	} else {
		if o.Min < h.Min {
			h.Min = o.Min
		}
		if o.Max > h.Max {
			h.Max = o.Max
		}
	}
	h.Count += o.Count
	h.Sum += o.Sum
	return nil
}

// Clone returns a deep copy of h (nil-safe).
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	c := *h
	c.Bounds = append([]float64(nil), h.Bounds...)
	c.Counts = append([]uint64(nil), h.Counts...)
	return &c
}

// Quantile returns a deterministic estimate of the q-quantile
// (q clamped to [0, 1]): the rank ⌈q·Count⌉ observation located by a
// cumulative-count walk, linearly interpolated inside its bucket and
// clamped to the observed [Min, Max]. An empty histogram returns 0. The
// estimate is exact at q=0 (Min) and q=1 (Max) and monotone
// non-decreasing in q.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q > 1 {
		q = 1
	}
	// Target rank in [1, Count].
	target := uint64(q * float64(h.Count))
	if float64(target) < q*float64(h.Count) {
		target++
	}
	if target < 1 {
		target = 1
	}
	if target > h.Count {
		target = h.Count
	}
	var cum uint64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if target > cum+c {
			cum += c
			continue
		}
		lo, hi := h.bucketEdges(i)
		frac := float64(target-cum) / float64(c)
		v := lo + frac*(hi-lo)
		return clampRange(v, h.Min, h.Max)
	}
	return h.Max
}

// bucketEdges returns bucket i's value range clamped to the observed
// extremes, so interpolation never invents values outside the data.
func (h *Histogram) bucketEdges(i int) (lo, hi float64) {
	if i == 0 {
		lo = h.Min
	} else {
		lo = h.Bounds[i-1]
	}
	if i < len(h.Bounds) {
		hi = h.Bounds[i]
	} else {
		hi = h.Max
	}
	lo = clampRange(lo, h.Min, h.Max)
	hi = clampRange(hi, h.Min, h.Max)
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
