// Package probe is the simulator's live observability layer: a
// ring-buffer-backed recorder of structured decision events (slot offer →
// roulette draw → assignment), per-control-tick pheromone snapshots, and
// per-machine utilization/energy time series, all stamped with the
// simulated clock — never the wall clock.
//
// The package is a pure observer with a hard determinism contract: a probe
// never draws from a random stream, never schedules an engine event, and
// never syncs the power meter (an extra sync would split float-integration
// intervals and drift the low bits of TotalJoules). A run with a probe
// attached therefore produces bit-identical Stats to the same run without
// one — golden tests enforce this byte-for-byte.
//
// The disabled path is free: a nil *Probe is a valid receiver for every
// recording method, and instrumented call sites additionally guard with a
// nil check so the hot path computes no arguments and allocates nothing
// (bench-verified: 0 allocs/op on the scale grid).
//
// probe deliberately depends only on the standard library: both the
// mapreduce driver and the E-Ant policy import it, so any dependency on a
// simulator package would cycle.
package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// DefaultRingSize bounds the in-memory event history when Config.RingSize
// is zero. Older events are overwritten and counted as dropped.
const DefaultRingSize = 1 << 16

// Default histogram bucket boundaries. Fixed boundaries (rather than
// adaptive ones) keep merged histograms exact: two probes observing the
// same values always produce identical, mergeable buckets.
var (
	// DefaultEnergyBounds buckets per-task metered energy in joules.
	DefaultEnergyBounds = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000}
	// DefaultWaitBounds buckets task queue wait (submit → start) in seconds.
	DefaultWaitBounds = []float64{1, 2, 5, 10, 30, 60, 120, 300, 600, 1800, 3600}
	// DefaultGapBounds buckets per-machine offer gaps in seconds: the time
	// between successive slot offers to the same machine (offer latency).
	DefaultGapBounds = []float64{1, 3, 6, 15, 30, 60, 120, 300, 900}
)

// Config parameterizes a probe.
type Config struct {
	// RingSize caps the retained event history; 0 means DefaultRingSize.
	RingSize int
	// SampleEvery emits a per-machine utilization/energy/slot sample every
	// N heartbeats (on the simulated clock). 0 disables sampling.
	SampleEvery int
	// Trails records each colony's pheromone row at every control tick.
	Trails bool
	// Stream, when non-nil, receives every event as one JSON line at
	// record time (before any ring overwrite). Write errors are sticky and
	// reported by Err; they never interrupt the simulation.
	Stream io.Writer
	// EnergyBounds, WaitBounds and GapBounds override the default
	// histogram bucket boundaries (strictly ascending, all positive).
	EnergyBounds []float64
	WaitBounds   []float64
	GapBounds    []float64
}

// Probe records observability events for one simulation run. A probe is
// owned by exactly one single-threaded driver; concurrent sweeps give each
// run its own probe and merge the Reports afterwards. The nil *Probe is
// the disabled probe: every method is a no-op.
type Probe struct {
	ring    []Event
	seq     uint64 // events recorded so far; next event's sequence number
	stream  *json.Encoder
	sErr    error
	sampleN int
	hb      int
	trails  bool

	energy *Histogram // per-task metered joules
	wait   *Histogram // task queue wait seconds
	gap    *Histogram // per-machine offer gap seconds

	// lastOffer tracks, per machine, the previous offer instant for the
	// offer-gap histogram; -1 marks "no offer yet".
	lastOffer []time.Duration
}

// New builds a probe from cfg.
func New(cfg Config) (*Probe, error) {
	size := cfg.RingSize
	if size == 0 {
		size = DefaultRingSize
	}
	if size < 0 {
		return nil, fmt.Errorf("probe: ring size %d is negative", cfg.RingSize)
	}
	boundsOr := func(b, def []float64) []float64 {
		if b == nil {
			return def
		}
		return b
	}
	energy, err := NewHistogram(boundsOr(cfg.EnergyBounds, DefaultEnergyBounds))
	if err != nil {
		return nil, fmt.Errorf("probe: energy bounds: %w", err)
	}
	wait, err := NewHistogram(boundsOr(cfg.WaitBounds, DefaultWaitBounds))
	if err != nil {
		return nil, fmt.Errorf("probe: wait bounds: %w", err)
	}
	gap, err := NewHistogram(boundsOr(cfg.GapBounds, DefaultGapBounds))
	if err != nil {
		return nil, fmt.Errorf("probe: gap bounds: %w", err)
	}
	p := &Probe{
		ring:    make([]Event, 0, size),
		sampleN: cfg.SampleEvery,
		trails:  cfg.Trails,
		energy:  energy,
		wait:    wait,
		gap:     gap,
	}
	if cfg.Stream != nil {
		p.stream = json.NewEncoder(cfg.Stream)
	}
	return p, nil
}

// Enabled reports whether the probe records anything (nil-safe).
func (p *Probe) Enabled() bool { return p != nil }

// TrailsEnabled reports whether pheromone-row snapshots are wanted.
func (p *Probe) TrailsEnabled() bool { return p != nil && p.trails }

// Err returns the first streaming-sink write error, if any.
func (p *Probe) Err() error {
	if p == nil {
		return nil
	}
	return p.sErr
}

// record appends ev to the ring (overwriting the oldest event once full)
// and mirrors it to the streaming sink.
func (p *Probe) record(ev Event) {
	ev.Seq = p.seq
	p.seq++
	if len(p.ring) < cap(p.ring) {
		p.ring = append(p.ring, ev)
	} else {
		p.ring[ev.Seq%uint64(cap(p.ring))] = ev
	}
	if p.stream != nil && p.sErr == nil {
		if err := p.stream.Encode(ev); err != nil {
			p.sErr = fmt.Errorf("probe: stream: %w", err) //eant:alloc-ok stream-failure path, fires at most once
		}
	}
}

// Offer records a free-slot offer on a machine (one AssignMap/AssignReduce
// call) and feeds the offer-gap histogram with the time since the
// machine's previous offer.
func (p *Probe) Offer(at time.Duration, machineID int, kind int8, pending int) {
	if p == nil {
		return
	}
	for len(p.lastOffer) <= machineID {
		p.lastOffer = append(p.lastOffer, -1)
	}
	if prev := p.lastOffer[machineID]; prev >= 0 && at > prev {
		p.gap.Observe((at - prev).Seconds())
	}
	p.lastOffer[machineID] = at
	p.record(Event{At: at, Kind: KindOffer, TaskKind: kind, MachineID: int32(machineID), N: int32(pending)})
}

// Draw records one roulette draw of the E-Ant colony selection: the chosen
// job's trail τ on the offering machine, its Eq. 8 weight, and whether the
// path-acceptance gate let the assignment through.
func (p *Probe) Draw(at time.Duration, machineID, jobID int, kind int8, tau, weight float64, accepted bool) {
	if p == nil {
		return
	}
	p.record(Event{At: at, Kind: KindDraw, TaskKind: kind, MachineID: int32(machineID),
		JobID: int32(jobID), A: tau, B: weight, Flag: accepted})
}

// Assign records a task start: job/index/machine, the app label, locality,
// the service estimate and the queue wait (submit → start), which also
// feeds the wait histogram.
func (p *Probe) Assign(at time.Duration, jobID, index, machineID int, kind int8, app string, local bool, estSecs, waitSecs float64) {
	if p == nil {
		return
	}
	p.wait.Observe(waitSecs)
	p.record(Event{At: at, Kind: KindAssign, TaskKind: kind, JobID: int32(jobID), Index: int32(index),
		MachineID: int32(machineID), Label: app, Flag: local, A: estSecs, B: waitSecs})
}

// Complete records a task completion with its Eq. 2 energy estimate, the
// metered ground truth (which feeds the energy histogram), and the
// attempt's total duration in seconds.
func (p *Probe) Complete(at time.Duration, jobID, index, machineID int, kind int8, estJoules, trueJoules, durSecs float64) {
	if p == nil {
		return
	}
	p.energy.Observe(trueJoules)
	p.record(Event{At: at, Kind: KindComplete, TaskKind: kind, JobID: int32(jobID), Index: int32(index),
		MachineID: int32(machineID), A: estJoules, B: trueJoules, C: durSecs})
}

// ControlTick records a control-interval boundary with the fleet energy
// and completed-task count at that instant.
func (p *Probe) ControlTick(at time.Duration, totalJoules float64, tasksDone int) {
	if p == nil {
		return
	}
	p.record(Event{At: at, Kind: KindControlTick, A: totalJoules, N: int32(tasksDone)})
}

// TrailRow records one colony's pheromone row at a control tick. The row
// is copied; callers may reuse the slice.
func (p *Probe) TrailRow(at time.Duration, jobID int, kind int8, app string, row []float64) {
	if p == nil {
		return
	}
	cp := make([]float64, len(row)) //eant:alloc-ok opt-in trail probe, per colony per control tick
	copy(cp, row)
	p.record(Event{At: at, Kind: KindTrailRow, TaskKind: kind, JobID: int32(jobID), Label: app, Row: cp})
}

// MachineState records a machine availability transition: "sleep", "wake",
// "crash", "recover" or "blacklist".
func (p *Probe) MachineState(at time.Duration, machineID int, state string) {
	if p == nil {
		return
	}
	p.record(Event{At: at, Kind: KindMachineState, MachineID: int32(machineID), Label: state})
}

// JobSubmit records a job entering the system with its task counts.
func (p *Probe) JobSubmit(at time.Duration, jobID int, app string, maps, reduces int) {
	if p == nil {
		return
	}
	p.record(Event{At: at, Kind: KindJobSubmit, JobID: int32(jobID), Label: app,
		N: int32(maps), M: int32(reduces)})
}

// JobDone records a job leaving the system, failed or completed.
func (p *Probe) JobDone(at time.Duration, jobID int, failed bool) {
	if p == nil {
		return
	}
	p.record(Event{At: at, Kind: KindJobDone, JobID: int32(jobID), Flag: failed})
}

// ShouldSample advances the heartbeat counter and reports whether this
// heartbeat is a sampling one. The driver calls it once per heartbeat
// sweep and, on true, feeds one Sample per machine.
func (p *Probe) ShouldSample() bool {
	if p == nil || p.sampleN <= 0 {
		return false
	}
	p.hb++
	if p.hb >= p.sampleN {
		p.hb = 0
		return true
	}
	return false
}

// Sample records one machine's utilization, accrued energy (up to its last
// meter sync — the probe never forces a sync) and free slots.
func (p *Probe) Sample(at time.Duration, machineID int, machineType string, util, joules float64, freeMap, freeReduce int) {
	if p == nil {
		return
	}
	p.record(Event{At: at, Kind: KindSample, MachineID: int32(machineID), Label: machineType,
		A: util, B: joules, N: int32(freeMap), M: int32(freeReduce)})
}

// Recorded returns the total number of events recorded, including any that
// have been overwritten in the ring.
func (p *Probe) Recorded() uint64 {
	if p == nil {
		return 0
	}
	return p.seq
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (p *Probe) Dropped() uint64 {
	if p == nil {
		return 0
	}
	return p.seq - uint64(len(p.ring))
}

// Events returns the retained events in sequence order (oldest first).
// The returned slice is a copy.
func (p *Probe) Events() []Event {
	if p == nil || len(p.ring) == 0 {
		return nil
	}
	out := make([]Event, 0, len(p.ring))
	if len(p.ring) < cap(p.ring) || p.seq == uint64(len(p.ring)) {
		out = append(out, p.ring...)
		return out
	}
	// The ring has wrapped: the oldest retained event sits at seq % size.
	start := int(p.seq % uint64(cap(p.ring)))
	out = append(out, p.ring[start:]...)
	out = append(out, p.ring[:start]...)
	return out
}
