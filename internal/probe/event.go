package probe

import (
	"encoding/json"
	"time"
)

// Kind discriminates event records.
type Kind uint8

// Event kinds, in rough decision-loop order.
const (
	// KindOffer is one free-slot offer to the scheduler.
	KindOffer Kind = iota + 1
	// KindDraw is one roulette draw of E-Ant's colony selection.
	KindDraw
	// KindAssign is a task start.
	KindAssign
	// KindComplete is a task completion with its energy accounting.
	KindComplete
	// KindControlTick is a control-interval boundary.
	KindControlTick
	// KindSample is one machine's periodic utilization/energy/slot sample.
	KindSample
	// KindMachineState is a machine availability transition.
	KindMachineState
	// KindJobSubmit is a job entering the system.
	KindJobSubmit
	// KindJobDone is a job leaving the system.
	KindJobDone
	// KindTrailRow is one colony's pheromone row at a control tick.
	KindTrailRow
)

// String returns the kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindOffer:
		return "offer"
	case KindDraw:
		return "draw"
	case KindAssign:
		return "assign"
	case KindComplete:
		return "complete"
	case KindControlTick:
		return "control_tick"
	case KindSample:
		return "sample"
	case KindMachineState:
		return "machine_state"
	case KindJobSubmit:
		return "job_submit"
	case KindJobDone:
		return "job_done"
	case KindTrailRow:
		return "trail_row"
	default:
		return "unknown"
	}
}

// Event is one recorded observation. The struct is flat — fixed-width
// fields plus one string label and one optional float row — so the ring
// buffer stores events without per-event boxing. Field meaning depends on
// Kind; MarshalJSON renders only the fields a kind defines.
type Event struct {
	// Seq is the record's global sequence number (assigned by the probe).
	Seq uint64
	// At is the simulated-clock timestamp.
	At time.Duration
	// Kind discriminates the payload fields below.
	Kind Kind
	// TaskKind is 1 for map, 2 for reduce, 0 when not applicable
	// (mirrors mapreduce.TaskKind without importing it).
	TaskKind int8
	// Flag is Assign:local, Draw:accepted, JobDone:failed.
	Flag bool

	JobID     int32
	Index     int32
	MachineID int32

	// A, B, C are kind-specific float payloads:
	//   Draw:        A=tau      B=weight
	//   Assign:      A=est_secs B=wait_secs
	//   Complete:    A=est_J    B=true_J     C=dur_secs
	//   ControlTick: A=total_J
	//   Sample:      A=util     B=joules
	A, B, C float64
	// N, M are kind-specific int payloads:
	//   Offer:       N=pending
	//   ControlTick: N=tasks_done
	//   Sample:      N=free_map M=free_reduce
	//   JobSubmit:   N=maps     M=reduces
	N, M int32
	// Label is Assign/JobSubmit/TrailRow:app, Sample:machine type,
	// MachineState:state name.
	Label string
	// Row is the pheromone vector of a TrailRow event.
	Row []float64
}

// taskKindName renders the TaskKind payload field.
func taskKindName(k int8) string {
	switch k {
	case 1:
		return "map"
	case 2:
		return "reduce"
	default:
		return ""
	}
}

// MarshalJSON renders the event with only its kind's fields, via per-kind
// wire structs so every value is escaped by encoding/json (hostile app or
// machine-type names can never corrupt the stream).
func (e Event) MarshalJSON() ([]byte, error) {
	type header struct {
		Seq  uint64  `json:"seq"`
		At   float64 `json:"at"`
		Kind string  `json:"kind"`
	}
	h := header{Seq: e.Seq, At: e.At.Seconds(), Kind: e.Kind.String()}
	switch e.Kind {
	case KindOffer:
		return json.Marshal(struct {
			header
			Machine  int32  `json:"machine"`
			TaskKind string `json:"task_kind"`
			Pending  int32  `json:"pending"`
		}{h, e.MachineID, taskKindName(e.TaskKind), e.N})
	case KindDraw:
		return json.Marshal(struct {
			header
			Machine  int32   `json:"machine"`
			Job      int32   `json:"job"`
			TaskKind string  `json:"task_kind"`
			Tau      float64 `json:"tau"`
			Weight   float64 `json:"weight"`
			Accepted bool    `json:"accepted"`
		}{h, e.MachineID, e.JobID, taskKindName(e.TaskKind), e.A, e.B, e.Flag})
	case KindAssign:
		return json.Marshal(struct {
			header
			Job      int32   `json:"job"`
			Index    int32   `json:"index"`
			Machine  int32   `json:"machine"`
			TaskKind string  `json:"task_kind"`
			App      string  `json:"app"`
			Local    bool    `json:"local"`
			EstSecs  float64 `json:"est_secs"`
			WaitSecs float64 `json:"wait_secs"`
		}{h, e.JobID, e.Index, e.MachineID, taskKindName(e.TaskKind), e.Label, e.Flag, e.A, e.B})
	case KindComplete:
		return json.Marshal(struct {
			header
			Job        int32   `json:"job"`
			Index      int32   `json:"index"`
			Machine    int32   `json:"machine"`
			TaskKind   string  `json:"task_kind"`
			EstJoules  float64 `json:"est_joules"`
			TrueJoules float64 `json:"true_joules"`
			DurSecs    float64 `json:"dur_secs"`
		}{h, e.JobID, e.Index, e.MachineID, taskKindName(e.TaskKind), e.A, e.B, e.C})
	case KindControlTick:
		return json.Marshal(struct {
			header
			TotalJoules float64 `json:"total_joules"`
			TasksDone   int32   `json:"tasks_done"`
		}{h, e.A, e.N})
	case KindSample:
		return json.Marshal(struct {
			header
			Machine     int32   `json:"machine"`
			MachineType string  `json:"machine_type"`
			Util        float64 `json:"util"`
			Joules      float64 `json:"joules"`
			FreeMap     int32   `json:"free_map"`
			FreeReduce  int32   `json:"free_reduce"`
		}{h, e.MachineID, e.Label, e.A, e.B, e.N, e.M})
	case KindMachineState:
		return json.Marshal(struct {
			header
			Machine int32  `json:"machine"`
			State   string `json:"state"`
		}{h, e.MachineID, e.Label})
	case KindJobSubmit:
		return json.Marshal(struct {
			header
			Job     int32  `json:"job"`
			App     string `json:"app"`
			Maps    int32  `json:"maps"`
			Reduces int32  `json:"reduces"`
		}{h, e.JobID, e.Label, e.N, e.M})
	case KindJobDone:
		return json.Marshal(struct {
			header
			Job    int32 `json:"job"`
			Failed bool  `json:"failed"`
		}{h, e.JobID, e.Flag})
	case KindTrailRow:
		return json.Marshal(struct {
			header
			Job      int32     `json:"job"`
			TaskKind string    `json:"task_kind"`
			App      string    `json:"app"`
			Row      []float64 `json:"row"`
		}{h, e.JobID, taskKindName(e.TaskKind), e.Label, e.Row})
	default:
		return json.Marshal(h)
	}
}
