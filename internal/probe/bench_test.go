package probe

import (
	"testing"
	"time"
)

// sinkCounts defeats dead-code elimination without allocating.
var sinkCounts uint64

// disabledProbeCalls exercises every hook exactly as the driver's hot path
// does with probes off: a nil receiver behind a nil check.
func disabledProbeCalls(p *Probe) {
	if p != nil {
		p.Offer(time.Second, 1, 1, 3)
	}
	if p != nil {
		p.Draw(time.Second, 1, 2, 1, 0.5, 0.25, true)
	}
	if p != nil {
		p.Assign(time.Second, 2, 0, 1, 1, "sort", true, 10, 1)
	}
	if p != nil {
		p.Complete(2*time.Second, 2, 0, 1, 1, 10, 11, 1)
	}
	if p.ShouldSample() {
		p.Sample(time.Second, 1, "atom", 0.5, 10, 1, 1)
	}
	if p != nil {
		p.ControlTick(time.Second, 100, 4)
	}
	sinkCounts += p.Recorded() + p.Dropped()
}

// TestDisabledProbeZeroAllocs pins the headline overhead contract: with no
// probe attached, the instrumented hot path performs zero allocations.
func TestDisabledProbeZeroAllocs(t *testing.T) {
	var p *Probe
	if avg := testing.AllocsPerRun(1000, func() { disabledProbeCalls(p) }); avg != 0 {
		t.Fatalf("disabled probe path allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkDisabledProbe is the CI bench-smoke cell for the overhead
// contract (asserted to report "0 allocs/op").
func BenchmarkDisabledProbe(b *testing.B) {
	var p *Probe
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledProbeCalls(p)
	}
}

// BenchmarkEnabledProbe measures the recording cost with a warm ring (the
// steady state after the ring fills: pure overwrites, no growth).
func BenchmarkEnabledProbe(b *testing.B) {
	p, err := New(Config{RingSize: 1024, SampleEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2048; i++ {
		p.ControlTick(time.Duration(i), 0, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disabledProbeCalls(p)
	}
}
