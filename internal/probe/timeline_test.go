package probe

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// decodeTimeline parses a trace document back into its event list.
func decodeTimeline(t testing.TB, data []byte) []traceEvent {
	t.Helper()
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v\n%s", err, data)
	}
	return doc.TraceEvents
}

func TestWriteTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, nil); err != nil {
		t.Fatal(err)
	}
	evs := decodeTimeline(t, buf.Bytes())
	// Only the two process_name metadata records.
	if len(evs) != 2 || evs[0].Ph != "M" || evs[1].Ph != "M" {
		t.Fatalf("empty timeline events: %+v", evs)
	}
}

func TestWriteTimelineSpansAndCounters(t *testing.T) {
	p := mustProbe(t, Config{SampleEvery: 1})
	p.JobSubmit(0, 7, "sort", 2, 1)
	p.Sample(10*time.Second, 3, "atom", 0.5, 100, 1, 1)
	p.Complete(30*time.Second, 7, 0, 3, 2, 40, 44, 20)
	p.ControlTick(60*time.Second, 500, 1)
	p.MachineState(70*time.Second, 3, "sleep")
	p.JobDone(80*time.Second, 7, false)

	var buf bytes.Buffer
	if err := WriteTimeline(&buf, p.Events()); err != nil {
		t.Fatal(err)
	}
	evs := decodeTimeline(t, buf.Bytes())

	var taskSpan, jobSpan, tick, counter, instant, threadName *traceEvent
	for i := range evs {
		ev := &evs[i]
		switch {
		case ev.Ph == "X" && ev.Pid == pidCluster:
			taskSpan = ev
		case ev.Ph == "X" && ev.Pid == pidJobs:
			jobSpan = ev
		case ev.Ph == "i" && ev.Name == "control tick":
			tick = ev
		case ev.Ph == "C" && ev.Name == "m3 util":
			counter = ev
		case ev.Ph == "i" && ev.Name == "sleep":
			instant = ev
		case ev.Ph == "M" && ev.Name == "thread_name" && ev.Pid == pidCluster:
			threadName = ev
		}
	}
	if taskSpan == nil {
		t.Fatal("no task span emitted")
	}
	// Complete at t=30 s with dur=20 s → span [10 s, 30 s] on machine 3.
	if taskSpan.Ts != micros(10*time.Second) || taskSpan.Dur != micros(20*time.Second) || taskSpan.Tid != 3 {
		t.Errorf("task span ts=%v dur=%v tid=%d", taskSpan.Ts, taskSpan.Dur, taskSpan.Tid)
	}
	if taskSpan.Name != "j7/reduce0" {
		t.Errorf("task span name %q", taskSpan.Name)
	}
	if jobSpan == nil || jobSpan.Ts != 0 || jobSpan.Dur != micros(80*time.Second) || jobSpan.Tid != 7 {
		t.Errorf("job span %+v", jobSpan)
	}
	if tick == nil || tick.Scope != "p" {
		t.Errorf("control tick instant %+v", tick)
	}
	if counter == nil || counter.Args["util"] != 0.5 {
		t.Errorf("util counter %+v", counter)
	}
	if instant == nil || instant.Tid != 3 || instant.Scope != "t" {
		t.Errorf("machine-state instant %+v", instant)
	}
	if threadName == nil || threadName.Args["name"] != "m3 atom" {
		t.Errorf("thread name %+v", threadName)
	}
}

// TestWriteTimelineEventCategories checks that every non-metadata trace
// record carries its originating probe kind as the Chrome trace "cat"
// field, and that metadata records carry none.
func TestWriteTimelineEventCategories(t *testing.T) {
	p := mustProbe(t, Config{SampleEvery: 1})
	p.JobSubmit(0, 7, "sort", 2, 1)
	p.Sample(10*time.Second, 3, "atom", 0.5, 100, 1, 1)
	p.Complete(30*time.Second, 7, 0, 3, 2, 40, 44, 20)
	p.ControlTick(60*time.Second, 500, 1)
	p.MachineState(70*time.Second, 3, "sleep")
	p.JobDone(80*time.Second, 7, false)

	var buf bytes.Buffer
	if err := WriteTimeline(&buf, p.Events()); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"j7/reduce0":   KindComplete.String(),
		"control tick": KindControlTick.String(),
		"fleet energy": KindControlTick.String(),
		"tasks done":   KindControlTick.String(),
		"m3 util":      KindSample.String(),
		"sleep":        KindMachineState.String(),
		"job":          KindJobDone.String(),
	}
	seen := map[string]bool{}
	for _, ev := range decodeTimeline(t, buf.Bytes()) {
		if ev.Ph == "M" {
			if ev.Cat != "" {
				t.Errorf("metadata record %q has category %q, want none", ev.Name, ev.Cat)
			}
			continue
		}
		cat, ok := want[ev.Name]
		if !ok {
			t.Errorf("unexpected trace record %q", ev.Name)
			continue
		}
		if ev.Cat != cat {
			t.Errorf("record %q category %q, want %q", ev.Name, ev.Cat, cat)
		}
		seen[ev.Name] = true
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("no trace record %q emitted", name)
		}
	}
}

func TestWriteTimelineJobDoneWithoutSubmit(t *testing.T) {
	// Submit overwritten in the ring: completion must degrade to an instant.
	evs := []Event{{At: time.Minute, Kind: KindJobDone, JobID: 4, Flag: true}}
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, evs); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decodeTimeline(t, buf.Bytes()) {
		if ev.Pid == pidJobs && ev.Ph != "M" {
			if ev.Ph != "i" || ev.Name != "job (failed)" {
				t.Errorf("orphan job done rendered as %+v", ev)
			}
			return
		}
	}
	t.Fatal("orphan job done not rendered")
}

func TestWriteTimelineClampsNegativeStart(t *testing.T) {
	// Duration longer than the timestamp: span start clamps to zero.
	evs := []Event{{At: 5 * time.Second, Kind: KindComplete, JobID: 1, TaskKind: 1, C: 10}}
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, evs); err != nil {
		t.Fatal(err)
	}
	for _, ev := range decodeTimeline(t, buf.Bytes()) {
		if ev.Ph == "X" {
			if ev.Ts != 0 || ev.Dur != micros(5*time.Second) {
				t.Errorf("clamped span ts=%v dur=%v", ev.Ts, ev.Dur)
			}
			return
		}
	}
	t.Fatal("no span emitted")
}

func TestWriteTimelineWriterError(t *testing.T) {
	err := WriteTimeline(&failWriter{n: 0}, nil)
	if err == nil || !strings.Contains(err.Error(), "probe: timeline:") {
		t.Fatalf("want wrapped writer error, got %v", err)
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Errorf("should preserve the cause: %v", err)
	}
}

// limitWriter fails once more than n bytes have been written, so errors
// surface mid-document (after the prefix succeeded).
type limitWriter struct{ n int }

func (w *limitWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("sink closed")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteTimelineMidDocumentError(t *testing.T) {
	events := make([]Event, 256)
	for i := range events {
		events[i] = Event{At: time.Duration(i) * time.Second, Kind: KindControlTick, A: float64(i)}
	}
	err := WriteTimeline(&limitWriter{n: 64}, events)
	if err == nil || !strings.Contains(err.Error(), "probe: timeline:") {
		t.Fatalf("want wrapped mid-document error, got %v", err)
	}
}

func TestSecsToDuration(t *testing.T) {
	cases := []struct {
		in   float64
		want time.Duration
	}{
		{1.5, 1500 * time.Millisecond},
		{0, 0},
		{-3, 0},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := secsToDuration(c.in); got != c.want {
			t.Errorf("secsToDuration(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if got := secsToDuration(math.Inf(1)); got <= 0 {
		t.Errorf("secsToDuration(+Inf) = %v, want positive capped value", got)
	}
	if got := secsToDuration(1e300); got <= 0 {
		t.Errorf("secsToDuration(1e300) = %v, want positive capped value", got)
	}
}

// FuzzTimelineJSON feeds hostile label strings, timestamps and float
// payloads through every label-carrying event kind and asserts the
// emitted document is always syntactically valid JSON — quotes,
// backslashes, control characters, broken UTF-8, NaN durations and
// negative timestamps included.
func FuzzTimelineJSON(f *testing.F) {
	f.Add("sort", int64(30_000_000_000), 12.5, int32(3))
	f.Add(`"],"pwn":[{"`, int64(-5), math.NaN(), int32(-1))
	f.Add("a\x00b\\\n\u2028", int64(1<<55), math.Inf(1), int32(1<<30))
	f.Add("\xff\xfe broken utf8", int64(0), -1e308, int32(0))
	f.Fuzz(func(t *testing.T, label string, atNanos int64, x float64, id int32) {
		at := time.Duration(atNanos)
		events := []Event{
			{At: at, Kind: KindSample, MachineID: id, Label: label, A: x, B: x},
			{At: at, Kind: KindComplete, JobID: id, Index: id, MachineID: id, TaskKind: 1, A: x, B: x, C: x},
			{At: at, Kind: KindMachineState, MachineID: id, Label: label},
			{At: at, Kind: KindJobSubmit, JobID: id, Label: label},
			{At: at, Kind: KindJobDone, JobID: id, Flag: x < 0},
			{At: at, Kind: KindControlTick, A: x, N: id},
		}
		var buf bytes.Buffer
		if err := WriteTimeline(&buf, events); err != nil {
			t.Fatalf("WriteTimeline: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("invalid JSON for label %q:\n%s", label, buf.Bytes())
		}
	})
}
