package probe

import (
	"math"
	"testing"

	"eant/internal/sim"
)

func mustHistogram(t testing.TB, bounds []float64) *Histogram {
	t.Helper()
	h, err := NewHistogram(bounds)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHistogramValidation(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		ok     bool
	}{
		{"empty", nil, false},
		{"single", []float64{1}, true},
		{"ascending", []float64{1, 2, 5}, true},
		{"zero-width bucket", []float64{1, 1, 2}, false},
		{"descending", []float64{5, 2}, false},
		{"negative ok if ascending", []float64{-1, 0, 1}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewHistogram(c.bounds)
			if (err == nil) != c.ok {
				t.Fatalf("NewHistogram(%v) error = %v, want ok=%v", c.bounds, err, c.ok)
			}
		})
	}
}

func TestHistogramObserveBuckets(t *testing.T) {
	h := mustHistogram(t, []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // (≤1)=0.5,1; (1,10]=1.5,10; (10,100]=99,100; overflow=101,1e9
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Count != 8 || h.Min != 0.5 || h.Max != 1e9 {
		t.Errorf("Count=%d Min=%v Max=%v", h.Count, h.Min, h.Max)
	}
}

// TestHistogramCountConservation: for any observation sequence, the bucket
// counts sum to Count, and a merge of any partition of the sequence
// conserves every bucket count exactly.
func TestHistogramCountConservation(t *testing.T) {
	rng := sim.NewRNG(7).Fork("hist-conserve")
	bounds := []float64{1, 2, 5, 10, 50}
	for trial := 0; trial < 50; trial++ {
		whole := mustHistogram(t, bounds)
		parts := []*Histogram{
			mustHistogram(t, bounds), mustHistogram(t, bounds), mustHistogram(t, bounds),
		}
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			v := rng.Uniform(0, 60)
			whole.Observe(v)
			parts[rng.Intn(len(parts))].Observe(v)
		}
		merged := mustHistogram(t, bounds)
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Count != whole.Count {
			t.Fatalf("trial %d: merged Count %d != whole %d", trial, merged.Count, whole.Count)
		}
		var sum uint64
		for i, c := range merged.Counts {
			sum += c
			if c != whole.Counts[i] {
				t.Fatalf("trial %d: bucket %d merged %d != whole %d", trial, i, c, whole.Counts[i])
			}
		}
		if sum != merged.Count {
			t.Fatalf("trial %d: bucket sum %d != Count %d", trial, sum, merged.Count)
		}
		if whole.Count > 0 && (merged.Min != whole.Min || merged.Max != whole.Max) {
			t.Fatalf("trial %d: merged extremes (%v,%v) != whole (%v,%v)",
				trial, merged.Min, merged.Max, whole.Min, whole.Max)
		}
	}
}

// TestHistogramMergeAssociativity: (a⊕b)⊕c equals a⊕(b⊕c) exactly for
// counts, extremes and quantiles; the float Sum agrees to relative
// tolerance (float addition is not associative in the last bits, which is
// why MergeReports fixes a fold order — submission order).
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := sim.NewRNG(11).Fork("hist-assoc")
	bounds := []float64{0.5, 1, 3, 9, 27}
	for trial := 0; trial < 50; trial++ {
		hs := make([]*Histogram, 3)
		for i := range hs {
			hs[i] = mustHistogram(t, bounds)
			for n := rng.Intn(100); n > 0; n-- {
				hs[i].Observe(rng.Exp(5))
			}
		}
		left := hs[0].Clone()
		if err := left.Merge(hs[1]); err != nil {
			t.Fatal(err)
		}
		if err := left.Merge(hs[2]); err != nil {
			t.Fatal(err)
		}
		bc := hs[1].Clone()
		if err := bc.Merge(hs[2]); err != nil {
			t.Fatal(err)
		}
		right := hs[0].Clone()
		if err := right.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if left.Count != right.Count {
			t.Fatalf("trial %d: count %d vs %d", trial, left.Count, right.Count)
		}
		for i := range left.Counts {
			if left.Counts[i] != right.Counts[i] {
				t.Fatalf("trial %d: bucket %d: %d vs %d", trial, i, left.Counts[i], right.Counts[i])
			}
		}
		if left.Count > 0 {
			if left.Min != right.Min || left.Max != right.Max {
				t.Fatalf("trial %d: extremes differ", trial)
			}
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
				if left.Quantile(q) != right.Quantile(q) {
					t.Fatalf("trial %d: q%v: %v vs %v", trial, q, left.Quantile(q), right.Quantile(q))
				}
			}
		}
		if diff := math.Abs(left.Sum - right.Sum); diff > 1e-9*math.Abs(left.Sum) {
			t.Fatalf("trial %d: Sum %v vs %v beyond tolerance", trial, left.Sum, right.Sum)
		}
	}
}

// TestHistogramQuantileMonotonicity: Quantile(q) is non-decreasing in q,
// bounded by [Min, Max], exact at the endpoints.
func TestHistogramQuantileMonotonicity(t *testing.T) {
	rng := sim.NewRNG(13).Fork("hist-quantile")
	bounds := []float64{1, 2, 5, 10, 20, 50}
	for trial := 0; trial < 50; trial++ {
		h := mustHistogram(t, bounds)
		n := 1 + rng.Intn(300)
		for i := 0; i < n; i++ {
			h.Observe(rng.Uniform(0, 70))
		}
		if got := h.Quantile(0); got != h.Min {
			t.Fatalf("trial %d: Quantile(0)=%v, want Min=%v", trial, got, h.Min)
		}
		if got := h.Quantile(1); got != h.Max {
			t.Fatalf("trial %d: Quantile(1)=%v, want Max=%v", trial, got, h.Max)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: Quantile(%v)=%v < Quantile(prev)=%v", trial, q, v, prev)
			}
			if v < h.Min || v > h.Max {
				t.Fatalf("trial %d: Quantile(%v)=%v outside [%v, %v]", trial, q, v, h.Min, h.Max)
			}
			prev = v
		}
	}
}

func TestHistogramQuantileKnownValues(t *testing.T) {
	h := mustHistogram(t, []float64{10, 20, 30, 40})
	// 10 observations at bucket midpoints: 5,5,15,15,15,25,25,35,35,45.
	for _, v := range []float64{5, 5, 15, 15, 15, 25, 25, 35, 35, 45} {
		h.Observe(v)
	}
	// Median rank 5 lands in (10,20] (cumulative 2+3=5): frac=3/3 → 20.
	if got := h.Quantile(0.5); got != 20 {
		t.Errorf("median = %v, want 20", got)
	}
	if got := h.Quantile(0); got != 5 {
		t.Errorf("q0 = %v, want 5", got)
	}
	if got := h.Quantile(1); got != 45 {
		t.Errorf("q1 = %v, want 45", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := mustHistogram(t, []float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistogramMergeErrors(t *testing.T) {
	a := mustHistogram(t, []float64{1, 2, 3})
	b := mustHistogram(t, []float64{1, 2})
	if err := a.Merge(b); err == nil {
		t.Error("merging different bound counts should fail")
	}
	c := mustHistogram(t, []float64{1, 2, 4})
	if err := a.Merge(c); err == nil {
		t.Error("merging different boundary values should fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil should be a no-op, got %v", err)
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	a := mustHistogram(t, []float64{1, 10})
	b := mustHistogram(t, []float64{1, 10})
	b.Observe(3)
	b.Observe(12)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count != 2 || a.Min != 3 || a.Max != 12 {
		t.Errorf("after merge into empty: Count=%d Min=%v Max=%v", a.Count, a.Min, a.Max)
	}
}
