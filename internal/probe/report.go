package probe

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is a probe's aggregate view: event accounting plus the fixed-
// boundary histograms. Reports from independent sweep runs merge with
// MergeReports, which the parallel runner applies in submission order so
// the aggregate is bit-identical however the workers interleaved.
type Report struct {
	Events  uint64 `json:"events"`
	Dropped uint64 `json:"dropped"`
	// TaskEnergyJ buckets per-task metered energy (joules), QueueWaitS
	// task queue wait (submit → start, seconds), OfferGapS per-machine
	// offer gaps (seconds).
	TaskEnergyJ *Histogram `json:"task_energy_j"`
	QueueWaitS  *Histogram `json:"queue_wait_s"`
	OfferGapS   *Histogram `json:"offer_gap_s"`
}

// Report snapshots the probe's aggregates (deep-copied; nil-safe — a nil
// probe yields the zero Report).
func (p *Probe) Report() Report {
	if p == nil {
		return Report{}
	}
	return Report{
		Events:      p.seq,
		Dropped:     p.Dropped(),
		TaskEnergyJ: p.energy.Clone(),
		QueueWaitS:  p.wait.Clone(),
		OfferGapS:   p.gap.Clone(),
	}
}

// MergeReports folds the reports left to right into one aggregate. All
// non-nil histograms must share boundaries. Callers merging sweep results
// pass reports in submission order so the (float) histogram sums
// accumulate in a reproducible order.
func MergeReports(reports ...Report) (Report, error) {
	var out Report
	for i, r := range reports {
		out.Events += r.Events
		out.Dropped += r.Dropped
		var err error
		if out.TaskEnergyJ, err = mergeHist(out.TaskEnergyJ, r.TaskEnergyJ); err != nil {
			return Report{}, fmt.Errorf("probe: merging report %d task energy: %w", i, err)
		}
		if out.QueueWaitS, err = mergeHist(out.QueueWaitS, r.QueueWaitS); err != nil {
			return Report{}, fmt.Errorf("probe: merging report %d queue wait: %w", i, err)
		}
		if out.OfferGapS, err = mergeHist(out.OfferGapS, r.OfferGapS); err != nil {
			return Report{}, fmt.Errorf("probe: merging report %d offer gap: %w", i, err)
		}
	}
	return out, nil
}

// mergeHist folds b into a, cloning so no input report is mutated.
func mergeHist(a, b *Histogram) (*Histogram, error) {
	if b == nil {
		return a, nil
	}
	if a == nil {
		return b.Clone(), nil
	}
	if err := a.Merge(b); err != nil {
		return nil, err
	}
	return a, nil
}

// WriteJSON emits the report as one indented JSON object.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("probe: report: %w", err)
	}
	return nil
}
