package probe

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func mustProbe(t testing.TB, cfg Config) *Probe {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{RingSize: -1}); err == nil {
		t.Error("negative ring size should fail")
	}
	if _, err := New(Config{EnergyBounds: []float64{2, 1}}); err == nil {
		t.Error("descending energy bounds should fail")
	}
	if _, err := New(Config{WaitBounds: []float64{}}); err == nil {
		t.Error("empty (non-nil) wait bounds should fail")
	}
	if _, err := New(Config{GapBounds: []float64{1, 1}}); err == nil {
		t.Error("zero-width gap bucket should fail")
	}
	p := mustProbe(t, Config{})
	if cap(p.ring) != DefaultRingSize {
		t.Errorf("default ring cap = %d, want %d", cap(p.ring), DefaultRingSize)
	}
}

func TestNilProbeIsNoOp(t *testing.T) {
	var p *Probe
	if p.Enabled() || p.TrailsEnabled() {
		t.Error("nil probe should be disabled")
	}
	// Every recording method must tolerate the nil receiver.
	p.Offer(0, 0, 0, 0)
	p.Draw(0, 0, 0, 0, 0, 0, false)
	p.Assign(0, 0, 0, 0, 0, "", false, 0, 0)
	p.Complete(0, 0, 0, 0, 0, 0, 0, 0)
	p.ControlTick(0, 0, 0)
	p.TrailRow(0, 0, 0, "", nil)
	p.MachineState(0, 0, "")
	p.JobSubmit(0, 0, "", 0, 0)
	p.JobDone(0, 0, false)
	p.Sample(0, 0, "", 0, 0, 0, 0)
	if p.ShouldSample() {
		t.Error("nil probe should never sample")
	}
	if p.Err() != nil || p.Recorded() != 0 || p.Dropped() != 0 || p.Events() != nil {
		t.Error("nil probe accessors should return zero values")
	}
	r := p.Report()
	if r.Events != 0 || r.TaskEnergyJ != nil {
		t.Error("nil probe Report should be empty")
	}
}

func TestRingWrapAndDropped(t *testing.T) {
	p := mustProbe(t, Config{RingSize: 4})
	for i := 0; i < 10; i++ {
		p.ControlTick(time.Duration(i)*time.Second, float64(i), i)
	}
	if p.Recorded() != 10 {
		t.Errorf("Recorded = %d, want 10", p.Recorded())
	}
	if p.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", p.Dropped())
	}
	evs := p.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	// Oldest retained first, strictly increasing sequence.
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("event %d Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestEventsNoWrap(t *testing.T) {
	p := mustProbe(t, Config{RingSize: 8})
	p.JobSubmit(0, 1, "sort", 4, 2)
	p.JobDone(time.Minute, 1, false)
	if p.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", p.Dropped())
	}
	evs := p.Events()
	if len(evs) != 2 || evs[0].Kind != KindJobSubmit || evs[1].Kind != KindJobDone {
		t.Fatalf("unexpected events %+v", evs)
	}
	// Events returns a copy: mutating it must not affect the probe.
	evs[0].JobID = 99
	if p.Events()[0].JobID != 1 {
		t.Error("Events must return a copy")
	}
}

func TestEventsExactlyFull(t *testing.T) {
	p := mustProbe(t, Config{RingSize: 3})
	for i := 0; i < 3; i++ {
		p.ControlTick(time.Duration(i), 0, i)
	}
	evs := p.Events()
	if len(evs) != 3 || p.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", len(evs), p.Dropped())
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Errorf("event %d Seq = %d", i, ev.Seq)
		}
	}
}

func TestOfferGapHistogram(t *testing.T) {
	p := mustProbe(t, Config{})
	p.Offer(10*time.Second, 2, 0, 5)
	p.Offer(13*time.Second, 2, 0, 4) // 3 s gap on machine 2
	p.Offer(20*time.Second, 0, 1, 1) // first offer on machine 0: no gap
	r := p.Report()
	if r.OfferGapS.Count != 1 {
		t.Fatalf("gap count = %d, want 1", r.OfferGapS.Count)
	}
	if r.OfferGapS.Min != 3 || r.OfferGapS.Max != 3 {
		t.Errorf("gap extremes (%v, %v), want (3, 3)", r.OfferGapS.Min, r.OfferGapS.Max)
	}
}

func TestAssignAndCompleteFeedHistograms(t *testing.T) {
	p := mustProbe(t, Config{})
	p.Assign(time.Minute, 1, 0, 2, 0, "sort", true, 30, 7.5)
	p.Complete(2*time.Minute, 1, 0, 2, 0, 100, 120, 60)
	r := p.Report()
	if r.QueueWaitS.Count != 1 || r.QueueWaitS.Min != 7.5 {
		t.Errorf("wait histogram: count=%d min=%v", r.QueueWaitS.Count, r.QueueWaitS.Min)
	}
	if r.TaskEnergyJ.Count != 1 || r.TaskEnergyJ.Min != 120 {
		t.Errorf("energy histogram: count=%d min=%v", r.TaskEnergyJ.Count, r.TaskEnergyJ.Min)
	}
}

func TestShouldSampleCadence(t *testing.T) {
	p := mustProbe(t, Config{SampleEvery: 3})
	var fired []int
	for i := 1; i <= 9; i++ {
		if p.ShouldSample() {
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	off := mustProbe(t, Config{})
	if off.ShouldSample() {
		t.Error("SampleEvery=0 should never sample")
	}
}

func TestTrailRowCopies(t *testing.T) {
	p := mustProbe(t, Config{Trails: true})
	if !p.TrailsEnabled() {
		t.Fatal("trails should be enabled")
	}
	row := []float64{1, 2, 3}
	p.TrailRow(0, 1, 0, "sort", row)
	row[0] = 99
	if got := p.Events()[0].Row[0]; got != 1 {
		t.Errorf("TrailRow must copy the slice; got %v", got)
	}
}

func TestStreamJSONL(t *testing.T) {
	var buf bytes.Buffer
	p := mustProbe(t, Config{Stream: &buf})
	p.JobSubmit(90*time.Second, 3, "grep", 8, 1)
	p.Draw(91*time.Second, 2, 3, 0, 1.5, 0.75, true)
	p.Complete(100*time.Second, 3, 0, 2, 2, 50, 55, 9)
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var submit struct {
		Seq  uint64  `json:"seq"`
		At   float64 `json:"at"`
		Kind string  `json:"kind"`
		Job  int     `json:"job"`
		App  string  `json:"app"`
		Maps int     `json:"maps"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &submit); err != nil {
		t.Fatal(err)
	}
	if submit.Kind != "job_submit" || submit.At != 90 || submit.Job != 3 || submit.App != "grep" || submit.Maps != 8 {
		t.Errorf("submit line decoded to %+v from %s", submit, lines[0])
	}
	var draw struct {
		Kind     string  `json:"kind"`
		Tau      float64 `json:"tau"`
		Weight   float64 `json:"weight"`
		Accepted bool    `json:"accepted"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &draw); err != nil {
		t.Fatal(err)
	}
	if draw.Kind != "draw" || draw.Tau != 1.5 || draw.Weight != 0.75 || !draw.Accepted {
		t.Errorf("draw line decoded to %+v from %s", draw, lines[1])
	}
	var comp struct {
		Kind       string  `json:"kind"`
		Task       string  `json:"task_kind"`
		TrueJoules float64 `json:"true_joules"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &comp); err != nil {
		t.Fatal(err)
	}
	if comp.Kind != "complete" || comp.Task != "reduce" || comp.TrueJoules != 55 {
		t.Errorf("complete line decoded to %+v from %s", comp, lines[2])
	}
	for _, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Errorf("invalid JSON line: %s", l)
		}
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestStreamErrorSticky(t *testing.T) {
	p := mustProbe(t, Config{Stream: &failWriter{n: 1}})
	p.ControlTick(0, 0, 0)
	if p.Err() != nil {
		t.Fatalf("first write should succeed: %v", p.Err())
	}
	p.ControlTick(time.Second, 1, 1)
	err := p.Err()
	if err == nil || !strings.Contains(err.Error(), "probe: stream:") {
		t.Fatalf("want wrapped sticky error, got %v", err)
	}
	// Later records must not clear or replace the error, and the ring keeps
	// recording regardless.
	p.ControlTick(2*time.Second, 2, 2)
	if p.Err() != err {
		t.Error("stream error should be sticky")
	}
	if p.Recorded() != 3 {
		t.Errorf("ring should keep recording past stream errors; Recorded=%d", p.Recorded())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindOffer: "offer", KindDraw: "draw", KindAssign: "assign",
		KindComplete: "complete", KindControlTick: "control_tick",
		KindSample: "sample", KindMachineState: "machine_state",
		KindJobSubmit: "job_submit", KindJobDone: "job_done", KindTrailRow: "trail_row",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(0).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

func TestReportDeepCopies(t *testing.T) {
	p := mustProbe(t, Config{})
	p.Complete(0, 0, 0, 0, 0, 10, 12, 1)
	r := p.Report()
	r.TaskEnergyJ.Counts[0] = 999
	r.TaskEnergyJ.Count = 999
	if got := p.Report().TaskEnergyJ.Count; got != 1 {
		t.Errorf("Report must deep-copy histograms; count now %d", got)
	}
}

func TestMergeReports(t *testing.T) {
	a := mustProbe(t, Config{RingSize: 2})
	b := mustProbe(t, Config{})
	for i := 0; i < 5; i++ {
		a.Complete(0, 0, i, 0, 0, 10, float64(10+i), 1)
	}
	b.Complete(0, 1, 0, 1, 0, 20, 200, 2)
	b.Assign(0, 1, 0, 1, 0, "sort", false, 5, 4)

	m, err := MergeReports(a.Report(), b.Report())
	if err != nil {
		t.Fatal(err)
	}
	if m.Events != a.Recorded()+b.Recorded() {
		t.Errorf("merged Events = %d, want %d", m.Events, a.Recorded()+b.Recorded())
	}
	if m.Dropped != 3 {
		t.Errorf("merged Dropped = %d, want 3", m.Dropped)
	}
	if m.TaskEnergyJ.Count != 6 || m.TaskEnergyJ.Max != 200 {
		t.Errorf("merged energy: count=%d max=%v", m.TaskEnergyJ.Count, m.TaskEnergyJ.Max)
	}
	if m.QueueWaitS.Count != 1 {
		t.Errorf("merged wait count = %d", m.QueueWaitS.Count)
	}

	// Inputs must be left untouched by the merge.
	if a.Report().TaskEnergyJ.Count != 5 {
		t.Error("MergeReports mutated an input report")
	}

	// Empty merge: zero-value Report.
	z, err := MergeReports()
	if err != nil {
		t.Fatal(err)
	}
	if z.Events != 0 {
		t.Errorf("empty merge Events = %d", z.Events)
	}
}

func TestMergeReportsBoundsMismatch(t *testing.T) {
	a := mustProbe(t, Config{EnergyBounds: []float64{1, 2}})
	b := mustProbe(t, Config{EnergyBounds: []float64{1, 3}})
	a.Complete(0, 0, 0, 0, 0, 1, 1, 1)
	b.Complete(0, 0, 0, 0, 0, 1, 1, 1)
	if _, err := MergeReports(a.Report(), b.Report()); err == nil {
		t.Error("merging reports with different bounds should fail")
	}
}

func TestReportWriteJSON(t *testing.T) {
	p := mustProbe(t, Config{})
	p.Complete(time.Minute, 1, 0, 0, 0, 10, 11, 5)
	var buf bytes.Buffer
	if err := p.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Events != 1 || decoded.TaskEnergyJ.Count != 1 {
		t.Errorf("round-tripped report %+v", decoded)
	}
}
