// Package metrics computes the evaluation-section measures of the paper:
// normalized root-mean-square error of the energy model (Fig. 4),
// throughput per watt (Figs. 1a/1c), job slowdown and fairness as inverse
// slowdown variance (Fig. 12a), and the task-assignment convergence
// detector behind the search-speed study (Fig. 11).
package metrics

import (
	"fmt"
	"math"
	"time"

	"eant/internal/mapreduce"
)

// NRMSE returns the root-mean-square error between predicted and actual,
// normalized by the mean of actual — the deviation metric the paper uses
// to validate its energy model (§IV-B).
func NRMSE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, fmt.Errorf("metrics: NRMSE over %d actual vs %d predicted", len(actual), len(predicted))
	}
	if len(actual) == 0 {
		return 0, fmt.Errorf("metrics: NRMSE of empty series")
	}
	var sse, sum float64
	for i := range actual {
		d := predicted[i] - actual[i]
		sse += d * d
		sum += actual[i]
	}
	mean := sum / float64(len(actual))
	if mean == 0 {
		return 0, fmt.Errorf("metrics: NRMSE with zero-mean actuals")
	}
	return math.Sqrt(sse/float64(len(actual))) / math.Abs(mean), nil
}

// ThroughputPerWatt returns completed tasks per second per watt — the
// energy-efficiency measure of the motivation study (§II).
func ThroughputPerWatt(tasksDone int, elapsed time.Duration, joules float64) float64 {
	if elapsed <= 0 || joules <= 0 {
		return 0
	}
	watts := joules / elapsed.Seconds()
	return float64(tasksDone) / elapsed.Seconds() / watts
}

// Mean returns the arithmetic mean; zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance; zero for fewer than two
// values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := Mean(xs)
	var sse float64
	for _, x := range xs {
		d := x - mean
		sse += d * d
	}
	return sse / float64(len(xs))
}

// Slowdowns returns each job's slowdown: actual completion time divided by
// its standalone completion time [18]. standalone maps a job's class label
// (e.g. "Wordcount-S") or app name to its alone-in-the-cluster JCT.
func Slowdowns(results []mapreduce.JobResult, standalone func(mapreduce.JobResult) time.Duration) ([]float64, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("metrics: no job results")
	}
	out := make([]float64, 0, len(results))
	for _, r := range results {
		base := standalone(r)
		if base <= 0 {
			return nil, fmt.Errorf("metrics: job %d has non-positive standalone time", r.Spec.ID)
		}
		out = append(out, float64(r.CompletionTime())/float64(base))
	}
	return out, nil
}

// Fairness is the paper's §VI-D definition: the inverse of the variance in
// job slowdowns. A perfectly fair system (identical slowdowns) has
// unbounded fairness; the cap keeps plots finite.
func Fairness(slowdowns []float64) float64 {
	const ceiling = 1000.0
	v := Variance(slowdowns)
	if v <= 1/ceiling {
		return ceiling
	}
	return 1 / v
}

// EnergySavingPercent returns how much less energy b used than a, in
// percent of a.
func EnergySavingPercent(aJoules, bJoules float64) float64 {
	if aJoules <= 0 {
		return 0
	}
	return 100 * (aJoules - bJoules) / aJoules
}

// ConvergenceTime scans per-interval assignment snapshots for the first
// interval at which job jobID's assignment is "stable" per the paper's
// §VI-C criterion: at least stableFraction (0.8) of the interval's tasks
// revisit the machines used in the previous interval. It returns the
// virtual time of that interval and true, or zero and false if the job
// never stabilizes.
func ConvergenceTime(snapshots []mapreduce.IntervalAssignments, jobID int, stableFraction float64) (time.Duration, bool) {
	var prev map[int]int
	for _, snap := range snapshots {
		cur := snap.Counts[jobID]
		if len(cur) == 0 {
			// No assignments this interval; keep the previous
			// distribution for comparison.
			continue
		}
		if prev != nil {
			total := 0
			revisit := 0
			for machineID, n := range cur {
				total += n
				if p := prev[machineID]; p > 0 {
					if n < p {
						revisit += n
					} else {
						revisit += p
					}
				}
			}
			if total > 0 && float64(revisit)/float64(total) >= stableFraction {
				return snap.At, true
			}
		}
		prev = cur
	}
	return 0, false
}

// TrailConvergence scans a pheromone-trail history for the first control
// tick at which the trail has stabilized: the mean absolute per-machine
// change from the previous snapshot stays below tolerance (relative to
// the row mean, which is 1 for E-Ant's normalized trails). rows[i] is the
// trail at times[i]; both must align. It returns the stabilization time
// and true, or zero and false.
func TrailConvergence(times []time.Duration, rows [][]float64, tolerance float64) (time.Duration, bool) {
	return TrailConvergenceOn(times, rows, nil, tolerance)
}

// TrailConvergenceOn is TrailConvergence restricted to the trail entries
// of the given machine IDs (nil means all machines) — used when the
// question is how fast the policy stabilizes for one homogeneous machine
// group rather than the whole fleet.
func TrailConvergenceOn(times []time.Duration, rows [][]float64, machineIDs []int, tolerance float64) (time.Duration, bool) {
	if len(times) != len(rows) {
		return 0, false
	}
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		if len(prev) != len(cur) || len(cur) == 0 {
			continue
		}
		ids := machineIDs
		if ids == nil {
			ids = make([]int, len(cur))
			for m := range cur {
				ids[m] = m
			}
		}
		var l1 float64
		n := 0
		for _, m := range ids {
			if m < 0 || m >= len(cur) {
				continue
			}
			l1 += math.Abs(cur[m] - prev[m])
			n++
		}
		if n > 0 && l1/float64(n) <= tolerance {
			return times[i], true
		}
	}
	return 0, false
}

// MeanConvergenceTime averages ConvergenceTime over the given job IDs,
// counting only jobs that converged; the second return is how many did.
func MeanConvergenceTime(snapshots []mapreduce.IntervalAssignments, jobIDs []int, stableFraction float64) (time.Duration, int) {
	var sum time.Duration
	n := 0
	for _, id := range jobIDs {
		if at, ok := ConvergenceTime(snapshots, id, stableFraction); ok {
			sum += at
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / time.Duration(n), n
}
