package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"eant/internal/mapreduce"
	"eant/internal/workload"
)

func TestNRMSEPerfectPrediction(t *testing.T) {
	v, err := NRMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("NRMSE of perfect prediction = %v, want 0", v)
	}
}

func TestNRMSEKnownValue(t *testing.T) {
	// actual mean 10; errors all +1 → RMSE 1 → NRMSE 0.1.
	v, err := NRMSE([]float64{10, 10, 10}, []float64{11, 11, 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.1) > 1e-12 {
		t.Errorf("NRMSE = %v, want 0.1", v)
	}
}

func TestNRMSEErrors(t *testing.T) {
	if _, err := NRMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NRMSE(nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := NRMSE([]float64{1, -1}, []float64{1, -1}); err == nil {
		t.Error("zero-mean actuals accepted")
	}
}

func TestNRMSENonNegativeProperty(t *testing.T) {
	f := func(a []float64) bool {
		if len(a) == 0 {
			return true
		}
		pred := make([]float64, len(a))
		var mean float64
		for i, x := range a {
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) {
				x = 0
			}
			a[i] = x + 1 // keep mean positive
			pred[i] = a[i] * 1.1
			mean += a[i]
		}
		if mean == 0 {
			return true
		}
		v, err := NRMSE(a, pred)
		return err == nil && v >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestThroughputPerWatt(t *testing.T) {
	// 60 tasks in 60 s at 100 W mean power (6000 J): 1 task/s / 100 W.
	got := ThroughputPerWatt(60, time.Minute, 6000)
	if math.Abs(got-0.01) > 1e-12 {
		t.Errorf("ThroughputPerWatt = %v, want 0.01", got)
	}
	if ThroughputPerWatt(10, 0, 100) != 0 {
		t.Error("zero elapsed should give 0")
	}
	if ThroughputPerWatt(10, time.Second, 0) != 0 {
		t.Error("zero energy should give 0")
	}
}

func TestMeanAndVariance(t *testing.T) {
	xs := []float64{2, 4, 6}
	if Mean(xs) != 4 {
		t.Errorf("Mean = %v, want 4", Mean(xs))
	}
	if v := Variance(xs); math.Abs(v-8.0/3.0) > 1e-12 {
		t.Errorf("Variance = %v, want 8/3", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate cases should be 0")
	}
}

func result(id int, app workload.App, submit, finish time.Duration) mapreduce.JobResult {
	return mapreduce.JobResult{
		Spec:      workload.NewJobSpec(id, app, 640, 1, submit),
		Submitted: submit,
		Finished:  finish,
	}
}

func TestSlowdowns(t *testing.T) {
	results := []mapreduce.JobResult{
		result(0, workload.Grep, 0, 100*time.Second),
		result(1, workload.Grep, 0, 200*time.Second),
	}
	sd, err := Slowdowns(results, func(mapreduce.JobResult) time.Duration { return 100 * time.Second })
	if err != nil {
		t.Fatal(err)
	}
	if sd[0] != 1 || sd[1] != 2 {
		t.Errorf("slowdowns = %v, want [1 2]", sd)
	}
}

func TestSlowdownsErrors(t *testing.T) {
	if _, err := Slowdowns(nil, nil); err == nil {
		t.Error("empty results accepted")
	}
	results := []mapreduce.JobResult{result(0, workload.Grep, 0, time.Second)}
	if _, err := Slowdowns(results, func(mapreduce.JobResult) time.Duration { return 0 }); err == nil {
		t.Error("zero standalone accepted")
	}
}

func TestFairness(t *testing.T) {
	// Identical slowdowns: maximal fairness (capped).
	if f := Fairness([]float64{2, 2, 2}); f != 1000 {
		t.Errorf("uniform fairness = %v, want cap 1000", f)
	}
	// Higher variance → lower fairness.
	low := Fairness([]float64{1, 3})
	lower := Fairness([]float64{1, 9})
	if low <= lower {
		t.Errorf("fairness not monotone in variance: %v vs %v", low, lower)
	}
}

func TestEnergySavingPercent(t *testing.T) {
	if got := EnergySavingPercent(100, 83); math.Abs(got-17) > 1e-12 {
		t.Errorf("saving = %v, want 17", got)
	}
	if got := EnergySavingPercent(0, 10); got != 0 {
		t.Errorf("zero baseline saving = %v, want 0", got)
	}
	if got := EnergySavingPercent(100, 110); got != -10 {
		t.Errorf("negative saving = %v, want -10", got)
	}
}

func snaps(at []time.Duration, counts []map[int]int, jobID int) []mapreduce.IntervalAssignments {
	out := make([]mapreduce.IntervalAssignments, len(at))
	for i := range at {
		out[i] = mapreduce.IntervalAssignments{
			At:     at[i],
			Counts: map[int]map[int]int{jobID: counts[i]},
		}
	}
	return out
}

func TestConvergenceTimeDetectsStability(t *testing.T) {
	// Interval 1: all on machine 0. Interval 2: split. Interval 3: 9/10
	// revisit interval 2's machines → stable at interval 3.
	s := snaps(
		[]time.Duration{time.Minute, 2 * time.Minute, 3 * time.Minute},
		[]map[int]int{
			{0: 10},
			{1: 5, 2: 5},
			{1: 5, 2: 4, 3: 1},
		}, 7)
	at, ok := ConvergenceTime(s, 7, 0.8)
	if !ok {
		t.Fatal("stable assignment not detected")
	}
	if at != 3*time.Minute {
		t.Errorf("convergence at %v, want 3m", at)
	}
}

func TestConvergenceTimeNeverStable(t *testing.T) {
	s := snaps(
		[]time.Duration{time.Minute, 2 * time.Minute, 3 * time.Minute},
		[]map[int]int{
			{0: 10},
			{1: 10},
			{2: 10},
		}, 7)
	if _, ok := ConvergenceTime(s, 7, 0.8); ok {
		t.Error("oscillating assignment reported stable")
	}
}

func TestConvergenceTimeSkipsEmptyIntervals(t *testing.T) {
	s := []mapreduce.IntervalAssignments{
		{At: time.Minute, Counts: map[int]map[int]int{7: {0: 10}}},
		{At: 2 * time.Minute, Counts: map[int]map[int]int{}},
		{At: 3 * time.Minute, Counts: map[int]map[int]int{7: {0: 10}}},
	}
	at, ok := ConvergenceTime(s, 7, 0.8)
	if !ok || at != 3*time.Minute {
		t.Errorf("convergence = %v,%v; want 3m,true", at, ok)
	}
}

func TestMeanConvergenceTime(t *testing.T) {
	s := []mapreduce.IntervalAssignments{
		{At: time.Minute, Counts: map[int]map[int]int{1: {0: 10}, 2: {0: 10}}},
		{At: 2 * time.Minute, Counts: map[int]map[int]int{1: {0: 10}, 2: {5: 10}}},
		{At: 3 * time.Minute, Counts: map[int]map[int]int{2: {5: 10}}},
	}
	mean, n := MeanConvergenceTime(s, []int{1, 2, 99}, 0.8)
	if n != 2 {
		t.Fatalf("converged count = %d, want 2", n)
	}
	// Job 1 converges at 2m, job 2 at 3m → mean 2.5m.
	if mean != 150*time.Second {
		t.Errorf("mean convergence = %v, want 2m30s", mean)
	}
}
