package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"eant/internal/mapreduce"
	"eant/internal/workload"
)

// TestNRMSEErrorMessages pins the exact wording callers and logs match on.
func TestNRMSEErrorMessages(t *testing.T) {
	cases := []struct {
		name      string
		actual    []float64
		predicted []float64
		contains  string
	}{
		{"length mismatch", []float64{1, 2, 3}, []float64{1}, "NRMSE over 3 actual vs 1 predicted"},
		{"both empty", nil, nil, "NRMSE of empty series"},
		{"zero-mean actuals", []float64{5, -5}, []float64{5, -5}, "NRMSE with zero-mean actuals"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NRMSE(c.actual, c.predicted)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), c.contains) {
				t.Errorf("error %q does not contain %q", err, c.contains)
			}
		})
	}
}

// TestNRMSENegativeMeanActuals: normalization uses |mean|, so an
// all-negative series yields the same (positive) NRMSE as its mirror.
func TestNRMSENegativeMeanActuals(t *testing.T) {
	pos, err := NRMSE([]float64{2, 4}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := NRMSE([]float64{-2, -4}, []float64{-3, -3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pos-neg) > 1e-15 || neg <= 0 {
		t.Errorf("NRMSE mirror: %v vs %v", pos, neg)
	}
}

func TestSlowdownsErrorMessages(t *testing.T) {
	if _, err := Slowdowns(nil, nil); err == nil || !strings.Contains(err.Error(), "metrics: no job results") {
		t.Errorf("empty results: %v", err)
	}
	results := []mapreduce.JobResult{{
		Spec:      workload.NewJobSpec(42, workload.Grep, 640, 1, 0),
		Submitted: 0,
		Finished:  time.Second,
	}}
	_, err := Slowdowns(results, func(mapreduce.JobResult) time.Duration { return -time.Second })
	if err == nil || !strings.Contains(err.Error(), "job 42 has non-positive standalone time") {
		t.Errorf("negative standalone: %v", err)
	}
}

// TestThroughputPerWattGuards tables the degenerate inputs that must all
// yield zero rather than Inf or NaN.
func TestThroughputPerWattGuards(t *testing.T) {
	cases := []struct {
		name    string
		tasks   int
		elapsed time.Duration
		joules  float64
	}{
		{"zero elapsed", 10, 0, 100},
		{"negative elapsed", 10, -time.Second, 100},
		{"zero joules", 10, time.Second, 0},
		{"negative joules", 10, time.Second, -5},
		{"all zero", 0, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := ThroughputPerWatt(c.tasks, c.elapsed, c.joules); got != 0 {
				t.Errorf("ThroughputPerWatt = %v, want 0", got)
			}
		})
	}
}

// TestTrailConvergenceOnDegenerateInputs tables the inputs that must
// report "never converged" instead of indexing out of bounds.
func TestTrailConvergenceOnDegenerateInputs(t *testing.T) {
	flat := [][]float64{{1, 1}, {1, 1}}
	cases := []struct {
		name  string
		times []time.Duration
		rows  [][]float64
		ids   []int
	}{
		{"times/rows length mismatch", []time.Duration{1}, flat, nil},
		{"no snapshots", nil, nil, nil},
		{"single snapshot", []time.Duration{1}, [][]float64{{1, 1}}, nil},
		{"empty rows", []time.Duration{1, 2}, [][]float64{{}, {}}, nil},
		{"row width change", []time.Duration{1, 2}, [][]float64{{1}, {1, 1}}, nil},
		{"all machine IDs out of range", []time.Duration{1, 2}, flat, []int{-1, 7}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if at, ok := TrailConvergenceOn(c.times, c.rows, c.ids, 0.1); ok || at != 0 {
				t.Errorf("got (%v, %v), want (0, false)", at, ok)
			}
		})
	}
	// Sanity: the same flat history converges when the inputs align.
	if _, ok := TrailConvergenceOn([]time.Duration{1, 2}, flat, nil, 0.1); !ok {
		t.Error("aligned flat history should converge")
	}
	// Partially valid machine IDs: out-of-range entries are skipped, the
	// in-range one still drives convergence.
	if _, ok := TrailConvergenceOn([]time.Duration{1, 2}, flat, []int{-1, 0, 7}, 0.1); !ok {
		t.Error("in-range machine ID should still converge")
	}
}

func TestMeanConvergenceTimeNoJobsConverge(t *testing.T) {
	snaps := []mapreduce.IntervalAssignments{
		{At: time.Minute, Counts: map[int]map[int]int{0: {0: 5}}},
		{At: 2 * time.Minute, Counts: map[int]map[int]int{0: {1: 5}}},
	}
	// Job 0 flips machines (never stable); job 9 never appears.
	mean, n := MeanConvergenceTime(snaps, []int{0, 9}, 0.8)
	if mean != 0 || n != 0 {
		t.Errorf("got (%v, %d), want (0, 0)", mean, n)
	}
	if mean, n = MeanConvergenceTime(snaps, nil, 0.8); mean != 0 || n != 0 {
		t.Errorf("empty job list: got (%v, %d), want (0, 0)", mean, n)
	}
}

func TestEnergySavingPercentGuards(t *testing.T) {
	if got := EnergySavingPercent(0, 50); got != 0 {
		t.Errorf("zero baseline: %v, want 0", got)
	}
	if got := EnergySavingPercent(-10, 5); got != 0 {
		t.Errorf("negative baseline: %v, want 0", got)
	}
}

func TestFairnessDegenerate(t *testing.T) {
	if got := Fairness(nil); got != 1000 {
		t.Errorf("no slowdowns: %v, want ceiling", got)
	}
	if got := Fairness([]float64{3}); got != 1000 {
		t.Errorf("single slowdown: %v, want ceiling", got)
	}
}
