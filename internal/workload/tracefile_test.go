package workload

import (
	"strings"
	"testing"
	"time"

	"eant/internal/sim"
)

func TestTraceRoundTrip(t *testing.T) {
	orig, err := GenerateMSD(MSDConfig{Jobs: 30, Scale: 64, MeanInterarrival: 20 * time.Second}, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, orig); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	back, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round-tripped %d jobs, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("job %d mutated: %+v vs %+v", i, back[i], orig[i])
		}
	}
}

func TestTraceRoundTripUnclassified(t *testing.T) {
	orig := []JobSpec{NewJobSpec(3, Terasort, 777, 2, 90*time.Second)}
	var sb strings.Builder
	if err := WriteTrace(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back[0] != orig[0] {
		t.Fatalf("unclassified job mutated: %+v vs %+v", back[0], orig[0])
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "id,app,class,input_mb,reduces,submit_ns\n",
		"bad id":       "id,app,class,input_mb,num_reduces,submit_ns\nx,Grep,S,64,1,0\n",
		"bad app":      "id,app,class,input_mb,num_reduces,submit_ns\n1,Sort,S,64,1,0\n",
		"bad class":    "id,app,class,input_mb,num_reduces,submit_ns\n1,Grep,Q,64,1,0\n",
		"bad input":    "id,app,class,input_mb,num_reduces,submit_ns\n1,Grep,S,abc,1,0\n",
		"bad reduces":  "id,app,class,input_mb,num_reduces,submit_ns\n1,Grep,S,64,x,0\n",
		"bad submit":   "id,app,class,input_mb,num_reduces,submit_ns\n1,Grep,S,64,1,x\n",
		"neg input":    "id,app,class,input_mb,num_reduces,submit_ns\n1,Grep,S,-5,1,0\n",
		"wrong fields": "id,app,class,input_mb,num_reduces,submit_ns\n1,Grep,S,64\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTraceHeaderStable(t *testing.T) {
	var sb strings.Builder
	if err := WriteTrace(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "id,app,class,input_mb,num_reduces,submit_ns" {
		t.Errorf("header = %q", got)
	}
}
