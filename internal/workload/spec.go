package workload

import (
	"fmt"
	"time"
)

// SizeClass buckets jobs by input size as in Table III.
type SizeClass int

// Size classes of the MSD workload. Unclassified marks ad-hoc jobs outside
// the MSD taxonomy.
const (
	Unclassified SizeClass = iota
	Small
	Medium
	Large
)

// String returns the Table III label.
func (c SizeClass) String() string {
	switch c {
	case Small:
		return "S"
	case Medium:
		return "M"
	case Large:
		return "L"
	default:
		return "-"
	}
}

// JobSpec describes one Hadoop job before execution: what to run, on how
// much data, split into how many tasks, submitted when.
type JobSpec struct {
	ID         int
	App        App
	Class      SizeClass
	InputMB    float64
	NumMaps    int
	NumReduces int
	Submit     time.Duration
}

// NewJobSpec builds a job with one map per 64 MB block and the given reduce
// count. Reduce count 0 is valid (map-only job).
func NewJobSpec(id int, app App, inputMB float64, numReduces int, submit time.Duration) JobSpec {
	return JobSpec{
		ID:         id,
		App:        app,
		InputMB:    inputMB,
		NumMaps:    MapsForInput(inputMB),
		NumReduces: numReduces,
		Submit:     submit,
	}
}

// Name returns a human-readable job label, e.g. "Wordcount-S#12".
func (j JobSpec) Name() string {
	if j.Class == Unclassified {
		return fmt.Sprintf("%s#%d", j.App, j.ID)
	}
	return fmt.Sprintf("%s-%s#%d", j.App, j.Class, j.ID)
}

// ClassLabel returns the "App-Class" string used by Fig. 8c's x-axis,
// e.g. "Wordcount-S".
func (j JobSpec) ClassLabel() string {
	return fmt.Sprintf("%s-%s", j.App, j.Class)
}

// Validate reports the first structural problem with the spec.
func (j JobSpec) Validate() error {
	switch {
	case j.App < Wordcount || j.App > Terasort:
		return fmt.Errorf("workload: job %d has unknown app %d", j.ID, j.App)
	case j.InputMB <= 0:
		return fmt.Errorf("workload: job %d has input %.1f MB", j.ID, j.InputMB)
	case j.NumMaps <= 0:
		return fmt.Errorf("workload: job %d has %d map tasks", j.ID, j.NumMaps)
	case j.NumReduces < 0:
		return fmt.Errorf("workload: job %d has %d reduce tasks", j.ID, j.NumReduces)
	case j.Submit < 0:
		return fmt.Errorf("workload: job %d submitted at negative time", j.ID)
	}
	return nil
}

// MapInputMB returns the input size of one map task: whole blocks except a
// possibly-short tail block.
func (j JobSpec) MapInputMB(taskIndex int) float64 {
	if taskIndex < 0 || taskIndex >= j.NumMaps {
		panic(fmt.Sprintf("workload: job %d has no map task %d", j.ID, taskIndex))
	}
	if taskIndex == j.NumMaps-1 {
		tail := j.InputMB - BlockMB*float64(j.NumMaps-1)
		if tail > 0 {
			return tail
		}
	}
	return BlockMB
}

// ShuffleMBPerReduce returns the shuffle volume each reduce task pulls,
// assuming an even partition of map output.
func (j JobSpec) ShuffleMBPerReduce() float64 {
	if j.NumReduces == 0 {
		return 0
	}
	return j.InputMB * ProfileOf(j.App).ShuffleRatio / float64(j.NumReduces)
}
