package workload

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Trace I/O: job specs serialize to a small CSV dialect so externally
// collected workloads (e.g. SWIM-style production traces) can be replayed
// through the simulator, and generated workloads (the MSD instances) can
// be archived alongside results.
//
// Columns: id, app, class, input_mb, num_reduces, submit_ns.
// The map count is derived from input_mb (one per 64 MB block), matching
// NewJobSpec.

// traceHeader is the first CSV row.
var traceHeader = []string{"id", "app", "class", "input_mb", "num_reduces", "submit_ns"}

// WriteTrace serializes jobs as CSV.
func WriteTrace(w io.Writer, jobs []JobSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return fmt.Errorf("workload: write trace header: %w", err)
	}
	for _, j := range jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			j.App.String(),
			j.Class.String(),
			strconv.FormatFloat(j.InputMB, 'f', -1, 64),
			strconv.Itoa(j.NumReduces),
			strconv.FormatInt(j.Submit.Nanoseconds(), 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: write trace row %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV trace back into validated job specs.
func ReadTrace(r io.Reader) ([]JobSpec, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = len(traceHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	for i, col := range traceHeader {
		if rows[0][i] != col {
			return nil, fmt.Errorf("workload: trace header column %d is %q, want %q", i, rows[0][i], col)
		}
	}
	jobs := make([]JobSpec, 0, len(rows)-1)
	for n, row := range rows[1:] {
		line := n + 2
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad id %q", line, row[0])
		}
		app, err := ParseApp(row[1])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		class, err := parseClass(row[2])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		inputMB, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad input_mb %q", line, row[3])
		}
		reduces, err := strconv.Atoi(row[4])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad num_reduces %q", line, row[4])
		}
		submitNS, err := strconv.ParseInt(row[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad submit_ns %q", line, row[5])
		}
		j := NewJobSpec(id, app, inputMB, reduces, time.Duration(submitNS))
		j.Class = class
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// parseClass resolves a size-class label as printed by SizeClass.String.
func parseClass(s string) (SizeClass, error) {
	switch s {
	case "S":
		return Small, nil
	case "M":
		return Medium, nil
	case "L":
		return Large, nil
	case "-":
		return Unclassified, nil
	default:
		return 0, fmt.Errorf("workload: unknown size class %q", s)
	}
}
