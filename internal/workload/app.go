// Package workload defines the benchmark applications the paper evaluates
// (PUMA Wordcount, Grep, Terasort), their per-task resource demand
// profiles, job specifications, and the Microsoft-derived (MSD) synthetic
// workload of §V-C / Table III.
package workload

import (
	"fmt"
	"math"
)

// App identifies a PUMA benchmark application.
type App int

// The three applications of the paper's evaluation.
const (
	Wordcount App = iota + 1
	Grep
	Terasort
)

// Apps lists every application in stable order.
func Apps() []App { return []App{Wordcount, Grep, Terasort} }

// String returns the PUMA benchmark name.
func (a App) String() string {
	switch a {
	case Wordcount:
		return "Wordcount"
	case Grep:
		return "Grep"
	case Terasort:
		return "Terasort"
	default:
		return fmt.Sprintf("App(%d)", int(a)) //eant:alloc-ok diagnostic fallback for out-of-range values, unreachable for real apps
	}
}

// ParseApp resolves a benchmark name (case-sensitive, as printed by String).
func ParseApp(s string) (App, error) {
	for _, a := range Apps() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown application %q", s)
}

// Profile is the per-task resource demand vector of one application,
// normalized per MB of input and per reference core (the desktop's 3.4 GHz
// i7 core). These vectors are the only channel through which workload
// heterogeneity enters the simulator, mirroring the paper's observation
// (Fig. 1d) that Wordcount is map/CPU-intensive while Grep and Terasort
// are shuffle/reduce/IO-intensive.
type Profile struct {
	App App

	// MapCPUPerMB is core-seconds of map computation per input MB.
	MapCPUPerMB float64
	// MapIOPerMB is MB of local-disk traffic (read + spill) per input MB.
	MapIOPerMB float64
	// ShuffleRatio is map-output bytes per input byte; it sizes the
	// network transfer between map and reduce.
	ShuffleRatio float64
	// ReduceCPUPerMB is core-seconds of reduce computation per shuffled MB.
	ReduceCPUPerMB float64
	// ReduceIOPerMB is MB of local-disk traffic (merge + write) per
	// shuffled MB.
	ReduceIOPerMB float64
}

// Calibration (see DESIGN.md §5): block-sized (64 MB) map tasks land at
//   - Wordcount ≈ 19 core-s of map CPU → map-dominated completion time and
//     the lowest per-machine saturation rate (Fig. 1c peak ≈ 20 task/min),
//   - Grep: cheap CPU, scan-amplified IO → intermediate saturation rate,
//   - Terasort: full-volume shuffle (ratio 1.0) → reduce/shuffle-dominated
//     jobs with the highest map-side saturation rate.
var profiles = map[App]Profile{
	Wordcount: {
		App:            Wordcount,
		MapCPUPerMB:    0.30,
		MapIOPerMB:     1.2,
		ShuffleRatio:   0.05,
		ReduceCPUPerMB: 0.20,
		ReduceIOPerMB:  2.0,
	},
	Grep: {
		App:            Grep,
		MapCPUPerMB:    0.02,
		MapIOPerMB:     2.5,
		ShuffleRatio:   0.35,
		ReduceCPUPerMB: 0.01,
		ReduceIOPerMB:  1.5,
	},
	Terasort: {
		App:            Terasort,
		MapCPUPerMB:    0.02,
		MapIOPerMB:     1.8,
		ShuffleRatio:   1.0,
		ReduceCPUPerMB: 0.03,
		ReduceIOPerMB:  2.2,
	},
}

// ProfileOf returns the demand profile of app.
func ProfileOf(app App) Profile {
	p, ok := profiles[app]
	if !ok {
		panic(fmt.Sprintf("workload: no profile for %v", app))
	}
	return p
}

// CPUBound reports whether the application's map phase is CPU-dominated on
// the reference machine (used to classify "homogeneous jobs" for the
// job-level exchange strategy).
func (p Profile) CPUBound() bool {
	// Reference disk bandwidth share ≈ 30 MB/s per slot: compare CPU
	// seconds to IO seconds for one MB.
	return p.MapCPUPerMB > p.MapIOPerMB/30
}

// BlockMB is the HDFS block size of the paper's setup (§V-B).
const BlockMB = 64.0

// MapsForInput returns the number of map tasks for the given input size:
// one per HDFS block.
func MapsForInput(inputMB float64) int {
	if inputMB <= 0 {
		return 0
	}
	return int(math.Ceil(inputMB / BlockMB))
}
