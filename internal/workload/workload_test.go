package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"eant/internal/sim"
)

func TestAppString(t *testing.T) {
	tests := []struct {
		app  App
		want string
	}{
		{Wordcount, "Wordcount"},
		{Grep, "Grep"},
		{Terasort, "Terasort"},
		{App(99), "App(99)"},
	}
	for _, tt := range tests {
		if got := tt.app.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.app), got, tt.want)
		}
	}
}

func TestParseAppRoundTrip(t *testing.T) {
	for _, a := range Apps() {
		got, err := ParseApp(a.String())
		if err != nil {
			t.Fatalf("ParseApp(%q): %v", a.String(), err)
		}
		if got != a {
			t.Errorf("ParseApp(%q) = %v, want %v", a.String(), got, a)
		}
	}
	if _, err := ParseApp("Sort"); err == nil {
		t.Error("ParseApp accepted unknown app")
	}
}

func TestProfilesMatchPaperCharacterization(t *testing.T) {
	wc := ProfileOf(Wordcount)
	grep := ProfileOf(Grep)
	ts := ProfileOf(Terasort)

	// Fig. 1d: Wordcount is map/CPU-intensive.
	if !wc.CPUBound() {
		t.Error("Wordcount profile should be CPU-bound")
	}
	if grep.CPUBound() || ts.CPUBound() {
		t.Error("Grep and Terasort profiles should be IO-bound")
	}
	// Terasort shuffles its full input volume.
	if ts.ShuffleRatio < 0.9 {
		t.Errorf("Terasort shuffle ratio = %v, want ≈ 1", ts.ShuffleRatio)
	}
	if wc.ShuffleRatio >= grep.ShuffleRatio || grep.ShuffleRatio >= ts.ShuffleRatio {
		t.Error("shuffle ratios should order Wordcount < Grep < Terasort")
	}
}

func TestProfileOfUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ProfileOf(unknown) did not panic")
		}
	}()
	ProfileOf(App(42))
}

func TestMapsForInput(t *testing.T) {
	tests := []struct {
		inputMB float64
		want    int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {64, 1}, {65, 2}, {6400, 100}, {50 * 1024, 800},
	}
	for _, tt := range tests {
		if got := MapsForInput(tt.inputMB); got != tt.want {
			t.Errorf("MapsForInput(%v) = %d, want %d", tt.inputMB, got, tt.want)
		}
	}
}

func TestJobSpecValidate(t *testing.T) {
	good := NewJobSpec(1, Grep, 640, 4, time.Minute)
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []JobSpec{
		{ID: 1, App: App(9), InputMB: 64, NumMaps: 1},
		{ID: 1, App: Grep, InputMB: 0, NumMaps: 1},
		{ID: 1, App: Grep, InputMB: 64, NumMaps: 0},
		{ID: 1, App: Grep, InputMB: 64, NumMaps: 1, NumReduces: -1},
		{ID: 1, App: Grep, InputMB: 64, NumMaps: 1, Submit: -time.Second},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestMapInputMBTailBlock(t *testing.T) {
	j := NewJobSpec(0, Wordcount, 100, 1, 0) // 2 maps: 64 + 36
	if got := j.MapInputMB(0); got != 64 {
		t.Errorf("first block = %v MB, want 64", got)
	}
	if got := j.MapInputMB(1); math.Abs(got-36) > 1e-9 {
		t.Errorf("tail block = %v MB, want 36", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range map index did not panic")
		}
	}()
	j.MapInputMB(2)
}

func TestMapInputConservationProperty(t *testing.T) {
	f := func(raw float64) bool {
		inputMB := math.Abs(math.Mod(raw, 1e6)) + 1
		j := NewJobSpec(0, Terasort, inputMB, 1, 0)
		var total float64
		for i := 0; i < j.NumMaps; i++ {
			total += j.MapInputMB(i)
		}
		return math.Abs(total-inputMB) < 1e-6*inputMB+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleMBPerReduce(t *testing.T) {
	j := NewJobSpec(0, Terasort, 6400, 10, 0) // ratio 1.0
	if got := j.ShuffleMBPerReduce(); math.Abs(got-640) > 1e-9 {
		t.Errorf("shuffle per reduce = %v, want 640", got)
	}
	mapOnly := NewJobSpec(0, Grep, 640, 0, 0)
	if got := mapOnly.ShuffleMBPerReduce(); got != 0 {
		t.Errorf("map-only job shuffle = %v, want 0", got)
	}
}

func TestJobSpecNames(t *testing.T) {
	j := NewJobSpec(3, Wordcount, 640, 2, 0)
	if got := j.Name(); got != "Wordcount#3" {
		t.Errorf("Name() = %q", got)
	}
	j.Class = Small
	if got := j.Name(); got != "Wordcount-S#3" {
		t.Errorf("Name() = %q", got)
	}
	if got := j.ClassLabel(); got != "Wordcount-S" {
		t.Errorf("ClassLabel() = %q", got)
	}
}

func TestGenerateMSDCountsAndClasses(t *testing.T) {
	cfg := DefaultMSD()
	jobs, err := GenerateMSD(cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatalf("GenerateMSD: %v", err)
	}
	if len(jobs) != 87 {
		t.Fatalf("generated %d jobs, want 87", len(jobs))
	}
	counts := ClassCounts(jobs)
	// Renormalized Table III shares over 87 jobs: ≈ 50 S, 25 M, 12 L.
	if counts[Small] != 50 || counts[Medium] != 25 || counts[Large] != 12 {
		t.Errorf("class counts = S:%d M:%d L:%d, want 50/25/12",
			counts[Small], counts[Medium], counts[Large])
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("generated invalid job: %v", err)
		}
	}
}

func TestGenerateMSDSizeBounds(t *testing.T) {
	jobs, err := GenerateMSD(MSDConfig{Jobs: 200, Scale: 1}, sim.NewRNG(2))
	if err != nil {
		t.Fatalf("GenerateMSD: %v", err)
	}
	bounds := map[SizeClass][2]float64{
		Small:  {1 * 1024, 100 * 1024},
		Medium: {100 * 1024, 1024 * 1024},
		Large:  {1024 * 1024, 10 * 1024 * 1024},
	}
	for _, j := range jobs {
		b := bounds[j.Class]
		if j.InputMB < b[0] || j.InputMB > b[1] {
			t.Errorf("job %s input %.0f MB outside class bounds %v", j.Name(), j.InputMB, b)
		}
	}
}

func TestGenerateMSDScaleShrinksJobs(t *testing.T) {
	full, err := GenerateMSD(MSDConfig{Jobs: 60, Scale: 1}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := GenerateMSD(MSDConfig{Jobs: 60, Scale: 32}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	var fullMB, scaledMB float64
	for i := range full {
		fullMB += full[i].InputMB
		scaledMB += scaled[i].InputMB
	}
	if scaledMB >= fullMB/16 {
		t.Errorf("scale 32 total %.0f MB not ≪ full total %.0f MB", scaledMB, fullMB)
	}
}

func TestGenerateMSDDeterministic(t *testing.T) {
	a, _ := GenerateMSD(DefaultMSD(), sim.NewRNG(7))
	b, _ := GenerateMSD(DefaultMSD(), sim.NewRNG(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs across identically-seeded runs", i)
		}
	}
}

func TestGenerateMSDArrivalsMonotonic(t *testing.T) {
	jobs, _ := GenerateMSD(DefaultMSD(), sim.NewRNG(9))
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit < jobs[i-1].Submit {
			t.Fatal("arrivals not monotone")
		}
	}
}

func TestGenerateMSDValidation(t *testing.T) {
	for _, cfg := range []MSDConfig{
		{Jobs: 0, Scale: 1},
		{Jobs: 10, Scale: 0},
		{Jobs: 10, Scale: 1, MeanInterarrival: -time.Second},
	} {
		if _, err := GenerateMSD(cfg, sim.NewRNG(1)); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestGenerateMSDAppRestriction(t *testing.T) {
	jobs, err := GenerateMSD(MSDConfig{Jobs: 30, Scale: 1, Apps: []App{Grep}}, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.App != Grep {
			t.Fatalf("job %s is not Grep", j.Name())
		}
	}
}

func TestBatch(t *testing.T) {
	jobs := Batch(Wordcount, 5, 640, 2, time.Minute)
	if len(jobs) != 5 {
		t.Fatalf("Batch made %d jobs, want 5", len(jobs))
	}
	for i, j := range jobs {
		if j.Submit != time.Duration(i)*time.Minute {
			t.Errorf("job %d submit = %v", i, j.Submit)
		}
		if j.NumMaps != 10 {
			t.Errorf("job %d maps = %d, want 10", i, j.NumMaps)
		}
	}
}
