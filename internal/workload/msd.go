package workload

import (
	"fmt"
	"math"
	"time"

	"eant/internal/sim"
)

// Table III class bounds (paper §V-C). Shares are of the *original*
// Microsoft distribution; the remaining 30 % (largest 10 %, smallest 20 %)
// were eliminated when the authors scaled the workload down to their
// cluster, so Generate renormalizes the shares over the surviving classes.
type classBounds struct {
	class      SizeClass
	share      float64
	minInputMB float64
	maxInputMB float64
	minReduces int
	maxReduces int
}

var msdClasses = []classBounds{
	{Small, 0.40, 1 * 1024, 100 * 1024, 4, 128},
	{Medium, 0.20, 100 * 1024, 1024 * 1024, 128, 256},
	{Large, 0.10, 1024 * 1024, 10 * 1024 * 1024, 256, 1024},
}

// MSDConfig parameterizes the Microsoft-derived synthetic workload.
type MSDConfig struct {
	// Jobs is the total job count. The paper uses 87.
	Jobs int
	// Scale divides every job's input size (and reduce count,
	// proportionally), letting tests and benches run the same
	// distributional shape at laptop scale. 1.0 reproduces the paper's
	// sizes.
	Scale float64
	// MeanInterarrival is the mean of the exponential job inter-arrival
	// time. Zero submits every job at time zero.
	MeanInterarrival time.Duration
	// Apps optionally restricts the application mix; nil means the full
	// {Wordcount, Grep, Terasort} rotation.
	Apps []App
}

// DefaultMSD is the paper's configuration: 87 jobs at full scale, arriving
// with a 90 s mean spacing (the paper does not publish its submission
// schedule; 90 s keeps the cluster continuously backlogged as in §VI).
func DefaultMSD() MSDConfig {
	return MSDConfig{Jobs: 87, Scale: 1, MeanInterarrival: 90 * time.Second}
}

// Validate reports the first problem with the configuration.
func (c MSDConfig) Validate() error {
	if c.Jobs <= 0 {
		return fmt.Errorf("workload: MSD with %d jobs", c.Jobs)
	}
	if c.Scale <= 0 {
		return fmt.Errorf("workload: MSD with scale %v", c.Scale)
	}
	if c.MeanInterarrival < 0 {
		return fmt.Errorf("workload: MSD with negative interarrival")
	}
	return nil
}

// GenerateMSD synthesizes the MSD job list: class counts follow the
// renormalized Table III shares, input sizes are log-uniform within class
// bounds, applications rotate round-robin (shuffled), and arrivals follow a
// Poisson process. Deterministic for a given RNG stream.
func GenerateMSD(cfg MSDConfig, rng *sim.RNG) ([]JobSpec, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	apps := cfg.Apps
	if len(apps) == 0 {
		apps = Apps()
	}

	var shareTotal float64
	for _, cb := range msdClasses {
		shareTotal += cb.share
	}

	// Integer class counts by largest remainder so they always sum to Jobs.
	counts := make([]int, len(msdClasses))
	remainders := make([]float64, len(msdClasses))
	assigned := 0
	for i, cb := range msdClasses {
		exact := float64(cfg.Jobs) * cb.share / shareTotal
		counts[i] = int(exact)
		remainders[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < cfg.Jobs {
		best := 0
		for i := range remainders {
			if remainders[i] > remainders[best] {
				best = i
			}
		}
		counts[best]++
		remainders[best] = -1
		assigned++
	}

	var jobs []JobSpec
	id := 0
	for ci, cb := range msdClasses {
		for k := 0; k < counts[ci]; k++ {
			inputMB := logUniform(rng, cb.minInputMB, cb.maxInputMB) / cfg.Scale
			if inputMB < BlockMB {
				inputMB = BlockMB
			}
			app := apps[id%len(apps)]
			j := NewJobSpec(id, app, inputMB, 0, 0)
			// Table III ties reduce counts to job size (≈ maps/12 across
			// all three classes). Deriving reduces from the scaled map
			// count keeps per-reduce shuffle volume block-like at any
			// scale — scaling shrinks task *counts*, never balloons task
			// *sizes* — while clamping to the class's published range.
			j.NumReduces = clampInt(j.NumMaps/12, 1, cb.maxReduces)
			j.Class = cb.class
			jobs = append(jobs, j)
			id++
		}
	}

	// Shuffle so arrival order interleaves classes and apps, then lay a
	// Poisson arrival process over the shuffled order.
	rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	var at time.Duration
	for i := range jobs {
		jobs[i].ID = i
		jobs[i].Submit = at
		if cfg.MeanInterarrival > 0 {
			at += time.Duration(rng.Exp(float64(cfg.MeanInterarrival)))
		}
	}
	return jobs, nil
}

// clampInt bounds v to [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// logUniform samples log-uniformly in [lo, hi].
func logUniform(rng *sim.RNG, lo, hi float64) float64 {
	if lo >= hi {
		return lo
	}
	return math.Exp(rng.Uniform(math.Log(lo), math.Log(hi)))
}

// Batch builds n identical jobs of one application submitted with fixed
// spacing — the building block of the motivation and sensitivity studies.
func Batch(app App, n int, inputMB float64, reduces int, spacing time.Duration) []JobSpec {
	jobs := make([]JobSpec, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, NewJobSpec(i, app, inputMB, reduces, time.Duration(i)*spacing))
	}
	return jobs
}

// ClassCounts tallies jobs per size class, for Table III reporting.
func ClassCounts(jobs []JobSpec) map[SizeClass]int {
	out := make(map[SizeClass]int)
	for _, j := range jobs {
		out[j.Class]++
	}
	return out
}
