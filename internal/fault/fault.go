// Package fault injects machine crashes and task-attempt failures into a
// simulated cluster run, deterministically from the run's seeded RNG tree.
//
// Two failure sources are modeled, matching how Hadoop 1.x clusters fail in
// practice:
//
//   - Whole-machine crashes: each machine alternates between an up phase
//     (exponential with mean MachineMTBF) and a down phase (exponential with
//     mean MachineMTTR). A crash kills every attempt running on the machine
//     and loses any completed map output stored there; recovery returns the
//     machine to the slot pool. Scripted Scenario events can pin crashes and
//     recoveries to exact instants for reproducible test cases.
//   - Task-attempt failures: each attempt independently fails with
//     probability TaskFailProb, dying partway through its service time.
//     The driver retries a failed task up to MaxAttempts times before
//     failing the whole job (Hadoop's mapred.map.max.attempts), and
//     blacklists machines that accumulate too many failures.
//
// The Injector draws every random quantity from one dedicated RNG stream
// forked off the simulation seed, so enabling faults never perturbs the
// noise, workload or scheduling streams, and two runs with the same seed
// produce bit-identical failure timelines.
package fault

import (
	"fmt"
	"sort"
	"time"

	"eant/internal/sim"
)

// EventKind distinguishes scripted crash from recovery events.
type EventKind int

// Scripted event kinds.
const (
	Crash EventKind = iota + 1
	Recover
)

// String returns "crash" or "recover".
func (k EventKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one scripted fault: machine Machine crashes or recovers at
// virtual time At. Scripted events compose with the stochastic MTBF/MTTR
// process; crashing an already-dead machine (or recovering a live one) is
// a no-op at the driver.
type Event struct {
	At      time.Duration
	Machine int
	Kind    EventKind
}

// Config parameterizes fault injection. The zero value disables every
// failure source, and a disabled configuration is a strict no-op: the
// driver schedules no events and draws nothing from the fault stream.
type Config struct {
	// MachineMTBF is the mean up-time between a machine's crashes
	// (exponentially distributed per machine). Zero disables stochastic
	// crashes.
	MachineMTBF time.Duration
	// MachineMTTR is the mean repair time of a crashed machine
	// (exponentially distributed). Defaults to 5 minutes.
	MachineMTTR time.Duration
	// TaskFailProb is the probability that one task attempt fails partway
	// through execution (JVM crash, disk error, bad record). Zero disables
	// attempt failures.
	TaskFailProb float64
	// MaxAttempts is how many times one logical task may fail before its
	// job is failed, Hadoop's mapred.map.max.attempts. Defaults to 4.
	MaxAttempts int
	// BlacklistThreshold is how many attempt failures a machine
	// accumulates before the JobTracker stops assigning to it for
	// BlacklistCooldown. Zero disables blacklisting.
	BlacklistThreshold int
	// BlacklistCooldown is how long a blacklisted machine sits out.
	// Defaults to 10 minutes.
	BlacklistCooldown time.Duration
	// Scenario lists scripted crash/recover events, applied in addition
	// to (or instead of) the stochastic process.
	Scenario []Event
}

// SetDefaults fills unset secondary knobs of an enabled configuration.
func (c *Config) SetDefaults() {
	if c.MachineMTTR <= 0 {
		c.MachineMTTR = 5 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BlacklistThreshold > 0 && c.BlacklistCooldown <= 0 {
		c.BlacklistCooldown = 10 * time.Minute
	}
}

// Enabled reports whether any failure source is active.
func (c Config) Enabled() bool {
	return c.MachineMTBF > 0 || c.TaskFailProb > 0 || len(c.Scenario) > 0
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.MachineMTBF < 0:
		return fmt.Errorf("fault: negative MTBF %v", c.MachineMTBF)
	case c.MachineMTTR < 0:
		return fmt.Errorf("fault: negative MTTR %v", c.MachineMTTR)
	case c.TaskFailProb < 0 || c.TaskFailProb > 1:
		return fmt.Errorf("fault: task failure probability %v outside [0,1]", c.TaskFailProb)
	case c.MaxAttempts < 0:
		return fmt.Errorf("fault: negative max attempts %d", c.MaxAttempts)
	case c.BlacklistThreshold < 0:
		return fmt.Errorf("fault: negative blacklist threshold %d", c.BlacklistThreshold)
	}
	for _, ev := range c.Scenario {
		if ev.At < 0 {
			return fmt.Errorf("fault: scenario event at negative time %v", ev.At)
		}
		if ev.Machine < 0 {
			return fmt.Errorf("fault: scenario event for negative machine %d", ev.Machine)
		}
		if ev.Kind != Crash && ev.Kind != Recover {
			return fmt.Errorf("fault: scenario event with unknown kind %d", int(ev.Kind))
		}
	}
	return nil
}

// Hooks are the driver callbacks the injector fires. Crash and Recover
// receive the machine ID; both must tolerate redundant calls (crashing a
// dead machine, recovering a live one).
type Hooks struct {
	Crash   func(machineID int)
	Recover func(machineID int)
}

// Injector schedules fault events on a sim engine and answers per-attempt
// failure draws. All randomness comes from the injector's own RNG stream.
type Injector struct {
	cfg Config
	rng *sim.RNG
}

// NewInjector returns an injector for the given configuration; cfg must
// validate. Defaults are applied for enabled configurations.
func NewInjector(cfg Config, rng *sim.RNG) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Enabled() {
		cfg.SetDefaults()
	}
	if rng == nil {
		return nil, fmt.Errorf("fault: nil RNG")
	}
	return &Injector{cfg: cfg, rng: rng}, nil
}

// Config returns the injector's (defaulted) configuration.
func (in *Injector) Config() Config { return in.cfg }

// Reset reconfigures the injector in place and rewinds its RNG stream to
// the given seed, exactly reproducing a fresh NewInjector(cfg, NewRNG(seed)).
func (in *Injector) Reset(cfg Config, seed int64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Enabled() {
		cfg.SetDefaults()
	}
	in.cfg = cfg
	in.rng.Reseed(seed)
	return nil
}

// Enabled reports whether the injector will do anything at all.
func (in *Injector) Enabled() bool { return in.cfg.Enabled() }

// minPhase floors MTBF/MTTR draws so a machine can never flap within a
// single event instant (zero-length phases would loop the event queue at
// one timestamp).
const minPhase = time.Second

// Start registers the crash/recover process for machines [0, machines) on
// the engine. Stochastic crashes draw first-crash times in machine-ID
// order, so the event sequence is a pure function of the fault stream.
// Scripted events are scheduled afterwards, sorted by (time, position), and
// override nothing: they simply fire alongside the stochastic process.
func (in *Injector) Start(engine *sim.Engine, machines int, hooks Hooks) {
	if !in.cfg.Enabled() {
		return
	}
	if hooks.Crash == nil || hooks.Recover == nil {
		panic("fault: Start with nil hooks")
	}
	if in.cfg.MachineMTBF > 0 {
		for id := 0; id < machines; id++ {
			id := id
			in.scheduleCrash(engine, id, hooks)
		}
	}
	scripted := append([]Event(nil), in.cfg.Scenario...)
	sort.SliceStable(scripted, func(i, j int) bool { return scripted[i].At < scripted[j].At })
	for _, ev := range scripted {
		if ev.Machine >= machines {
			continue
		}
		ev := ev
		engine.Schedule(ev.At, func() {
			if ev.Kind == Crash {
				hooks.Crash(ev.Machine)
			} else {
				hooks.Recover(ev.Machine)
			}
		})
	}
}

// scheduleCrash arms machine id's next stochastic crash; on firing, the
// crash hook runs and recovery is armed, which in turn re-arms the next
// crash. The chain draws lazily, one phase per event, so runs of any
// length stay O(live events).
func (in *Injector) scheduleCrash(engine *sim.Engine, id int, hooks Hooks) {
	up := in.phase(in.cfg.MachineMTBF)
	//eant:alloc-ok one live closure per machine at MTBF timescale, not per event
	engine.ScheduleAfter(up, func() { //eant:closure-ok one live closure per machine at MTBF timescale, not per event
		hooks.Crash(id)
		down := in.phase(in.cfg.MachineMTTR)
		//eant:alloc-ok one live closure per machine at MTTR timescale, not per event
		engine.ScheduleAfter(down, func() { //eant:closure-ok one live closure per machine at MTTR timescale, not per event
			hooks.Recover(id)
			in.scheduleCrash(engine, id, hooks)
		})
	})
}

// phase draws one exponential up/down span with the given mean, floored.
func (in *Injector) phase(mean time.Duration) time.Duration {
	d := time.Duration(in.rng.Exp(mean.Seconds()) * float64(time.Second))
	if d < minPhase {
		d = minPhase
	}
	return d
}

// AttemptFails draws whether one task attempt will fail mid-execution.
func (in *Injector) AttemptFails() bool {
	return in.cfg.TaskFailProb > 0 && in.rng.Bernoulli(in.cfg.TaskFailProb)
}

// FailurePoint draws the fraction of an attempt's service time at which a
// doomed attempt dies, uniform in [0.05, 0.95]: a failing attempt always
// burns some real work (and energy) before dying, and always dies before
// it would have finished.
func (in *Injector) FailurePoint() float64 {
	return in.rng.Uniform(0.05, 0.95)
}

// MaxAttempts returns the per-task retry limit (after defaulting).
func (in *Injector) MaxAttempts() int {
	if in.cfg.MaxAttempts <= 0 {
		return 4
	}
	return in.cfg.MaxAttempts
}
