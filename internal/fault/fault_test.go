package fault

import (
	"reflect"
	"testing"
	"time"

	"eant/internal/sim"
)

func TestEventKindString(t *testing.T) {
	if Crash.String() != "crash" || Recover.String() != "recover" {
		t.Error("EventKind.String mismatch")
	}
	if EventKind(7).String() != "EventKind(7)" {
		t.Error("unknown kind string mismatch")
	}
}

func TestConfigEnabled(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"zero", Config{}, false},
		{"mtbf", Config{MachineMTBF: time.Minute}, true},
		{"taskFail", Config{TaskFailProb: 0.1}, true},
		{"scenario", Config{Scenario: []Event{{At: 1, Machine: 0, Kind: Crash}}}, true},
		// Secondary knobs alone never enable injection.
		{"mttrOnly", Config{MachineMTTR: time.Minute}, false},
		{"attemptsOnly", Config{MaxAttempts: 2}, false},
		{"blacklistOnly", Config{BlacklistThreshold: 3}, false},
	}
	for _, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("%s: Enabled() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"full", Config{
			MachineMTBF: time.Hour, MachineMTTR: time.Minute,
			TaskFailProb: 0.5, MaxAttempts: 4,
			BlacklistThreshold: 3, BlacklistCooldown: time.Minute,
			Scenario: []Event{{At: time.Second, Machine: 1, Kind: Recover}},
		}, true},
		{"negMTBF", Config{MachineMTBF: -time.Second}, false},
		{"negMTTR", Config{MachineMTTR: -time.Second}, false},
		{"probLow", Config{TaskFailProb: -0.1}, false},
		{"probHigh", Config{TaskFailProb: 1.1}, false},
		{"probOne", Config{TaskFailProb: 1}, true},
		{"negAttempts", Config{MaxAttempts: -1}, false},
		{"negThreshold", Config{BlacklistThreshold: -1}, false},
		{"eventNegTime", Config{Scenario: []Event{{At: -time.Second, Machine: 0, Kind: Crash}}}, false},
		{"eventNegMachine", Config{Scenario: []Event{{At: 0, Machine: -1, Kind: Crash}}}, false},
		{"eventBadKind", Config{Scenario: []Event{{At: 0, Machine: 0}}}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSetDefaultsFillsSecondaryKnobs(t *testing.T) {
	cfg := Config{MachineMTBF: time.Hour, BlacklistThreshold: 2}
	cfg.SetDefaults()
	if cfg.MachineMTTR != 5*time.Minute {
		t.Errorf("MTTR default = %v, want 5m", cfg.MachineMTTR)
	}
	if cfg.MaxAttempts != 4 {
		t.Errorf("MaxAttempts default = %d, want 4", cfg.MaxAttempts)
	}
	if cfg.BlacklistCooldown != 10*time.Minute {
		t.Errorf("BlacklistCooldown default = %v, want 10m", cfg.BlacklistCooldown)
	}

	// No threshold → cooldown stays unset.
	cfg = Config{MachineMTBF: time.Hour}
	cfg.SetDefaults()
	if cfg.BlacklistCooldown != 0 {
		t.Errorf("cooldown defaulted without a threshold: %v", cfg.BlacklistCooldown)
	}

	// Explicit values survive.
	cfg = Config{MachineMTTR: time.Second, MaxAttempts: 9}
	cfg.SetDefaults()
	if cfg.MachineMTTR != time.Second || cfg.MaxAttempts != 9 {
		t.Errorf("SetDefaults clobbered explicit values: %+v", cfg)
	}
}

func TestNewInjectorRejectsBadInput(t *testing.T) {
	if _, err := NewInjector(Config{TaskFailProb: 2}, sim.NewRNG(1)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewInjector(Config{}, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	inj, err := NewInjector(Config{MachineMTBF: time.Hour}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Config().MaxAttempts; got != 4 {
		t.Errorf("injector did not default MaxAttempts: %d", got)
	}
	if inj.MaxAttempts() != 4 {
		t.Errorf("MaxAttempts() = %d, want 4", inj.MaxAttempts())
	}
}

func TestDisabledInjectorConsumesNoRNG(t *testing.T) {
	// The no-op guarantee: with faults disabled, AttemptFails must not
	// advance the stream (enabling the fault fork must never perturb
	// runs that share the parent seed), and Start must schedule nothing.
	rng := sim.NewRNG(42)
	inj, err := NewInjector(Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine()
	fired := 0
	count := func(int) { fired++ }
	inj.Start(engine, 8, Hooks{Crash: count, Recover: count})
	for i := 0; i < 10; i++ {
		if inj.AttemptFails() {
			t.Fatal("disabled injector reported an attempt failure")
		}
	}
	got := rng.Float64()
	want := sim.NewRNG(42).Float64()
	if got != want {
		t.Errorf("disabled injector consumed RNG state: %v != %v", got, want)
	}
	if err := engine.RunUntil(time.Hour); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("disabled injector fired %d events", fired)
	}
}

func TestStartPanicsOnNilHooksWhenEnabled(t *testing.T) {
	inj, err := NewInjector(Config{MachineMTBF: time.Minute}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("enabled Start with nil hooks did not panic")
		}
	}()
	inj.Start(sim.NewEngine(), 4, Hooks{})
}

// timeline runs the injector on a fresh engine and records every hook
// firing as (now, machine, kind) triples.
func timeline(t *testing.T, cfg Config, seed int64, machines int, horizon time.Duration) []Event {
	t.Helper()
	inj, err := NewInjector(cfg, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine()
	var events []Event
	inj.Start(engine, machines, Hooks{
		Crash:   func(id int) { events = append(events, Event{engine.Now(), id, Crash}) },
		Recover: func(id int) { events = append(events, Event{engine.Now(), id, Recover}) },
	})
	if err := engine.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestStochasticTimelineIsDeterministic(t *testing.T) {
	cfg := Config{MachineMTBF: 10 * time.Minute, MachineMTTR: 2 * time.Minute}
	a := timeline(t, cfg, 7, 6, 4*time.Hour)
	b := timeline(t, cfg, 7, 6, 4*time.Hour)
	if len(a) == 0 {
		t.Fatal("4h at 10m MTBF produced no crashes")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged: %d vs %d events", len(a), len(b))
	}
	c := timeline(t, cfg, 8, 6, 4*time.Hour)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical timelines")
	}
	// Per machine the process must alternate crash, recover, crash, ...
	last := map[int]EventKind{}
	for _, ev := range a {
		if prev, seen := last[ev.Machine]; seen && prev == ev.Kind {
			t.Fatalf("machine %d fired %v twice in a row", ev.Machine, ev.Kind)
		}
		last[ev.Machine] = ev.Kind
	}
}

func TestScriptedEventsFireInOrderAndSkipOutOfRange(t *testing.T) {
	cfg := Config{Scenario: []Event{
		{At: 3 * time.Minute, Machine: 1, Kind: Recover},
		{At: time.Minute, Machine: 1, Kind: Crash},
		{At: 2 * time.Minute, Machine: 99, Kind: Crash}, // beyond the fleet
	}}
	got := timeline(t, cfg, 1, 4, time.Hour)
	want := []Event{
		{time.Minute, 1, Crash},
		{3 * time.Minute, 1, Recover},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scripted timeline = %v, want %v", got, want)
	}
}

func TestPhaseFloor(t *testing.T) {
	// Absurdly small means must still yield phases of at least minPhase, so
	// a machine can never flap within one event instant.
	inj, err := NewInjector(Config{MachineMTBF: time.Nanosecond, MachineMTTR: time.Nanosecond}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if d := inj.phase(inj.cfg.MachineMTBF); d < minPhase {
			t.Fatalf("phase %v below floor %v", d, minPhase)
		}
	}
}

func TestFailurePointRange(t *testing.T) {
	inj, err := NewInjector(Config{TaskFailProb: 0.5}, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		p := inj.FailurePoint()
		if p < 0.05 || p >= 0.95 {
			t.Fatalf("failure point %v outside [0.05, 0.95)", p)
		}
	}
}

func TestAttemptFailsMatchesProbability(t *testing.T) {
	inj, err := NewInjector(Config{TaskFailProb: 0.3}, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	n, fails := 20000, 0
	for i := 0; i < n; i++ {
		if inj.AttemptFails() {
			fails++
		}
	}
	if rate := float64(fails) / float64(n); rate < 0.27 || rate > 0.33 {
		t.Errorf("empirical failure rate %.3f far from configured 0.3", rate)
	}
}
