module eant

go 1.22
