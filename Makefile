# Convenience entry points mirroring the CI pipeline. `make lint` is the
# local pre-push check for the determinism/hot-path contracts; see
# DESIGN.md §12 for what each analyzer enforces.

GO ?= go

.PHONY: all build test race lint lint-baseline vet fmt check bench-smoke cover

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# The eantlint multichecker: rngonly, noclock, maporder, floatsum,
# statsmut, hotclosure, hotalloc, resetstate — interprocedural since the
# call-graph layer landed, so the whole module is analyzed as one unit.
# Known debt lives in lint.baseline; new findings exit non-zero with
# file:line diagnostics.
lint:
	$(GO) run ./cmd/eantlint -baseline lint.baseline ./...

# Re-record the debt ledger after deliberately accepting new findings.
lint-baseline:
	$(GO) run ./cmd/eantlint -write-baseline ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: fmt vet build lint test

bench-smoke:
	$(GO) test -run xxx -bench SimulatorThroughput -benchtime=1x -benchmem .
	$(GO) test -run xxx -bench BenchmarkDisabledProbe -benchtime=1000x -benchmem ./internal/probe

# Per-package statement coverage for the observability and analysis
# packages; CI enforces floors on these (see .github/workflows/ci.yml).
cover:
	$(GO) test -cover ./internal/probe ./internal/trace ./internal/metrics
