# Convenience entry points mirroring the CI pipeline. `make lint` is the
# local pre-push check for the determinism/hot-path contracts; see
# DESIGN.md §12 for what each analyzer enforces.

GO ?= go

.PHONY: all build test race lint lint-baseline vet fmt check bench-smoke bench cover

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# The eantlint multichecker: rngonly, noclock, maporder, floatsum,
# statsmut, hotclosure, hotalloc, resetstate, ptrretain —
# interprocedural since the call-graph layer landed, so the whole
# module is analyzed as one unit.
# Known debt lives in lint.baseline; new findings exit non-zero with
# file:line diagnostics.
lint:
	$(GO) run ./cmd/eantlint -baseline lint.baseline ./...

# Re-record the debt ledger after deliberately accepting new findings.
lint-baseline:
	$(GO) run ./cmd/eantlint -write-baseline ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: fmt vet build lint test

bench-smoke:
	$(GO) test -run xxx -bench SimulatorThroughput -benchtime=1x -benchmem .
	$(GO) test -run xxx -bench BenchmarkDisabledProbe -benchtime=1000x -benchmem ./internal/probe

# The full scale grid plus the warm/cold sweep pair, benchstat-friendly:
# fixed iteration counts (not -benchtime=Ns) so allocs/op is comparable
# across commits, and COUNT-many repetitions so benchstat can attach
# confidence intervals. Pipe two runs into benchstat to compare:
#   make bench > /tmp/old.txt  (on the base commit)
#   make bench > /tmp/new.txt  (on your branch)
#   benchstat /tmp/old.txt /tmp/new.txt
# BENCH_*.json record the committed history of these numbers. On shared
# hardware, trust grid-wide trends over single cells (EXPERIMENTS.md).
COUNT ?= 5
bench:
	$(GO) test -run xxx -bench 'BenchmarkScale$$' -benchtime=10x -benchmem -count=$(COUNT) .
	$(GO) test -run xxx -bench 'BenchmarkRunManyWarm$$' -benchtime=20x -benchmem -count=$(COUNT) .

# Per-package statement coverage for the observability packages and the
# world-state core; CI enforces floors on these (see
# .github/workflows/ci.yml).
cover:
	$(GO) test -cover ./internal/probe ./internal/trace ./internal/metrics ./internal/cluster
