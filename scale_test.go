package eant

import "testing"

// TestScaleSweepParallel drives a miniature BenchmarkScale grid through
// the internal/parallel worker pool and checks every cell against its
// sequential rerun. Under `go test -race` it doubles as the data-race
// check for the incremental-aggregate and per-interval-index hot paths
// while many simulations share the process.
func TestScaleSweepParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep; skipped in -short mode")
	}
	var specs []RunSpec
	for _, factor := range []int{1, 4} {
		c := scaledTestbed(t, factor)
		for _, jobs := range []int{5, 20} {
			for _, sched := range []Scheduler{SchedulerEAnt, SchedulerFair} {
				specs = append(specs, RunSpec{
					Cluster:   c,
					Scheduler: sched,
					Jobs:      MSDWorkload(jobs, 3),
					Seed:      3,
				})
			}
		}
	}
	par, err := RunMany(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		spec.Cluster = spec.Cluster.Clone()
		seq, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		p := par[i]
		if p.TotalJoules != seq.TotalJoules || p.Makespan != seq.Makespan ||
			p.Stats.MapOffers != seq.Stats.MapOffers ||
			p.Stats.ReduceOffers != seq.Stats.ReduceOffers {
			t.Errorf("spec %d (%s): parallel run diverged from sequential: "+
				"joules %v vs %v, makespan %v vs %v, offers %d+%d vs %d+%d",
				i, spec.Scheduler,
				p.TotalJoules, seq.TotalJoules, p.Makespan, seq.Makespan,
				p.Stats.MapOffers, p.Stats.ReduceOffers,
				seq.Stats.MapOffers, seq.Stats.ReduceOffers)
		}
	}
}
